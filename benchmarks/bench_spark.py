"""Section 8 (future work) — the Spark port versus the Hadoop pipeline.

The paper predicts: "implementing our algorithm in Spark would improve
performance by reducing read I/O" with "minimal changes (if any)".  Both are
measured: external read volume drops by an order of magnitude (intermediates
live in cached RDD partitions), the answers agree element-wise, and
lineage-based recovery replaces re-execution-from-HDFS after a lost
partition.
"""

import numpy as np

from repro import InversionConfig, invert
from repro.spark import SparkContext, SparkInversionConfig, SparkMatrixInverter
from repro.workloads import random_dense

from conftest import once


def test_spark_vs_hadoop_read_io(benchmark):
    n = 128
    a = random_dense(n, seed=21) + 0.1 * np.eye(n)

    def run_both():
        hadoop = invert(a, InversionConfig(nb=32, m0=4))
        spark = SparkMatrixInverter(SparkInversionConfig(nb=32, chunks=4)).invert(a)
        return hadoop, spark

    hadoop, spark = once(benchmark, run_both)
    assert np.allclose(hadoop.inverse, spark.inverse, atol=1e-9)
    reduction = hadoop.io.bytes_read / spark.external_bytes_read
    print(f"\nexternal read I/O: Hadoop {hadoop.io.bytes_read / 1e6:.1f} MB vs "
          f"Spark {spark.external_bytes_read / 1e6:.2f} MB ({reduction:.0f}x less)")
    benchmark.extra_info["read_reduction"] = reduction
    assert reduction > 10


def test_spark_lineage_recovery(benchmark):
    """Recovering one lost cached partition recomputes only its lineage, not
    the whole stage."""
    n = 96
    a = random_dense(n, seed=22) + 0.1 * np.eye(n)
    sc = SparkContext()
    inverter = SparkMatrixInverter(SparkInversionConfig(nb=24, chunks=4), sc=sc)
    inverter.invert(a)
    l2 = inverter.intermediates["/Root/L2"]
    computed_before = sc.metrics.partitions_computed

    def recover():
        sc.evict(l2, 0)
        return l2.collect()

    once(benchmark, recover)
    recomputed = sc.metrics.partitions_computed - computed_before
    benchmark.extra_info["partitions_recomputed"] = recomputed
    assert sc.metrics.recomputations >= 1
    # Only the lost partition plus its (cached-elsewhere) lineage reran — far
    # fewer than the full run's partition count.
    assert recomputed < computed_before / 4
