"""Section 4.2's argument, measured: Gauss-Jordan on MapReduce versus the
block-LU pipeline.

The paper: "consider that in our experiments we use nb = 3200.  For this nb,
inverting a matrix with n = 10^5 requires 32 iterations using block LU
decomposition as opposed to 10^5 iterations using, say, QR decomposition."
Both designs are real implementations here, so the job counts, the computed
inverses, and the simulated cluster times are all measurable.
"""

import numpy as np

from repro import InversionConfig, invert
from repro.baselines.gauss_jordan_mr import gauss_jordan_mapreduce_invert
from repro.cluster import ClusterSpec, ScaleFactors, simulate_record
from repro.workloads import random_dense

from conftest import once


def test_gauss_jordan_vs_block_lu(benchmark):
    n, m0 = 32, 4
    a = random_dense(n, seed=41) + 0.1 * np.eye(n)

    def run_both():
        gj = gauss_jordan_mapreduce_invert(a, m0=m0)
        blu = invert(a, InversionConfig(nb=8, m0=m0))
        return gj, blu

    gj, blu = once(benchmark, run_both)
    assert np.allclose(gj.inverse, blu.inverse, atol=1e-7)
    assert gj.num_jobs == n  # one job per elimination step
    assert blu.num_jobs == 5  # 2^2 + 1

    cluster = ClusterSpec(m0)
    scale = ScaleFactors.for_order(n, 4096)
    t_gj = simulate_record(gj.record, cluster, scale).makespan
    t_blu = simulate_record(blu.record, cluster, scale).makespan
    print(f"\njobs: GJ-MR {gj.num_jobs} vs block-LU {blu.num_jobs}; "
          f"simulated at order 4096: {t_gj / 60:.1f} min vs {t_blu / 60:.1f} min")
    benchmark.extra_info["job_ratio"] = gj.num_jobs / blu.num_jobs
    benchmark.extra_info["time_ratio"] = t_gj / t_blu
    assert t_gj > t_blu
    # At paper scale the launch bill alone sinks Gauss-Jordan:
    # 10^5 jobs x 22 s > 25 days, vs 33 launches for block LU.
    assert 100_000 * cluster.job_launch_overhead / 86_400 > 25


def test_ablation_nb_executed(benchmark, harness):
    """The nb trade-off, executed (not just modeled): smaller nb means more
    jobs; larger nb means a longer serial master; the replayed makespans at
    paper scale show the interior optimum."""
    n = 256
    times = {}

    def sweep():
        for nb in (16, 32, 64, 128):
            executed = harness.run(n, nb, 4, seed=77)
            report = harness.replay(executed, num_nodes=4, paper_n=16384)
            times[nb] = report.makespan
        return times

    once(benchmark, sweep)
    print("\nexecuted nb sweep (replayed at order 16384, 4 nodes):")
    for nb, t in times.items():
        print(f"  nb={nb:>4}: {t / 3600:6.2f} h")
    best = min(times, key=times.get)
    benchmark.extra_info["best_nb"] = best
    assert best not in (16,)  # tiny nb loses to launch overhead
