"""Section 7.2 — numerical accuracy, regenerated.

The paper checks max |I - M M^-1| < 1e-5 for M1, M2, M3, M5 in double
precision; reproduced at working scale with the same bound.
"""

from repro.experiments import sec72

from conftest import once


def test_sec72_accuracy(benchmark, harness):
    res = once(
        benchmark,
        sec72.run,
        matrices=("M1", "M2", "M3", "M5"),
        scale=128,
        m0=4,
        harness=harness,
    )
    print()
    print(sec72.format_result(res))
    assert res.all_pass
    assert res.worst_residual < 1e-5
    benchmark.extra_info["worst_residual"] = res.worst_residual
