#!/usr/bin/env python
"""Scheduler benchmark: barrier vs dataflow inter-job scheduling.

Runs the same end-to-end inversion under the paper's strictly
barrier-synchronized step sequence and under the dependency-driven
scheduler (``schedule="dataflow"``), and records in ``BENCH_scheduler.json``:

* the static schedule geometry per configuration — sync points under each
  mode (barrier: every stage plus a global barrier after each non-final
  stage; dataflow: the stages alone) and the block DAG's critical-path
  length, straight from the dataflow analyzer's barrier-slack report;
* wall-clock for both modes under the threads and processes backends,
  with the dataflow/barrier speedup;
* residuals for every run (the modes must agree numerically, always).

The wall-clock gate mirrors ``bench_executor.py``: overlap between steps
can only buy time when the host can actually schedule the overlapped work,
so the speedup assertion applies only on multi-core hosts (schedulable
cores probed via ``hostinfo.schedulable_cpus``, not ``os.cpu_count()``).
Correctness and the sync-point reduction are asserted unconditionally.

Usage::

    python benchmarks/bench_scheduler.py              # full run
    python benchmarks/bench_scheduler.py --smoke      # CI-sized run
    python benchmarks/bench_scheduler.py --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np

from hostinfo import host_report, schedulable_cpus

from repro import InversionConfig
from repro.analysis import build_model
from repro.analysis.dataflow import barrier_slack_data
from repro.inversion.driver import MatrixInverter
from repro.mapreduce import MapReduceRuntime, RuntimeConfig

EXECUTORS = ("threads", "processes")
SCHEDULES = ("barrier", "dataflow")
#: Minimum dataflow/barrier speedup demanded on multi-core hosts, on the
#: best configuration (not every point: tiny geometries are overhead-bound).
SPEEDUP_TARGET = 1.0


def run_once(a, *, nb, m0, executor, workers, schedule):
    rt = MapReduceRuntime(
        config=RuntimeConfig(num_workers=workers, executor=executor)
    )
    cfg = InversionConfig(nb=nb, m0=m0, schedule=schedule)
    inverter = MatrixInverter(config=cfg, runtime=rt)
    start = time.perf_counter()
    try:
        result = inverter.invert(a)
        elapsed = time.perf_counter() - start
        return elapsed, result.residual(a)
    finally:
        rt.shutdown()


def run_mode(a, *, nb, m0, executor, workers, schedule, reps):
    best, residual = run_once(
        a, nb=nb, m0=m0, executor=executor, workers=workers, schedule=schedule
    )
    for _ in range(reps - 1):
        t, residual = run_once(
            a, nb=nb, m0=m0, executor=executor, workers=workers,
            schedule=schedule,
        )
        best = min(best, t)
    return best, residual


def bench_config(*, n, nb, m0, workers, reps, seed):
    """One (n, nb, m0) point: static geometry + timed runs per backend."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) + n * np.eye(n)

    slack = barrier_slack_data(build_model(n, InversionConfig(nb=nb, m0=m0)))
    point = {
        "n": n,
        "nb": nb,
        "m0": m0,
        "workers": workers,
        "sync_points": slack["sync_points"],
        "critical_path_length": len(slack["critical_path"]),
        "jobs": slack["jobs"],
        "stages": slack["stages"],
        "backends": {},
    }
    for executor in EXECUTORS:
        wall, residuals = {}, {}
        for schedule in SCHEDULES:
            wall[schedule], residuals[schedule] = run_mode(
                a, nb=nb, m0=m0, executor=executor, workers=workers,
                schedule=schedule, reps=reps,
            )
        point["backends"][executor] = {
            "wall_seconds": wall,
            "residuals": residuals,
            "speedup_dataflow_vs_barrier": (
                wall["barrier"] / wall["dataflow"] if wall["dataflow"] else 0.0
            ),
        }
    return point


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3, help="timing repetitions")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--out", default="BENCH_scheduler.json", help="output JSON path"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run: small points, one rep"
    )
    args = parser.parse_args(argv)

    # The n=8 nb=2 m0=2 point pins the canonical sync-point reduction
    # (29 -> 15); the larger points carry the wall-clock evidence.
    if args.smoke:
        points = [(8, 2, 2, 2), (64, 16, 4, 4)]
        args.reps = 1
    else:
        points = [(8, 2, 2, 2), (128, 32, 4, 4), (256, 64, 8, 8)]

    process_cpus, cpus_source = schedulable_cpus()

    # Warm NumPy/BLAS and the engine before timing anything.
    rng = np.random.default_rng(args.seed)
    warm = rng.standard_normal((16, 16)) + 16 * np.eye(16)
    run_once(warm, nb=4, m0=2, executor="threads", workers=2,
             schedule="dataflow")

    results = [
        bench_config(
            n=n, nb=nb, m0=m0, workers=workers, reps=args.reps, seed=args.seed
        )
        for n, nb, m0, workers in points
    ]

    correct = all(
        r < 1e-6
        for point in results
        for backend in point["backends"].values()
        for r in backend["residuals"].values()
    )
    sync_reduced = all(
        p["sync_points"]["dataflow"] < p["sync_points"]["barrier"]
        for p in results
    )
    best_speedup = max(
        backend["speedup_dataflow_vs_barrier"]
        for point in results
        for backend in point["backends"].values()
    )
    multi_core = process_cpus > 1
    if multi_core:
        gate = {
            "applied": True,
            "reason": f"{process_cpus} schedulable core(s) via {cpus_source}",
            "passed": best_speedup >= SPEEDUP_TARGET,
        }
    else:
        gate = {
            "applied": False,
            "reason": f"{process_cpus} schedulable core(s) via {cpus_source}: "
            "no overlap capacity, wall-clock gate skipped; sync-point and "
            "correctness checks still apply",
            "passed": None,
        }
    passed = correct and sync_reduced and (gate["passed"] is not False)

    report = {
        "benchmark": "scheduler_barrier_vs_dataflow",
        "host": host_report(),
        "config": {"reps": args.reps, "seed": args.seed, "smoke": args.smoke},
        "points": results,
        "criteria": {
            "all_runs_correct": correct,
            "sync_points_reduced_everywhere": sync_reduced,
            "best_speedup_dataflow_vs_barrier": best_speedup,
            "speedup_target": SPEEDUP_TARGET,
            "multi_core_gate": gate,
            "passed": passed,
        },
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")

    for point in results:
        sp = point["sync_points"]
        print(
            f"n={point['n']} nb={point['nb']} m0={point['m0']}: "
            f"sync points {sp['barrier']} -> {sp['dataflow']}, "
            f"critical path {point['critical_path_length']} stages"
        )
        for executor, backend in point["backends"].items():
            wall = backend["wall_seconds"]
            print(
                f"  {executor:>9}: barrier {wall['barrier']:.3f}s, "
                f"dataflow {wall['dataflow']:.3f}s "
                f"({backend['speedup_dataflow_vs_barrier']:.2f}x)"
            )
    print(f"gate: {gate['reason']}")
    print(f"{'PASS' if passed else 'FAIL'} -> {out}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
