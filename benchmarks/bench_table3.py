"""Table 3 — the M1-M5 matrix suite, regenerated with executed job counts."""

from repro.experiments import table3

from conftest import once


def test_table3_suite(benchmark, harness):
    res = once(benchmark, table3.run, execute=True, scale=128, m0=4, harness=harness)
    print()
    print(table3.format_result(res))
    assert res.all_job_counts_match()
    # Spot-check the famous column: M4 takes 33 jobs.
    m4 = next(r for r in res.rows if r.name == "M4")
    assert m4.jobs_formula == m4.jobs_executed == 33
