"""Shared fixtures for the benchmark suite.

One session-scoped :class:`ExperimentHarness` caches executed pipeline runs,
so benchmarks that sweep node counts over the same matrices don't re-execute
identical configurations.
"""

import pytest

from repro.experiments import ExperimentHarness


@pytest.fixture(scope="session")
def harness() -> ExperimentHarness:
    return ExperimentHarness()


def once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
