"""Extension benchmarks: launch-overhead sensitivity (the HaLoop discussion),
heterogeneous-cluster replay (the Section 7.4 EC2-variance observation), and
the related-work kernels."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, ScaleFactors, simulate_record
from repro.experiments import launch_overhead
from repro.linalg import cholesky_invert, tile_lu
from repro.linalg.verify import lu_residual
from repro.workloads import get, random_dense, symmetric_positive_definite

from conftest import once


def test_launch_overhead_sensitivity(benchmark, harness):
    """Shrinking the per-job launch cost improves high-node-count efficiency
    without any pipeline change — the paper's HaLoop conclusion."""
    res = once(
        benchmark,
        launch_overhead.run,
        matrix="M5",
        overheads=(22.0, 2.0, 0.0),
        node_counts=(4, 16, 64),
        scale=128,
        harness=harness,
    )
    print()
    print(launch_overhead.format_result(res))
    eff_hadoop = res.curve(22.0).efficiency_at_max()
    eff_pool = res.curve(2.0).efficiency_at_max()
    eff_ideal = res.curve(0.0).efficiency_at_max()
    assert eff_hadoop < eff_pool <= eff_ideal
    benchmark.extra_info["efficiency_gain"] = eff_pool / eff_hadoop


def test_heterogeneous_replay(benchmark, harness):
    """EC2 instance variance (Section 7.4) stretches the makespan, but wave
    scheduling absorbs most of it: the penalty stays well below the slowest
    node's slowdown."""
    suite = get("M5")
    executed = harness.run(suite.order(128), suite.nb(128), 8, seed=suite.seed)
    cluster = ClusterSpec(num_nodes=8)
    scale = ScaleFactors.for_order(suite.order(128), suite.paper_order)

    def replay_pair():
        hom = simulate_record(executed.record, cluster, scale).makespan
        het = simulate_record(
            executed.record, cluster, scale, speed_variance=0.3, speed_seed=11
        ).makespan
        return hom, het

    hom, het = once(benchmark, replay_pair)
    penalty = het / hom
    print(f"\nhomogeneous {hom:.0f}s vs heterogeneous {het:.0f}s "
          f"(penalty {penalty:.2f}x)")
    benchmark.extra_info["variance_penalty"] = penalty
    assert 1.0 < penalty < 1.6


def test_tile_lu_kernel(benchmark):
    a = random_dense(256, seed=31) + 0.1 * np.eye(256)
    res, counts = benchmark.pedantic(
        tile_lu, args=(a,), kwargs=dict(tile=64), rounds=3, iterations=1
    )
    assert lu_residual(a, res.lower(), res.upper(), res.perm) < 1e-9
    benchmark.extra_info["tasks"] = counts.total


def test_cholesky_vs_lu_inversion_on_spd(benchmark):
    """The specialized SPD path does about half the arithmetic (Section 3's
    related-work trade-off)."""
    import time

    a = symmetric_positive_definite(192, seed=32)

    def both():
        t0 = time.perf_counter()
        chol = cholesky_invert(a)
        t_chol = time.perf_counter() - t0
        from repro.baselines import gauss_jordan_invert

        t0 = time.perf_counter()
        gj = gauss_jordan_invert(a)
        t_gj = time.perf_counter() - t0
        return chol, gj, t_chol, t_gj

    chol, gj, t_chol, t_gj = once(benchmark, both)
    assert np.allclose(chol, gj, atol=1e-7)
    benchmark.extra_info["cholesky_speedup_vs_gj"] = t_gj / t_chol


def test_inversion_vs_cg_crossover(benchmark):
    """Sections 1 and 3: the explicit inverse beats MADlib-style CG once the
    operator serves more right-hand sides than the measured crossover."""
    from repro.apps import compare_strategies
    from repro.workloads import laplacian_1d

    # Moderately conditioned operator: CG converges in k << n iterations,
    # so a few solves favor CG and many favor the inverse.
    a = symmetric_positive_definite(192, seed=33)
    cmp = once(benchmark, compare_strategies, a)
    print(f"\nCG iterations {cmp.cg_iterations}, crossover at "
          f"{cmp.crossover_rhs} right-hand sides")
    benchmark.extra_info["cg_iterations"] = cmp.cg_iterations
    benchmark.extra_info["crossover_rhs"] = cmp.crossover_rhs
    assert cmp.cheaper_strategy(1) == "cg"
    assert cmp.cheaper_strategy(10_000) == "inversion"
    assert 2 <= cmp.crossover_rhs <= 192

    # The flip side: an ill-conditioned operator (cond ~ n^2) drives CG to
    # ~n iterations and the inverse wins outright — the Section 1 claim that
    # the alternative methods do not remove the need for inversion.
    hard = compare_strategies(laplacian_1d(192))
    benchmark.extra_info["laplacian_cg_iterations"] = hard.cg_iterations
    assert hard.cheaper_strategy(1) == "inversion"
