#!/usr/bin/env python
"""Execution-backend benchmark: serial vs threads vs processes.

Runs the same end-to-end inversion through every registered execution
backend and records wall-clock, speedups over serial, residuals, and the
host's core count in ``BENCH_executor.json``.

What the numbers mean:

* ``serial`` is the single-threaded baseline — every attempt runs inline
  on the driver thread.
* ``threads`` overlaps attempts inside one process; NumPy kernels release
  the GIL so BLAS-heavy phases scale, pure-Python phases do not.
* ``processes`` runs attempts in forked workers.  Task inputs travel as
  shared-memory DFS segments (zero-copy reads in the children), results
  come back through the two-phase commit protocol, so the marginal cost
  per attempt is IPC + pickle of the staged outputs only.

The acceptance gate (processes >= 1.3x over serial) is a *parallelism*
claim, so it is only asserted when this process can actually run on
multiple cores.  ``os.cpu_count()`` alone lies about that: a CI runner may
expose 64 cores while pinning the job to one via CPU affinity, so the
report records the *schedulable* core count too (``os.process_cpu_count()``
on 3.13+, the affinity mask before that) and gates on it.  On a
single-core run the process pool pays its IPC overhead with no parallel
speedup available to buy it back; the gate is marked skipped — naming the
recorded value — rather than pretending.

Usage::

    python benchmarks/bench_executor.py              # full run (n=512)
    python benchmarks/bench_executor.py --smoke      # CI-sized run (n=128)
    python benchmarks/bench_executor.py --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np

from hostinfo import schedulable_cpus

from repro import InversionConfig, invert
from repro.mapreduce import MapReduceRuntime, RuntimeConfig

SPEEDUP_TARGET = 1.3
EXECUTORS = ("serial", "threads", "processes")


def run_once(a: np.ndarray, *, nb: int, m0: int, executor: str, workers: int):
    rt = MapReduceRuntime(
        config=RuntimeConfig(num_workers=workers, executor=executor)
    )
    cfg = InversionConfig(nb=nb, m0=m0)
    start = time.perf_counter()
    result = invert(a, cfg, runtime=rt)
    elapsed = time.perf_counter() - start
    residual = result.residual(a)
    rt.shutdown()
    return elapsed, residual


def run_mode(a, *, nb, m0, executor, workers, reps):
    best, residual = run_once(
        a, nb=nb, m0=m0, executor=executor, workers=workers
    )
    for _ in range(reps - 1):
        t, residual = run_once(
            a, nb=nb, m0=m0, executor=executor, workers=workers
        )
        best = min(best, t)
    return best, residual


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=512, help="matrix order")
    parser.add_argument("--nb", type=int, default=64, help="blocks per dimension")
    parser.add_argument("--m0", type=int, default=8, help="base-case block count")
    parser.add_argument("--reps", type=int, default=3, help="timing repetitions")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--out", default="BENCH_executor.json", help="output JSON path"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: n=128, one rep",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.n, args.nb, args.m0, args.reps = 128, 32, 8, 1

    cpu_count = os.cpu_count() or 1
    process_cpus, cpus_source = schedulable_cpus()
    rng = np.random.default_rng(args.seed)
    a = rng.standard_normal((args.n, args.n)) + args.n * np.eye(args.n)

    # Warm NumPy/BLAS and the engine before timing anything.
    run_once(a, nb=args.nb, m0=args.m0, executor="serial", workers=args.workers)

    wall: dict[str, float] = {}
    residuals: dict[str, float] = {}
    for executor in EXECUTORS:
        wall[executor], residuals[executor] = run_mode(
            a, nb=args.nb, m0=args.m0, executor=executor,
            workers=args.workers, reps=args.reps,
        )

    speedups = {
        executor: wall["serial"] / wall[executor] if wall[executor] else 0.0
        for executor in EXECUTORS
    }

    correct = all(r < 1e-6 for r in residuals.values())
    multi_core = process_cpus > 1
    if multi_core:
        gate = {
            "applied": True,
            "reason": f"process_cpu_count={process_cpus} schedulable "
            f"core(s) via {cpus_source} (os.cpu_count()={cpu_count})",
            "passed": speedups["processes"] >= SPEEDUP_TARGET,
        }
    else:
        # A process pool cannot beat serial with one core to run on; the
        # parallel-speedup gate is meaningless here, so record that rather
        # than fail (or fake) it.
        gate = {
            "applied": False,
            "reason": f"process_cpu_count={process_cpus} schedulable "
            f"core(s) via {cpus_source} (os.cpu_count()={cpu_count}): "
            "parallel speedup unavailable, gate skipped; wall-clock "
            "numbers record the IPC overhead",
            "passed": None,
        }
    passed = correct and (gate["passed"] is not False)

    report = {
        "benchmark": "execution_backends",
        "host": {
            "cpu_count": cpu_count,
            "process_cpu_count": process_cpus,
            "process_cpu_count_source": cpus_source,
        },
        "config": {
            "n": args.n, "nb": args.nb, "m0": args.m0,
            "workers": args.workers, "reps": args.reps,
            "seed": args.seed, "smoke": args.smoke,
        },
        "wall_seconds": wall,
        "speedup_vs_serial": speedups,
        "residuals": residuals,
        "criteria": {
            "speedup_target": SPEEDUP_TARGET,
            "all_backends_correct": correct,
            "multi_core_gate": gate,
            "passed": passed,
        },
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")

    for executor in EXECUTORS:
        print(
            f"{executor:>9}: {wall[executor]:.3f}s  "
            f"({speedups[executor]:.2f}x vs serial, "
            f"residual {residuals[executor]:.2e})"
        )
    print(
        f"host cpu_count={cpu_count} "
        f"process_cpu_count={process_cpus} ({cpus_source}); "
        f"gate: {gate['reason']}"
    )
    print(f"{'PASS' if passed else 'FAIL'} -> {out}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
