"""Figure 8 — ScaLAPACK/ours running-time ratio, regenerated.

Paper claims asserted: the ratio rises with the node count and with the
matrix order; ScaLAPACK wins at small scale (ratio < 1); the pipeline
catches up / wins for the larger matrices at high scale.  The measured-MPI
part confirms the mechanism: ScaLAPACK's traffic grows with the process
count much faster than the pipeline's.
"""

from repro.experiments import fig8

from conftest import once


def test_fig8_ratio_curves(benchmark, harness):
    res = once(
        benchmark,
        fig8.run,
        matrices=("M1", "M2", "M3"),
        node_counts=(8, 16, 32, 64),
        measure_traffic=True,
        traffic_n=96,
        traffic_procs=(2, 4, 8),
        harness=harness,
    )
    print()
    print(fig8.format_result(res))
    for curve in res.curves:
        assert curve.ratio == sorted(curve.ratio), curve.matrix
        assert curve.ratio[0] < 1.0  # ScaLAPACK wins small scale
    assert res.curve("M3").ratio[-1] > 1.0  # pipeline wins at scale
    # Ratio ordered by matrix size at 64 nodes.
    at64 = [c.ratio[-1] for c in res.curves]
    assert at64 == sorted(at64)
    # Mechanism: ScaLAPACK's measured traffic grows faster with p than ours.
    t = res.traffic
    scala_growth = t[-1].scalapack_bytes / t[0].scalapack_bytes
    ours_growth = t[-1].ours_bytes / max(t[0].ours_bytes, 1)
    assert scala_growth > ours_growth
    benchmark.extra_info["M3_ratio_at_64"] = res.curve("M3").ratio[-1]
