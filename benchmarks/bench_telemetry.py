"""Telemetry overhead: the disabled path must be free, the enabled path cheap.

The zero-cost contract (``docs/observability.md``): with no ``observe`` block
and no ``TraceConfig``, every instrumentation site resolves the no-op tracer
and checks one flag.  ``bench_disabled_vs_baseline`` measures that directly —
the same engine job with and without an enabled tracer — and the disabled
run is also comparable against ``bench_engine.py``'s numbers from before the
instrumentation landed.
"""

import numpy as np
import pytest

from repro import InversionConfig, TraceConfig
from repro.inversion import MatrixInverter
from repro.mapreduce import (
    FnMapper,
    JobConf,
    MapReduceRuntime,
    Reducer,
    splits_for_workers,
)
from repro.telemetry import NULL_TRACER, current_tracer


class CountReducer(Reducer):
    def reduce(self, ctx, key, values):
        ctx.emit(key, sum(1 for _ in values))


def _job_conf(telemetry=None):
    return JobConf(
        name="telemetry-bench",
        mapper_factory=lambda: FnMapper(
            lambda ctx, split: ctx.emit(split.payload, 1)
        ),
        reducer_factory=CountReducer,
        splits=splits_for_workers(4),
        num_reduce_tasks=4,
        telemetry=telemetry,
    )


def test_job_dispatch_telemetry_disabled(benchmark):
    """Engine dispatch with telemetry off — the bench_engine.py twin; any
    drift against test_engine_job_dispatch_overhead is instrumentation tax."""
    rt = MapReduceRuntime()
    result = benchmark(rt.run_job, _job_conf())
    assert result.succeeded
    assert current_tracer() is NULL_TRACER


def test_job_dispatch_telemetry_enabled(benchmark):
    """The same job with a live tracer (spans + metrics recorded)."""
    rt = MapReduceRuntime()
    config = TraceConfig()
    result = benchmark(rt.run_job, _job_conf(telemetry=config))
    assert result.succeeded
    assert config.tracer().spans


def test_inversion_telemetry_disabled(benchmark):
    """A small full inversion on the disabled path (DFS + master-phase +
    wave instrumentation sites all active but dormant)."""
    a = np.random.default_rng(0).standard_normal((64, 64)) + 64 * np.eye(64)
    inverter = MatrixInverter(InversionConfig(nb=16, m0=4))
    result = benchmark(inverter.invert, a)
    assert result.residual(a) < 1e-8
    inverter.close()


def test_null_span_hot_path(benchmark):
    """The per-call cost instrumented code pays when telemetry is off."""

    def probe():
        tracer = current_tracer()
        if tracer.enabled:  # pragma: no cover - disabled in this benchmark
            raise AssertionError
        return tracer

    assert benchmark(probe) is NULL_TRACER
