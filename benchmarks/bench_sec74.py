"""Section 7.4 — inverting the order-102400 matrix M4, regenerated.

Paper findings asserted: 33 jobs; ~5 h on 128 large instances (~8 h when a
mapper fails and is rescheduled); ~15 h on 64 medium instances; >500 GB
written and multi-TB reads; the failure run still produces a correct
inverse.
"""

from repro.experiments import sec74

from conftest import once


def test_sec74_large_matrix(benchmark, harness):
    res = once(
        benchmark, sec74.run, scale=128, m0_large=128, m0_medium=64, harness=harness
    )
    print()
    print(sec74.format_result(res))
    assert res.num_jobs == 33
    # Time bands around the paper's anchors (we reproduce shape, not exact
    # EC2 seconds): 5 h -> [3, 10]; 15 h -> [10, 30].
    assert 3 < res.hours_large_no_failure < 10
    assert 10 < res.hours_medium < 30
    # The failure stretches the run but by less than 2x (paper: 5 h -> 8 h).
    assert (
        res.hours_large_no_failure
        < res.hours_large_with_failure
        < 2 * res.hours_large_no_failure
    )
    assert res.failure_recovered and res.residual_ok
    # I/O volumes at paper scale.
    assert res.paper_write_bytes > 500e9
    assert res.paper_read_bytes > 5e12
    benchmark.extra_info["hours_large"] = res.hours_large_no_failure
    benchmark.extra_info["hours_large_failure"] = res.hours_large_with_failure
    benchmark.extra_info["hours_medium"] = res.hours_medium
