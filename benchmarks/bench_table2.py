"""Table 2 — triangular inversion + final product cost model, regenerated."""

import pytest

from repro.experiments import table2

from conftest import once


def test_table2_inversion_cost(benchmark, harness):
    res = once(benchmark, table2.run, n=256, nb=32, m0=8, harness=harness)
    print()
    print(table2.format_result(res))
    benchmark.extra_info["read_ratio"] = res.read_ratio
    assert 0.5 < res.read_ratio < 2.5
    assert 0.5 < res.write_ratio < 2.5
    # Dense final product: measured mults between the triangular-aware model
    # (2/3 n^3) and the dense bound (5/3 n^3).
    assert 1.0 <= res.measured_ours.mults / res.model_ours.mults <= 2.6


def test_table2_scalapack_row(benchmark):
    """ScaLAPACK's inversion traffic is m0 n^2 — the allgather of the packed
    factors, verified against the measured MPI baseline."""
    import numpy as np

    from repro.scalapack import scalapack_invert
    from repro.workloads import random_dense

    n, p = 128, 4
    a = random_dense(n, seed=11)
    res = once(benchmark, scalapack_invert, a, nprocs=p, block=16)
    assert res.residual(a) < 1e-8
    model_bytes = p * n * n * 8
    benchmark.extra_info["traffic_vs_model"] = res.traffic.bytes_sent / model_bytes
    assert model_bytes / 4 < res.traffic.bytes_sent < model_bytes * 4
