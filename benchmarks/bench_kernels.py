"""Micro-benchmarks of the numerical kernels (these use pytest-benchmark's
normal multi-round timing since each call is fast)."""

import numpy as np
import pytest

from repro.baselines import gauss_jordan_invert
from repro.linalg import invert_lower, invert_upper, lu_decompose
from repro.linalg.blockwrap import block_wrap_multiply, naive_multiply
from repro.workloads import random_dense


@pytest.fixture(scope="module")
def matrix_256():
    return random_dense(256, seed=0) + 0.1 * np.eye(256)


@pytest.fixture(scope="module")
def lower_256(matrix_256):
    return lu_decompose(matrix_256).lower()


def test_lu_decompose_256(benchmark, matrix_256):
    res = benchmark(lu_decompose, matrix_256)
    assert res.n == 256


def test_gauss_jordan_256(benchmark, matrix_256):
    inv = benchmark(gauss_jordan_invert, matrix_256)
    assert np.allclose(matrix_256 @ inv, np.eye(256), atol=1e-7)


def test_invert_lower_256(benchmark, lower_256):
    inv = benchmark(invert_lower, lower_256)
    assert np.allclose(lower_256 @ inv, np.eye(256), atol=1e-8)


def test_invert_upper_via_transpose_256(benchmark, lower_256):
    upper = lower_256.T
    inv = benchmark(invert_upper, upper)
    assert np.allclose(upper @ inv, np.eye(256), atol=1e-8)


@pytest.mark.parametrize("scheme", [naive_multiply, block_wrap_multiply], ids=["naive", "block_wrap"])
def test_distributed_multiply_512(benchmark, scheme):
    a = random_dense(512, seed=1)
    b = random_dense(512, seed=2)
    out, stats = benchmark(scheme, a, b, 16)
    assert out.shape == (512, 512)
    benchmark.extra_info["elements_read"] = stats.total_elements_read
