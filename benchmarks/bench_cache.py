#!/usr/bin/env python
"""Decoded-block cache benchmark: cache on vs off for an end-to-end inversion.

Runs the full pipeline (threads executor) with the worker-side decoded-block
cache enabled and disabled, and records three families of evidence in
``BENCH_cache.json``:

* wall-clock — best-of-``reps`` end-to-end inversion time per mode;
* copied bytes — the exact DFS byte ledger: with the cache off every matrix
  read physically reads and decodes its bytes (``cache_bytes_requested``
  worth of copies); with the cache on only misses do
  (``cache_bytes_missed``), so the reduction is ``served / requested``;
* allocations — tracemalloc peak traced memory and the live allocation
  profile of the DFS layer at end of run, per mode.

The acceptance criterion is disjunctive: the run passes if wall-clock speeds
up >= 1.3x or the decode path copies >= 40% fewer bytes.  On an in-memory
DFS the latency win is modest (there is no disk to skip), so the byte ledger
is the load-bearing evidence; on a real cluster the same hit rate converts
to skipped network/disk reads.

Usage::

    python benchmarks/bench_cache.py              # full run (n=512)
    python benchmarks/bench_cache.py --smoke      # CI-sized run (n=128)
    python benchmarks/bench_cache.py --n 256 --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
import tracemalloc

import numpy as np

from repro import InversionConfig, invert
from repro.dfs.cache import DEFAULT_BLOCK_CACHE_BYTES
from repro.mapreduce import MapReduceRuntime, RuntimeConfig

SPEEDUP_TARGET = 1.3
COPY_REDUCTION_TARGET = 0.40


def run_once(a: np.ndarray, *, nb: int, m0: int, cache_bytes: int, workers: int):
    rt = MapReduceRuntime(
        config=RuntimeConfig(num_workers=workers, executor="threads")
    )
    cfg = InversionConfig(nb=nb, m0=m0, block_cache_bytes=cache_bytes)
    start = time.perf_counter()
    result = invert(a, cfg, runtime=rt)
    elapsed = time.perf_counter() - start
    residual = result.residual(a)
    rt.shutdown()
    return elapsed, result.io, residual


def run_mode(a, *, nb, m0, cache_bytes, workers, reps):
    """Best-of-reps wall clock; the byte ledger is identical across reps."""
    best, io, residual = run_once(
        a, nb=nb, m0=m0, cache_bytes=cache_bytes, workers=workers
    )
    for _ in range(reps - 1):
        t, io, residual = run_once(
            a, nb=nb, m0=m0, cache_bytes=cache_bytes, workers=workers
        )
        best = min(best, t)
    return best, io, residual


def traced_allocations(a, *, nb, m0, cache_bytes, workers):
    """tracemalloc profile of one run: peak traced bytes plus the DFS layer's
    share of live allocations at end of run."""
    tracemalloc.start()
    try:
        run_once(a, nb=nb, m0=m0, cache_bytes=cache_bytes, workers=workers)
        snapshot = tracemalloc.take_snapshot()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    dfs_stats = snapshot.filter_traces(
        [tracemalloc.Filter(True, "*repro/dfs/*")]
    ).statistics("filename")
    return {
        "peak_traced_bytes": peak,
        "dfs_live_bytes": sum(s.size for s in dfs_stats),
        "dfs_live_blocks": sum(s.count for s in dfs_stats),
    }


def io_dict(io) -> dict:
    return {
        "bytes_read": io.bytes_read,
        "bytes_written": io.bytes_written,
        "read_ops": io.read_ops,
        "cache_hits": io.cache_hits,
        "cache_misses": io.cache_misses,
        "cache_bytes_requested": io.cache_bytes_requested,
        "cache_bytes_served": io.cache_bytes_served,
        "cache_bytes_missed": io.cache_bytes_missed,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=512, help="matrix order")
    parser.add_argument("--nb", type=int, default=64, help="blocks per dimension")
    parser.add_argument("--m0", type=int, default=8, help="base-case block count")
    parser.add_argument("--reps", type=int, default=3, help="timing repetitions")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--out", default="BENCH_cache.json", help="output JSON path"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: n=128, one rep, no tracemalloc pass",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.n, args.nb, args.m0, args.reps = 128, 32, 8, 1

    rng = np.random.default_rng(args.seed)
    a = rng.standard_normal((args.n, args.n)) + args.n * np.eye(args.n)

    # Warm NumPy/BLAS and the engine before timing anything.
    run_once(a, nb=args.nb, m0=args.m0, cache_bytes=0, workers=args.workers)

    t_on, io_on, resid_on = run_mode(
        a, nb=args.nb, m0=args.m0,
        cache_bytes=DEFAULT_BLOCK_CACHE_BYTES, workers=args.workers,
        reps=args.reps,
    )
    t_off, io_off, resid_off = run_mode(
        a, nb=args.nb, m0=args.m0, cache_bytes=0, workers=args.workers,
        reps=args.reps,
    )

    requested = io_on.cache_bytes_requested
    assert requested == io_on.cache_bytes_served + io_on.cache_bytes_missed
    # Cache off: every requested byte is physically read and decoded.
    # Cache on: only misses are.  The difference is copies avoided.
    copy_reduction = io_on.cache_bytes_served / requested if requested else 0.0
    speedup = t_off / t_on if t_on else 0.0
    read_reduction = (
        1.0 - io_on.bytes_read / io_off.bytes_read if io_off.bytes_read else 0.0
    )

    alloc = None
    if not args.smoke:
        alloc = {
            "cache_on": traced_allocations(
                a, nb=args.nb, m0=args.m0,
                cache_bytes=DEFAULT_BLOCK_CACHE_BYTES, workers=args.workers,
            ),
            "cache_off": traced_allocations(
                a, nb=args.nb, m0=args.m0, cache_bytes=0, workers=args.workers,
            ),
        }

    passed = speedup >= SPEEDUP_TARGET or copy_reduction >= COPY_REDUCTION_TARGET
    report = {
        "benchmark": "decoded_block_cache",
        "config": {
            "n": args.n, "nb": args.nb, "m0": args.m0,
            "workers": args.workers, "executor": "threads",
            "reps": args.reps, "seed": args.seed, "smoke": args.smoke,
            "cache_capacity_bytes": DEFAULT_BLOCK_CACHE_BYTES,
        },
        "wall_seconds": {"cache_on": t_on, "cache_off": t_off},
        "speedup": speedup,
        "io": {"cache_on": io_dict(io_on), "cache_off": io_dict(io_off)},
        "copied_bytes": {
            "cache_on": io_on.cache_bytes_missed,
            "cache_off": requested,
            "reduction": copy_reduction,
        },
        "physical_read_reduction": read_reduction,
        "tracemalloc": alloc,
        "residuals": {"cache_on": resid_on, "cache_off": resid_off},
        "criteria": {
            "speedup_target": SPEEDUP_TARGET,
            "copy_reduction_target": COPY_REDUCTION_TARGET,
            "passed": passed,
        },
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"cache on : {t_on:.3f}s  physical read {io_on.bytes_read:,} B")
    print(f"cache off: {t_off:.3f}s  physical read {io_off.bytes_read:,} B")
    print(
        f"decode-path copies: {io_on.cache_bytes_missed:,} B vs "
        f"{requested:,} B  ({copy_reduction:.1%} avoided)"
    )
    print(f"speedup {speedup:.2f}x, physical read reduction {read_reduction:.1%}")
    print(f"{'PASS' if passed else 'FAIL'} -> {out}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
