"""Figure 7 — the Section 6 optimization ablations on M5, regenerated.

Paper claims asserted: both optimizations always help; the separate-files
gain grows with the node count (approaching ~1.3-1.4x, "close to 30% slower
in some cases"); block wrap helps more as nodes increase.
"""

from repro.experiments import fig7

from conftest import once

NODE_COUNTS = (4, 8, 16, 32, 64)


def test_fig7_optimizations(benchmark, harness):
    res = once(
        benchmark,
        fig7.run,
        matrix="M5",
        node_counts=NODE_COUNTS,
        scale=128,
        harness=harness,
    )
    print()
    print(fig7.format_result(res))
    sep = res.curve("separate-files")
    wrap = res.curve("block-wrap")
    assert all(r > 1.0 for r in sep.ratio)
    assert all(r > 1.0 for r in wrap.ratio)
    # Separate files: monotone growth with nodes, reaching >= 1.25.
    assert sep.ratio == sorted(sep.ratio)
    assert sep.ratio[-1] > 1.25
    # Block wrap: bigger gain at 64 nodes than at 4.
    assert wrap.ratio[-1] > wrap.ratio[0] * 0.95 and max(wrap.ratio) > 1.15
    benchmark.extra_info["separate_files_at_64"] = sep.ratio[-1]
    benchmark.extra_info["block_wrap_max"] = max(wrap.ratio)
