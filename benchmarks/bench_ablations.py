"""Ablations of the design choices DESIGN.md calls out.

1. **nb (the bound value)** — Section 5's trade-off: small nb means many
   jobs (launch overhead dominates); large nb means the master's serial LU
   dominates.  The sweep shows a sweet spot in between.
2. **Transposed-U storage** — Section 6.3's locality optimization, measured
   directly as row-major vs column-major access in the triangular product
   kernel.
3. **Inversion method job counts** — Section 4.2's reason for choosing block
   LU over Gauss-Jordan/QR.
4. **Pivoting** — block-local pivoting is essential for accuracy (and its
   cross-block limitation is demonstrated).
"""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.cluster.costmodel import ours_time
from repro.baselines import method_job_counts
from repro.experiments.report import format_table

from conftest import once


def test_ablation_nb_tradeoff(benchmark):
    """Modeled pipeline time over an nb sweep at paper scale: the chosen
    nb=3200 sits near the optimum (Section 5 tuned it so a master LU costs
    about one job launch)."""

    def sweep():
        cluster = ClusterSpec(num_nodes=64)
        return {
            nb: ours_time(102400, cluster, nb).total for nb in
            (400, 800, 1600, 3200, 6400, 12800, 25600)
        }

    times = once(benchmark, sweep)
    print()
    print(format_table(
        ["nb", "modeled hours"],
        [[nb, t / 3600] for nb, t in times.items()],
        title="Ablation — bound value nb (M4, 64 nodes)",
    ))
    best = min(times, key=times.get)
    assert 1600 <= best <= 12800  # paper's 3200 in the flat optimum region
    assert times[400] > times[best]  # too many jobs hurts
    assert times[25600] > times[best]  # serial master LU hurts


def test_ablation_transposed_u_locality(benchmark):
    """Section 6.3: multiplying against a transposed-stored U turns strided
    column walks into contiguous row walks.  Measured as the kernel-level
    speed difference between the two storage layouts."""
    rng = np.random.default_rng(0)
    n = 700
    l2 = rng.standard_normal((n, n))
    u2 = rng.standard_normal((n, n))
    u2_t = np.ascontiguousarray(u2.T)

    def strided():  # U stored row-major, accessed by columns
        return sum(float(l2[i] @ u2[:, i]) for i in range(n))

    def contiguous():  # U stored transposed: column i is a contiguous row
        return sum(float(l2[i] @ u2_t[i]) for i in range(n))

    import timeit

    t_strided = min(timeit.repeat(strided, number=3, repeat=3))
    t_contig = min(timeit.repeat(contiguous, number=3, repeat=3))
    once(benchmark, contiguous)
    speedup = t_strided / t_contig
    print(f"\nAblation — transposed-U locality: {speedup:.2f}x kernel speedup")
    benchmark.extra_info["speedup"] = speedup
    assert np.isclose(strided(), contiguous())
    assert speedup > 1.2  # the effect the paper reports as 2-3x end-to-end


def test_ablation_method_job_counts(benchmark):
    """Section 4.2: block LU needs ~n/nb jobs; Gauss-Jordan and QR need n."""
    counts = once(benchmark, method_job_counts, 100_000, 3200)
    print()
    print(format_table(
        ["method", "MapReduce jobs"],
        sorted(counts.items(), key=lambda kv: kv[1]),
        title="Ablation — inversion method vs required jobs (n=1e5, nb=3200)",
    ))
    assert counts["block-lu"] == 33
    assert counts["gauss-jordan"] == counts["qr"] == 100_000


def test_ablation_pivoting_accuracy(benchmark):
    """Pivoting inside diagonal blocks is what keeps the pipeline accurate;
    and the documented limitation: a matrix needing cross-block pivots
    defeats the block-local scheme."""
    from repro import InversionConfig, invert
    from repro.linalg import SingularMatrixError
    from repro.mapreduce import JobFailedError
    from repro.workloads import needs_cross_block_pivot, random_dense

    rng_a = random_dense(64, seed=3) + 0.1 * np.eye(64)
    rng_a[0, 0] = 1e-13  # force a pivot decision in the first block

    res = once(benchmark, invert, rng_a, InversionConfig(nb=16, m0=4))
    assert res.residual(rng_a) < 1e-6

    adversarial = needs_cross_block_pivot(64)
    assert np.linalg.matrix_rank(adversarial) == 64  # invertible...
    with pytest.raises((SingularMatrixError, JobFailedError)):
        # ...but the leading block is singular, so block-local pivoting fails
        # (the paper's scheme shares this limitation; random matrices are
        # safe with overwhelming probability).
        invert(adversarial, InversionConfig(nb=16, m0=4))
