"""Figure 6 — strong scalability of the pipeline, regenerated.

Asserts the paper's three qualitative findings: running time falls with the
node count, the curve deviates from ideal at high node counts (job-launch
overhead), and larger matrices scale better.
"""

from repro.experiments import fig6

from conftest import once

NODE_COUNTS = (2, 4, 8, 16, 32, 64)


def test_fig6_strong_scaling(benchmark, harness):
    res = once(
        benchmark,
        fig6.run,
        matrices=("M1", "M2", "M3"),
        node_counts=NODE_COUNTS,
        scale=128,
        harness=harness,
    )
    print()
    print(fig6.format_result(res))
    for curve in res.curves:
        # Monotone speedup.
        assert curve.seconds == sorted(curve.seconds, reverse=True)
        # Real but sub-ideal speedup at the largest cluster.
        speedup = curve.seconds[0] / curve.seconds[-1]
        ideal = NODE_COUNTS[-1] / NODE_COUNTS[0]
        assert 2.0 < speedup < ideal
        benchmark.extra_info[f"{curve.matrix}_speedup_2to64"] = speedup
    # Larger matrices scale better (Figure 6's discussion).
    eff = {c.matrix: c.efficiency(len(NODE_COUNTS) - 1) for c in res.curves}
    assert eff["M3"] > eff["M1"]
