"""Section 7.5 — the ScaLAPACK head-to-head on M4, regenerated.

Paper findings asserted: the pipeline beats ScaLAPACK on both clusters at
paper scale; at working scale both systems compute the same inverse and
ScaLAPACK's relative network appetite is visible in measured traffic.
"""

from repro.experiments import sec75

from conftest import once


def test_sec75_scalapack_headtohead(benchmark, harness):
    res = once(benchmark, sec75.run, scale=128, m0=8, harness=harness)
    print()
    print(sec75.format_result(res))
    assert res.ours_wins_at_scale
    # Bands around the paper's anchors.
    assert 3 < res.ours_hours_large < 10  # paper ~5 h
    assert 10 < res.ours_hours_medium < 30  # paper ~15 h
    assert 6 < res.scala_hours_large < 20  # paper ~8 h
    assert res.scala_hours_medium > 20  # paper > 48 h
    # Same answer at working scale.
    assert res.executed_agreement < 1e-8
    benchmark.extra_info["ratio_large"] = res.scala_hours_large / res.ours_hours_large
    benchmark.extra_info["ratio_medium"] = (
        res.scala_hours_medium / res.ours_hours_medium
    )
