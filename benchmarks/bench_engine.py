"""MapReduce engine micro-benchmarks: job dispatch, shuffle, DFS throughput."""

import numpy as np
import pytest

from repro.dfs import DFS, formats
from repro.mapreduce import (
    FnMapper,
    InputSplit,
    JobConf,
    MapReduceRuntime,
    Reducer,
    RuntimeConfig,
    splits_for_workers,
)


class CountReducer(Reducer):
    def reduce(self, ctx, key, values):
        ctx.emit(key, sum(1 for _ in values))


def test_engine_job_dispatch_overhead(benchmark):
    """Cost of running a near-empty job through the full engine."""
    rt = MapReduceRuntime()
    conf = JobConf(
        name="noop",
        mapper_factory=lambda: FnMapper(lambda ctx, split: ctx.emit(split.payload, 1)),
        reducer_factory=CountReducer,
        splits=splits_for_workers(4),
        num_reduce_tasks=4,
    )
    result = benchmark(rt.run_job, conf)
    assert result.succeeded


def test_engine_shuffle_throughput(benchmark):
    """10k emitted pairs through partition + sort + group."""
    rt = MapReduceRuntime()

    def emit_many(ctx, split):
        for i in range(2500):
            ctx.emit(i % 100, i)

    conf = JobConf(
        name="shuffle-heavy",
        mapper_factory=lambda: FnMapper(emit_many),
        reducer_factory=CountReducer,
        splits=splits_for_workers(4),
        num_reduce_tasks=8,
    )
    result = benchmark(rt.run_job, conf)
    total = sum(v for pairs in result.reduce_outputs.values() for _, v in pairs)
    assert total == 10_000


def test_dfs_matrix_write_read(benchmark):
    """Round-trip a 2 MB matrix through the replicated block store."""
    dfs = DFS(block_size=1 << 18)
    m = np.random.default_rng(0).standard_normal((512, 512))

    def roundtrip():
        formats.write_matrix(dfs, "/bench/m", m)
        return formats.read_matrix(dfs, "/bench/m")

    out = benchmark(roundtrip)
    assert np.array_equal(out, m)


def test_threaded_vs_serial_pipeline(benchmark):
    """The threaded executor end-to-end (NumPy releases the GIL in BLAS)."""
    from repro import InversionConfig, invert
    from repro.workloads import random_dense

    a = random_dense(192, seed=5) + 0.1 * np.eye(192)
    rt = MapReduceRuntime(config=RuntimeConfig(num_workers=4, executor="threads"))

    def run():
        return invert(a, InversionConfig(nb=48, m0=4), runtime=rt)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rt.shutdown()
    assert res.residual(a) < 1e-8


def test_engine_secondary_sort(benchmark):
    """Secondary sort through the full engine: per-user time-ordered events."""
    from repro.mapreduce import InputSplit, Mapper, Reducer

    events = [(f"user{i % 20}", 1000 - i, i) for i in range(2000)]

    class EventMapper(Mapper):
        def map(self, ctx, split):
            for user, ts, payload in split.payload:
                ctx.emit((user, ts), payload)

    class StreamReducer(Reducer):
        def reduce(self, ctx, key, values):
            ctx.emit(key[0], len(list(values)))

    rt = MapReduceRuntime()
    conf = JobConf(
        name="secondary-sort",
        mapper_factory=EventMapper,
        reducer_factory=StreamReducer,
        splits=[InputSplit(index=i, payload=events[i::4]) for i in range(4)],
        num_reduce_tasks=4,
        partitioner=lambda key, n: hash(key[0]) % n,
        grouping_fn=lambda key: key[0],
    )
    result = benchmark(rt.run_job, conf)
    total = sum(v for pairs in result.reduce_outputs.values() for _, v in pairs)
    assert total == 2000


def test_engine_text_split_scaling(benchmark):
    """Block-aligned splits let many mappers share one big text file."""
    from repro.mapreduce.job import text_input_splits
    from repro.mapreduce import Mapper, Reducer

    dfs = DFS(block_size=1 << 16)
    dfs.write_text("/big.txt", "\n".join(f"w{i % 50}" for i in range(20_000)))

    class WC(Mapper):
        def map_record(self, ctx, key, value):
            ctx.emit(value, 1)

    class Sum(Reducer):
        def reduce(self, ctx, key, values):
            ctx.emit(key, sum(values))

    rt = MapReduceRuntime(dfs=dfs)
    splits = text_input_splits(dfs, "/big.txt", target_split_bytes=16_000)
    assert len(splits) > 4
    conf = JobConf(
        name="split-wordcount",
        mapper_factory=WC,
        reducer_factory=Sum,
        splits=splits,
        num_reduce_tasks=4,
    )
    result = benchmark(rt.run_job, conf)
    total = sum(v for pairs in result.reduce_outputs.values() for _, v in pairs)
    assert total == 20_000
