"""Table 1 — LU decomposition cost model, regenerated.

Prints the model/measured/ScaLAPACK rows and asserts the implementation's
I/O stays within the documented envelope of the closed forms.
"""

import pytest

from repro.experiments import table1

from conftest import once


def test_table1_lu_cost(benchmark):
    res = once(benchmark, table1.run, n=256, nb=32, m0=8)
    print()
    print(table1.format_result(res))
    benchmark.extra_info["read_ratio"] = res.read_ratio
    benchmark.extra_info["write_ratio"] = res.write_ratio
    # Reads track the (l+3) n^2 model closely; writes pay the dense-square
    # factor-file representation (<= ~2.5x the packed-triangle count).
    assert 0.5 < res.read_ratio < 2.0
    assert 1.0 < res.write_ratio < 3.0
    # Arithmetic matches the n^3/3 count exactly (up to leaf rounding).
    assert res.measured_ours.mults == pytest.approx(res.model_ours.mults, rel=0.05)


@pytest.mark.parametrize("m0", [4, 16])
def test_table1_l_grows_with_cluster(benchmark, m0):
    """The read term (l+3) n^2 grows with m0 = f1 x f2 as the table states."""
    res = once(benchmark, table1.run, n=128, nb=16, m0=m0)
    benchmark.extra_info["model_read"] = res.model_ours.read_elements
    from repro.cluster import table1_l

    assert res.model_ours.read_elements == (table1_l(m0) + 3) * 128 * 128
