"""Host-capability probe shared by the benchmark scripts.

``os.cpu_count()`` ignores affinity masks and cgroup pinning: a CI runner
may expose 64 cores while confining the job to one.  Benchmarks that gate
on parallel speedup must gate on the *schedulable* count, and record where
the number came from so a skipped gate is explainable from the JSON alone.
"""

from __future__ import annotations

import os


def schedulable_cpus() -> tuple[int, str]:
    """Cores this process may actually run on, and where the number came
    from — ``os.cpu_count()`` ignores affinity masks and cgroup pinning."""
    process_cpu_count = getattr(os, "process_cpu_count", None)  # 3.13+
    if process_cpu_count is not None:
        count = process_cpu_count()
        if count:
            return count, "os.process_cpu_count()"
    if hasattr(os, "sched_getaffinity"):
        count = len(os.sched_getaffinity(0))
        if count:
            return count, "os.sched_getaffinity(0)"
    return os.cpu_count() or 1, "os.cpu_count()"


def host_report() -> dict:
    """The ``host`` block every benchmark report embeds."""
    count, source = schedulable_cpus()
    return {
        "cpu_count": os.cpu_count() or 1,
        "process_cpu_count": count,
        "process_cpu_count_source": source,
    }
