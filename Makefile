# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench experiments examples coverage clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.run_all

experiments-fast:
	$(PYTHON) -m repro.experiments.run_all --fast

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done; echo "all examples ran"

clean:
	rm -rf src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
