# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test test-processes lint chaos chaos-processes trace-demo check bench bench-cache bench-executor bench-scheduler experiments examples coverage clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

# Process-pool backend subset: backend conformance over every registered
# executor plus the shared-memory DFS / crash-recovery battery.
test-processes:
	$(PYTHON) -m pytest tests/test_backends_conformance.py tests/test_process_backend.py

# Static analysis. The repro linter (plan dataflow + block DAG/barrier
# slack + mapper/reducer purity + lock discipline + process safety) needs
# only the runtime deps; ruff and mypy run when installed (dev extras) and
# are skipped with a notice otherwise, so `make lint` works everywhere.
# The self-check seeds defects through every analyzer; lint_summary.py then
# sweeps the real code with all of them and prints one findings table per
# rule family; check_threaded_modules.py fails the build if a rename
# silently dropped a module from the CN sweep.
lint:
	PYTHONPATH=src $(PYTHON) -m repro lint --self-check
	PYTHONPATH=src $(PYTHON) scripts/check_threaded_modules.py
	PYTHONPATH=src $(PYTHON) -m repro lint --dataflow --report
	PYTHONPATH=src $(PYTHON) scripts/lint_summary.py
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; then \
		ruff check src tests examples; \
	else \
		echo "ruff not installed; skipping (pip install -e '.[dev]')"; \
	fi
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy src/repro; \
	else \
		echo "mypy not installed; skipping (pip install -e '.[dev]')"; \
	fi

# Fault-injection campaign: full inversions under seeded fault schedules
# (datanode death, replica corruption, hung tasks, driver crash, torn
# writes) with end-to-end invariants, then the exhaustive crash-point sweep
# (kill the driver at every DFS write/publish of a small run, resume,
# audit) and the fsck self-check (every debris category detected and
# rolled back).  The battery and sweep then repeat under the dataflow
# scheduler — every invariant must hold with the barriers deleted.
# Exit status 0 iff everything is green.
chaos:
	PYTHONPATH=src $(PYTHON) -m repro chaos --seed 0
	PYTHONPATH=src $(PYTHON) -m repro chaos --sweep --seed 0
	PYTHONPATH=src $(PYTHON) -m repro chaos --seed 0 --scheduler dataflow
	PYTHONPATH=src $(PYTHON) -m repro chaos --sweep --seed 0 --scheduler dataflow
	PYTHONPATH=src $(PYTHON) -m repro dfs fsck --self-check

# Same schedule battery, but task attempts run in forked worker processes
# over shared-memory DFS segments (the --sweep crash-point enumeration
# stays serial by design).
chaos-processes:
	PYTHONPATH=src $(PYTHON) -m repro chaos --seed 0 --executor processes

# Traced inversion at the acceptance configuration: renders the span tree,
# per-job timeline, and critical path, then audits span totals against the
# engine's Counters, the DFS ledger, and the paper's Table-1 cost model.
# Exit status 0 iff every reconciliation check passes.
trace-demo:
	PYTHONPATH=src $(PYTHON) -m repro trace --n 256 --nb 25

check: lint test chaos trace-demo

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Decoded-block cache benchmark: cache on vs off end-to-end inversion
# (wall clock, exact copied-byte ledger, tracemalloc allocation profile).
# Writes BENCH_cache.json; exit status 0 iff the acceptance criteria hold.
bench-cache:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_cache.py

# Execution-backend benchmark: serial vs threads vs processes end-to-end
# inversion.  Writes BENCH_executor.json; the processes-speedup gate only
# applies on multi-core hosts (single-core runs record the IPC overhead).
bench-executor:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_executor.py

# Scheduler benchmark: barrier vs dataflow inter-job scheduling (sync
# points, critical path, wall clock under threads and processes).  Writes
# BENCH_scheduler.json; the wall-clock gate only applies on multi-core
# hosts.
bench-scheduler:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_scheduler.py

experiments:
	$(PYTHON) -m repro.experiments.run_all

experiments-fast:
	$(PYTHON) -m repro.experiments.run_all --fast

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done; echo "all examples ran"

clean:
	rm -rf src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
