"""Two-phase output commit: scopes, manifests, ledger conservation, resume.

Covers the protocol pieces in isolation (:class:`CommitScope`,
:class:`CommitLog`) and end to end: a full inversion with the protocol on
leaves a conserved staging ledger and a manifest per step, and a driver
crash between staging a leaf's L and U factors resumes to the right
inverse with nothing torn left behind.
"""

import numpy as np
import pytest

from repro import InversionConfig
from repro.chaos import DriverCrashError
from repro.dfs import (
    DFS,
    STAGING_ROOT,
    CommitLog,
    CommitScope,
    fsck,
    manifest_path,
    staging_path,
)
from repro.dfs.commit import COMMIT_DIR
from repro.inversion import MatrixInverter
from repro.mapreduce import MapReduceRuntime, RuntimeConfig

from conftest import random_invertible


def small_cluster(seed: int = 0) -> tuple[DFS, MapReduceRuntime]:
    dfs = DFS(num_datanodes=3, replication=2, block_size=1 << 16, seed=seed)
    runtime = MapReduceRuntime(
        dfs=dfs, config=RuntimeConfig(num_workers=2, executor="serial")
    )
    return dfs, runtime


def crash_once_at(dfs: DFS, substring: str) -> None:
    """Arm a one-shot fault hook: crash the driver at the first DFS create
    whose path contains ``substring``.  The hook removes itself before
    raising, so the resumed run's identical write goes through."""

    def hook(op: str, path: str) -> None:
        if op == "create" and substring in path:
            dfs.fault_hooks.remove(hook)
            raise DriverCrashError(f"injected crash at {op} {path}")

    dfs.fault_hooks.append(hook)


class TestCommitScope:
    def test_staged_files_invisible_until_publish(self, dfs):
        scope = CommitScope(dfs, "attempt-1")
        scope.stage_bytes("/Root/out", b"payload")
        assert not dfs.exists("/Root/out")
        staged = staging_path("attempt-1", "/Root/out")
        assert dfs.namenode.exists(staged, include_pending=True)
        published = scope.publish()
        assert published == ["/Root/out"]
        assert dfs.read_bytes("/Root/out") == b"payload"
        # Staging directory is gone — nothing for fsck to roll back.
        assert not dfs.namenode.exists(staging_path("attempt-1", "/"), include_pending=True)

    def test_publish_is_all_or_nothing_across_files(self, dfs):
        scope = CommitScope(dfs, "t")
        scope.stage_bytes("/Root/a", b"a")
        scope.stage_bytes("/Root/b", b"b")
        scope.publish()
        assert dfs.exists("/Root/a") and dfs.exists("/Root/b")

    def test_abort_leaves_final_namespace_untouched(self, dfs):
        scope = CommitScope(dfs, "loser")
        scope.stage_bytes("/Root/out", b"wrong answer")
        scope.abort()
        assert not dfs.exists("/Root/out")
        assert not dfs.namenode.exists(STAGING_ROOT, include_pending=True) or not (
            dfs.namenode.walk_files(STAGING_ROOT, include_pending=True)
        )

    def test_publish_replaces_earlier_attempts_output(self, dfs):
        first = CommitScope(dfs, "attempt-1")
        first.stage_bytes("/Root/out", b"v1")
        first.publish()
        second = CommitScope(dfs, "attempt-2")
        second.stage_bytes("/Root/out", b"v2")
        second.publish()
        assert dfs.read_bytes("/Root/out") == b"v2"


class TestCommitLog:
    def test_record_round_trip(self, dfs):
        log = CommitLog(dfs, "/Root")
        assert not log.committed("job:lu:/Root")
        log.record("job:lu:/Root", ["/Root/b", "/Root/a"])
        assert log.committed("job:lu:/Root")
        assert log.published("job:lu:/Root") == ["/Root/a", "/Root/b"]

    def test_manifest_path_quotes_step_names(self):
        path = manifest_path("/Root", "job:lu:/Root/A1")
        assert path.startswith(f"/Root/{COMMIT_DIR}/")
        # Slashes and percent signs cannot leak namespace structure.
        assert "/" not in path.rsplit("/", 1)[1].replace("%2F", "")
        assert manifest_path("/R", "a%b") == f"/R/{COMMIT_DIR}/a%25b.json"

    def test_manifest_write_goes_through_stage_publish(self, dfs):
        log = CommitLog(dfs, "/Root")
        log.record("phase:write-input", ["/Root/in"])
        # The manifest itself is sealed and its staging dir discarded.
        assert dfs.namenode.get_file(log.path("phase:write-input")).sealed
        assert dfs.namenode.pending_files("/") == []

    def test_clear_drops_all_manifests(self, dfs):
        log = CommitLog(dfs, "/Root")
        log.record("job:a", [])
        log.record("job:b", [])
        log.clear()
        assert not log.committed("job:a")
        assert not dfs.exists(f"/Root/{COMMIT_DIR}")


class TestEndToEndProtocol:
    def test_inversion_with_commit_leaves_conserved_ledger(self, rng):
        dfs, runtime = small_cluster()
        config = InversionConfig(nb=2, m0=2)
        assert config.output_commit  # protocol is on by default
        a = random_invertible(rng, 8)
        with MatrixInverter(config=config, runtime=runtime) as inverter:
            result = inverter.invert(a)
        assert result.residual(a) < 1e-8
        stats = dfs.stats
        assert stats.bytes_staged > 0
        # Conservation at quiescence: every staged byte was either published
        # or discarded — nothing leaks out of the ledger.
        assert stats.bytes_staged == stats.bytes_published + stats.bytes_discarded
        # No staging debris, no unsealed files, manifests all valid.
        report = fsck(dfs, root=config.root, repair=False)
        assert report.clean, report.format()
        runtime.shutdown()

    def test_every_step_has_a_manifest(self, rng):
        dfs, runtime = small_cluster()
        config = InversionConfig(nb=2, m0=2)
        a = random_invertible(rng, 8)
        with MatrixInverter(config=config, runtime=runtime) as inverter:
            inverter.invert(a)
        log = CommitLog(dfs, config.root)
        for job in ("partition", "lu:/Root", "lu:/Root/A1", "lu:/Root/OUT", "invert-final"):
            assert log.committed(f"job:{job}"), job
        assert log.committed("phase:write-input")
        runtime.shutdown()

    def test_job_results_report_published_paths(self, rng):
        dfs, runtime = small_cluster()
        config = InversionConfig(nb=2, m0=2)
        a = random_invertible(rng, 8)
        with MatrixInverter(config=config, runtime=runtime) as inverter:
            inverter.invert(a)
        assert runtime.history
        for job_result in runtime.history:
            for path in job_result.published_paths:
                assert dfs.exists(path), path
                assert not path.startswith(STAGING_ROOT)
        runtime.shutdown()

    def test_commit_off_stages_nothing(self, rng):
        dfs, runtime = small_cluster()
        config = InversionConfig(nb=2, m0=2, output_commit=False)
        a = random_invertible(rng, 8)
        with MatrixInverter(config=config, runtime=runtime) as inverter:
            result = inverter.invert(a)
        assert result.residual(a) < 1e-8
        assert dfs.stats.bytes_staged == 0
        assert not dfs.exists(f"{config.root}/{COMMIT_DIR}")
        runtime.shutdown()


class TestCrashResume:
    def test_crash_between_l_and_u_factors_resumes_clean(self, rng):
        """Satellite regression: kill the driver after a leaf's L factor is
        staged but before its U factor, then resume.  Without manifests a
        resume probing for file existence could mistake the torn leaf for
        done; with the protocol the whole step re-runs."""
        dfs, runtime = small_cluster()
        config = InversionConfig(nb=2, m0=2)
        a = random_invertible(rng, 8)
        crash_once_at(dfs, "/OUT/ut.bin")  # L staged first, U next
        inverter = MatrixInverter(config=config, runtime=runtime)
        with pytest.raises(DriverCrashError):
            inverter.invert(a)
        # The crash left a staged L with no U and no manifest for the step.
        torn = dfs.namenode.walk_files(STAGING_ROOT, include_pending=True)
        assert any(path.endswith("/OUT/l.bin") for path in torn)
        result = inverter.invert(a, resume=True)
        assert result.residual(a) < 1e-8
        # Resume's fsck rolled the torn attempt back; quiescent state is clean.
        if dfs.namenode.exists(STAGING_ROOT, include_pending=True):
            assert dfs.namenode.walk_files(STAGING_ROOT, include_pending=True) == []
        assert dfs.namenode.pending_files("/") == []
        assert dfs.stats.bytes_staged == (
            dfs.stats.bytes_published + dfs.stats.bytes_discarded
        )
        runtime.shutdown()

    def test_crash_at_publish_resumes_clean(self, rng):
        dfs, runtime = small_cluster()
        config = InversionConfig(nb=2, m0=2)
        a = random_invertible(rng, 8)

        remaining = [2]

        def hook(op: str, path: str) -> None:
            if op != "publish":
                return
            if remaining[0] > 0:
                remaining[0] -= 1
                return
            dfs.fault_hooks.remove(hook)
            raise DriverCrashError(f"injected crash at publish {path}")

        dfs.fault_hooks.append(hook)
        inverter = MatrixInverter(config=config, runtime=runtime)
        with pytest.raises(DriverCrashError):
            inverter.invert(a)
        result = inverter.invert(a, resume=True)
        assert result.residual(a) < 1e-8
        assert fsck(dfs, root=config.root, repair=False).clean
        runtime.shutdown()
