"""Hadoop Streaming interface: external-process mappers and reducers."""

import sys

import pytest

from repro.mapreduce import JobFailedError, MapReduceRuntime
from repro.mapreduce.streaming import (
    StreamingProcessError,
    parse_kv_line,
    run_streaming_process,
    streaming_job,
)

PY = sys.executable

IDENTITY_MAPPER = [PY, "-c", "import sys\nfor l in sys.stdin: print(l.strip()+'\\t1')"]
SUM_REDUCER = [
    PY,
    "-c",
    (
        "import sys, collections\n"
        "c = collections.Counter()\n"
        "for l in sys.stdin:\n"
        "    k, v = l.rstrip('\\n').split('\\t')\n"
        "    c[k] += int(v)\n"
        "for k in sorted(c): print(f'{k}\\t{c[k]}')"
    ),
]


def outputs(result):
    return {k: v for pairs in result.reduce_outputs.values() for k, v in pairs}


class TestProtocol:
    def test_parse_kv_line(self):
        assert parse_kv_line("key\tvalue") == ("key", "value")

    def test_parse_line_without_tab(self):
        assert parse_kv_line("lonely") == ("lonely", "")

    def test_parse_keeps_extra_tabs_in_value(self):
        assert parse_kv_line("k\ta\tb") == ("k", "a\tb")

    def test_run_process_cat(self):
        assert run_streaming_process(["/bin/cat"], ["x", "y"]) == ["x", "y"]

    def test_run_process_failure_raises(self):
        with pytest.raises(StreamingProcessError, match="exited 3"):
            run_streaming_process([PY, "-c", "import sys; sys.exit(3)"], ["x"])


class TestStreamingJobs:
    def test_wordcount(self, dfs):
        dfs.write_text("/in/p0", "b\na\nb")
        dfs.write_text("/in/p1", "a\nc")
        rt = MapReduceRuntime(dfs=dfs)
        result = rt.run_job(
            streaming_job("wc", ["/in/p0", "/in/p1"], IDENTITY_MAPPER, SUM_REDUCER)
        )
        assert outputs(result) == {"a": "2", "b": "2", "c": "1"}

    def test_cat_identity_mapper(self, dfs):
        """The classic `-mapper /bin/cat` smoke test."""
        dfs.write_text("/in/p0", "k1\tv1\nk2\tv2")
        rt = MapReduceRuntime(dfs=dfs)
        result = rt.run_job(
            streaming_job("cat", ["/in/p0"], ["/bin/cat"], ["/bin/cat"])
        )
        assert outputs(result) == {"k1": "v1", "k2": "v2"}

    def test_map_only_streaming(self, dfs):
        dfs.write_text("/in/p0", "hello\nworld")
        rt = MapReduceRuntime(dfs=dfs)
        result = rt.run_job(streaming_job("m", ["/in/p0"], IDENTITY_MAPPER))
        assert result.reduce_outputs == {}

    def test_multiple_reducers(self, dfs):
        dfs.write_text("/in/p0", "\n".join(f"w{i % 7}" for i in range(50)))
        rt = MapReduceRuntime(dfs=dfs)
        result = rt.run_job(
            streaming_job(
                "wc", ["/in/p0"], IDENTITY_MAPPER, SUM_REDUCER, num_reduce_tasks=3
            )
        )
        got = outputs(result)
        assert sum(int(v) for v in got.values()) == 50
        assert len(got) == 7

    def test_crashing_mapper_fails_job_after_retries(self, dfs):
        dfs.write_text("/in/p0", "data")
        rt = MapReduceRuntime(dfs=dfs)
        crash = [PY, "-c", "import sys; sys.exit(1)"]
        with pytest.raises(JobFailedError):
            rt.run_job(
                streaming_job("crash", ["/in/p0"], crash, max_attempts=2)
            )

    def test_empty_input_paths_rejected(self):
        with pytest.raises(ValueError):
            streaming_job("x", [], IDENTITY_MAPPER)

    def test_mapper_sees_whole_lines(self, dfs):
        """Records with spaces travel intact through the pipe."""
        dfs.write_text("/in/p0", "a b c\nd e")
        rt = MapReduceRuntime(dfs=dfs)
        grab_first_word = [
            PY, "-c",
            "import sys\nfor l in sys.stdin: print(l.split()[0]+'\\t'+l.strip())",
        ]
        result = rt.run_job(
            streaming_job("g", ["/in/p0"], grab_first_word, ["/bin/cat"])
        )
        assert outputs(result) == {"a": "a b c", "d": "d e"}
