"""Block-dataflow analyzer: the DAG proves barrier slack, DF rules catch
seeded hazards, and a recorded run replays cleanly against the static DAG.

The acceptance contract (ISSUE 9): at ``n=8 nb=2 m0=2`` the two depth-1 LU
subtrees are barrier-independent, the static critical path (point-to-point
edges) is strictly shorter than the barrier schedule (stages + global
barriers), zero DF hazards fire, and the telemetry replay cross-check
passes on a recorded trace.
"""

from __future__ import annotations

import pytest

from repro import InversionConfig
from repro.analysis import (
    Severity,
    build_block_dag,
    build_model,
    lint_dataflow,
    render_barrier_slack,
    render_text,
    replay_spans,
    sibling_reports,
)
from repro.analysis.cli import main as lint_main

ACCEPTANCE = dict(n=8, nb=2, m0=2)


def acceptance_model():
    return build_model(8, InversionConfig(nb=2, m0=2))


def rule_ids(findings):
    return {f.rule for f in findings}


# -- DAG structure -----------------------------------------------------------------


def test_block_dag_structure_at_acceptance_config():
    model = acceptance_model()
    dag = build_block_dag(model)
    assert dag.stages == [s.name for s in model.steps]
    # Every write has a producer; nothing read comes from outside the plan.
    assert set(dag.producers) == {p for s in model.steps for p in s.writes}
    assert dag.external_reads == set()
    # Master phases are single-task stages; job phases carry m0 slots.
    assert dag.task_counts["write-input"] == 1
    assert dag.task_counts["lu:/Root[map]"] == model.config.m0


def test_block_dag_is_exposed_on_the_model():
    model = acceptance_model()
    dag = model.block_dag()
    reference = build_block_dag(model)
    assert dag.stages == reference.stages
    assert dag.producers == reference.producers
    assert dag.deps == reference.deps


def test_edges_aggregate_paths_per_step_pair():
    dag = acceptance_model().block_dag()
    edges = dag.edges()
    assert all(edge.src != edge.dst for edge in edges)
    for edge in edges:
        assert dag.stage_of(edge.src) < dag.stage_of(edge.dst)
        assert set(edge.paths) == dag.edge_paths(edge.src, edge.dst)
    # Aggregation: one edge record per (src, dst) pair.
    pairs = [(e.src, e.dst) for e in edges]
    assert len(pairs) == len(set(pairs))


def test_pipeline_is_a_dependency_chain():
    """The in-order schedule IS the data-dependency order: with barriers
    replaced by block edges, no stage can start any earlier."""
    dag = acceptance_model().block_dag()
    levels = dag.asap()
    assert levels == {name: i for i, name in enumerate(dag.stages)}
    chain = dag.critical_path()
    assert len(chain) == len(dag.stages)
    assert chain[0] == "write-input" and chain[-1] == "collect-output"


def test_critical_path_strictly_shorter_than_barrier_schedule():
    """14 point-to-point edges vs 15 stages + 14 global barriers."""
    dag = acceptance_model().block_dag()
    stages = len(dag.stages)
    cp_edges = len(dag.critical_path()) - 1
    sync_points = stages + (stages - 1)
    assert cp_edges == stages - 1 == 14
    assert cp_edges < sync_points == 29


def test_max_width_is_m0_at_acceptance_config():
    dag = acceptance_model().block_dag()
    assert dag.max_width() == 2


def test_find_cycle_none_on_clean_plan():
    assert acceptance_model().block_dag().find_cycle() is None


# -- sibling-subtree independence (DF001) ------------------------------------------


def test_sibling_subtrees_exchange_no_direct_blocks():
    model = acceptance_model()
    reports = sibling_reports(model)
    # d=2 full tree: 3 internal nodes (root + two depth-1 children).
    assert len(reports) == 3
    assert sorted(r.depth for r in reports) == [1, 2, 2]
    for r in reports:
        assert r.independent, r.cross_edges
        assert r.child1_steps and r.child2_steps
    root = next(r for r in reports if r.parent_dir == "/Root")
    assert root.child1_dir == "/Root/A1"
    assert root.child2_dir == "/Root/OUT"
    assert root.parent_job == "lu:/Root"


def test_structural_findings_are_info_only():
    model = acceptance_model()
    df = lint_dataflow(model, structural=True)
    assert rule_ids(df) == {"DF001", "DF005"}
    assert all(f.severity == Severity.INFO for f in df)
    assert sum(1 for f in df if f.rule == "DF001") == 3
    summary = next(f for f in df if f.rule == "DF005")
    assert "14 point-to-point edges" in summary.message
    assert "29 sync points" in summary.message


def test_seeded_cross_subtree_edge_breaks_independence():
    model = acceptance_model()
    cross = sorted(model.find_step("master-lu:/Root/A1/A1").writes)[0]
    model.find_step("master-lu:/Root/OUT/A1").reads.add(cross)
    reports = {r.parent_dir: r for r in sibling_reports(model)}
    assert not reports["/Root"].independent
    locations = {
        f.location for f in lint_dataflow(model, structural=True)
        if f.rule == "DF001"
    }
    assert "/Root" not in locations


# -- defect rules on clean plans ---------------------------------------------------


@pytest.mark.parametrize(
    "n, config",
    [
        (8, InversionConfig(nb=2, m0=2)),
        (256, InversionConfig(nb=64)),
        (256, InversionConfig(nb=64, separate_files=False)),
        (256, InversionConfig(nb=64, block_wrap=False)),
        (256, InversionConfig(nb=64, output_commit=False)),
        (48, InversionConfig(nb=64)),      # single-leaf plan
        (129, InversionConfig(nb=32)),     # non-full tree
    ],
)
def test_clean_plans_have_zero_df_hazards(n, config):
    findings = lint_dataflow(build_model(n, config))
    assert findings == [], render_text(findings)


# -- seeded defects ----------------------------------------------------------------


def test_read_of_later_stage_write_is_df002():
    model = acceptance_model()
    model.find_step("lu:/Root[map]").reads.add(model.layout.final_path(0))
    findings = [f for f in lint_dataflow(model) if f.rule == "DF002"]
    assert findings and findings[0].severity == Severity.ERROR
    assert "invert-final[reduce]" in findings[0].message


def test_dead_block_is_df003():
    model = acceptance_model()
    model.find_step("partition[map]").writes.add("/Root/dead.bin")
    findings = [f for f in lint_dataflow(model) if f.rule == "DF003"]
    assert len(findings) == 1
    assert "/Root/dead.bin" in findings[0].message
    assert findings[0].severity == Severity.WARNING


def test_commit_manifests_are_exempt_from_df003():
    """Manifests are write-only by design (read only on crash-resume)."""
    model = acceptance_model()
    assert model.manifest_writes  # output_commit defaults on
    dag = model.block_dag()
    assert all(not dag.consumers.get(p) for p in model.manifest_writes)
    assert lint_dataflow(model, dag) == []


def test_same_stage_round_trip_is_df004():
    model = acceptance_model()
    step = model.find_step("lu:/Root[map]")
    step.reads.add(sorted(step.writes)[0])
    assert "DF004" in rule_ids(lint_dataflow(model))


def test_reciprocal_reads_are_a_df006_cycle():
    model = acceptance_model()
    out_path = sorted(model.find_step("lu:/Root[reduce]").writes)[0]
    model.find_step("lu:/Root[map]").reads.add(out_path)
    findings = [f for f in lint_dataflow(model) if f.rule == "DF006"]
    assert findings and " -> " in findings[0].message
    assert model.block_dag().find_cycle() is not None


def test_map_reading_own_reduce_output_is_df007():
    model = acceptance_model()
    model.find_step("invert-final[map]").reads.add(model.layout.final_path(0))
    assert "DF007" in rule_ids(lint_dataflow(model))


# -- barrier-slack report ----------------------------------------------------------


def test_render_barrier_slack_names_the_removable_barriers():
    model = acceptance_model()
    report = render_barrier_slack(model)
    assert "15 stages + 14 global barriers = 29 sync points" in report
    assert "14 point-to-point edges" in report
    assert "max width        : 2 tasks" in report
    assert report.count("-> removable") == 3
    assert "/Root/A1 <-> /Root/OUT" in report
    assert "critical path chain:" in report
    assert "write-input -> partition[map]" in report


def test_render_barrier_slack_flags_coupled_siblings():
    model = acceptance_model()
    cross = sorted(model.find_step("master-lu:/Root/A1/A1").writes)[0]
    model.find_step("master-lu:/Root/OUT/A1").reads.add(cross)
    report = render_barrier_slack(model)
    assert "NOT removable" in report


# -- static-vs-dynamic replay (DF008) ----------------------------------------------


@pytest.fixture(scope="module")
def recorded_spans(tmp_path_factory):
    from repro.telemetry.cli import run_traced_inversion
    from repro.telemetry.exporters import read_jsonl

    jsonl = tmp_path_factory.mktemp("spans") / "spans.jsonl"
    run_traced_inversion(seed=0, jsonl=str(jsonl), **ACCEPTANCE)
    return read_jsonl(str(jsonl))


def test_recorded_trace_replays_cleanly(recorded_spans):
    model = acceptance_model()
    findings, stats = replay_spans(model, recorded_spans)
    assert findings == [], render_text(findings)
    assert stats.total_read_spans > 0
    assert stats.matched == stats.attributed > 0
    assert stats.unattributed == 0
    # Every observed edge is a (modeled step, modeled read) pair.
    reads_of = {s.name: s.reads for s in model.steps}
    for step, path in stats.observed_edges:
        assert path in reads_of[step]


def test_dropped_model_read_is_df008_on_replay(recorded_spans):
    model = acceptance_model()
    step = model.find_step("invert-final[map]")
    step.reads -= {
        model.layout.map_input_path(j) for j in range(model.config.m0)
    }
    findings, _ = replay_spans(model, recorded_spans)
    assert rule_ids(findings) == {"DF008"}
    assert all(f.severity == Severity.ERROR for f in findings)


def test_unmodeled_step_is_df008_on_replay(recorded_spans):
    model = acceptance_model()
    model.steps = [s for s in model.steps if s.name != "invert-final[map]"]
    findings, _ = replay_spans(model, recorded_spans)
    assert "DF008" in rule_ids(findings)
    assert any("no stage" in f.message for f in findings)


# -- CLI mode ----------------------------------------------------------------------


def test_cli_dataflow_report_exit_codes(capsys):
    assert lint_main(
        ["--dataflow", "--report", "--n", "8", "--nb", "2", "--m0", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "15 stages, 5 jobs" in out
    assert "-> removable" in out
    assert "DF001" in out and "DF005" in out
    # --report and --replay are refinements of --dataflow mode only.
    assert lint_main(["--report", "--n", "8", "--nb", "2"]) == 2
    assert lint_main(["--replay", "/tmp/x.jsonl", "--n", "8", "--nb", "2"]) == 2
    # Bad configurations are rejected exactly like plan mode rejects them.
    assert lint_main(["--dataflow", "--n", "0", "--nb", "2"]) == 2
    assert lint_main(["--dataflow", "--n", "8", "--nb", "2", "--m0", "3"]) == 2
    assert lint_main(
        ["--dataflow", "--replay", "/nonexistent.jsonl", "--n", "8", "--nb", "2"]
    ) == 2


def test_cli_dataflow_replay(tmp_path, capsys):
    from repro.telemetry.cli import run_traced_inversion

    jsonl = tmp_path / "spans.jsonl"
    run_traced_inversion(seed=0, jsonl=str(jsonl), **ACCEPTANCE)
    capsys.readouterr()
    assert lint_main(
        ["--dataflow", "--replay", str(jsonl),
         "--n", "8", "--nb", "2", "--m0", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "replay" in out and "matched the static DAG" in out
