"""Seeded-defect fixture: ownership violations — PS003 (module-global
mutation), PS004 (borrowed-view mutation, direct and through a helper),
PS005 (borrowed view escaping the task).  Analyzed as text only.
"""

import numpy as np

from repro.mapreduce import Mapper

RESULTS_BY_TASK = {}
_sink = []


def _normalize_rows(m, eps):
    """In-place helper: callers must own ``m``."""
    m /= np.abs(m).sum(axis=1, keepdims=True) + eps


class MutatingMapper(Mapper):
    def map(self, ctx, split):
        RESULTS_BY_TASK[split.index] = split.payload  # PS003: module global
        m = ctx.read_matrix(f"/in/part.{split.index}")
        m[0, 0] = 0.0  # PS004: slice assignment on a borrowed view
        _normalize_rows(m, 1e-9)  # PS004: helper mutates its parameter
        _sink.append(m)  # PS005: borrowed view escapes into a captured list
        self.last = m  # PS005: borrowed view stored on self
        ctx.emit(split.index, float(m.sum()))


class ReturningMapper(Mapper):
    def map(self, ctx, split):
        block = ctx.read_rows("/in/big", 0, 4)
        np.multiply(block, 2.0, out=block)  # PS004: out= targets the view
        return block  # PS005: borrowed view returned
