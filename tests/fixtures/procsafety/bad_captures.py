"""Seeded-defect fixture: task closures capturing objects that cannot cross
a process boundary — PS001 (file handle, generator), PS002 (DFS handle),
PS007 (lock).  Analyzed as text only; never imported.
"""

import threading

from repro.dfs import DFS
from repro.mapreduce import FnMapper, JobConf, splits_for_workers

dfs = DFS(num_datanodes=3)
audit_log = open("/tmp/audit.log", "a")
ticket_stream = (i * i for i in range(1000))
progress_lock = threading.Lock()


def leaky_task(ctx, split):
    with progress_lock:  # PS007: lock crosses the task boundary
        pass
    data = dfs.read_bytes("/in/part")  # PS002: captured DFS, not ctx
    audit_log.write(f"{split.index}\n")  # PS001: open file handle
    ticket = next(ticket_stream)  # PS001: generator state can't fork
    ctx.emit(split.index, (len(data), ticket))


def job() -> JobConf:
    return JobConf(
        name="bad-captures",
        mapper_factory=lambda: FnMapper(leaky_task),
        splits=splits_for_workers(2),
    )
