"""Seeded-defect fixture: PS006 (process-wide global RNG in task code) and
PS008 (shared_memory segment closed while a frombuffer view is live).
Analyzed as text only; never imported.
"""

import numpy as np
from multiprocessing import shared_memory

from repro.mapreduce import Mapper


class NoisyMapper(Mapper):
    def map(self, ctx, split):
        noise = np.random.standard_normal(8)  # PS006: global RNG
        ctx.emit(split.index, float(noise.sum()))


def read_shared_block(name: str) -> float:
    """The lifetime bug the ProcessPoolBackend transport must never ship."""
    shm = shared_memory.SharedMemory(name=name)
    view = np.frombuffer(shm.buf, dtype=np.float64)
    shm.close()
    return float(view.sum())  # PS008: view outlives its segment
