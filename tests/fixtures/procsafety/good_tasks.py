"""Clean fixture: context-disciplined task code the process-safety analyzer
must accept without findings.

Every hazard class has its sanctioned counterpart here: storage access goes
through the TaskContext, randomness comes from a private generator seeded by
the split, mutable outputs are fresh arrays or explicit ``writable=True``
private copies, and factories capture only picklable configuration.
"""

import numpy as np

from repro.dfs import formats
from repro.mapreduce import FnMapper, JobConf, Mapper, Reducer, splits_for_workers

CHUNKS = 4  # plain picklable configuration; fine to capture


class BlockMapper(Mapper):
    """Reads through the context, writes fresh arrays."""

    def __init__(self, root: str) -> None:
        self.root = root  # a string ships fine

    def map(self, ctx, split):
        j = split.payload
        rng = np.random.default_rng(1000 + j)  # private, split-seeded RNG
        m = ctx.read_matrix(f"{self.root}/in/part.{j}")
        out = m @ m.T + rng.standard_normal(m.shape)  # new array, not a view
        ctx.write_matrix(f"{self.root}/out/part.{j}", out)
        ctx.emit(j, float(np.trace(out)))


class SumReducer(Reducer):
    def reduce(self, ctx, key, values):
        ctx.emit(key, sum(values))


def scale_task(ctx, split):
    """A writable=True read is a private copy: in-place mutation is fine."""
    m = formats.read_rows(ctx.dfs, "/in/big", 0, 8, writable=True)
    m *= 2.0
    local = ctx.read_matrix("/in/small").copy()  # explicit copy, also fine
    local += 1.0
    ctx.write_matrix(f"/out/part.{split.index}", m + local)


def job(root: str) -> JobConf:
    return JobConf(
        name="good-tasks",
        mapper_factory=lambda: BlockMapper(root),  # captures a str only
        reducer_factory=lambda: SumReducer(),
        splits=splits_for_workers(CHUNKS),
    )


def scale_job() -> JobConf:
    return JobConf(
        name="good-scale",
        mapper_factory=lambda: FnMapper(scale_task),
        splits=splits_for_workers(CHUNKS),
    )
