"""Fixture: a correctly locked class — the analyzer must stay silent.

Every guarded attribute is only touched under ``self._lock``, the
lock-required helper is only called with the lock held, and the snapshot
method copies before returning.
"""

from __future__ import annotations

import threading


class GuardedCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: dict[str, int] = {}  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock

    def get(self, key: str) -> int | None:
        with self._lock:
            value = self._items.get(key)
            if value is not None:
                self._hits += 1
            return value

    def put(self, key: str, value: int) -> None:
        with self._lock:
            self._items[key] = value
            self._evict_locked()

    def _evict_locked(self) -> None:
        while len(self._items) > 64:
            self._items.pop(next(iter(self._items)))

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._items)

    def hit_count(self) -> int:
        with self._lock:
            return self._hits
