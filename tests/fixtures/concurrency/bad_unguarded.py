"""Fixture: guarded attributes touched without the lock.

``peek`` reads ``self._items`` lock-free (CN001) and ``clear`` replaces it
lock-free (CN002).
"""

from __future__ import annotations

import threading


class LeakyCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: dict[str, int] = {}  # guarded-by: _lock

    def put(self, key: str, value: int) -> None:
        with self._lock:
            self._items[key] = value

    def peek(self, key: str) -> int | None:
        return self._items.get(key)  # CN001: read without self._lock

    def clear(self) -> None:
        self._items = {}  # CN002: write without self._lock
