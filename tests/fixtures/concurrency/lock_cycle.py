"""Fixture: two classes acquire each other's locks in opposite orders.

``Ledger.transfer`` holds ``Ledger._lock`` and then takes
``Auditor._lock`` (via ``Auditor.record``); ``Auditor.reconcile`` holds
``Auditor._lock`` and then takes ``Ledger._lock`` (via ``Ledger.balance``).
Two threads running one of each deadlock — CN005.
"""

from __future__ import annotations

import threading


class Auditor:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[str] = []  # guarded-by: _lock

    def record(self, event: str) -> None:
        with self._lock:
            self._events.append(event)

    def reconcile(self, ledger: "Ledger") -> int:
        with self._lock:
            self._events.append("reconcile")
            return ledger.balance()


class Ledger:
    def __init__(self, auditor: Auditor) -> None:
        self._lock = threading.Lock()
        self._auditor = auditor
        self._total = 0  # guarded-by: _lock

    def balance(self) -> int:
        with self._lock:
            return self._total

    def transfer(self, amount: int) -> None:
        with self._lock:
            self._total += amount
            self._auditor.record(f"transfer {amount}")
