"""Fixture: a lock held across a blocking call.

``drain`` joins the worker thread while still holding ``self._lock``
(CN006): if the worker needs the lock to finish, the join never returns.
"""

from __future__ import annotations

import threading


class Drainer:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending: list[int] = []  # guarded-by: _lock

    def submit(self, item: int) -> None:
        with self._lock:
            self._pending.append(item)

    def drain(self, worker_thread: threading.Thread) -> list[int]:
        with self._lock:
            worker_thread.join()  # CN006: blocking call under the lock
            done, self._pending = self._pending, []
            return done
