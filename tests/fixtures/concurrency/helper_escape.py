"""Fixture: lock-required helper called lock-free, and a guarded container
returned without copying.

``rebalance`` calls ``_compact_locked`` without holding the lock (CN003);
``snapshot`` returns the guarded dict itself (CN004), handing the caller a
reference that races with every locked mutation.
"""

from __future__ import annotations

import threading


class EscapingStore:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, int] = {}  # guarded-by: _lock

    def put(self, key: str, value: int) -> None:
        with self._lock:
            self._entries[key] = value
            self._compact_locked()

    def _compact_locked(self) -> None:
        while len(self._entries) > 128:
            self._entries.pop(next(iter(self._entries)))

    def rebalance(self) -> None:
        self._compact_locked()  # CN003: helper requires the lock

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return self._entries  # CN004: uncopied guarded state escapes
