"""Gauss-Jordan-on-MapReduce (the rejected design, measured) and the blocked
triangular solvers."""

import numpy as np
import pytest

from repro.baselines.gauss_jordan_mr import gauss_jordan_mapreduce_invert
from repro.linalg import (
    blocked_back_substitute,
    blocked_forward_substitute,
    back_substitute,
    forward_substitute,
)
from repro.mapreduce import MapReduceRuntime

from conftest import random_invertible


class TestGaussJordanMR:
    @pytest.mark.parametrize("n, m0", [(8, 2), (20, 4), (33, 4)])
    def test_inverse_correct(self, rng, n, m0):
        a = random_invertible(rng, n)
        res = gauss_jordan_mapreduce_invert(a, m0=m0)
        assert np.allclose(res.inverse, np.linalg.inv(a), atol=1e-8)

    def test_exactly_n_jobs(self, rng):
        """Section 4.2's claim, measured: n sequential jobs."""
        a = random_invertible(rng, 24)
        res = gauss_jordan_mapreduce_invert(a, m0=4)
        assert res.num_jobs == 24
        assert len(res.record.job_results) == 24

    def test_job_explosion_vs_block_lu(self, rng):
        """The paper's core argument: at the same order, block LU needs
        2^d + 1 jobs versus Gauss-Jordan's n."""
        from repro import InversionConfig, invert

        n = 32
        a = random_invertible(rng, n)
        gj = gauss_jordan_mapreduce_invert(a, m0=4)
        blu = invert(a, InversionConfig(nb=8, m0=4))
        assert gj.num_jobs == n
        assert blu.num_jobs == 5
        assert np.allclose(gj.inverse, blu.inverse, atol=1e-7)

    def test_launch_overhead_dominates_gj_at_scale(self, rng):
        """Replayed on a cluster with Hadoop's launch cost, Gauss-Jordan's
        n-job pipeline loses to block LU even with identical arithmetic."""
        from repro import InversionConfig, invert
        from repro.cluster import ClusterSpec, ScaleFactors, simulate_record

        n = 32
        a = random_invertible(rng, n)
        gj = gauss_jordan_mapreduce_invert(a, m0=4)
        blu = invert(a, InversionConfig(nb=8, m0=4))
        cluster = ClusterSpec(4)
        scale = ScaleFactors.for_order(n, 4096)
        t_gj = simulate_record(gj.record, cluster, scale).makespan
        t_blu = simulate_record(blu.record, cluster, scale).makespan
        assert t_gj > t_blu
        # And at true paper scale the job count alone (n vs 2^d+1) decides:
        # 16384 launches vs 9.
        assert 16384 * cluster.job_launch_overhead > t_blu

    def test_pivoting_within_slab(self, rng):
        a = random_invertible(rng, 16)
        a[0, 0] = 0.0  # needs a local pivot swap at step 0
        res = gauss_jordan_mapreduce_invert(a, m0=4)
        assert res.residual(a) < 1e-8

    def test_singular_detected(self):
        from repro.linalg import SingularMatrixError
        from repro.mapreduce import JobFailedError

        with pytest.raises((SingularMatrixError, JobFailedError)):
            gauss_jordan_mapreduce_invert(np.ones((8, 8)), m0=2)

    def test_shared_runtime_not_shut_down(self, rng):
        rt = MapReduceRuntime()
        a = random_invertible(rng, 12)
        gauss_jordan_mapreduce_invert(a, runtime=rt, m0=2)
        # Runtime still usable.
        gauss_jordan_mapreduce_invert(a, runtime=rt, m0=2)
        assert rt.jobs_run() == 24
        rt.shutdown()


class TestBlockedSolvers:
    @pytest.mark.parametrize("n", [1, 5, 63, 64, 65, 200])
    def test_forward_matches_row_kernel(self, rng, n):
        l = np.tril(rng.standard_normal((n, n))) + 2 * np.eye(n)
        b = rng.standard_normal((n, 3))
        assert np.allclose(
            blocked_forward_substitute(l, b, block=16), forward_substitute(l, b)
        )

    @pytest.mark.parametrize("n", [1, 63, 64, 130])
    def test_back_matches_row_kernel(self, rng, n):
        u = np.triu(rng.standard_normal((n, n))) + 2 * np.eye(n)
        b = rng.standard_normal(n)
        assert np.allclose(
            blocked_back_substitute(u, b, block=16), back_substitute(u, b)
        )

    def test_unit_diagonal(self, rng):
        # NB: random unit-lower matrices are exponentially ill-conditioned in
        # n, so compare the two kernels against each other (identical
        # arithmetic), not against the true solution.
        n = 100
        l = np.tril(rng.standard_normal((n, n)), k=-1) + np.eye(n)
        b = rng.standard_normal((n, 2))
        blocked = blocked_forward_substitute(l, b, unit_diagonal=True, block=32)
        rowwise = forward_substitute(l, b, unit_diagonal=True)
        assert np.allclose(blocked, rowwise, rtol=1e-8, atol=1e-8)

    def test_solves_correctly(self, rng):
        n = 150
        l = np.tril(rng.standard_normal((n, n))) + 3 * np.eye(n)
        x_true = rng.standard_normal(n)
        assert np.allclose(
            blocked_forward_substitute(l, l @ x_true), x_true, atol=1e-8
        )

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="rows"):
            blocked_forward_substitute(np.eye(4), np.zeros(5))

    def test_blocked_is_faster_on_many_rhs(self, rng):
        """The BLAS-3 formulation wins on large triangular solves with many
        right-hand sides (the guide's cache argument)."""
        import timeit

        n = 400
        l = np.tril(rng.standard_normal((n, n))) + 3 * np.eye(n)
        b = rng.standard_normal((n, n))
        t_row = min(timeit.repeat(lambda: forward_substitute(l, b), number=1, repeat=4))
        t_blk = min(
            timeit.repeat(
                lambda: blocked_forward_substitute(l, b, block=64), number=1, repeat=4
            )
        )
        # Generous margin: timing on shared CI boxes is noisy; the blocked
        # kernel should at minimum not be slower.
        assert t_blk < t_row * 1.1
