"""Triangular inversion (Equation 4) and substitution solvers."""

import numpy as np
import pytest

from repro.linalg.triangular import (
    TriangularShapeError,
    back_substitute,
    forward_substitute,
    invert_lower,
    invert_lower_columns,
    invert_upper,
    invert_upper_rows,
    is_lower_triangular,
    is_upper_triangular,
)


def random_lower(rng, n, unit=False):
    l = np.tril(rng.standard_normal((n, n)))
    diag = np.ones(n) if unit else rng.uniform(0.5, 2.0, n) * np.sign(
        rng.standard_normal(n)
    )
    np.fill_diagonal(l, diag)
    return l


class TestSubstitution:
    @pytest.mark.parametrize("n", [1, 2, 7, 33])
    def test_forward(self, rng, n):
        l = random_lower(rng, n)
        x_true = rng.standard_normal(n)
        assert np.allclose(forward_substitute(l, l @ x_true), x_true)

    def test_forward_unit_diagonal_ignores_diag_values(self, rng):
        l = random_lower(rng, 6, unit=True)
        x_true = rng.standard_normal(6)
        x = forward_substitute(l, l @ x_true, unit_diagonal=True)
        assert np.allclose(x, x_true)

    def test_forward_matrix_rhs(self, rng):
        l = random_lower(rng, 8)
        x_true = rng.standard_normal((8, 4))
        assert np.allclose(forward_substitute(l, l @ x_true), x_true)

    @pytest.mark.parametrize("n", [1, 5, 21])
    def test_back(self, rng, n):
        u = random_lower(rng, n).T
        x_true = rng.standard_normal(n)
        assert np.allclose(back_substitute(u, u @ x_true), x_true)

    def test_back_matrix_rhs(self, rng):
        u = random_lower(rng, 6).T
        x_true = rng.standard_normal((6, 2))
        assert np.allclose(back_substitute(u, u @ x_true), x_true)

    def test_shape_mismatch_rejected(self, rng):
        l = random_lower(rng, 4)
        with pytest.raises(ValueError, match="rows"):
            forward_substitute(l, np.zeros(5))

    def test_singular_diagonal_rejected(self):
        l = np.array([[1.0, 0.0], [1.0, 0.0]])
        with pytest.raises(np.linalg.LinAlgError):
            forward_substitute(l, np.ones(2))


class TestLowerInverse:
    @pytest.mark.parametrize("n", [1, 2, 9, 40])
    def test_inverse(self, rng, n):
        l = random_lower(rng, n)
        linv = invert_lower(l)
        assert np.allclose(l @ linv, np.eye(n), atol=1e-9)

    def test_inverse_is_lower_triangular(self, rng):
        linv = invert_lower(random_lower(rng, 12))
        assert is_lower_triangular(linv, tol=1e-12)

    def test_unit_lower_inverse_unit_diagonal(self, rng):
        l = random_lower(rng, 10, unit=True)
        linv = invert_lower(l)
        assert np.allclose(np.diag(linv), 1.0)

    def test_column_subset_matches_full(self, rng):
        l = random_lower(rng, 15)
        full = invert_lower(l)
        cols = np.array([0, 3, 7, 14])
        sub = invert_lower_columns(l, cols)
        assert np.allclose(sub, full[:, cols])

    def test_strided_columns_cover_matrix(self, rng):
        """Reassembling all mappers' column shares gives the full inverse
        (the final job's map-side decomposition, Section 5.4)."""
        n, parts = 17, 4
        l = random_lower(rng, n)
        full = invert_lower(l)
        assembled = np.zeros_like(full)
        for p in range(parts):
            cols = np.arange(p, n, parts)
            assembled[:, cols] = invert_lower_columns(l, cols)
        assert np.allclose(assembled, full)

    def test_empty_column_set(self, rng):
        out = invert_lower_columns(random_lower(rng, 5), [])
        assert out.shape == (5, 0)

    def test_column_out_of_range(self, rng):
        with pytest.raises(ValueError):
            invert_lower_columns(random_lower(rng, 5), [5])

    def test_singular_rejected(self):
        l = np.tril(np.ones((3, 3)))
        l[1, 1] = 0.0
        with pytest.raises(np.linalg.LinAlgError):
            invert_lower(l)


class TestUpperInverse:
    @pytest.mark.parametrize("n", [1, 6, 25])
    def test_inverse(self, rng, n):
        u = random_lower(rng, n).T
        uinv = invert_upper(u)
        assert np.allclose(u @ uinv, np.eye(n), atol=1e-9)

    def test_inverse_is_upper_triangular(self, rng):
        uinv = invert_upper(random_lower(rng, 11).T)
        assert is_upper_triangular(uinv, tol=1e-12)

    def test_row_subset_matches_full(self, rng):
        u = random_lower(rng, 13).T
        full = invert_upper(u)
        rows = np.array([1, 4, 12])
        sub = invert_upper_rows(u, rows)
        assert np.allclose(sub, full[rows])

    def test_transpose_relation(self, rng):
        """Section 6.3's identity: U^-1 = (invert_lower(U^T))^T."""
        u = random_lower(rng, 9).T
        assert np.allclose(invert_upper(u), invert_lower(u.T).T)


class TestPredicates:
    def test_is_lower(self):
        assert is_lower_triangular(np.tril(np.ones((4, 4))))
        assert not is_lower_triangular(np.ones((4, 4)))

    def test_is_upper(self):
        assert is_upper_triangular(np.triu(np.ones((4, 4))))
        assert not is_upper_triangular(np.ones((4, 4)))

    def test_tolerance(self):
        m = np.tril(np.ones((3, 3)))
        m[0, 2] = 1e-15
        assert not is_lower_triangular(m)
        assert is_lower_triangular(m, tol=1e-12)

    def test_non_square_rejected(self):
        with pytest.raises(TriangularShapeError):
            invert_lower(np.zeros((2, 3)))
