"""Decoded-block cache: correctness, invalidation, zero-copy guarantees,
fault semantics, and the paper-faithful accounting regression."""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro import InversionConfig, invert
from repro.dfs import DFS, BlockCache
from repro.dfs import formats
from repro.dfs.blocks import BlockCorruptionError

GOLDEN = pathlib.Path(__file__).parent / "golden" / "fig7_read_volumes.json"


def mat(rng, n: int) -> np.ndarray:
    return rng.standard_normal((n, n))


class TestBlockCacheUnit:
    def test_put_get_roundtrip_and_lru_eviction(self):
        cache = BlockCache(capacity_bytes=3 * 800)  # room for three 10x10
        arrays = {}
        for i in range(4):
            a = np.arange(100, dtype=np.float64).reshape(10, 10) + i
            a.flags.writeable = False
            arrays[i] = a
            cache.put((f"/f{i}", i), a)
        # 10x10 float64 = 800 B; the fourth insert evicts the LRU (i=0).
        assert cache.get(("/f0", 0)) is None
        assert cache.get(("/f3", 3)) is arrays[3]
        assert cache.stats()["evictions"] == 1
        assert cache.used_bytes <= cache.capacity_bytes

    def test_get_bumps_recency(self):
        cache = BlockCache(capacity_bytes=2 * 800)
        a, b, c = (np.zeros((10, 10)) for _ in range(3))
        for arr in (a, b, c):
            arr.flags.writeable = False
        cache.put(("/a", 1), a)
        cache.put(("/b", 2), b)
        assert cache.get(("/a", 1)) is a  # bump /a
        cache.put(("/c", 3), c)  # evicts /b, not /a
        assert cache.get(("/b", 2)) is None
        assert cache.get(("/a", 1)) is a

    def test_oversized_and_writable_values_are_rejected(self):
        cache = BlockCache(capacity_bytes=100)
        big = np.zeros((10, 10))
        big.flags.writeable = False
        assert not cache.put(("/big", 1), big)  # 800 B > 100 B capacity
        small_writable = np.zeros((2, 2))
        assert not cache.put(("/w", 1), small_writable)
        assert len(cache) == 0

    def test_drop_path_removes_file_and_subtree(self):
        cache = BlockCache(capacity_bytes=1 << 20)
        for i, path in enumerate(["/dir/a", "/dir/sub/b", "/other/c"]):
            arr = np.zeros((2, 2))
            arr.flags.writeable = False
            cache.put((path, i), arr)
        assert cache.drop_path("/dir") == 2
        assert len(cache) == 1
        assert cache.get(("/other/c", 2)) is not None


class TestReadThrough:
    def test_hit_returns_same_object_and_moves_no_bytes(self, dfs, rng):
        cache = dfs.attach_cache(1 << 20)
        a = mat(rng, 8)
        formats.write_matrix(dfs, "/m.bin", a)
        first, n1 = cache.read_through(dfs, "/m.bin")
        before = dfs.stats.snapshot()
        second, n2 = cache.read_through(dfs, "/m.bin")
        delta = dfs.stats.snapshot() - before
        assert second is first  # one shared decoded object
        assert n1 == n2 == dfs.file_size("/m.bin")
        assert delta.bytes_read == 0  # no physical I/O on a hit
        assert delta.cache_hits == 1 and delta.cache_bytes_served == n1
        np.testing.assert_array_equal(first, a)

    def test_results_are_read_only(self, dfs, rng):
        cache = dfs.attach_cache(1 << 20)
        formats.write_matrix(dfs, "/m.bin", mat(rng, 6))
        m, _ = cache.read_through(dfs, "/m.bin")
        with pytest.raises((ValueError, RuntimeError)):
            m[0, 0] = 42.0

    def test_overwrite_invalidates_via_generation(self, dfs, rng):
        cache = dfs.attach_cache(1 << 20)
        a, b = mat(rng, 6), mat(rng, 6)
        formats.write_matrix(dfs, "/m.bin", a)
        got, _ = cache.read_through(dfs, "/m.bin")
        np.testing.assert_array_equal(got, a)
        formats.write_matrix(dfs, "/m.bin", b)  # overwrite -> new generation
        got, _ = cache.read_through(dfs, "/m.bin")
        np.testing.assert_array_equal(got, b)

    def test_rename_never_serves_stale_and_drops_old_keys(self, dfs, rng):
        cache = dfs.attach_cache(1 << 20)
        a, b = mat(rng, 6), mat(rng, 6)
        formats.write_matrix(dfs, "/old.bin", a)
        cache.read_through(dfs, "/old.bin")
        assert len(cache) == 1
        dfs.rename("/old.bin", "/new.bin")
        assert len(cache) == 0  # hygiene: unreachable keys dropped eagerly
        # A different file can now take the old path without any staleness.
        formats.write_matrix(dfs, "/old.bin", b)
        got, _ = cache.read_through(dfs, "/old.bin")
        np.testing.assert_array_equal(got, b)
        got, _ = cache.read_through(dfs, "/new.bin")
        np.testing.assert_array_equal(got, a)

    def test_delete_drops_cached_entries(self, dfs, rng):
        cache = dfs.attach_cache(1 << 20)
        formats.write_matrix(dfs, "/d/m.bin", mat(rng, 6))
        cache.read_through(dfs, "/d/m.bin")
        assert len(cache) == 1
        dfs.delete("/d", recursive=True)
        assert len(cache) == 0

    def test_accounting_conserves_requested_bytes(self, rng):
        a = mat(rng, 64) + 64 * np.eye(64)
        res = invert(a, InversionConfig(nb=16, m0=4))
        io = res.io
        assert io.cache_hits > 0
        assert io.cache_bytes_requested == io.cache_bytes_served + io.cache_bytes_missed
        assert res.residual(a) < 1e-8


class TestZeroCopy:
    def test_decode_matrix_is_readonly_view_by_default(self, rng):
        a = mat(rng, 5)
        data = formats.encode_matrix(a)
        m = formats.decode_matrix(data)
        assert not m.flags.writeable
        assert m.base is not None  # a view over the payload, not a copy
        writable = formats.decode_matrix(data, writable=True)
        assert writable.flags.writeable
        writable[0, 0] = 1.0  # private copy: mutation is safe
        np.testing.assert_array_equal(m, a)

    def test_single_block_read_returns_stored_payload(self, dfs):
        payload = b"x" * 100  # well under the 64 KiB block size
        dfs.write_bytes("/one.bin", payload)
        entry = dfs.namenode.get_file("/one.bin")
        assert len(entry.blocks) == 1
        stored = dfs.blocks.read_block(entry.blocks[0])
        # Zero-copy both ways: the writer kept the caller's bytes object and
        # the single-block read returns it without a join.
        assert stored is payload
        assert dfs.read_bytes("/one.bin") is payload

    def test_multi_block_read_roundtrips(self, dfs, rng):
        data = rng.integers(0, 256, size=3 * (1 << 16) + 17, dtype=np.uint8).tobytes()
        dfs.write_bytes("/multi.bin", data)
        assert len(dfs.namenode.get_file("/multi.bin").blocks) == 4
        assert dfs.read_bytes("/multi.bin") == data

    def test_read_range_single_and_cross_block(self, dfs, rng):
        block = 1 << 16
        data = rng.integers(0, 256, size=3 * block, dtype=np.uint8).tobytes()
        dfs.write_bytes("/r.bin", data)
        # Exactly one whole block: served without any copy.
        assert dfs.read_range("/r.bin", block, block) == data[block : 2 * block]
        # Crossing a block boundary.
        assert dfs.read_range("/r.bin", block - 7, 20) == data[block - 7 : block + 13]
        # Sub-block slice.
        assert dfs.read_range("/r.bin", 3, 9) == data[3:12]

    def test_read_range_empty_is_empty_bytes(self, dfs):
        """Zero-length and at-EOF ranges touch no blocks and return ``b""``."""
        dfs.write_bytes("/e.bin", b"abcdef")
        before = dfs.stats.bytes_read
        assert dfs.read_range("/e.bin", 0, 0) == b""
        assert dfs.read_range("/e.bin", 3, 0) == b""
        assert dfs.read_range("/e.bin", 6, 10) == b""  # starts at EOF
        assert dfs.stats.bytes_read == before  # nothing was transferred

    def test_read_range_exact_block_is_payload_identity(self, dfs, rng):
        """A range covering exactly one whole block returns the stored
        payload object itself — no slice, no join."""
        block = 1 << 16
        data = rng.integers(0, 256, size=2 * block, dtype=np.uint8).tobytes()
        dfs.write_bytes("/ident.bin", data)
        entry = dfs.namenode.get_file("/ident.bin")
        second = dfs.blocks.read_block(entry.blocks[1])
        assert dfs.read_range("/ident.bin", block, block) is second

    def test_read_range_at_block_boundary(self, dfs, rng):
        """Ranges that start or end exactly on a block edge never bleed a
        byte across it."""
        block = 1 << 16
        data = rng.integers(0, 256, size=3 * block, dtype=np.uint8).tobytes()
        dfs.write_bytes("/edge.bin", data)
        # Ends exactly at the first boundary: only block 0 is read.
        assert dfs.read_range("/edge.bin", block - 5, 5) == data[block - 5 : block]
        # Starts exactly at the boundary: only block 1 is read.
        assert dfs.read_range("/edge.bin", block, 5) == data[block : block + 5]
        # Spans exactly two whole blocks: joined from the two payloads.
        assert dfs.read_range("/edge.bin", block, 2 * block) == data[block:]

    def test_read_range_sub_block_slices_via_memoryview(self, dfs):
        """A sub-block range is carved with a memoryview, so the bytes are
        copied exactly once (by the final join/cast), never twice through an
        intermediate buffer."""
        dfs.write_bytes("/sub.bin", b"0123456789" * 10)
        out = dfs.read_range("/sub.bin", 7, 11)
        assert out == b"78901234567"
        assert isinstance(out, bytes)
        # Accounting charges only the bytes handed back, not the whole block.
        before = dfs.stats.bytes_read
        dfs.read_range("/sub.bin", 0, 3)
        assert dfs.stats.bytes_read - before == 3

    def test_replicas_share_one_payload_object(self, dfs):
        dfs.write_bytes("/shared.bin", b"y" * 50)
        info = dfs.namenode.get_file("/shared.bin").blocks[0]
        payloads = [
            dfs.blocks.datanodes[idx].get(info.block_id) for idx in info.replicas
        ]
        assert len(payloads) == 3
        assert all(p is payloads[0] for p in payloads)

    def test_corrupt_materializes_private_copy(self, dfs):
        dfs.write_bytes("/c.bin", b"z" * 50)
        info = dfs.namenode.get_file("/c.bin").blocks[0]
        victim, *others = info.replicas
        assert dfs.blocks.corrupt_replica(info, victim)
        bad = dfs.blocks.datanodes[victim].get(info.block_id)
        good = dfs.blocks.datanodes[others[0]].get(info.block_id)
        assert bad is not good  # chaos mutation never leaks into siblings
        assert good == b"z" * 50
        assert bad != good


class TestFaultSemantics:
    def test_cold_cache_read_still_detects_corruption(self, dfs, rng):
        """The cache sits above checksums: a miss goes through the verified
        read path, so all-replica corruption surfaces exactly as before."""
        dfs.attach_cache(1 << 20)
        formats.write_matrix(dfs, "/f.bin", mat(rng, 8))
        info = dfs.namenode.get_file("/f.bin").blocks[0]
        for node in info.replicas:
            dfs.blocks.corrupt_replica(info, node)
        with pytest.raises(BlockCorruptionError):
            dfs.cache.read_through(dfs, "/f.bin")

    def test_chaos_schedule_with_corruption_stays_green(self):
        """Full kill-revive-corrupt chaos run with the (default-on) cache:
        checksums still route reads around rot and the scrub still drops the
        bad copies — the cache never masks integrity checks."""
        from repro.chaos import run_schedule, schedule_by_name

        outcome = run_schedule(schedule_by_name("kill-revive-corrupt", seed=0), seed=0)
        assert outcome.ok, (outcome.error, outcome.invariants)
        assert outcome.corrupt_dropped > 0


class TestPaperAccounting:
    def test_fig7_read_volumes_pinned_with_cache_disabled(self, rng):
        """Regression against the pre-cache seed: with ``block_cache_bytes=0``
        (and the commit protocol's manifest metadata off, matching the
        experiment harnesses) the Figure-7 physical accounting is
        byte-identical."""
        golden = json.loads(GOLDEN.read_text())
        n = golden["n"]
        g = np.random.default_rng(golden["rng_seed"])
        a = g.standard_normal((n, n)) + golden["shift"] * np.eye(n)
        for key, wrap in (("block_wrap_on", True), ("block_wrap_off", False)):
            res = invert(
                a,
                InversionConfig(
                    nb=golden["nb"], m0=golden["m0"], block_wrap=wrap,
                    block_cache_bytes=0, output_commit=False,
                ),
            )
            expect = golden["io"][key]
            assert res.io.bytes_read == expect["bytes_read"], key
            assert res.io.bytes_written == expect["bytes_written"], key
            assert res.io.read_ops == expect["read_ops"], key
            assert res.io.files_opened == expect["files_opened"], key
            assert res.io.cache_bytes_requested == 0  # cache fully out of play

    def test_cache_reduces_physical_reads_only(self, rng):
        """Logical (task-trace) reads are invariant; physical DFS reads drop."""
        a = mat(rng, 96) + 0.1 * np.eye(96)
        cfg = InversionConfig(nb=24, m0=4)
        on = invert(a, cfg)
        off = invert(a, cfg.with_overrides(block_cache_bytes=0))
        logical_on = sum(t.bytes_read for t in on.record.all_traces())
        logical_off = sum(t.bytes_read for t in off.record.all_traces())
        assert logical_on == logical_off
        assert on.io.bytes_read < off.io.bytes_read
        np.testing.assert_allclose(on.inverse, off.inverse)

    def test_reconcile_reports_cache_term(self):
        from repro.telemetry.cli import run_traced_inversion

        obs, result, report = run_traced_inversion(n=64, nb=16, m0=4)
        assert report.ok, report.format()
        assert report.totals is not None
        assert report.totals.cache_bytes_requested > 0
        assert report.totals.cache_delta == 0.0
        assert "block cache" in report.format()
