"""Backend-conformance suite: every registered ExecutionBackend honours the
same contract.

The JobTracker is backend-agnostic — it relies on ``run_all`` returning
results *positionally*, exceptions being returned (never raised) on a
task's behalf, deadlines measured from attempt start, and ``shutdown``
being idempotent.  These tests pin that contract over every backend in the
registry, so a new backend plugged in via ``register_backend`` gets the
whole battery for free.
"""

from __future__ import annotations

import time
from functools import partial

import pytest

from repro.mapreduce.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialExecutor,
    TaskTimeoutError,
    ThreadPoolBackend,
    available_backends,
    make_executor,
    register_backend,
)

BUILTIN_BACKENDS = ("serial", "threads", "processes")


# Top-level callables so every task pickles for the processes backend.

def square(x: int) -> int:
    return x * x


def boom(message: str) -> None:
    raise ValueError(message)


def nap_then(seconds: float, value: int) -> int:
    time.sleep(seconds)
    return value


@pytest.fixture(params=BUILTIN_BACKENDS)
def backend(request):
    ex = make_executor(request.param, 2)
    yield ex
    ex.shutdown()


class TestConformance:
    def test_registry_has_builtins(self):
        assert set(BUILTIN_BACKENDS) <= set(available_backends())

    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, ExecutionBackend)
        assert backend.max_workers >= 1
        assert isinstance(backend.in_process, bool)
        assert isinstance(backend.supports_shared_memory, bool)

    def test_results_positional(self, backend):
        thunks = [partial(square, i) for i in range(7)]
        assert backend.run_all(thunks) == [i * i for i in range(7)]

    def test_exceptions_returned_not_raised(self, backend):
        thunks = [partial(square, 2), partial(boom, "t1"), partial(square, 3)]
        out = backend.run_all(thunks)
        assert out[0] == 4
        assert isinstance(out[1], ValueError)
        assert str(out[1]) == "t1"
        assert out[2] == 9

    def test_timeout_is_task_timeout_error(self, backend):
        out = backend.run_all(
            [partial(nap_then, 5.0, 1), partial(square, 6)], deadline=0.3
        )
        assert isinstance(out[0], TaskTimeoutError)
        assert out[1] == 36

    def test_fast_tasks_pass_under_deadline(self, backend):
        out = backend.run_all(
            [partial(nap_then, 0.01, i) for i in range(3)], deadline=5.0
        )
        assert out == [0, 1, 2]

    def test_shutdown_idempotent(self):
        for kind in BUILTIN_BACKENDS:
            ex = make_executor(kind, 2)
            ex.shutdown()
            ex.shutdown()  # second call must be a no-op, not an error


class TestCapabilityFlags:
    def test_serial(self):
        ex = SerialExecutor()
        assert ex.in_process and not ex.supports_shared_memory

    def test_threads(self):
        ex = ThreadPoolBackend(2)
        try:
            assert ex.in_process and not ex.supports_shared_memory
        finally:
            ex.shutdown()

    def test_processes(self):
        ex = ProcessPoolBackend(1)
        try:
            assert not ex.in_process and ex.supports_shared_memory
        finally:
            ex.shutdown()


class TestThreadDeadlineFromStart:
    """Regression: deadlines charge attempt runtime, never queue wait."""

    def test_queued_task_not_charged_for_waiting(self):
        # One slot, two 0.25s tasks, 0.6s deadline: the second task spends
        # ~0.25s queued behind the first.  Charged from wave submission it
        # would blow the deadline; charged from its own start it passes.
        ex = ThreadPoolBackend(max_workers=1)
        try:
            out = ex.run_all(
                [partial(nap_then, 0.25, 1), partial(nap_then, 0.25, 2)],
                deadline=0.6,
            )
            assert out == [1, 2]
        finally:
            ex.shutdown()

    def test_starved_task_reports_timeout_not_hang(self):
        # The only slot is wedged by an abandoned hung attempt; the queued
        # task can never start and must come back as a timeout, not block
        # run_all forever.
        ex = ThreadPoolBackend(max_workers=1)
        out = ex.run_all(
            [partial(nap_then, 1.5, 1), partial(square, 2)], deadline=0.2
        )
        assert isinstance(out[0], TaskTimeoutError)
        assert isinstance(out[1], TaskTimeoutError)
        assert "starved" in str(out[1])
        ex.shutdown()  # waits out the 1.5s straggler; bounded


class TestProcessDeadline:
    def test_deadline_runs_from_dispatch_not_wave(self):
        # Same shape as the thread regression: one worker, two tasks, each
        # individually under the deadline.
        ex = ProcessPoolBackend(1)
        try:
            out = ex.run_all(
                [partial(nap_then, 0.25, 1), partial(nap_then, 0.25, 2)],
                deadline=0.6,
            )
            assert out == [1, 2]
        finally:
            ex.shutdown()

    def test_killed_attempt_frees_the_slot(self):
        # The hung attempt is killed for real, so a task behind it still
        # completes — unlike threads, where the slot stays wedged.
        ex = ProcessPoolBackend(1)
        try:
            out = ex.run_all(
                [partial(nap_then, 5.0, 1), partial(square, 4)], deadline=0.3
            )
            assert isinstance(out[0], TaskTimeoutError)
            assert out[1] == 16
        finally:
            ex.shutdown()


class TestRegistry:
    def test_make_executor_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown executor kind"):
            make_executor("quantum")

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("serial", lambda n: SerialExecutor())

    def test_register_replace_and_custom(self):
        calls = []

        def factory(max_workers: int):
            calls.append(max_workers)
            return SerialExecutor()

        register_backend("test-custom", factory)
        try:
            ex = make_executor("test-custom", 3)
            assert calls == [3]
            assert isinstance(ex, SerialExecutor)
            register_backend(
                "test-custom", lambda n: SerialExecutor(), replace=True
            )
        finally:
            from repro.mapreduce import backends

            backends._BACKENDS.pop("test-custom", None)


class TestDeprecationShim:
    def test_worker_module_reexports(self):
        # Old import sites keep working: worker.py forwards to backends.py.
        from repro.mapreduce import worker

        assert worker.TaskTimeoutError is TaskTimeoutError
        assert worker.SerialExecutor is SerialExecutor
        assert worker.ThreadPoolBackend is ThreadPoolBackend
        assert worker.ProcessPoolBackend is ProcessPoolBackend
        assert worker.make_executor is make_executor

    def test_package_exports(self):
        import repro.mapreduce as mr

        for name in (
            "ExecutionBackend",
            "ProcessPoolBackend",
            "TaskSerializationError",
            "WorkerCrashError",
            "available_backends",
            "make_executor",
            "register_backend",
        ):
            assert hasattr(mr, name)
