"""DFS facade: file I/O, range reads, accounting, namespace ops."""

import pytest

from repro.dfs import DFS, FileNotFound


class TestRoundTrips:
    def test_bytes_roundtrip(self, dfs):
        dfs.write_bytes("/x/y", b"payload")
        assert dfs.read_bytes("/x/y") == b"payload"

    def test_text_roundtrip(self, dfs):
        dfs.write_text("/t", "héllo\nwörld")
        assert dfs.read_text("/t") == "héllo\nwörld"

    def test_empty_file(self, dfs):
        dfs.write_bytes("/empty", b"")
        assert dfs.read_bytes("/empty") == b""
        assert dfs.file_size("/empty") == 0

    def test_multi_block_file(self, dfs):
        data = bytes(range(256)) * 1024  # 256 KiB over 64 KiB blocks
        dfs.write_bytes("/big", data)
        assert dfs.read_bytes("/big") == data
        entry = dfs.namenode.get_file("/big")
        assert len(entry.blocks) == 4

    def test_writer_context_manager_flushes(self, dfs):
        with dfs.create("/w") as w:
            w.write(b"part1")
            w.write(b"part2")
        assert dfs.read_bytes("/w") == b"part1part2"

    def test_write_after_close_rejected(self, dfs):
        w = dfs.create("/w")
        w.close()
        with pytest.raises(ValueError):
            w.write(b"late")


class TestRangeReads:
    def test_range_within_one_block(self, dfs):
        dfs.write_bytes("/r", b"0123456789")
        assert dfs.read_range("/r", 2, 5) == b"23456"

    def test_range_spanning_blocks(self, dfs):
        data = b"A" * 70000 + b"B" * 70000  # crosses the 64 KiB boundary
        dfs.write_bytes("/r", data)
        got = dfs.read_range("/r", 69998, 4)
        assert got == b"AABB"

    def test_range_past_eof_truncated(self, dfs):
        dfs.write_bytes("/r", b"short")
        assert dfs.read_range("/r", 3, 100) == b"rt"

    def test_negative_range_rejected(self, dfs):
        dfs.write_bytes("/r", b"x")
        with pytest.raises(ValueError):
            dfs.read_range("/r", -1, 2)


class TestAccounting:
    def test_write_counts_replicated_bytes(self, dfs):
        before = dfs.stats.snapshot()
        dfs.write_bytes("/acc", b"x" * 100)
        delta = dfs.stats.snapshot() - before
        assert delta.bytes_written == 300  # replication factor 3
        assert delta.bytes_transferred == 200  # 2 remote replicas
        assert delta.files_created == 1

    def test_read_counts_bytes(self, dfs):
        dfs.write_bytes("/acc", b"y" * 50)
        before = dfs.stats.snapshot()
        dfs.read_bytes("/acc")
        delta = dfs.stats.snapshot() - before
        assert delta.bytes_read == 50
        assert delta.bytes_transferred == 50

    def test_local_read_skips_transfer(self, dfs):
        dfs.write_bytes("/acc", b"z" * 50)
        before = dfs.stats.snapshot()
        dfs.read_bytes("/acc", local=True)
        delta = dfs.stats.snapshot() - before
        assert delta.bytes_read == 50
        assert delta.bytes_transferred == 0

    def test_range_read_counts_only_range(self, dfs):
        dfs.write_bytes("/acc", b"w" * 1000)
        before = dfs.stats.snapshot()
        dfs.read_range("/acc", 100, 200)
        delta = dfs.stats.snapshot() - before
        assert delta.bytes_read == 200


class TestNamespaceOps:
    def test_glob(self, dfs):
        dfs.write_bytes("/Root/L2/L.0", b"a")
        dfs.write_bytes("/Root/L2/L.1", b"b")
        dfs.write_bytes("/Root/U2/U.0", b"c")
        assert dfs.glob("/Root/L2/L.*") == ["/Root/L2/L.0", "/Root/L2/L.1"]

    def test_delete_recursive_frees_blocks(self, dfs):
        dfs.write_bytes("/d/a", b"x" * 100)
        dfs.write_bytes("/d/b", b"y" * 100)
        assert dfs.total_stored_bytes() == 600
        dfs.delete("/d", recursive=True)
        assert dfs.total_stored_bytes() == 0

    def test_read_missing_raises(self, dfs):
        with pytest.raises(FileNotFound):
            dfs.read_bytes("/ghost")

    def test_rename_preserves_content(self, dfs):
        dfs.write_bytes("/old", b"keep")
        dfs.rename("/old", "/new/name")
        assert dfs.read_bytes("/new/name") == b"keep"

    def test_list_files_and_tree(self, dfs):
        dfs.write_bytes("/a/b", b"1")
        dfs.write_bytes("/a/c", b"22")
        assert dfs.list_files("/a") == ["/a/b", "/a/c"]
        assert "(2 B)" in dfs.tree("/a")

    def test_overwrite_replaces_content(self, dfs):
        dfs.write_bytes("/f", b"one")
        dfs.write_bytes("/f", b"two")
        assert dfs.read_bytes("/f") == b"two"
