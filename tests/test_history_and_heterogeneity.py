"""Job-history reporting and heterogeneous-cluster replay."""

import numpy as np
import pytest

from repro import InversionConfig, invert
from repro.cluster import ClusterSpec, ScaleFactors, simulate_record
from repro.cluster.simulator import node_speed_factors
from repro.mapreduce import (
    FailOnce,
    HistoryReport,
    MapReduceRuntime,
    TaskKind,
)

from conftest import random_invertible


@pytest.fixture(scope="module")
def executed():
    rt = MapReduceRuntime()
    rng = np.random.default_rng(3)
    a = rng.random((96, 96)) + 0.1 * np.eye(96)
    result = invert(a, InversionConfig(nb=24, m0=4), runtime=rt)
    yield rt, result
    rt.shutdown()


class TestHistory:
    def test_one_summary_per_job(self, executed):
        rt, result = executed
        report = HistoryReport.of(rt.history)
        assert len(report.jobs) == result.num_jobs

    def test_totals_match_traces(self, executed):
        rt, result = executed
        report = HistoryReport.of(rt.history)
        expected = sum(t.bytes_read for t in result.record.all_traces())
        assert report.total_bytes_read == expected

    def test_format_contains_job_names(self, executed):
        rt, _ = executed
        text = HistoryReport.of(rt.history).format()
        assert "partition" in text and "invert-final" in text
        assert "totals:" in text

    def test_failures_reported(self):
        rt = MapReduceRuntime(
            fault_policy=FailOnce(
                job_substring="invert-final", kind=TaskKind.MAP, task_index=0
            )
        )
        rng = np.random.default_rng(4)
        a = rng.random((48, 48)) + 0.1 * np.eye(48)
        invert(a, InversionConfig(nb=16, m0=4), runtime=rt)
        report = HistoryReport.of(rt.history)
        assert report.total_failed_attempts == 1
        rt.shutdown()


class TestHeterogeneity:
    def test_factors_mean_one(self):
        f = node_speed_factors(32, 0.3, seed=5)
        assert np.mean(f) == pytest.approx(1.0)
        assert np.std(f) > 0

    def test_zero_variance_homogeneous(self):
        assert node_speed_factors(8, 0.0) == [1.0] * 8

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            node_speed_factors(4, -0.1)

    def test_deterministic_by_seed(self):
        assert node_speed_factors(16, 0.2, seed=1) == node_speed_factors(16, 0.2, seed=1)
        assert node_speed_factors(16, 0.2, seed=1) != node_speed_factors(16, 0.2, seed=2)

    def test_speculation_reduces_straggler_penalty(self):
        """Duplicating the wave's straggler on a faster node cuts the
        heterogeneous makespan (Hadoop's speculative execution, which the
        paper's Section 7.4 run benefited from)."""
        from repro.cluster.simulator import SimulatedJob
        from repro.mapreduce.pipeline import PipelineRecord
        from repro.mapreduce.types import JobId, JobResult, TaskKind, TaskTrace

        job = JobResult(
            job_id=JobId(1),
            name="j",
            succeeded=True,
            map_traces=[
                TaskTrace(attempt="t", kind=TaskKind.MAP, flops=5e8)
                for _ in range(4)
            ],
        )
        cluster = ClusterSpec(num_nodes=4, job_launch_overhead=0.0)
        record = PipelineRecord(steps=[job])
        plain = simulate_record(
            record, cluster, speed_variance=0.8, speed_seed=3
        ).makespan
        spec = simulate_record(
            record, cluster, speed_variance=0.8, speed_seed=3, speculative=True
        ).makespan
        assert spec < plain

    def test_speculation_noop_on_homogeneous(self):
        from repro.mapreduce.pipeline import PipelineRecord
        from repro.mapreduce.types import JobId, JobResult, TaskKind, TaskTrace

        job = JobResult(
            job_id=JobId(1),
            name="j",
            succeeded=True,
            map_traces=[
                TaskTrace(attempt="t", kind=TaskKind.MAP, flops=5e8)
                for _ in range(4)
            ],
        )
        cluster = ClusterSpec(num_nodes=4, job_launch_overhead=0.0)
        record = PipelineRecord(steps=[job])
        plain = simulate_record(record, cluster).makespan
        spec = simulate_record(record, cluster, speculative=True).makespan
        assert spec == pytest.approx(plain)

    def test_variance_slows_makespan(self, executed):
        """Section 7.4's observation: high instance variance stretches runs —
        but wave scheduling absorbs part of it (fast nodes take more tasks),
        so the penalty is far below the slowest node's slowdown."""
        _, result = executed
        cluster = ClusterSpec(num_nodes=4, job_launch_overhead=0.0)
        scale = ScaleFactors(flops=1e6, bytes=1e2)
        t_hom = simulate_record(result.record, cluster, scale).makespan
        t_het = simulate_record(
            result.record, cluster, scale, speed_variance=0.4, speed_seed=7
        ).makespan
        assert t_het > t_hom
        slowest = min(node_speed_factors(4, 0.4, seed=7))
        assert t_het < t_hom / slowest  # scheduling absorbs part of the skew
