"""Recursion plan: depths, job counts (Table 3), tree structure."""

import pytest

from repro.inversion.plan import (
    InversionPlan,
    build_tree,
    depth,
    intermediate_file_count,
    is_full_tree,
    lu_job_count,
    split_order,
    total_job_count,
)


class TestDepth:
    @pytest.mark.parametrize(
        "n, nb, expected",
        [
            (64, 64, 0),
            (65, 64, 1),
            (128, 64, 1),
            (129, 64, 2),
            (1024, 64, 4),
            (20480, 3200, 3),
            (32768, 3200, 4),
            (40960, 3200, 4),
            (102400, 3200, 5),
            (16384, 3200, 3),
        ],
    )
    def test_depths(self, n, nb, expected):
        assert depth(n, nb) == expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            depth(0, 4)
        with pytest.raises(ValueError):
            depth(4, 0)


class TestTable3JobCounts:
    """Table 3's 'Number of Jobs' column, with nb = 3200 as in the paper."""

    @pytest.mark.parametrize(
        "name, n, jobs",
        [
            ("M1", 20480, 9),
            ("M2", 32768, 17),
            ("M3", 40960, 17),
            ("M4", 102400, 33),
            ("M5", 16384, 9),
        ],
    )
    def test_paper_matrix_job_counts(self, name, n, jobs):
        assert total_job_count(n, 3200) == jobs

    def test_lu_jobs_formula(self):
        assert lu_job_count(102400, 3200) == 31  # 2^5 - 1

    def test_trivial_matrix_single_job(self):
        assert total_job_count(100, 3200) == 1


class TestFileCount:
    def test_section61_example(self):
        """n = 2^15, nb = 2^11, m0 = 64 => d = 4, N(d) = 496."""
        assert depth(2**15, 2**11) == 4
        assert intermediate_file_count(2**15, 2**11, 64) == 496

    def test_leaf_only(self):
        assert intermediate_file_count(10, 64, 8) == 1


class TestSplit:
    @pytest.mark.parametrize("n", [2, 3, 7, 100, 101])
    def test_split_sums(self, n):
        n1, n2 = split_order(n)
        assert n1 + n2 == n
        assert n1 >= n2 >= n1 - 1


class TestTree:
    def test_leaf_sizes_bounded(self):
        tree = build_tree(1000, 64)
        for leaf in tree.leaves():
            assert leaf.n <= 64

    def test_leaf_sizes_sum(self):
        tree = build_tree(777, 50)
        assert sum(l.n for l in tree.leaves()) == 777

    def test_row_offsets_contiguous(self):
        tree = build_tree(300, 40)
        leaves = tree.leaves()
        offset = 0
        for leaf in leaves:
            assert leaf.row0 == offset
            offset += leaf.n

    def test_inorder_runs_child1_before_node(self):
        tree = build_tree(256, 64)
        order = tree.internal_nodes()
        seen = set()
        for node in order:
            if node.child1 is not None and not node.child1.is_leaf:
                assert node.child1.dir in seen
            seen.add(node.dir)

    def test_directory_structure(self):
        tree = build_tree(256, 64, "/Root")
        assert tree.dir == "/Root"
        assert tree.child1.dir == "/Root/A1"
        assert tree.child2.dir == "/Root/OUT"
        assert tree.child1.child1.dir == "/Root/A1/A1"

    def test_kinds(self):
        tree = build_tree(256, 64)
        assert tree.kind == "input"
        assert tree.child1.kind == "input"
        assert tree.child2.kind == "schur"
        assert tree.child2.child1.kind == "schur"

    def test_full_tree_detection(self):
        assert is_full_tree(1024, 64)
        assert is_full_tree(100, 3200)
        assert not is_full_tree(65, 16)  # some branches bottom out early

    def test_full_tree_counts_exact(self):
        plan = InversionPlan(n=1024, nb=64, m0=4)
        plan.validate()
        assert plan.num_lu_jobs == lu_job_count(1024, 64)
        assert plan.num_jobs == total_job_count(1024, 64)

    def test_ragged_tree_validates(self):
        plan = InversionPlan(n=65, nb=16, m0=4)
        plan.validate()
        assert plan.num_lu_jobs <= lu_job_count(65, 16)
