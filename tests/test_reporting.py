"""Report formatting helpers and the experiment harness plumbing."""

import pytest

from repro.experiments.harness import ExperimentHarness, RunKey
from repro.experiments.report import (
    bytes_human,
    format_series,
    format_table,
    seconds_human,
)


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "n"], [["alpha", 1], ["b", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        # Column widths consistent across rows.
        assert len(lines[2]) == len(lines[3])

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.5], [123456.0], [1e-7], [0.0]])
        assert "0.5" in out
        assert "1.235e+05" in out
        assert "1.000e-07" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_bool_rendered_as_word(self):
        out = format_table(["ok"], [[True]])
        assert "True" in out


class TestFormatSeries:
    def test_columns_per_series(self):
        out = format_series("T", "x", [1, 2], {"s1": [10, 20], "s2": [30, 40]})
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "s1" in lines[1] and "s2" in lines[1]
        assert "10" in lines[3] and "30" in lines[3]


class TestHumanizers:
    @pytest.mark.parametrize(
        "seconds, expect",
        [(5, "5.0 s"), (300, "5.0 min"), (7200, "2.00 h"), (5400, "90.0 min")],
    )
    def test_seconds(self, seconds, expect):
        assert seconds_human(seconds) == expect

    @pytest.mark.parametrize(
        "n, expect",
        [(500, "500 B"), (2_500, "2.50 KB"), (3e9, "3.00 GB"), (2.5e13, "25.00 TB")],
    )
    def test_bytes(self, n, expect):
        assert bytes_human(n) == expect


class TestHarnessCaching:
    def test_identical_runs_cached(self):
        h = ExperimentHarness()
        first = h.run(32, 8, 4, seed=1)
        second = h.run(32, 8, 4, seed=1)
        assert first is second

    def test_different_flags_not_shared(self):
        h = ExperimentHarness()
        a = h.run(32, 8, 4, seed=1)
        b = h.run(32, 8, 4, seed=1, block_wrap=False)
        assert a is not b

    def test_fault_runs_never_cached(self):
        from repro.mapreduce import FailOnce, TaskKind

        h = ExperimentHarness()
        policy = FailOnce(job_substring="invert", kind=TaskKind.MAP, task_index=0)
        a = h.run(32, 8, 4, seed=1, fault_policy=policy)
        b = h.run(32, 8, 4, seed=1)
        assert a is not b

    def test_run_key_hashable_identity(self):
        k1 = RunKey(32, 8, 4, True, True, True, 0)
        k2 = RunKey(32, 8, 4, True, True, True, 0)
        assert k1 == k2 and hash(k1) == hash(k2)

    def test_replay_uses_paper_order(self):
        h = ExperimentHarness()
        executed = h.run(32, 8, 4, seed=2)
        small = h.replay(executed, num_nodes=4)
        big = h.replay(executed, num_nodes=4, paper_n=3200)
        assert big.makespan > small.makespan
