"""Public-surface checks: exports are importable, examples run, docs exist."""

import importlib
import pathlib
import subprocess
import sys

import pytest

PACKAGES = [
    "repro",
    "repro.adaptive",
    "repro.analysis",
    "repro.apps",
    "repro.baselines",
    "repro.chaos",
    "repro.cluster",
    "repro.dfs",
    "repro.experiments",
    "repro.inversion",
    "repro.linalg",
    "repro.mapreduce",
    "repro.mpi",
    "repro.scalapack",
    "repro.spark",
    "repro.systemml",
    "repro.telemetry",
    "repro.workloads",
]

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        mod = importlib.import_module(package)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{package}.{name} in __all__ but missing"

    def test_top_level_quickstart_surface(self):
        import repro

        assert callable(repro.invert)
        assert callable(repro.lu_decompose)
        assert repro.InversionConfig(nb=8, m0=4).mhalf == 2
        assert repro.__version__

    def test_docstrings_on_public_modules(self):
        for package in PACKAGES:
            mod = importlib.import_module(package)
            assert mod.__doc__ and len(mod.__doc__) > 40, f"{package} undocumented"


class TestDocsPresent:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/paper_mapping.md", "docs/internals.md"]
    )
    def test_doc_exists_and_substantial(self, name):
        path = REPO / name
        assert path.exists(), name
        assert len(path.read_text()) > 2000, f"{name} too thin"

    def test_examples_present(self):
        examples = list((REPO / "examples").glob("*.py"))
        assert len(examples) >= 9


class TestExamplesRun:
    """Smoke-run the two fastest examples end-to-end as subprocesses."""

    @pytest.mark.parametrize(
        "script, expect",
        [
            ("streaming_wordcount.py", "word counts"),
            ("quickstart.py", "matches numpy"),
        ],
    )
    def test_example(self, script, expect):
        proc = subprocess.run(
            [sys.executable, str(REPO / "examples" / script)],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert proc.returncode == 0, proc.stderr[-800:]
        assert expect in proc.stdout


class TestRunAllFast:
    def test_run_all_fast_smoke(self, capsys):
        """The master entry point (`python -m repro experiments --fast`)
        regenerates every artifact without error."""
        from repro.experiments.run_all import main as run_all

        run_all(fast=True)
        out = capsys.readouterr().out
        for artifact in ("Table 1", "Table 3", "Figure 6", "Figure 8",
                         "Section 7.4", "Section 8", "Section 7.5"):
            assert f"[{artifact}" in out, artifact
