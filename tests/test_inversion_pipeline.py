"""End-to-end pipeline tests: inversion, LU, ablations, fault tolerance."""

import numpy as np
import pytest

from repro import InversionConfig, invert
from repro.inversion import MatrixInverter, total_job_count
from repro.inversion.plan import is_full_tree
from repro.linalg import verify
from repro.mapreduce import (
    FailOnce,
    MapReduceRuntime,
    RuntimeConfig,
    TaskKind,
)

from conftest import random_invertible


class TestCorrectness:
    @pytest.mark.parametrize(
        "n, nb, m0",
        [(30, 8, 4), (64, 16, 4), (65, 16, 4), (100, 13, 8), (128, 32, 16), (48, 48, 4)],
    )
    def test_inverse_matches_numpy(self, rng, n, nb, m0):
        a = random_invertible(rng, n)
        res = invert(a, InversionConfig(nb=nb, m0=m0))
        assert np.allclose(res.inverse, np.linalg.inv(a), atol=1e-8)

    def test_residual_meets_paper_bound(self, rng):
        a = random_invertible(rng, 120)
        res = invert(a, InversionConfig(nb=25, m0=4))
        assert verify.passes_paper_bound(a, res.inverse)

    def test_job_count_matches_formula(self, rng):
        n, nb = 128, 16  # d = 3 => 2^3 + 1 = 9 jobs
        assert is_full_tree(n, nb)
        res = invert(random_invertible(rng, n), InversionConfig(nb=nb, m0=4))
        assert res.num_jobs == total_job_count(n, nb) == 9

    def test_single_leaf_runs_one_job(self, rng):
        res = invert(random_invertible(rng, 20), InversionConfig(nb=64, m0=4))
        assert res.num_jobs == 1

    def test_identity_matrix(self):
        res = invert(np.eye(40), InversionConfig(nb=10, m0=4))
        assert np.allclose(res.inverse, np.eye(40))

    def test_diagonal_matrix(self):
        d = np.diag(np.arange(1.0, 33.0))
        res = invert(d, InversionConfig(nb=8, m0=4))
        assert np.allclose(res.inverse, np.diag(1.0 / np.arange(1.0, 33.0)))

    def test_permutation_heavy_matrix(self, rng):
        """Anti-diagonal-ish matrix exercises pivoting across every block."""
        n = 48
        a = np.fliplr(np.diag(rng.uniform(1, 2, n))) + 0.01 * rng.standard_normal((n, n))
        res = invert(a, InversionConfig(nb=12, m0=4))
        assert res.residual(a) < 1e-8

    def test_non_square_rejected(self, rng):
        with pytest.raises(ValueError, match="square"):
            invert(rng.standard_normal((4, 5)))

    def test_singular_matrix_fails_cleanly(self):
        from repro.mapreduce import JobFailedError
        from repro.linalg import SingularMatrixError

        a = np.ones((32, 32))
        with pytest.raises((SingularMatrixError, JobFailedError)):
            invert(a, InversionConfig(nb=8, m0=4))


class TestAblations:
    @pytest.mark.parametrize(
        "flags",
        [
            dict(block_wrap=False),
            dict(separate_files=False),
            dict(transpose_u=False),
            dict(block_wrap=False, separate_files=False),
            dict(block_wrap=False, separate_files=False, transpose_u=False),
        ],
        ids=lambda f: "+".join(k for k in f),
    )
    def test_ablated_variants_correct(self, rng, flags):
        a = random_invertible(rng, 72)
        res = invert(a, InversionConfig(nb=16, m0=4, **flags))
        assert res.residual(a) < 1e-8

    def test_block_wrap_reads_less(self, rng):
        """Figure 7: block wrap reduces read volume."""
        a = random_invertible(rng, 96)
        on = invert(a, InversionConfig(nb=24, m0=8, block_wrap=True))
        off = invert(a, InversionConfig(nb=24, m0=8, block_wrap=False))
        assert on.io.bytes_read < off.io.bytes_read

    def test_separate_files_avoids_combine_writes(self, rng):
        """Section 6.1: combining adds master-side serial writes."""
        a = random_invertible(rng, 96)
        on = invert(a, InversionConfig(nb=24, m0=4, separate_files=True))
        off = invert(a, InversionConfig(nb=24, m0=4, separate_files=False))
        assert off.io.bytes_written > on.io.bytes_written
        combines = [p for p in off.record.master_phases if p.name.startswith("combine")]
        assert len(combines) == off.plan.num_lu_jobs


class TestRuntimes:
    def test_threaded_runtime_matches_serial(self, rng):
        a = random_invertible(rng, 80)
        cfg = InversionConfig(nb=20, m0=4)
        serial = invert(a, cfg)
        rt = MapReduceRuntime(config=RuntimeConfig(num_workers=4, executor="threads"))
        threaded = invert(a, cfg, runtime=rt)
        rt.shutdown()
        assert np.allclose(serial.inverse, threaded.inverse)

    def test_reusing_runtime_cleans_previous_root(self, rng):
        rt = MapReduceRuntime()
        cfg = InversionConfig(nb=16, m0=4)
        a1, a2 = random_invertible(rng, 40), random_invertible(rng, 48)
        r1 = invert(a1, cfg, runtime=rt)
        r2 = invert(a2, cfg, runtime=rt)
        assert r1.residual(a1) < 1e-9
        assert r2.residual(a2) < 1e-9
        rt.shutdown()

    def test_inverter_context_manager(self, rng):
        with MatrixInverter(InversionConfig(nb=16, m0=4)) as inv:
            a = random_invertible(rng, 36)
            assert inv.invert(a).residual(a) < 1e-9


class TestFaultTolerance:
    def test_mapper_failure_recovers(self, rng):
        """Section 7.4's scenario: one mapper of the final inversion job
        fails, is rescheduled, and the run still completes correctly."""
        policy = FailOnce(
            job_substring="invert-final", kind=TaskKind.MAP, task_index=1
        )
        rt = MapReduceRuntime(fault_policy=policy)
        a = random_invertible(rng, 64)
        res = invert(a, InversionConfig(nb=16, m0=4), runtime=rt)
        rt.shutdown()
        assert res.residual(a) < 1e-9
        failed = sum(j.attempts_failed for j in res.record.job_results)
        assert failed == 1

    def test_lu_job_reducer_failure_recovers(self, rng):
        policy = FailOnce(job_substring="lu:", kind=TaskKind.REDUCE, task_index=0)
        rt = MapReduceRuntime(fault_policy=policy)
        a = random_invertible(rng, 64)
        res = invert(a, InversionConfig(nb=16, m0=4), runtime=rt)
        rt.shutdown()
        assert res.residual(a) < 1e-9


class TestLUOnly:
    def test_distributed_lu_factors(self, rng):
        a = random_invertible(rng, 90)
        with MatrixInverter(InversionConfig(nb=16, m0=4)) as inv:
            f = inv.lu(a)
        assert verify.lu_residual(a, f.lower, f.upper, f.perm) < 1e-9

    def test_factors_are_triangular(self, rng):
        from repro.linalg import is_lower_triangular, is_upper_triangular

        a = random_invertible(rng, 70)
        with MatrixInverter(InversionConfig(nb=16, m0=4)) as inv:
            f = inv.lu(a)
        assert is_lower_triangular(f.lower)
        assert is_upper_triangular(f.upper)
        assert np.allclose(np.diag(f.lower), 1.0)

    def test_lu_matches_single_node(self, rng):
        """Distributed block LU and Algorithm 1 both satisfy PA = LU (the
        factors differ because pivoting is block-local, but both reconstruct
        A exactly)."""
        from repro.linalg import lu_decompose, permutation

        a = random_invertible(rng, 60)
        with MatrixInverter(InversionConfig(nb=20, m0=4)) as inv:
            f = inv.lu(a)
        reconstructed = permutation.apply_rows(
            permutation.invert(f.perm), f.lower @ f.upper
        )
        assert np.allclose(reconstructed, a, atol=1e-10)


class TestAccountingSurface:
    def test_io_snapshot_populated(self, rng):
        a = random_invertible(rng, 64)
        res = invert(a, InversionConfig(nb=16, m0=4))
        assert res.io.bytes_read > a.nbytes
        assert res.io.bytes_written > a.nbytes

    def test_flops_close_to_theory(self, rng):
        """Reported multiplications: LU contributes n^3/3 (Table 1), the two
        triangular inversions n^3/3 (Table 2), and the final product — which
        this implementation computes densely, as BLAS would — n^3, for 5/3 n^3
        total."""
        n = 96
        a = random_invertible(rng, n)
        res = invert(a, InversionConfig(nb=24, m0=4))
        assert res.total_flops() == pytest.approx(5 / 3 * n**3, rel=0.2)

    def test_record_contains_all_jobs(self, rng):
        a = random_invertible(rng, 64)
        res = invert(a, InversionConfig(nb=16, m0=4))
        names = [j.name for j in res.record.job_results]
        assert names[0] == "partition"
        assert names[-1] == "invert-final"
        assert all(n.startswith("lu:") for n in names[1:-1])
