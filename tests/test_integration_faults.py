"""Cross-layer fault integration: DFS failures during pipeline runs."""

import numpy as np
import pytest

from repro import InversionConfig, invert
from repro.dfs import DFS
from repro.mapreduce import MapReduceRuntime

from conftest import random_invertible


def fresh_runtime(num_datanodes=6, replication=3):
    dfs = DFS(num_datanodes=num_datanodes, replication=replication, seed=13)
    return MapReduceRuntime(dfs=dfs)


class TestDatanodeFailures:
    def test_inversion_survives_datanode_death_between_jobs(self, rng):
        """Kill a datanode after the LU stage wrote its factors; replication
        keeps every factor file readable and the final job completes."""
        rt = fresh_runtime()
        a = random_invertible(rng, 64)
        cfg = InversionConfig(nb=16, m0=4)

        from repro.inversion import MatrixInverter

        inv = MatrixInverter(cfg, runtime=rt)
        factors = inv.lu(a)  # LU stage on DFS
        rt.dfs.blocks.kill_datanode(0)
        result = inv.invert(a)  # full run (re-ingests input, reuses cluster)
        assert result.residual(a) < 1e-9
        rt.shutdown()

    def test_inversion_survives_death_plus_rereplication_cycle(self, rng):
        rt = fresh_runtime()
        a = random_invertible(rng, 48)
        result = invert(a, InversionConfig(nb=16, m0=4), runtime=rt)
        rt.dfs.blocks.kill_datanode(1)
        rt.dfs.rereplicate_all()
        rt.dfs.blocks.kill_datanode(2)
        # All pipeline outputs still readable: re-verify from DFS state.
        from repro.inversion import MatrixInverter

        inv = MatrixInverter(InversionConfig(nb=16, m0=4), runtime=rt)
        assert inv.distributed_residual(result) < 1e-9
        rt.shutdown()

    def test_corrupted_replica_transparently_skipped(self, rng):
        """Corrupt one replica of the input matrix mid-run; checksums route
        reads to a healthy copy and the result is unaffected."""
        rt = fresh_runtime()
        a = random_invertible(rng, 48)
        cfg = InversionConfig(nb=16, m0=4)
        first = invert(a, cfg, runtime=rt)
        entry = rt.dfs.namenode.get_file(first.layout.input_path)
        info = entry.blocks[0]
        assert rt.dfs.blocks.corrupt_replica(info, info.replicas[0])
        from repro.inversion import MatrixInverter

        inv = MatrixInverter(cfg, runtime=rt)
        assert inv.distributed_residual(first) < 1e-9
        rt.shutdown()

    def test_total_replica_loss_fails_job_cleanly(self, rng):
        """Losing every replica of a factor file makes dependent tasks fail
        permanently — surfaced as JobFailedError, not silent corruption."""
        from repro.mapreduce import JobFailedError
        from repro.inversion import MatrixInverter

        rt = fresh_runtime(num_datanodes=3, replication=2)
        a = random_invertible(rng, 48)
        cfg = InversionConfig(nb=16, m0=4)
        inv = MatrixInverter(cfg, runtime=rt)
        result = inv.invert(a)
        # Destroy all replicas of one final-output block.
        entry = rt.dfs.namenode.get_file(result.layout.final_path(0))
        for info in entry.blocks:
            for node in info.replicas:
                rt.dfs.blocks.datanodes[node].drop(info.block_id)
        # Drop the decoded-block cache: it would (correctly) still serve the
        # file from memory; this test pins the *DFS* failure surface.
        rt.dfs.detach_cache()
        with pytest.raises(JobFailedError):
            inv.distributed_residual(result)
        rt.shutdown()


class TestThreadedFaults:
    def test_threaded_runtime_with_task_failures(self, rng):
        from repro.mapreduce import FailOnce, RuntimeConfig, TaskKind

        policy = FailOnce(job_substring="lu:", kind=TaskKind.MAP, task_index=2)
        rt = MapReduceRuntime(
            config=RuntimeConfig(num_workers=4, executor="threads"),
            fault_policy=policy,
        )
        a = random_invertible(rng, 64)
        result = invert(a, InversionConfig(nb=16, m0=4), runtime=rt)
        assert result.residual(a) < 1e-9
        # FailOnce matches by job-name substring, so every LU job loses its
        # map task #2 once and recovers.
        lu_jobs = [j for j in result.record.job_results if j.name.startswith("lu:")]
        failed = sum(j.attempts_failed for j in result.record.job_results)
        assert failed == len(lu_jobs) >= 1
        rt.shutdown()

    def test_speculative_threaded_pipeline(self, rng):
        from repro.mapreduce import RuntimeConfig

        rt = MapReduceRuntime(
            config=RuntimeConfig(num_workers=4, executor="threads", speculative=True)
        )
        a = random_invertible(rng, 48)
        result = invert(a, InversionConfig(nb=16, m0=4), runtime=rt)
        assert result.residual(a) < 1e-9
        # Speculation doubled the launched attempts.
        total_tasks = sum(
            len(j.map_traces) + len(j.reduce_traces)
            for j in result.record.job_results
        )
        launched = sum(j.attempts_launched for j in result.record.job_results)
        assert launched == 2 * total_tasks
        rt.shutdown()
