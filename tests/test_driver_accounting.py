"""Driver-side accounting: MasterIO, master phases, pipeline records, and
the InversionResult surface."""

import numpy as np
import pytest

from repro import InversionConfig
from repro.dfs import formats
from repro.inversion import MatrixInverter
from repro.inversion.driver import MasterIO
from repro.mapreduce import MapReduceRuntime
from repro.mapreduce.pipeline import MasterPhase, Pipeline

from conftest import random_invertible


class TestMasterIO:
    def test_counts_reads_and_writes(self, dfs, rng):
        io = MasterIO(dfs)
        m = rng.standard_normal((4, 4))
        io.write_bytes("/m", formats.encode_matrix(m))
        assert io.bytes_written == len(formats.encode_matrix(m))
        out = io.read_matrix("/m")
        assert np.array_equal(out, m)
        assert io.bytes_read == io.bytes_written

    def test_take_io_resets(self, dfs):
        io = MasterIO(dfs)
        io.write_bytes("/x", b"abc")
        r, w = io.take_io()
        assert (r, w) == (0, 3)
        assert io.take_io() == (0, 0)

    def test_read_rows_accounts_range_only(self, dfs, rng):
        io = MasterIO(dfs)
        m = rng.standard_normal((100, 10))
        formats.write_matrix(dfs, "/m", m)
        io.read_rows("/m", 0, 10)
        assert io.bytes_read == 10 * 10 * 8

    def test_exists_passthrough(self, dfs):
        io = MasterIO(dfs)
        assert not io.exists("/nope")
        io.write_bytes("/yes", b"1")
        assert io.exists("/yes")


class TestPipelineRecord:
    def test_master_phase_durations_recorded(self, dfs):
        rt = MapReduceRuntime(dfs=dfs)
        pipeline = Pipeline(rt)
        out = pipeline.master_phase("phase-a", lambda: 42, flops=100.0)
        assert out == 42
        phase = pipeline.record.master_phases[0]
        assert phase.name == "phase-a"
        assert phase.flops == 100.0
        assert phase.wall_seconds >= 0
        rt.shutdown()

    def test_total_wall_seconds_sums_steps(self, rng):
        a = random_invertible(rng, 48)
        with MatrixInverter(InversionConfig(nb=16, m0=4)) as inv:
            result = inv.invert(a)
        total = result.record.total_wall_seconds()
        parts = sum(j.wall_seconds for j in result.record.job_results) + sum(
            p.wall_seconds for p in result.record.master_phases
        )
        assert total == pytest.approx(parts)

    def test_all_traces_cover_every_task(self, rng):
        a = random_invertible(rng, 48)
        with MatrixInverter(InversionConfig(nb=16, m0=4)) as inv:
            result = inv.invert(a)
        expected = sum(
            len(j.map_traces) + len(j.reduce_traces)
            for j in result.record.job_results
        )
        assert len(result.record.all_traces()) == expected

    def test_master_phases_have_io_attributed(self, rng):
        """write-input, master-lu, and collect-output phases carry the byte
        counts the cluster simulator bills to the master node."""
        a = random_invertible(rng, 48)
        with MatrixInverter(InversionConfig(nb=16, m0=4)) as inv:
            result = inv.invert(a)
        by_name = {p.name.split(":")[0]: p for p in result.record.master_phases}
        assert by_name["write-input"].bytes_written >= a.nbytes
        assert by_name["collect-output"].bytes_read >= a.nbytes
        lu_phases = [
            p for p in result.record.master_phases if p.name.startswith("master-lu")
        ]
        assert lu_phases and all(p.flops > 0 for p in lu_phases)
        assert all(p.bytes_read > 0 and p.bytes_written > 0 for p in lu_phases)


class TestInversionResultSurface:
    @pytest.fixture(scope="class")
    def result_and_matrix(self):
        rng = np.random.default_rng(99)
        a = rng.random((64, 64)) + 0.1 * np.eye(64)
        with MatrixInverter(InversionConfig(nb=16, m0=4)) as inv:
            return inv.invert(a), a

    def test_io_snapshot_consistency(self, result_and_matrix):
        result, a = result_and_matrix
        # Written bytes include 3x replication of everything materialized.
        assert result.io.bytes_written >= 3 * a.nbytes
        assert result.io.files_created > result.num_jobs

    def test_total_flops_positive_and_dominated_by_tasks(self, result_and_matrix):
        result, _ = result_and_matrix
        task_flops = sum(t.flops for t in result.record.all_traces())
        assert 0 < task_flops < result.total_flops()

    def test_plan_and_layout_consistent(self, result_and_matrix):
        result, a = result_and_matrix
        assert result.plan.n == a.shape[0]
        assert result.layout.plan is result.plan
        assert result.config.nb == 16

    def test_residual_helper_matches_manual(self, result_and_matrix):
        result, a = result_and_matrix
        manual = float(np.max(np.abs(np.eye(64) - a @ result.inverse)))
        assert result.residual(a) == pytest.approx(manual)
