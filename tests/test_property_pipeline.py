"""Property-based tests over the pipeline, plan, regions, and DFS."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import InversionConfig, invert
from repro.dfs import DFS, formats
from repro.inversion.plan import (
    InversionPlan,
    depth,
    lu_job_count,
    split_order,
    total_job_count,
)
from repro.inversion.regions import BlockRef, Region


class TestPlanProperties:
    @given(st.integers(1, 10_000), st.integers(1, 512))
    @settings(max_examples=200, deadline=None)
    def test_depth_definition(self, n, nb):
        d = depth(n, nb)
        if n <= nb:
            assert d == 0
        else:
            assert nb * 2 ** (d - 1) < n <= nb * 2**d

    @given(st.integers(1, 5_000), st.integers(1, 256))
    @settings(max_examples=100, deadline=None)
    def test_tree_invariants(self, n, nb):
        plan = InversionPlan(n=n, nb=nb, m0=4)
        plan.validate()
        leaves = plan.tree.leaves()
        assert sum(l.n for l in leaves) == n
        assert all(l.n <= nb for l in leaves)
        assert plan.num_lu_jobs <= lu_job_count(n, nb)
        # Leaves in row order.
        offsets = [l.row0 for l in leaves]
        assert offsets == sorted(offsets)

    @given(st.integers(2, 100_000))
    @settings(max_examples=100, deadline=None)
    def test_split_near_half(self, n):
        n1, n2 = split_order(n)
        assert n1 + n2 == n and 0 <= n1 - n2 <= 1

    @given(st.integers(1, 20_000), st.integers(1, 400))
    @settings(max_examples=100, deadline=None)
    def test_job_count_formula_consistency(self, n, nb):
        if n <= nb:
            assert total_job_count(n, nb) == 1
        else:
            assert total_job_count(n, nb) == lu_job_count(n, nb) + 2


class TestRegionProperties:
    @given(
        st.integers(1, 20),
        st.integers(1, 20),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_sub_equals_numpy_slice(self, rows, cols, data):
        """A region tiled by row chunks sliced arbitrarily equals the numpy
        slice of the assembled matrix."""
        dfs = DFS(num_datanodes=2, replication=1)
        rng = np.random.default_rng(7)
        m = rng.standard_normal((rows, cols))
        chunk = data.draw(st.integers(1, rows))
        refs = []
        r = 0
        i = 0
        while r < rows:
            r2 = min(r + chunk, rows)
            path = f"/p/A.{i}"
            formats.write_matrix(dfs, path, m[r:r2])
            refs.append(
                BlockRef(path, r, 0, r2 - r, cols, file_rows=r2 - r, file_cols=cols)
            )
            r, i = r2, i + 1
        region = Region(rows, cols, tuple(refs))

        r1 = data.draw(st.integers(0, rows))
        r2 = data.draw(st.integers(r1, rows))
        c1 = data.draw(st.integers(0, cols))
        c2 = data.draw(st.integers(c1, cols))

        class Reader:
            def read_matrix(self, path):
                return formats.read_matrix(dfs, path)

            def read_rows(self, path, a, b):
                return formats.read_rows(dfs, path, a, b)

        sub = region.sub(r1, r2, c1, c2)
        if sub.rows and sub.cols:
            assert np.array_equal(sub.read(Reader()), m[r1:r2, c1:c2])
        assert sub.covered()


class TestDFSProperties:
    @given(st.binary(max_size=5000), st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_any_payload_any_blocksize(self, payload, block_size):
        dfs = DFS(num_datanodes=3, replication=2, block_size=block_size)
        dfs.write_bytes("/f", payload)
        assert dfs.read_bytes("/f") == payload

    @given(st.binary(max_size=2000), st.integers(0, 2200), st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_range_read_matches_python_slice(self, payload, offset, length):
        dfs = DFS(block_size=128)
        dfs.write_bytes("/f", payload)
        assert dfs.read_range("/f", offset, length) == payload[offset : offset + length]


class TestEndToEndProperty:
    @given(st.integers(8, 40), st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None)
    def test_pipeline_inverts_random_matrices(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n)) + 0.5 * np.eye(n)
        res = invert(a, InversionConfig(nb=max(n // 4, 2), m0=4))
        assert np.allclose(res.inverse @ a, np.eye(n), atol=1e-6)
