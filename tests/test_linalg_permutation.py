"""Compact row-permutation arrays (the paper's S array)."""

import numpy as np
import pytest

from repro.linalg import permutation as perm


class TestBasics:
    def test_identity(self):
        assert np.array_equal(perm.identity(4), [0, 1, 2, 3])

    def test_is_permutation_accepts(self):
        assert perm.is_permutation(np.array([2, 0, 1]))

    @pytest.mark.parametrize(
        "bad", [[0, 0, 1], [0, 3, 1], [[0, 1]], [-1, 0]]
    )
    def test_is_permutation_rejects(self, bad):
        assert not perm.is_permutation(np.array(bad))


class TestApplication:
    def test_apply_rows_matches_matrix_product(self, rng):
        s = rng.permutation(6)
        a = rng.standard_normal((6, 4))
        assert np.allclose(perm.apply_rows(s, a), perm.to_matrix(s) @ a)

    def test_apply_columns_matches_matrix_product(self, rng):
        s = rng.permutation(5)
        a = rng.standard_normal((3, 5))
        assert np.allclose(perm.apply_columns(s, a), a @ perm.to_matrix(s))

    def test_row_then_inverse_restores(self, rng):
        s = rng.permutation(8)
        a = rng.standard_normal((8, 8))
        assert np.array_equal(
            perm.apply_rows(perm.invert(s), perm.apply_rows(s, a)), a
        )


class TestAlgebra:
    def test_invert(self, rng):
        s = rng.permutation(10)
        inv = perm.invert(s)
        assert np.array_equal(inv[s], np.arange(10))
        assert np.array_equal(s[inv], np.arange(10))

    def test_compose_semantics(self, rng):
        s1, s2 = rng.permutation(7), rng.permutation(7)
        a = rng.standard_normal((7, 3))
        lhs = perm.apply_rows(perm.compose(s2, s1), a)
        rhs = perm.apply_rows(s2, perm.apply_rows(s1, a))
        assert np.array_equal(lhs, rhs)

    def test_augment_block_diagonal(self, rng):
        p1, p2 = rng.permutation(3), rng.permutation(4)
        s = perm.augment(p1, p2)
        assert perm.is_permutation(s)
        m = perm.to_matrix(s)
        assert np.array_equal(m[:3, :3], perm.to_matrix(p1))
        assert np.array_equal(m[3:, 3:], perm.to_matrix(p2))
        assert np.all(m[:3, 3:] == 0) and np.all(m[3:, :3] == 0)

    def test_to_matrix_orthogonal(self, rng):
        s = rng.permutation(9)
        m = perm.to_matrix(s)
        assert np.allclose(m @ m.T, np.eye(9))


class TestPaperIdentity:
    def test_inverse_column_permutation(self, rng):
        """The Section 4.3 identity A^-1 = U^-1 L^-1 P with P applied as a
        column permutation of C = U^-1 L^-1."""
        n = 12
        a = rng.standard_normal((n, n)) + 0.1 * np.eye(n)
        from repro.linalg import lu_decompose, invert_lower, invert_upper

        res = lu_decompose(a)
        c = invert_upper(res.upper()) @ invert_lower(res.lower())
        a_inv = perm.apply_columns(res.perm, c)
        assert np.allclose(a @ a_inv, np.eye(n), atol=1e-9)
