"""The telemetry subsystem: spans, metrics, reconciliation, zero-cost path."""

import json
import subprocess
import sys
import tracemalloc

import numpy as np
import pytest

import repro
from repro import InversionConfig, MetricsRegistry, TraceConfig, observe
from repro.inversion import MatrixInverter
from repro.inversion.plan import total_job_count
from repro.mapreduce import (
    FailAlways,
    JobFailedError,
    MapReduceRuntime,
    RuntimeConfig,
    TaskKind,
)
from repro.telemetry import NULL_TRACER, SpanKind, current_tracer
from repro.telemetry.cli import main as trace_main, run_traced_inversion

from conftest import random_invertible


def traced_inversion(n=48, nb=16, m0=4, seed=3):
    """One small observed inversion; returns (observation, result, runtime)."""
    rng = np.random.default_rng(seed)
    a = random_invertible(rng, n)
    runtime = MapReduceRuntime(config=RuntimeConfig(num_workers=m0))
    try:
        with observe() as obs:
            inverter = MatrixInverter(
                config=InversionConfig(nb=nb, m0=m0), runtime=runtime
            )
            result = inverter.invert(a)
    finally:
        runtime.shutdown()
    return obs, result


class TestSpanTree:
    @pytest.fixture(scope="class")
    def traced(self):
        return traced_inversion()

    def test_single_run_span_roots_the_tree(self, traced):
        obs, _ = traced
        runs = [s for s in obs.spans if s.kind is SpanKind.RUN]
        assert len(runs) == 1
        assert runs[0].parent_id is None
        assert runs[0].name == "invert"

    def test_job_span_count_matches_closed_form(self, traced):
        obs, result = traced
        jobs = [s for s in obs.spans if s.kind is SpanKind.JOB]
        expected = total_job_count(48, 16)  # 2^d + 1
        assert len(jobs) == expected == result.num_jobs

    def test_hierarchy_run_job_wave_task(self, traced):
        """Every TASK hangs off a WAVE, every WAVE off a JOB, every JOB and
        MASTER_PHASE off the RUN — no orphans anywhere."""
        obs, _ = traced
        by_id = {s.span_id: s for s in obs.spans}
        run_id = next(s for s in obs.spans if s.kind is SpanKind.RUN).span_id
        parent_kind_of = {
            SpanKind.TASK: SpanKind.WAVE,
            SpanKind.WAVE: SpanKind.JOB,
        }
        for span in obs.spans:
            want = parent_kind_of.get(span.kind)
            if want is not None:
                assert by_id[span.parent_id].kind is want, span
            elif span.kind in (SpanKind.JOB, SpanKind.MASTER_PHASE):
                assert span.parent_id == run_id, span

    def test_all_spans_share_the_trace_id(self, traced):
        obs, _ = traced
        assert {s.trace_id for s in obs.spans} == {obs.trace_id}

    def test_task_spans_carry_io_attributes(self, traced):
        obs, _ = traced
        committed = [
            s
            for s in obs.spans
            if s.kind is SpanKind.TASK and s.attrs.get("committed")
        ]
        assert committed
        assert all("bytes_read" in s.attrs for s in committed)
        assert any(s.attrs["bytes_read"] > 0 for s in committed)

    def test_metrics_absorbed_from_counters_and_iostats(self, traced):
        obs, _ = traced
        snap = obs.metrics.to_dict()
        assert any(k.startswith("mapreduce.") for k in snap["counters"])
        assert snap["gauges"].get("dfs.bytes_read", 0) > 0


class TestMetricsRoundTrip:
    def test_to_dict_from_dict_exact(self):
        reg = MetricsRegistry()
        reg.counter("jobs").increment(17)
        reg.gauge("load").set(2.5)
        hist = reg.histogram("latency", (0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            hist.observe(v)
        snap = reg.to_dict()
        assert MetricsRegistry.from_dict(snap).to_dict() == snap
        # And it survives JSON, which is how exporters persist it.
        assert MetricsRegistry.from_dict(json.loads(json.dumps(snap))).to_dict() == snap

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").increment(2)
        b.counter("x").increment(3)
        b.histogram("h", (1.0,)).observe(0.5)
        a.merge(b)
        assert a.counter("x").value == 5
        assert a.histogram("h", (1.0,)).count == 1


class TestDisabledTelemetry:
    def test_no_ambient_tracer_outside_observe(self):
        assert current_tracer() is NULL_TRACER

    def test_untraced_run_records_nothing(self):
        rng = np.random.default_rng(0)
        a = random_invertible(rng, 32)
        with MatrixInverter(InversionConfig(nb=8, m0=4)) as inverter:
            inverter.invert(a)
        assert current_tracer() is NULL_TRACER
        assert NULL_TRACER.spans == []

    def test_disabled_config_resolves_to_null_tracer(self):
        assert TraceConfig(enabled=False).tracer() is NULL_TRACER

    def test_disabled_path_allocates_nothing_in_telemetry(self):
        """With telemetry off, instrumentation sites must not allocate inside
        the telemetry package (the zero-cost contract)."""
        rng = np.random.default_rng(1)
        a = random_invertible(rng, 32)
        inverter = MatrixInverter(InversionConfig(nb=8, m0=4))
        inverter.invert(a)  # warm every code path first
        tracemalloc.start()
        try:
            inverter.invert(a)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
            inverter.close()
        telemetry_allocs = snapshot.filter_traces(
            [tracemalloc.Filter(True, "*telemetry*")]
        ).statistics("filename")
        assert telemetry_allocs == []


class TestReconciliation:
    def test_traced_cli_run_reconciles(self):
        obs, result, report = run_traced_inversion(n=48, nb=16, m0=4)
        assert report.ok, report.format()
        assert report.job_span_count == total_job_count(48, 16)
        for row in report.jobs:
            assert row.read_delta <= report.tolerance
            assert row.write_delta <= report.tolerance
        assert report.totals is not None
        assert report.totals.replication_factor >= 1

    def test_cli_json_mode(self, capsys):
        code = trace_main(["--n", "48", "--nb", "16", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["job_spans"] == payload["expected_job_spans"]

    def test_commit_ledger_reconciles_to_zero(self):
        """With the output-commit protocol on (the default), the staging
        ledger must conserve exactly: staged == published + discarded."""
        obs, result, report = run_traced_inversion(n=48, nb=16, m0=4)
        totals = report.totals
        assert totals is not None
        assert result.config.output_commit
        assert totals.bytes_staged > 0
        assert totals.bytes_staged == totals.bytes_published + totals.bytes_discarded
        assert totals.commit_delta == 0.0
        assert "output commit" in report.format()


class TestFailureCorrelation:
    def test_job_failed_error_carries_trace_and_span(self, dfs):
        runtime = MapReduceRuntime(
            dfs=dfs,
            config=RuntimeConfig(num_workers=3),
            fault_policy=FailAlways(kind=TaskKind.MAP, task_index=0),
        )
        from test_mapreduce_faults import simple_conf

        conf = simple_conf(max_attempts=2)
        conf.telemetry = TraceConfig(trace_id="failtrace")
        with pytest.raises(JobFailedError) as excinfo:
            runtime.run_job(conf)
        err = excinfo.value
        assert err.trace_id == "failtrace"
        assert err.job_span_id
        assert "failtrace" in str(err)
        # The failed attempts are span-correlated too.
        assert any(f.span_id for f in err.attempts)
        runtime.shutdown()


class TestDeprecationShim:
    def test_mapreduce_history_import_warns(self):
        """repro.mapreduce.history still works but warns; repro.mapreduce
        itself must import silently."""
        code = (
            "import warnings\n"
            "import repro.mapreduce\n"
            "warnings.simplefilter('error', DeprecationWarning)\n"
            "try:\n"
            "    import repro.mapreduce.history\n"
            "except DeprecationWarning as w:\n"
            "    assert 'repro.telemetry' in str(w)\n"
            "    print('WARNED')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=str(__import__("pathlib").Path(__file__).parent.parent),
        )
        assert proc.returncode == 0, proc.stderr[-500:]
        assert "WARNED" in proc.stdout

    def test_shim_reexports_history_report(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.mapreduce.history import HistoryReport

        assert HistoryReport is repro.HistoryReport
