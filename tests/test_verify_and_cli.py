"""Distributed verification job and the CLI entry point."""

import numpy as np
import pytest

from repro import InversionConfig
from repro.__main__ import main as cli_main
from repro.inversion import MatrixInverter
from repro.mapreduce import MapReduceRuntime

from conftest import random_invertible


class TestDistributedVerification:
    def test_matches_driver_residual(self, rng):
        a = random_invertible(rng, 80)
        with MatrixInverter(InversionConfig(nb=20, m0=4)) as inv:
            result = inv.invert(a)
            distributed = inv.distributed_residual(result)
        assert distributed == pytest.approx(result.residual(a), rel=1e-9)

    def test_runs_as_mapreduce_job(self, rng):
        a = random_invertible(rng, 48)
        with MatrixInverter(InversionConfig(nb=16, m0=4)) as inv:
            result = inv.invert(a)
            inv.distributed_residual(result)
            names = [j.name for j in result.record.job_results]
        assert names[-1] == "verify-identity"

    def test_detects_corrupted_inverse(self, rng):
        """If a final block file is corrupted on the DFS, the distributed
        check reports a large residual — it reads the DFS state, not the
        driver's in-memory copy."""
        from repro.dfs import formats

        a = random_invertible(rng, 48)
        runtime = MapReduceRuntime()
        inv = MatrixInverter(InversionConfig(nb=16, m0=4), runtime=runtime)
        result = inv.invert(a)
        path = result.layout.final_path(0)
        block = formats.read_matrix(runtime.dfs, path)
        formats.write_matrix(runtime.dfs, path, block + 1.0)
        assert inv.distributed_residual(result) > 0.5
        runtime.shutdown()

    def test_text_input_mode(self, rng):
        a = random_invertible(rng, 40)
        with MatrixInverter(InversionConfig(nb=16, m0=4, input_format="text")) as inv:
            result = inv.invert(a)
            assert inv.distributed_residual(result) < 1e-9


class TestCLI:
    def test_invert_command(self, capsys):
        assert cli_main(["invert", "--n", "48", "--nb", "16", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "jobs: 5" in out
        assert "distributed residual" in out

    def test_table_command(self, capsys):
        assert cli_main(["table", "3"]) == 0
        assert "M4" in capsys.readouterr().out

    def test_figure_command(self, capsys):
        assert cli_main(["figure", "8"]) == 0
        assert "ScaLAPACK" in capsys.readouterr().out.replace("scalapack", "ScaLAPACK")

    def test_unknown_artifact_rejected(self, capsys):
        assert cli_main(["table", "9"]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli_main([])


class TestCLIDescribe:
    def test_describe_paper_matrix(self, capsys):
        assert cli_main(["describe", "--n", "20480"]) == 0
        out = capsys.readouterr().out
        assert "jobs=9" in out
        assert "job schedule:" in out
        assert out.count("lu:") == 7

    def test_describe_leaf_only(self, capsys):
        assert cli_main(["describe", "--n", "100", "--nb", "128"]) == 0
        out = capsys.readouterr().out
        assert "jobs=1" in out

    def test_section8_artifact(self, capsys):
        assert cli_main(["section", "8"]) == 0
        assert "Spark" in capsys.readouterr().out

    def test_study_artifact(self, capsys):
        assert cli_main(["study", "launch-overhead"]) == 0
        assert "HaLoop" in capsys.readouterr().out
