"""Lockset / lock-order analyzer: each CN rule fires on its seeded fixture,
clean code stays silent, and the engine's own threaded modules pass.

Fixture modules live in ``tests/fixtures/concurrency/`` and are analyzed as
source text — they are never imported, so the deliberate deadlocks and races
in them never execute.
"""

from __future__ import annotations

import pathlib
import textwrap

from repro.analysis import (
    Severity,
    analyze_concurrency_files,
    analyze_concurrency_sources,
    default_threaded_files,
    has_errors,
)
from repro.analysis.cli import main as lint_main

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "concurrency"


def rule_ids(findings):
    return {f.rule for f in findings}


def analyze_fixture(name: str):
    return analyze_concurrency_files([FIXTURES / name])


def analyze_snippet(text: str, filename: str = "snippet.py"):
    return analyze_concurrency_sources([(textwrap.dedent(text), filename)])


# -- fixtures: one rule each --------------------------------------------------------


def test_guarded_fixture_is_clean():
    assert analyze_fixture("good_guarded.py") == []


def test_unguarded_read_and_write_fixture():
    findings = analyze_fixture("bad_unguarded.py")
    assert rule_ids(findings) == {"CN001", "CN002"}
    assert all(f.severity == Severity.ERROR for f in findings)
    by_rule = {f.rule: f for f in findings}
    assert "_items" in by_rule["CN001"].message
    assert "peek" in by_rule["CN001"].message


def test_helper_escape_fixture():
    findings = analyze_fixture("helper_escape.py")
    assert rule_ids(findings) == {"CN003", "CN004"}
    by_rule = {f.rule: f for f in findings}
    assert by_rule["CN003"].severity == Severity.ERROR
    assert "_compact_locked" in by_rule["CN003"].message
    assert by_rule["CN004"].severity == Severity.WARNING
    assert "_entries" in by_rule["CN004"].message


def test_lock_order_cycle_fixture():
    findings = analyze_fixture("lock_cycle.py")
    assert rule_ids(findings) == {"CN005"}
    assert findings[0].severity == Severity.ERROR
    assert "Auditor._lock" in findings[0].message
    assert "Ledger._lock" in findings[0].message


def test_hold_across_join_fixture():
    findings = analyze_fixture("hold_across_join.py")
    assert rule_ids(findings) == {"CN006"}
    assert findings[0].severity == Severity.WARNING
    assert "join" in findings[0].message


# -- rules without a file fixture ---------------------------------------------------


def test_unknown_lock_name_is_cn007():
    findings = analyze_snippet(
        """
        import threading

        class Mislabeled:
            def __init__(self) -> None:
                self._lock = threading.Lock()
                self.items = []  # guarded-by: _mutex
        """
    )
    assert rule_ids(findings) == {"CN007"}
    assert "_mutex" in findings[0].message


def test_escaping_callback_mutation_is_cn008():
    findings = analyze_snippet(
        """
        import threading

        class Pool:
            def __init__(self) -> None:
                self._lock = threading.Lock()

            def submit_all(self, executor, jobs):
                results = []

                def task(job):
                    results.append(job())

                for job in jobs:
                    executor.submit(task, job)
                return results
        """
    )
    assert rule_ids(findings) == {"CN008"}
    assert "results" in findings[0].message


def test_self_deadlock_on_plain_lock_is_cn005():
    findings = analyze_snippet(
        """
        import threading

        class Reentrant:
            def __init__(self) -> None:
                self._lock = threading.Lock()
                self.count = 0  # guarded-by: _lock

            def outer(self) -> None:
                with self._lock:
                    self.inner()

            def inner(self) -> None:
                with self._lock:
                    self.count += 1
        """
    )
    assert "CN005" in rule_ids(findings)


def test_rlock_reacquisition_is_allowed():
    findings = analyze_snippet(
        """
        import threading

        class Reentrant:
            def __init__(self) -> None:
                self._lock = threading.RLock()
                self.count = 0  # guarded-by: _lock

            def outer(self) -> None:
                with self._lock:
                    self.inner()

            def inner(self) -> None:
                with self._lock:
                    self.count += 1
        """
    )
    assert findings == []


# -- suppression and annotations ----------------------------------------------------


def test_inline_suppression_silences_cn_rule():
    findings = analyze_snippet(
        """
        import threading

        class Cache:
            def __init__(self) -> None:
                self._lock = threading.Lock()
                self.items = {}  # guarded-by: _lock

            def peek(self):
                return self.items.get("x")  # lint: ignore[CN001]
        """
    )
    assert findings == []


def test_requires_lock_comment_matches_suffix_convention():
    """A ``# requires-lock:`` comment and a ``_locked`` suffix both mark a
    helper as lock-required; calling either under the lock is clean."""
    findings = analyze_snippet(
        """
        import threading

        class Store:
            def __init__(self) -> None:
                self._lock = threading.Lock()
                self.items = {}  # guarded-by: _lock

            def _purge(self) -> None:  # requires-lock: _lock
                self.items.clear()

            def _refresh_locked(self) -> None:
                self.items["fresh"] = True

            def reset(self) -> None:
                with self._lock:
                    self._purge()
                    self._refresh_locked()
        """
    )
    assert findings == []


# -- whole-package analysis ---------------------------------------------------------


def test_all_fixtures_together_report_every_rule_once():
    """The fixtures form one package: cross-module analysis must not merge
    or drop findings."""
    paths = sorted(FIXTURES.glob("*.py"))
    assert len(paths) == 5, "fixture set changed; update the tests"
    findings = analyze_concurrency_files(paths)
    assert rule_ids(findings) == {
        "CN001",
        "CN002",
        "CN003",
        "CN004",
        "CN005",
        "CN006",
    }


def test_engine_threaded_modules_are_clean():
    """Regression gate: the annotated engine modules (mapreduce scheduler,
    DFS, telemetry) carry no lockset or lock-order findings."""
    paths = default_threaded_files()
    assert len(paths) >= 10
    findings = analyze_concurrency_files(paths)
    assert findings == [], findings


def test_threaded_modules_list_matches_disk():
    """Every THREADED_MODULES entry must exist — a rename that misses the
    list would silently shrink the CN sweep (make lint runs the same guard
    via scripts/check_threaded_modules.py)."""
    from repro.analysis import missing_threaded_modules

    assert missing_threaded_modules() == []


# -- CLI ----------------------------------------------------------------------------


def test_cli_concurrency_exit_codes(capsys):
    bad = FIXTURES / "bad_unguarded.py"
    good = FIXTURES / "good_guarded.py"

    assert lint_main(["--concurrency", str(good)]) == 0
    capsys.readouterr()
    assert lint_main(["--concurrency", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "CN001" in out and "CN002" in out
    # --ignore downgrades the run to clean.
    assert lint_main(["--concurrency", str(bad), "--ignore", "CN001,CN002"]) == 0
    capsys.readouterr()
    # Warnings alone (CN006) do not fail the run.
    assert lint_main(["--concurrency", str(FIXTURES / "hold_across_join.py")]) == 0


def test_cli_concurrency_default_paths(capsys):
    """With no paths, ``--concurrency`` sweeps the engine's threaded
    modules and exits clean."""
    assert lint_main(["--concurrency"]) == 0
    out = capsys.readouterr().out
    assert "analyzed" in out
    assert has_errors([]) is False
