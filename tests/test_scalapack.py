"""ScaLAPACK baseline: distributed LU, inversion, traffic behaviour."""

import numpy as np
import pytest

from repro.linalg import verify
from repro.mpi import MPIError
from repro.scalapack import ScaLAPACKInverter, scalapack_invert

from conftest import random_invertible


class TestPDGETRF:
    @pytest.mark.parametrize("n, p, b", [(16, 2, 4), (40, 4, 8), (33, 3, 5), (50, 8, 4)])
    def test_factors_reconstruct(self, rng, n, p, b):
        a = random_invertible(rng, n)
        f = ScaLAPACKInverter(nprocs=p, block=b).lu(a)
        assert verify.lu_residual(a, f.lower, f.upper, f.perm) < 1e-10

    def test_matches_numpy_lu_up_to_pivoting(self, rng):
        """Full partial pivoting => same pivot sequence as LAPACK for a
        generic matrix, hence identical factors."""
        from repro.linalg import lu_decompose

        a = random_invertible(rng, 24)
        f = ScaLAPACKInverter(nprocs=3, block=4).lu(a)
        ref = lu_decompose(a)
        assert np.array_equal(f.perm, ref.perm)
        assert np.allclose(f.lower, ref.lower())
        assert np.allclose(f.upper, ref.upper())

    def test_single_process(self, rng):
        a = random_invertible(rng, 20)
        f = ScaLAPACKInverter(nprocs=1, block=6).lu(a)
        assert verify.lu_residual(a, f.lower, f.upper, f.perm) < 1e-10

    def test_singular_detected(self):
        a = np.ones((12, 12))
        with pytest.raises(MPIError):
            ScaLAPACKInverter(nprocs=2, block=4).lu(a)


class TestPDGETRI:
    @pytest.mark.parametrize("n, p, b", [(24, 2, 4), (40, 4, 8), (37, 5, 3)])
    def test_inverse_correct(self, rng, n, p, b):
        a = random_invertible(rng, n)
        res = scalapack_invert(a, nprocs=p, block=b)
        assert res.residual(a) < 1e-9

    def test_matches_numpy(self, rng):
        a = random_invertible(rng, 30)
        res = scalapack_invert(a, nprocs=4, block=4)
        assert np.allclose(res.inverse, np.linalg.inv(a), atol=1e-9)

    def test_block_larger_than_matrix(self, rng):
        a = random_invertible(rng, 10)
        res = scalapack_invert(a, nprocs=2, block=64)
        assert res.residual(a) < 1e-10

    def test_non_square_rejected(self, rng):
        with pytest.raises(ValueError):
            ScaLAPACKInverter().invert(rng.standard_normal((3, 5)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ScaLAPACKInverter(nprocs=0)
        with pytest.raises(ValueError):
            ScaLAPACKInverter(block=0)


class TestTrafficBehaviour:
    def test_traffic_grows_with_process_count(self, rng):
        """Tables 1-2: ScaLAPACK's communication is O(m0 n^2) — the mechanism
        behind Figure 8's crossover."""
        a = random_invertible(rng, 64)
        t = [
            scalapack_invert(a, nprocs=p, block=8).traffic.bytes_sent
            for p in (2, 4, 8)
        ]
        assert t[0] < t[1] < t[2]

    def test_traffic_order_of_magnitude(self, rng):
        """Total traffic should be within small factors of m0 * n^2 * 8."""
        n, p = 64, 4
        a = random_invertible(rng, n)
        res = scalapack_invert(a, nprocs=p, block=8)
        model = p * n * n * 8
        assert model / 4 < res.traffic.bytes_sent < model * 4

    def test_agrees_with_pipeline(self, rng):
        from repro import InversionConfig, invert

        a = random_invertible(rng, 48)
        ours = invert(a, InversionConfig(nb=12, m0=4))
        scala = scalapack_invert(a, nprocs=4, block=8)
        assert np.allclose(ours.inverse, scala.inverse, atol=1e-8)
