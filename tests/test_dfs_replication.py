"""HDFS-style replication maintenance: detection and re-replication."""

import pytest

from repro.dfs import DFS
from repro.dfs.blocks import BlockMissingError


@pytest.fixture
def dfs5() -> DFS:
    return DFS(num_datanodes=5, replication=3, block_size=256, seed=1)


class TestDetection:
    def test_healthy_cluster_has_none(self, dfs5):
        dfs5.write_bytes("/a", b"x" * 1000)
        assert dfs5.under_replicated_blocks() == 0

    def test_dead_node_flags_its_blocks(self, dfs5):
        dfs5.write_bytes("/a", b"x" * 1000)  # 4 blocks of 256
        entry = dfs5.namenode.get_file("/a")
        victim = entry.blocks[0].replicas[0]
        dfs5.blocks.kill_datanode(victim)
        flagged = dfs5.under_replicated_blocks()
        expected = sum(1 for b in entry.blocks if victim in b.replicas)
        assert flagged == expected > 0

    def test_corruption_counts_as_missing_replica(self, dfs5):
        dfs5.write_bytes("/a", b"y" * 100)
        info = dfs5.namenode.get_file("/a").blocks[0]
        dfs5.blocks.corrupt_replica(info, info.replicas[0])
        assert dfs5.under_replicated_blocks() == 1


class TestRereplication:
    def test_restores_target_count(self, dfs5):
        dfs5.write_bytes("/a", b"z" * 500)
        info = dfs5.namenode.get_file("/a").blocks[0]
        dfs5.blocks.kill_datanode(info.replicas[0])
        made = dfs5.rereplicate_all()
        assert made >= 1
        assert dfs5.under_replicated_blocks() == 0
        assert dfs5.blocks.live_replica_count(info) == 3

    def test_accounts_maintenance_traffic(self, dfs5):
        dfs5.write_bytes("/a", b"w" * 1000)
        info = dfs5.namenode.get_file("/a").blocks[0]
        dfs5.blocks.kill_datanode(info.replicas[0])
        before = dfs5.stats.snapshot()
        dfs5.rereplicate_all()
        delta = dfs5.stats.snapshot() - before
        assert delta.bytes_transferred > 0

    def test_survives_rolling_failures(self, dfs5):
        """Kill one replica holder, re-replicate, kill another — data stays
        readable throughout (the HDFS durability story)."""
        payload = b"durable" * 100
        dfs5.write_bytes("/a", payload)
        info = dfs5.namenode.get_file("/a").blocks[0]
        for _ in range(2):
            dfs5.blocks.kill_datanode(info.replicas[0])
            dfs5.rereplicate_all()
            assert dfs5.read_bytes("/a") == payload

    def test_no_source_raises(self, dfs5):
        dfs5.write_bytes("/a", b"gone")
        info = dfs5.namenode.get_file("/a").blocks[0]
        for node in info.replicas:
            dfs5.blocks.kill_datanode(node)
        with pytest.raises(BlockMissingError):
            dfs5.blocks.rereplicate(info)

    def test_idempotent_when_healthy(self, dfs5):
        dfs5.write_bytes("/a", b"fine" * 50)
        assert dfs5.rereplicate_all() == 0

    def test_caps_at_live_node_count(self):
        dfs = DFS(num_datanodes=3, replication=3, seed=2)
        dfs.write_bytes("/a", b"small")
        info = dfs.namenode.get_file("/a").blocks[0]
        dfs.blocks.kill_datanode(info.replicas[0])
        # Only 2 live nodes remain; target degrades to 2, nothing to copy to.
        assert dfs.rereplicate_all() == 0
        assert dfs.under_replicated_blocks() == 0
