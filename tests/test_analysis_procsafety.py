"""Process-safety analyzer: each PS rule fires on its seeded fixture, clean
task code stays silent, and the whole engine package passes — the static
gate the planned ProcessPoolBackend rides on.

Fixture modules live in ``tests/fixtures/procsafety/`` and are analyzed as
source text — they are never imported, so the deliberate leaks and lifetime
bugs in them never execute.
"""

from __future__ import annotations

import pathlib
import textwrap

from repro.analysis import (
    Severity,
    analyze_procsafety_files,
    analyze_procsafety_sources,
    default_procsafety_files,
)
from repro.analysis.cli import main as lint_main

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "procsafety"


def rule_ids(findings):
    return {f.rule for f in findings}


def analyze_fixture(name: str):
    return analyze_procsafety_files([FIXTURES / name])


def analyze_snippet(text: str, filename: str = "snippet.py"):
    return analyze_procsafety_sources([(textwrap.dedent(text), filename)])


# -- fixtures -----------------------------------------------------------------------


def test_good_tasks_fixture_is_clean():
    assert analyze_fixture("good_tasks.py") == []


def test_capture_fixture_fires_ps001_ps002_ps007():
    findings = analyze_fixture("bad_captures.py")
    assert rule_ids(findings) == {"PS001", "PS002", "PS007"}
    assert all(f.severity == Severity.ERROR for f in findings)
    messages = " | ".join(f.message for f in findings)
    assert "progress_lock" in messages
    assert "dfs" in messages
    assert "audit_log" in messages
    assert "ticket_stream" in messages


def test_mutation_fixture_fires_ps003_ps004_ps005():
    findings = analyze_fixture("bad_mutation.py")
    assert rule_ids(findings) == {"PS003", "PS004", "PS005"}
    by_rule: dict[str, list] = {}
    for f in findings:
        by_rule.setdefault(f.rule, []).append(f)
    # PS004: direct slice assignment, the in-place helper, and out=.
    ps004 = " | ".join(f.message for f in by_rule["PS004"])
    assert "_normalize_rows" in ps004
    assert "out= argument" in ps004
    assert len(by_rule["PS004"]) == 3
    # PS005: escape via captured list, via self, and via return.
    ps005 = " | ".join(f.message for f in by_rule["PS005"])
    assert "self.last" in ps005
    assert "returns borrowed view" in ps005
    assert "_sink" in ps005
    assert all(f.severity == Severity.WARNING for f in by_rule["PS005"])


def test_rng_and_shm_fixture_fires_ps006_ps008():
    findings = analyze_fixture("bad_rng_shm.py")
    assert rule_ids(findings) == {"PS006", "PS008"}
    by_rule = {f.rule: f for f in findings}
    assert "np.random.standard_normal" in by_rule["PS006"].message
    assert "shm.close()" in by_rule["PS008"].message


def test_all_fixtures_together_cover_every_rule():
    paths = sorted(FIXTURES.glob("*.py"))
    assert len(paths) == 4, "fixture set changed; update the tests"
    findings = analyze_procsafety_files(paths)
    assert rule_ids(findings) == {
        "PS001", "PS002", "PS003", "PS004", "PS005", "PS006", "PS007", "PS008",
    }


# -- discovery routes ---------------------------------------------------------------


def test_jobconf_factory_captures_are_boundary_checked():
    findings = analyze_snippet(
        """
        import threading
        from repro.mapreduce import JobConf

        wave_lock = threading.Lock()

        def make_job(mapper_cls, splits):
            return JobConf(
                name="leaky-factory",
                mapper_factory=lambda: mapper_cls(wave_lock),
                splits=splits,
            )
        """
    )
    assert rule_ids(findings) == {"PS007"}
    assert "wave_lock" in findings[0].message


def test_before_job_hook_function_is_analyzed():
    findings = analyze_snippet(
        """
        import numpy as np

        def install(runtime):
            def jitter_hook(conf):
                conf.params["jitter"] = float(np.random.random())

            runtime.before_job.append(jitter_hook)
        """
    )
    assert rule_ids(findings) == {"PS006"}


def test_before_job_hook_object_captures_handle():
    findings = analyze_snippet(
        """
        from repro.dfs import DFS

        class Recorder:
            def __init__(self, dfs):
                self.dfs = dfs

        def install(runtime):
            dfs = DFS()
            runtime.before_job.append(Recorder(dfs))
        """
    )
    assert rule_ids(findings) == {"PS002"}
    assert "Recorder" in findings[0].message


def test_task_boundary_annotation_marks_thunks():
    findings = analyze_snippet(
        """
        import threading

        def run_wave(executor, items):
            lock = threading.Lock()
            done = []

            def make_thunk(item):
                def thunk():  # task-boundary
                    with lock:
                        done.append(item)
                return thunk

            return executor.run_all([make_thunk(i) for i in items])
        """
    )
    assert rule_ids(findings) == {"PS007"}
    assert "lock" in findings[0].message


def test_unannotated_thunk_is_not_discovered():
    findings = analyze_snippet(
        """
        import threading

        def run_wave(executor, items):
            lock = threading.Lock()

            def thunk():
                with lock:
                    pass

            return executor.run_all([thunk])
        """
    )
    assert findings == []


# -- rule subtleties ----------------------------------------------------------------


def test_writable_read_and_copies_launder_borrowedness():
    findings = analyze_snippet(
        """
        import numpy as np
        from repro.dfs import formats
        from repro.mapreduce import Mapper

        class Clean(Mapper):
            def map(self, ctx, split):
                own = formats.decode_matrix(ctx.read_bytes("/b"), writable=True)
                own += 1.0
                dup = np.array(ctx.read_matrix("/m"))
                dup[0, 0] = 2.0
                other = ctx.read_matrix("/m2").copy()
                other.fill(0.0)
                ctx.write_matrix("/out", own + dup + other)
        """
    )
    assert findings == []


def test_view_aliases_stay_borrowed():
    findings = analyze_snippet(
        """
        from repro.mapreduce import Mapper

        class Aliasing(Mapper):
            def map(self, ctx, split):
                m = ctx.read_matrix("/m")
                t = m.T
                t[0, 0] = 1.0
                sub = m[2:4]
                sub += 1.0
        """
    )
    assert rule_ids(findings) == {"PS004"}
    assert len(findings) == 2


def test_rebinding_clears_borrowed_state():
    findings = analyze_snippet(
        """
        import numpy as np
        from repro.mapreduce import Mapper

        class Rebinding(Mapper):
            def map(self, ctx, split):
                m = ctx.read_matrix("/m")
                m = m @ m          # product is a fresh array
                m[0, 0] = 1.0      # fine now
        """
    )
    assert findings == []


def test_private_rng_construction_is_clean():
    findings = analyze_snippet(
        """
        import numpy as np
        import random
        from repro.mapreduce import Mapper

        class Seeded(Mapper):
            def map(self, ctx, split):
                rng = np.random.default_rng(split.index)
                local = random.Random(split.index)
                ctx.emit(split.index, rng.random() + local.random())
        """
    )
    assert findings == []


def test_shm_close_after_last_use_is_clean():
    findings = analyze_snippet(
        """
        import numpy as np
        from multiprocessing import shared_memory

        def read_block(name):
            shm = shared_memory.SharedMemory(name=name)
            view = np.frombuffer(shm.buf, dtype=np.float64)
            total = float(view.sum())
            shm.close()
            return total
        """
    )
    assert findings == []


def test_driver_code_is_not_flagged():
    """Only task-boundary code is analyzed: driver-side handle use and
    global RNG are fine."""
    findings = analyze_snippet(
        """
        import numpy as np
        from repro.dfs import DFS

        def main():
            dfs = DFS()
            dfs.write_bytes("/in", np.random.bytes(64))
        """
    )
    assert findings == []


# -- suppression --------------------------------------------------------------------


def test_inline_suppression_silences_ps_rule():
    findings = analyze_snippet(
        """
        from repro.mapreduce import Mapper

        class Documented(Mapper):
            def map(self, ctx, split):
                m = ctx.read_matrix("/m")
                return m  # lint: ignore[PS005]
        """
    )
    assert findings == []


# -- whole-package regression --------------------------------------------------------


def test_engine_package_is_procsafety_clean():
    """The ProcessPoolBackend gate: every module of the repro package passes
    the analyzer (with its documented inline exceptions)."""
    paths = default_procsafety_files()
    assert len(paths) >= 100
    findings = analyze_procsafety_files(paths)
    assert findings == [], findings


def test_default_sweep_skips_pycache_artifacts():
    """Stale ``__pycache__`` debris (e.g. a ``.py`` dropped there by a
    build tool) must never enter the self-check discovery sweep."""
    paths = default_procsafety_files()
    assert paths
    assert all("__pycache__" not in p.parts for p in paths)


def test_examples_and_experiments_are_procsafety_clean():
    root = pathlib.Path(__file__).resolve().parent.parent
    paths = sorted((root / "examples").glob("*.py"))
    paths += sorted((root / "src" / "repro" / "experiments").glob("*.py"))
    assert len(paths) >= 10
    assert analyze_procsafety_files(paths) == []


# -- CLI ----------------------------------------------------------------------------


def test_cli_procsafety_exit_codes(capsys):
    bad = FIXTURES / "bad_captures.py"
    good = FIXTURES / "good_tasks.py"

    assert lint_main(["--procsafety", str(good)]) == 0
    capsys.readouterr()
    assert lint_main(["--procsafety", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "PS001" in out and "PS002" in out and "PS007" in out
    # --ignore downgrades the run to clean.
    assert (
        lint_main(
            ["--procsafety", str(bad), "--ignore", "PS001,PS002,PS007"]
        )
        == 0
    )
    capsys.readouterr()
    # Warnings alone (PS005) do not fail the run.
    snippet = FIXTURES / "bad_mutation.py"
    assert (
        lint_main(["--procsafety", str(snippet), "--ignore", "PS003,PS004"])
        == 0
    )


def test_cli_procsafety_default_paths(capsys):
    """With no paths, ``--procsafety`` sweeps the whole package and exits
    clean."""
    assert lint_main(["--procsafety"]) == 0
    out = capsys.readouterr().out
    assert "analyzed" in out
