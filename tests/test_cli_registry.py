"""The declarative subcommand registry behind ``python -m repro``."""

import argparse
import pathlib
import subprocess
import sys

import pytest

from repro.cli import SUBSYSTEMS, CommandRegistry, build_registry

GOLDEN = pathlib.Path(__file__).parent / "golden" / "repro_help.txt"


class TestRegistry:
    def test_regular_command_dispatch(self):
        registry = CommandRegistry()
        seen = {}

        def run(args: argparse.Namespace) -> int:
            seen["n"] = args.n
            return 7

        registry.add(
            "demo",
            run,
            help="demo",
            configure=lambda p: p.add_argument("--n", type=int, default=3),
        )
        assert registry.dispatch(["demo", "--n", "9"]) == 7
        assert seen == {"n": 9}

    def test_passthrough_owns_argv(self):
        """A passthrough command receives its argv verbatim — flags the
        top-level parser has never heard of flow through untouched."""
        registry = CommandRegistry()
        captured = {}

        def main(argv: list[str]) -> int:
            captured["argv"] = argv
            return 0

        registry.add_passthrough("raw", main, help="raw")
        assert registry.dispatch(["raw", "--no-such-flag", "x"]) == 0
        assert captured["argv"] == ["--no-such-flag", "x"]

    def test_duplicate_name_rejected(self):
        registry = CommandRegistry()
        registry.add("a", lambda args: 0, help="a")
        with pytest.raises(ValueError, match="duplicate"):
            registry.add_passthrough("a", lambda argv: 0, help="a")

    def test_registration_order_is_display_order(self):
        names = [c.name for c in build_registry().commands]
        assert names == [
            "invert",
            "describe",
            "lint",
            "chaos",
            "dfs",
            "experiments",
            "table",
            "figure",
            "section",
            "study",
            "trace",
        ]

    def test_every_subsystem_contributes(self):
        """Each module in SUBSYSTEMS registers at least one command."""
        for module_name in SUBSYSTEMS:
            registry = build_registry([module_name])
            assert registry.commands, module_name


class TestGoldenHelp:
    def test_help_matches_golden(self):
        """``python -m repro --help`` is a public surface; lock it."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": str(
                    pathlib.Path(__file__).parent.parent / "src"
                ),
                "COLUMNS": "80",
                "PATH": "/usr/bin:/bin",
            },
        )
        assert proc.returncode == 0
        assert proc.stdout == GOLDEN.read_text()
