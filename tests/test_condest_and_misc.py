"""Condition estimation, plan description, and the newest Spark ops."""

import numpy as np
import pytest

from repro.linalg import (
    condition_estimate,
    estimate_inverse_one_norm,
    expected_residual_bound,
    lu_decompose,
    one_norm,
)
from repro.workloads import hilbert, ill_conditioned, orthogonal

from conftest import random_invertible


class TestOneNorm:
    def test_definition(self):
        a = np.array([[1.0, -4.0], [2.0, 1.0]])
        assert one_norm(a) == 5.0

    def test_identity(self):
        assert one_norm(np.eye(7)) == 1.0


class TestConditionEstimate:
    def test_identity_condition_one(self):
        assert condition_estimate(np.eye(16)) == pytest.approx(1.0)

    def test_orthogonal_well_conditioned(self):
        q = orthogonal(24, seed=1)
        # 1-norm condition of an orthogonal matrix <= n but is O(1)-ish.
        assert condition_estimate(q) < 24

    def test_matches_true_condition_within_small_factor(self, rng):
        a = random_invertible(rng, 30)
        true_cond = one_norm(a) * one_norm(np.linalg.inv(a))
        est = condition_estimate(a)
        assert est <= true_cond * 1.01  # estimator never overshoots much
        assert est > true_cond / 10  # and is within a small factor

    @pytest.mark.parametrize("target", [1e4, 1e8, 1e12])
    def test_tracks_designed_conditioning(self, target):
        a = ill_conditioned(32, condition=target, seed=2)
        est = condition_estimate(a)
        assert target / 100 < est < target * 100

    def test_hilbert_flagged_as_terrible(self):
        assert condition_estimate(hilbert(10)) > 1e10

    def test_reuses_supplied_factors(self, rng):
        a = random_invertible(rng, 20)
        lu = lu_decompose(a)
        assert condition_estimate(a, lu) == condition_estimate(a)

    def test_inverse_norm_estimate_is_lower_bound(self, rng):
        a = random_invertible(rng, 25)
        lu = lu_decompose(a)
        est = estimate_inverse_one_norm(lu)
        assert est <= one_norm(np.linalg.inv(a)) * 1.01

    def test_expected_residual_bound_predicts_section72(self, rng):
        """The estimator explains WHY Section 7.2's 1e-5 bound holds for the
        paper's random matrices: cond * eps is tiny."""
        from repro import InversionConfig, invert
        from repro.workloads import random_dense

        a = random_dense(64, seed=3)
        bound = expected_residual_bound(a)
        res = invert(a, InversionConfig(nb=16, m0=4))
        assert bound < 1e-5
        assert res.residual(a) < max(100 * bound, 1e-12)


class TestPlanDescribe:
    def test_describe_contains_tree(self):
        from repro.inversion import InversionPlan

        plan = InversionPlan(n=256, nb=64, m0=4)
        text = plan.describe()
        assert "n=256" in text and "jobs=5" in text
        assert "/Root/A1" in text and "master LU" in text
        assert text.count("leaf") == len(plan.tree.leaves())


class TestNewSparkOps:
    def test_glom(self):
        from repro.spark import SparkContext

        sc = SparkContext()
        parts = sc.parallelize(range(6), 3).glom().collect()
        assert parts == [[0, 1], [2, 3], [4, 5]]

    def test_zip_with_index(self):
        from repro.spark import SparkContext

        sc = SparkContext()
        out = sc.parallelize("abcd", 3).zip_with_index().collect()
        assert out == [("a", 0), ("b", 1), ("c", 2), ("d", 3)]

    def test_aggregate(self):
        from repro.spark import SparkContext

        sc = SparkContext()
        total, count = sc.parallelize(range(10), 4).aggregate(
            (0, 0),
            lambda acc, x: (acc[0] + x, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        assert (total, count) == (45, 10)
