"""Adaptive backend selection (Section 8 future work)."""

import numpy as np
import pytest

from repro.adaptive import adaptive_invert, choose_backend, scalapack_fits
from repro.cluster import ClusterSpec, EC2_MEDIUM

from conftest import random_invertible


class TestDecisions:
    def test_tiny_matrix_single_node(self):
        d = choose_backend(1000, ClusterSpec(64))
        assert d.backend == "single-node"
        assert "cutoff" in d.reason

    def test_midsize_small_cluster_scalapack(self):
        """Figure 8's small-scale regime: ScaLAPACK wins."""
        d = choose_backend(20480, ClusterSpec(8))
        assert d.backend == "scalapack"

    def test_large_matrix_large_cluster_mapreduce(self):
        """Figure 8's high-scale regime for the biggest matrices."""
        d = choose_backend(40960, ClusterSpec(64))
        assert d.backend == "mapreduce"

    def test_memory_gate_forces_mapreduce(self):
        """An 80 GB matrix on an 8-node medium cluster can't fit ScaLAPACK's
        working set -> MapReduce regardless of speed models."""
        d = choose_backend(102400, ClusterSpec(8))
        assert d.backend == "mapreduce"
        assert not d.scalapack_fits_memory
        assert "memory" in d.reason

    def test_predictions_exposed(self):
        d = choose_backend(20480, ClusterSpec(16))
        assert set(d.predicted_seconds) == {"mapreduce", "scalapack"}
        assert all(v > 0 for v in d.predicted_seconds.values())

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            choose_backend(0, ClusterSpec(4))

    def test_scalapack_fits_boundary(self):
        cluster = ClusterSpec(1, EC2_MEDIUM)  # 3.7 GB
        assert scalapack_fits(10_000, cluster)  # 1.2 GB working set
        assert not scalapack_fits(30_000, cluster)  # 10.8 GB working set


class TestExecution:
    def test_adaptive_runs_chosen_backend_correctly(self, rng):
        a = random_invertible(rng, 96)
        res = adaptive_invert(a, ClusterSpec(16))
        assert res.decision.backend in ("mapreduce", "scalapack")
        assert np.allclose(res.inverse @ a, np.eye(96), atol=1e-7)

    def test_small_input_goes_single_node(self, rng):
        a = random_invertible(rng, 16)
        res = adaptive_invert(a, ClusterSpec(16))
        assert res.decision.backend == "single-node"
        assert np.allclose(res.inverse, np.linalg.inv(a))

    def test_forced_mapreduce_via_params(self, rng):
        """Explicit nb/m0 with a huge modeled order difference still executes
        correctly through the pipeline when MapReduce is chosen."""
        a = random_invertible(rng, 80)
        res = adaptive_invert(a, ClusterSpec(64), nb=10, m0=4)
        assert np.allclose(res.inverse @ a, np.eye(80), atol=1e-7)

    def test_non_square_rejected(self, rng):
        with pytest.raises(ValueError):
            adaptive_invert(rng.standard_normal((3, 5)), ClusterSpec(4))
