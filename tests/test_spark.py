"""The Spark-style RDD engine: transformations, shuffles, caching, lineage."""

import numpy as np
import pytest

from repro.spark import (
    SparkContext,
    SparkInversionConfig,
    SparkMatrixInverter,
    spark_invert,
)

from conftest import random_invertible


@pytest.fixture
def sc() -> SparkContext:
    return SparkContext(default_parallelism=4)


class TestTransformations:
    def test_parallelize_collect_roundtrip(self, sc):
        data = list(range(17))
        assert sc.parallelize(data).collect() == data

    def test_partition_count(self, sc):
        rdd = sc.parallelize(range(10), num_partitions=3)
        assert rdd.num_partitions == 3
        assert sum(len(rdd.partition(i)) for i in range(3)) == 10

    def test_map(self, sc):
        assert sc.range(5).map(lambda x: x * x).collect() == [0, 1, 4, 9, 16]

    def test_flat_map(self, sc):
        out = sc.parallelize(["a b", "c"]).flat_map(str.split).collect()
        assert out == ["a", "b", "c"]

    def test_filter(self, sc):
        assert sc.range(10).filter(lambda x: x % 2 == 0).count() == 5

    def test_map_partitions(self, sc):
        sums = sc.range(8, num_partitions=2).map_partitions(lambda p: [sum(p)]).collect()
        assert sum(sums) == 28 and len(sums) == 2

    def test_union(self, sc):
        a = sc.parallelize([1, 2])
        b = sc.parallelize([3])
        assert sorted(a.union(b).collect()) == [1, 2, 3]
        assert a.union(b).num_partitions == a.num_partitions + b.num_partitions

    def test_key_by(self, sc):
        assert sc.parallelize(["xx", "y"]).key_by(len).collect() == [(2, "xx"), (1, "y")]

    def test_take(self, sc):
        assert sc.range(100, num_partitions=10).take(5) == [0, 1, 2, 3, 4]

    def test_reduce(self, sc):
        assert sc.range(10).reduce(lambda a, b: a + b) == 45

    def test_reduce_empty_raises(self, sc):
        with pytest.raises(ValueError):
            sc.parallelize([]).reduce(lambda a, b: a + b)


class TestShuffles:
    def test_group_by_key(self, sc):
        pairs = [("a", 1), ("b", 2), ("a", 3)]
        out = sc.parallelize(pairs, 2).group_by_key(2).collect_as_map()
        assert out == {"a": [1, 3], "b": [2]}

    def test_reduce_by_key(self, sc):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("b", 5)]
        out = sc.parallelize(pairs, 3).reduce_by_key(lambda x, y: x + y).collect_as_map()
        assert out == {"a": 4, "b": 7}

    def test_wordcount(self, sc):
        text = ["the quick fox", "the dog", "quick quick"]
        counts = (
            sc.parallelize(text)
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect_as_map()
        )
        assert counts == {"the": 2, "quick": 3, "fox": 1, "dog": 1}

    def test_join(self, sc):
        left = sc.parallelize([(1, "a"), (2, "b")])
        right = sc.parallelize([(1, "x"), (1, "y"), (3, "z")])
        out = sorted(left.join(right).collect())
        assert out == [(1, ("a", "x")), (1, ("a", "y"))]

    def test_shuffle_bytes_counted(self, sc):
        sc.parallelize([(i % 3, i) for i in range(100)], 4).group_by_key(3).collect()
        assert sc.metrics.shuffle_bytes > 0

    def test_combiner_shrinks_shuffle(self):
        data = [(i % 5, 1) for i in range(1000)]
        sc1 = SparkContext()
        sc1.parallelize(data, 4).group_by_key(4).collect()
        sc2 = SparkContext()
        sc2.parallelize(data, 4).reduce_by_key(lambda a, b: a + b, 4).collect()
        # NB: in this single-process engine both routes scan parent output;
        # the combiner merges values early so grouped payloads shrink.
        assert sc2.metrics.shuffle_bytes <= sc1.metrics.shuffle_bytes


class TestCachingAndLineage:
    def test_cache_avoids_recompute(self, sc):
        calls = {"n": 0}

        def counted(x):
            calls["n"] += 1
            return x

        rdd = sc.range(8, 2).map(counted).cache()
        rdd.collect()
        rdd.collect()
        assert calls["n"] == 8  # second collect served from cache
        assert sc.metrics.cache_hits == 2

    def test_uncached_recomputes(self, sc):
        calls = {"n": 0}
        rdd = sc.range(4, 1).map(lambda x: calls.__setitem__("n", calls["n"] + 1) or x)
        rdd.collect()
        rdd.collect()
        assert calls["n"] == 8

    def test_evict_triggers_lineage_recompute(self, sc):
        rdd = sc.range(12, 3).map(lambda x: x * 2).cache()
        first = rdd.collect()
        assert sc.evict(rdd, 1)
        assert rdd.collect() == first
        assert sc.metrics.recomputations == 1

    def test_evict_missing_partition_false(self, sc):
        rdd = sc.range(4, 2).cache()
        assert not sc.evict(rdd, 0)  # never computed yet

    def test_kill_executor_evicts_its_partitions(self, sc):
        rdd = sc.range(20, 4).cache()
        before = rdd.collect()
        killed = sc.kill_executor(0, num_executors=2)
        assert killed == 2  # partitions 0 and 2
        assert rdd.collect() == before
        assert sc.metrics.recomputations == 2

    def test_lineage_through_chain(self, sc):
        base = sc.range(6, 2).cache()
        derived = base.map(lambda x: x + 1).cache()
        derived.collect()
        sc.evict(derived, 0)
        sc.evict(base, 0)
        assert derived.collect() == [1, 2, 3, 4, 5, 6]

    def test_partition_index_validated(self, sc):
        with pytest.raises(IndexError):
            sc.range(4, 2).partition(5)


class TestExtraOps:
    def test_map_values(self, sc):
        out = sc.parallelize([("a", 1), ("b", 2)]).map_values(lambda v: v * 10)
        assert out.collect() == [("a", 10), ("b", 20)]

    def test_distinct(self, sc):
        assert sorted(sc.parallelize([3, 1, 3, 2, 1], 3).distinct().collect()) == [1, 2, 3]

    def test_count_by_key(self, sc):
        rdd = sc.parallelize([("x", 1), ("y", 2), ("x", 3)])
        assert rdd.count_by_key() == {"x": 2, "y": 1}

    def test_lookup(self, sc):
        rdd = sc.parallelize([("x", 1), ("y", 2), ("x", 3)])
        assert rdd.lookup("x") == [1, 3]
        assert rdd.lookup("z") == []

    def test_sort_by(self, sc):
        rdd = sc.parallelize([("b", 2), ("a", 9), ("c", 1)])
        assert rdd.sort_by(lambda kv: kv[1]) == [("c", 1), ("b", 2), ("a", 9)]
        assert rdd.sort_by(lambda kv: kv[0], reverse=True)[0] == ("c", 1)


class TestBroadcast:
    def test_broadcast_value_and_accounting(self, sc):
        b = sc.broadcast(np.zeros((10, 10)))
        assert b.nbytes == 800
        assert sc.metrics.broadcast_bytes == 800
        assert sc.range(3).map(lambda i: b.value.shape[0]).collect() == [10, 10, 10]


class TestSparkInversion:
    @pytest.mark.parametrize(
        "n, nb, chunks", [(40, 16, 4), (64, 16, 4), (65, 16, 3), (100, 25, 5)]
    )
    def test_inverse_matches_numpy(self, rng, n, nb, chunks):
        a = random_invertible(rng, n)
        res = spark_invert(a, SparkInversionConfig(nb=nb, chunks=chunks))
        assert np.allclose(res.inverse, np.linalg.inv(a), atol=1e-8)

    def test_matches_mapreduce_pipeline(self, rng):
        from repro import InversionConfig, invert

        a = random_invertible(rng, 72)
        hadoop = invert(a, InversionConfig(nb=16, m0=4))
        spark = spark_invert(a, SparkInversionConfig(nb=16, chunks=4))
        assert np.allclose(hadoop.inverse, spark.inverse, atol=1e-9)

    def test_external_io_is_input_plus_output_only(self, rng):
        """The Section 8 claim: intermediates stay in memory, so external
        I/O is one matrix in, one matrix out."""
        n = 64
        a = random_invertible(rng, n)
        res = spark_invert(a, SparkInversionConfig(nb=16, chunks=4))
        assert res.external_bytes_read == a.nbytes
        assert res.external_bytes_written == a.nbytes
        assert res.cached_partitions > 0

    def test_spark_reads_less_external_than_hadoop(self, rng):
        from repro import InversionConfig, invert

        a = random_invertible(rng, 96)
        hadoop = invert(a, InversionConfig(nb=24, m0=4))
        spark = spark_invert(a, SparkInversionConfig(nb=24, chunks=4))
        assert spark.external_bytes_read < hadoop.io.bytes_read / 5

    def test_survives_cached_partition_loss(self, rng):
        """Lineage-based fault tolerance end-to-end: evicting intermediate
        partitions between runs does not change the answer."""
        sc = SparkContext()
        inverter = SparkMatrixInverter(SparkInversionConfig(nb=16, chunks=4), sc=sc)
        a = random_invertible(rng, 64)
        first = inverter.invert(a)
        l2 = inverter.intermediates["/Root/L2"]
        assert sc.evict(l2, 0)
        assert np.array_equal(
            sorted(x[0] for x in l2.collect()), sorted(x[0] for x in l2.collect())
        )
        assert first.residual(a) < 1e-9
        assert sc.metrics.recomputations >= 1

    def test_non_square_rejected(self, rng):
        with pytest.raises(ValueError):
            spark_invert(rng.standard_normal((3, 4)))

    def test_single_leaf_path(self, rng):
        a = random_invertible(rng, 20)
        res = spark_invert(a, SparkInversionConfig(nb=64, chunks=2))
        assert res.residual(a) < 1e-10
