"""Single-node LU decomposition (Algorithm 1)."""

import numpy as np
import pytest

from repro.linalg import lu_decompose, solve_lu
from repro.linalg.lu import SingularMatrixError, lu_flop_count, lu_reconstruct
from repro.linalg import permutation, verify

from conftest import random_invertible


class TestFactorization:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 17, 64])
    def test_pa_equals_lu(self, rng, n):
        a = random_invertible(rng, n)
        res = lu_decompose(a)
        assert verify.lu_residual(a, res.lower(), res.upper(), res.perm) < 1e-10

    def test_factors_have_right_shape(self, rng):
        a = random_invertible(rng, 8)
        res = lu_decompose(a)
        lower, upper = res.lower(), res.upper()
        assert np.allclose(np.triu(lower, k=1), 0)
        assert np.allclose(np.tril(upper, k=-1), 0)
        assert np.allclose(np.diag(lower), 1.0)

    def test_perm_is_permutation(self, rng):
        a = random_invertible(rng, 20)
        res = lu_decompose(a)
        assert permutation.is_permutation(res.perm)

    def test_input_not_modified(self, rng):
        a = random_invertible(rng, 10)
        copy = a.copy()
        lu_decompose(a)
        assert np.array_equal(a, copy)

    def test_identity_factors_trivially(self):
        res = lu_decompose(np.eye(5))
        assert np.array_equal(res.lower(), np.eye(5))
        assert np.array_equal(res.upper(), np.eye(5))
        assert np.array_equal(res.perm, np.arange(5))

    def test_already_triangular_input(self):
        u = np.triu(np.arange(1.0, 17.0).reshape(4, 4)) + np.eye(4)
        res = lu_decompose(u, pivot=False)
        assert np.allclose(res.upper(), u)

    def test_reconstruct_helper(self, rng):
        a = random_invertible(rng, 6)
        res = lu_decompose(a)
        assert np.allclose(lu_reconstruct(res), permutation.apply_rows(res.perm, a))


class TestPivoting:
    def test_pivoting_selects_column_max(self):
        a = np.array([[1e-12, 1.0], [1.0, 1.0]])
        res = lu_decompose(a)
        assert res.perm[0] == 1  # the big row was swapped up

    def test_pivoting_rescues_zero_leading_element(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        res = lu_decompose(a)
        assert verify.lu_residual(a, res.lower(), res.upper(), res.perm) == 0.0

    def test_no_pivot_fails_on_zero_leading_element(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(SingularMatrixError):
            lu_decompose(a, pivot=False)

    def test_pivoting_improves_accuracy(self, rng):
        """The numerical motivation of Section 4.1."""
        n = 60
        a = random_invertible(rng, n)
        a[0, 0] = 1e-14  # poison the leading pivot
        res_piv = lu_decompose(a, pivot=True)
        res_nopiv = lu_decompose(a, pivot=False)
        err_piv = verify.lu_residual(a, res_piv.lower(), res_piv.upper(), res_piv.perm)
        err_nopiv = verify.lu_residual(
            a, res_nopiv.lower(), res_nopiv.upper(), res_nopiv.perm
        )
        assert err_piv < err_nopiv / 1e3


class TestErrors:
    def test_singular_matrix_detected(self):
        a = np.ones((4, 4))
        with pytest.raises(SingularMatrixError):
            lu_decompose(a)

    def test_non_square_rejected(self, rng):
        with pytest.raises(ValueError, match="square"):
            lu_decompose(rng.standard_normal((3, 4)))

    def test_pivot_tol_treats_small_as_zero(self):
        a = np.diag([1.0, 1e-20])
        with pytest.raises(SingularMatrixError):
            lu_decompose(a, pivot_tol=1e-12)


class TestSolve:
    def test_solve_single_rhs(self, rng):
        a = random_invertible(rng, 12)
        x_true = rng.standard_normal(12)
        res = lu_decompose(a)
        x = solve_lu(res, a @ x_true)
        assert np.allclose(x, x_true)

    def test_solve_multiple_rhs(self, rng):
        a = random_invertible(rng, 10)
        x_true = rng.standard_normal((10, 3))
        res = lu_decompose(a)
        x = solve_lu(res, a @ x_true)
        assert np.allclose(x, x_true)


class TestAccounting:
    def test_flop_count(self):
        assert lu_flop_count(10) == pytest.approx(1000 / 3)

    def test_result_flops_matches_formula(self, rng):
        res = lu_decompose(random_invertible(rng, 9))
        assert res.flops() == lu_flop_count(9)
