"""End-to-end coverage of the processes backend: shared-memory DFS export,
write-back through the commit protocol, crash/timeout recovery, counter
merge-back, and shared-memory lifetime hygiene.
"""

from __future__ import annotations

import glob
import os
import pickle

import pytest

from repro.dfs import DFS, fsck
from repro.dfs.shm import (
    REGISTRY,
    SEGMENT_PREFIX,
    ShmExporter,
    SharedDFSView,
)
from repro.inversion import InversionConfig, MatrixInverter
from repro.mapreduce import (
    Counters,
    DelayAttempt,
    JobConf,
    Mapper,
    MapReduceRuntime,
    Reducer,
    RetryPolicy,
    RuntimeConfig,
    ScriptedFault,
    TaskFactory,
    TaskKind,
    TaskSerializationError,
    splits_for_workers,
)
from repro.mapreduce.counters import FILESYSTEM_GROUP, BYTES_READ
from repro.mapreduce.types import TaskAttemptId, TaskId, JobId

from conftest import random_invertible


def leaked_dev_shm() -> list[str]:
    """Segment files this package left behind in /dev/shm (should be [])."""
    return sorted(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


@pytest.fixture
def process_runtime():
    dfs = DFS(num_datanodes=4, replication=3, seed=7)
    rt = MapReduceRuntime(
        dfs=dfs, config=RuntimeConfig(num_workers=2, executor="processes")
    )
    yield rt
    rt.shutdown()


class EchoMapper(Mapper):
    def map(self, ctx, split):
        ctx.emit(split.payload, split.payload * 10)


class SumReducer(Reducer):
    def reduce(self, ctx, key, values):
        ctx.emit(key, sum(values))


class ReadWriteMapper(Mapper):
    """Reads a shared input through the shm view, writes per-task output."""

    def map(self, ctx, split):
        data = ctx.read_bytes("/in/shared.bin")
        ctx.write_bytes(f"/out/part-{split.payload}", data[: split.payload + 1])
        ctx.emit(0, len(data))


class BigOutputMapper(Mapper):
    """Stages well over the inline limit, forcing shm result transport."""

    def map(self, ctx, split):
        ctx.write_bytes(f"/big/part-{split.payload}", bytes(256 * 1024))
        ctx.emit(0, 1)


class CrashOnceMapper(Mapper):
    """Hard-kills its worker process on the first attempt (no exception,
    no cleanup — the moral equivalent of an OOM kill)."""

    def map(self, ctx, split):
        if ctx.attempt_id.attempt == 0:
            os._exit(13)
        ctx.write_text(f"/crashy/recovered-{split.payload}", "ok")


class TestEndToEnd:
    def test_small_job_runs_and_merges_counters(self, process_runtime):
        conf = JobConf(
            name="echo",
            mapper_factory=EchoMapper,
            reducer_factory=SumReducer,
            splits=splits_for_workers(3),
            num_reduce_tasks=2,
        )
        result = process_runtime.run_job(conf)
        assert result.succeeded
        emitted = dict(
            pair for pairs in result.reduce_outputs.values() for pair in pairs
        )
        assert emitted == {0: 0, 1: 10, 2: 20}
        # Counters came back across the process boundary and were merged.
        assert result.counters.value(FILESYSTEM_GROUP, BYTES_READ) >= 0
        assert result.attempts_launched >= 3

    def test_reads_and_writes_cross_the_boundary(self, process_runtime):
        dfs = process_runtime.dfs
        payload = bytes(range(256)) * 4
        dfs.write_bytes("/in/shared.bin", payload)
        conf = JobConf(
            name="rw",
            mapper_factory=ReadWriteMapper,
            reducer_factory=SumReducer,
            splits=splits_for_workers(3),
        )
        result = process_runtime.run_job(conf)
        assert result.succeeded
        for i in range(3):
            assert dfs.read_bytes(f"/out/part-{i}") == payload[: i + 1]
        (pairs,) = result.reduce_outputs.values()
        assert pairs == [(0, 3 * len(payload))]

    def test_large_staged_payload_travels_via_shm(self, process_runtime):
        dfs = process_runtime.dfs
        conf = JobConf(
            name="big",
            mapper_factory=BigOutputMapper,
            splits=splits_for_workers(2),
        )
        process_runtime.run_job(conf)
        for i in range(2):
            assert dfs.file_size(f"/big/part-{i}") == 256 * 1024
        # The adopted result segments were unlinked after landing.
        assert leaked_dev_shm() == []

    def test_inversion_pipeline_under_processes(self, rng):
        n = 48
        a = random_invertible(rng, n)
        inverter = MatrixInverter(
            config=InversionConfig(nb=16, m0=2, executor="processes")
        )
        try:
            result = inverter.invert(a)
            assert result.residual(a) < 1e-8
        finally:
            inverter.close()
        assert REGISTRY.live() == {}
        assert leaked_dev_shm() == []


class TestFaultRecovery:
    def test_child_crash_mid_attempt_retries_and_stays_clean(
        self, process_runtime
    ):
        conf = JobConf(
            name="crashy",
            mapper_factory=CrashOnceMapper,
            splits=splits_for_workers(2),
            max_attempts=3,
        )
        result = process_runtime.run_job(conf)
        assert result.succeeded
        assert result.attempts_failed >= 1
        for i in range(2):
            assert process_runtime.dfs.read_text(f"/crashy/recovered-{i}") == "ok"
        # The kill left no commit debris: nothing staged, nothing orphaned.
        report = fsck(process_runtime.dfs, repair=False)
        assert report.clean, [str(i) for i in report.issues]

    def test_hung_attempt_killed_and_retried(self):
        dfs = DFS(num_datanodes=4, replication=3, seed=7)
        rt = MapReduceRuntime(
            dfs=dfs,
            config=RuntimeConfig(num_workers=2, executor="processes"),
            fault_policy=DelayAttempt(
                seconds=10.0, kind=TaskKind.MAP, attempts_below=1
            ),
        )
        try:
            conf = JobConf(
                name="hung",
                mapper_factory=EchoMapper,
                splits=splits_for_workers(2),
                retry_policy=RetryPolicy(attempt_deadline=0.4),
                max_attempts=3,
            )
            result = rt.run_job(conf)
            assert result.succeeded
            assert result.attempts_timed_out >= 1
        finally:
            rt.shutdown()
        assert REGISTRY.live() == {}
        assert leaked_dev_shm() == []

    def test_unpicklable_job_fails_fast(self, process_runtime):
        secret = object()
        conf = JobConf(
            name="lambda-job",
            mapper_factory=lambda: EchoMapper(),  # closure: cannot pickle
            splits=splits_for_workers(2),
            params={"capture": secret},
        )
        with pytest.raises(TaskSerializationError, match="procsafety"):
            process_runtime.run_job(conf)


class TestShmLifetime:
    def test_exporter_reuses_unchanged_generations(self, dfs):
        dfs.write_bytes("/a", b"alpha")
        dfs.write_bytes("/b", b"beta")
        exporter = ShmExporter(dfs)
        try:
            m1 = exporter.sync()
            m2 = exporter.sync()
            assert m1.files == m2.files  # nothing re-exported
            assert exporter.segment_count == 1
            dfs.write_bytes("/b", b"beta-2")
            m3 = exporter.sync()
            assert m3.files["/a"] == m1.files["/a"]  # generation unchanged
            assert m3.files["/b"] != m1.files["/b"]
            assert exporter.segment_count == 2
        finally:
            exporter.close()
        assert exporter.segment_count == 0
        assert leaked_dev_shm() == []

    def test_compaction_drops_garbage(self, dfs):
        dfs.write_bytes("/x", bytes(1000))
        exporter = ShmExporter(dfs, compact_garbage_bytes=500)
        try:
            exporter.sync()
            dfs.write_bytes("/x", b"fresh")  # orphans 1000 bytes > 500
            exporter.sync()
            # Compaction dropped every segment; the next sync re-exports
            # the live set from scratch into a single fresh segment.
            assert exporter.segment_count == 0
            manifest = exporter.sync()
            assert exporter.segment_count == 1
            view = SharedDFSView(manifest)
            try:
                assert view.read_bytes("/x") == b"fresh"
            finally:
                view.close()
        finally:
            exporter.close()
        assert leaked_dev_shm() == []

    def test_view_serves_bytes_and_errors(self, dfs):
        dfs.write_bytes("/d/file.bin", b"payload")
        exporter = ShmExporter(dfs)
        try:
            manifest = exporter.sync()
            view = SharedDFSView(manifest)
            try:
                assert view.read_bytes("/d/file.bin") == b"payload"
                assert view.file_size("/d/file.bin") == 7
                assert view.read_range("/d/file.bin", 0, 3) == b"pay"
                assert view.is_dir("/d")
                assert view.list_dir("/d") == ["file.bin"]
                assert view.exists("/d/file.bin")
                assert not view.exists("/nope")
                with pytest.raises(IOError):
                    view.read_bytes("/nope")
            finally:
                view.close()
        finally:
            exporter.close()
        assert REGISTRY.live() == {}


class TestPicklability:
    def test_task_factory_pickles_and_instantiates(self):
        factory = TaskFactory(EchoMapper)
        clone = pickle.loads(pickle.dumps(factory))
        assert isinstance(clone(), EchoMapper)
        assert clone() is not clone()  # fresh instance per call

    def test_counters_pickle_roundtrip(self):
        c = Counters()
        c.increment("g", "n", 5)
        c.increment("g2", "m", 2)
        clone = pickle.loads(pickle.dumps(c))
        assert clone.as_dict() == c.as_dict()
        clone.increment("g", "n", 1)  # lock reconstructed and functional
        assert clone.value("g", "n") == 6

    def test_trace_config_pickles_without_live_tracer(self):
        # A chaos/trace run materializes the cached Tracer (locks, exporter
        # sinks) before the job confs are built; that cache must not ride
        # into the process-backend pickle probe (it sank the whole chaos
        # battery under --executor processes once).
        from repro.telemetry import TraceConfig

        cfg = TraceConfig(trace_id="t")
        tracer = cfg.tracer()
        clone = pickle.loads(pickle.dumps(cfg))
        assert clone.trace_id == "t"
        assert clone._tracer is None  # re-created lazily, driver-side only
        assert cfg.tracer() is tracer  # the original cache is untouched

    def test_scripted_fault_is_planned_driver_side(self):
        attempt = TaskAttemptId(
            task=TaskId(job=JobId(1), kind=TaskKind.MAP, index=0), attempt=0
        )
        policy = DelayAttempt(seconds=0.5, attempts_below=1)
        directive = policy.plan(attempt, 0)
        assert directive == ScriptedFault(delay_seconds=0.5)
        clone = pickle.loads(pickle.dumps(directive))
        assert clone == directive
        retry = TaskAttemptId(task=attempt.task, attempt=1)
        assert policy.plan(retry, 0) == ScriptedFault()
