"""The evaluation harness: every table/figure module runs and reproduces the
paper's qualitative claims at small scale (the benchmarks run them at the
full reproduction scale)."""

import pytest

from repro.experiments import (
    ExperimentHarness,
    fig6,
    fig7,
    fig8,
    sec72,
    sec74,
    sec75,
    table1,
    table2,
    table3,
)


@pytest.fixture(scope="module")
def harness():
    """One shared cache of executed runs for the whole module."""
    return ExperimentHarness()


class TestTable1:
    def test_measured_read_near_model(self):
        res = table1.run(n=128, nb=16, m0=4)
        # Dense-square factor files inflate reads over the packed model by
        # at most ~2x; writes by ~2.5x.
        assert 0.5 < res.read_ratio < 2.5
        assert 0.5 < res.write_ratio < 3.0

    def test_mults_match_model_exactly(self):
        res = table1.run(n=128, nb=16, m0=4)
        assert res.measured_ours.mults == pytest.approx(
            res.model_ours.mults, rel=0.05
        )

    def test_format(self):
        out = table1.format_result(table1.run(n=64, nb=16, m0=4))
        assert "Table 1" in out and "ScaLAPACK" in out


class TestTable2:
    def test_measured_read_near_model(self, harness):
        res = table2.run(n=128, nb=16, m0=4, harness=harness)
        assert 0.5 < res.read_ratio < 3.0

    def test_mults_within_dense_factor(self, harness):
        """Implementation multiplies densely: 5/3 n^3 vs the model's 2/3 n^3
        triangular-aware count => ratio up to ~2.5."""
        res = table2.run(n=128, nb=16, m0=4, harness=harness)
        assert 1.0 <= res.measured_ours.mults / res.model_ours.mults < 3.0

    def test_format(self, harness):
        out = table2.format_result(table2.run(n=64, nb=16, m0=4, harness=harness))
        assert "Table 2" in out


class TestTable3:
    def test_formula_matches_paper_without_execution(self):
        res = table3.run(execute=False)
        assert res.all_job_counts_match()

    def test_executed_job_counts(self, harness):
        from repro.workloads import get

        res = table3.run(
            execute=True, scale=128, matrices=(get("M5"),), harness=harness
        )
        assert res.all_job_counts_match()
        assert res.rows[0].jobs_executed == 9

    def test_format(self):
        out = table3.format_result(table3.run(execute=False))
        assert "M4" in out and "33" in out


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run(
            matrices=("M5",), node_counts=(2, 4, 8), scale=128,
            harness=ExperimentHarness(),
        )

    def test_time_decreases_with_nodes(self, result):
        curve = result.curve("M5")
        assert curve.seconds == sorted(curve.seconds, reverse=True)

    def test_near_ideal_at_small_scale(self, result):
        curve = result.curve("M5")
        # Efficiency stays reasonable over a 4x node increase.
        assert curve.efficiency(len(curve.node_counts) - 1) > 0.5

    def test_deviation_grows_with_nodes(self, result):
        curve = result.curve("M5")
        effs = [curve.efficiency(i) for i in range(len(curve.node_counts))]
        assert effs[-1] <= effs[0] + 1e-9

    def test_format(self, result):
        assert "Figure 6" in fig6.format_result(result)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run(
            matrix="M5", node_counts=(4, 8), scale=128, harness=ExperimentHarness()
        )

    def test_optimizations_always_help(self, result):
        for curve in result.curves:
            assert all(r > 1.0 for r in curve.ratio), curve.optimization

    def test_separate_files_gain_grows_with_nodes(self, result):
        curve = result.curve("separate-files")
        assert curve.ratio[-1] > curve.ratio[0]

    def test_format(self, result):
        assert "Figure 7" in fig7.format_result(result)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8.run(measure_traffic=False)

    def test_ratio_increases_with_nodes(self, result):
        for curve in result.curves:
            assert curve.ratio == sorted(curve.ratio), curve.matrix

    def test_larger_matrices_favor_pipeline(self, result):
        at_max = [c.ratio[-1] for c in result.curves]  # M1, M2, M3
        assert at_max == sorted(at_max)

    def test_scalapack_wins_small_scale(self, result):
        assert result.curve("M1").ratio[0] < 1.0

    def test_pipeline_wins_large_matrix_at_scale(self, result):
        assert result.curve("M3").ratio[-1] > 1.0

    def test_measured_traffic_mechanism(self):
        res = fig8.run(
            matrices=("M1",), node_counts=(8,), measure_traffic=True,
            traffic_n=64, traffic_procs=(2, 4),
        )
        scala_growth = res.traffic[1].scalapack_bytes / res.traffic[0].scalapack_bytes
        ours_growth = res.traffic[1].ours_bytes / max(res.traffic[0].ours_bytes, 1)
        assert scala_growth > ours_growth

    def test_format(self, result):
        assert "Figure 8" in fig8.format_result(result)


class TestSec72:
    def test_accuracy_bound_holds(self, harness):
        res = sec72.run(matrices=("M5",), scale=128, harness=harness)
        assert res.all_pass
        assert res.worst_residual < 1e-5

    def test_format(self, harness):
        res = sec72.run(matrices=("M5",), scale=128, harness=harness)
        assert "7.2" in sec72.format_result(res)


class TestSec74:
    @pytest.fixture(scope="class")
    def result(self):
        # Tiny cluster widths keep the test fast; the bench runs 128/64.
        return sec74.run(scale=128, m0_large=8, m0_medium=4, harness=ExperimentHarness())

    def test_job_count(self, result):
        assert result.num_jobs == 33

    def test_failure_run_slower_but_correct(self, result):
        assert result.hours_large_with_failure > result.hours_large_no_failure
        assert result.failure_recovered
        assert result.residual_ok

    def test_medium_cluster_slower(self, result):
        assert result.hours_medium > result.hours_large_no_failure

    def test_io_volumes_large(self, result):
        assert result.paper_write_bytes > 500e9
        assert result.paper_read_bytes > 1e12

    def test_format(self, result):
        assert "7.4" in sec74.format_result(result)


class TestSec75:
    @pytest.fixture(scope="class")
    def result(self):
        return sec75.run(scale=128, m0=4, harness=ExperimentHarness())

    def test_pipeline_wins_both_clusters(self, result):
        assert result.ours_wins_at_scale

    def test_executed_agreement(self, result):
        assert result.executed_agreement < 1e-8

    def test_hours_roughly_paper_magnitude(self, result):
        assert 3 < result.ours_hours_large < 10  # paper: ~5
        assert 10 < result.ours_hours_medium < 30  # paper: ~15
        assert 6 < result.scala_hours_large < 20  # paper: ~8

    def test_format(self, result):
        assert "7.5" in sec75.format_result(result)
