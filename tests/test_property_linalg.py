"""Property-based tests for the numerical kernels (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg import (
    back_substitute,
    forward_substitute,
    invert_lower,
    lu_decompose,
    permutation,
    solve_lu,
)
from repro.linalg.blockwrap import (
    block_wrap_multiply,
    contiguous_ranges,
    factor_grid,
    grid_block_multiply,
    naive_multiply,
    strided_indices,
)
from repro.linalg.verify import lu_residual

# Well-conditioned random square matrices: bounded entries + diagonal shift.
def square_matrices(max_n=24):
    return st.integers(1, max_n).flatmap(
        lambda n: arrays(
            np.float64,
            (n, n),
            elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False),
        ).map(lambda a: a + (np.abs(a).sum() + 1.0) * np.eye(n))
    )


class TestLUProperties:
    @given(square_matrices())
    @settings(max_examples=40, deadline=None)
    def test_pa_equals_lu(self, a):
        res = lu_decompose(a)
        scale = max(np.abs(a).max(), 1.0)
        assert lu_residual(a, res.lower(), res.upper(), res.perm) < 1e-8 * scale

    @given(square_matrices())
    @settings(max_examples=40, deadline=None)
    def test_perm_is_valid(self, a):
        res = lu_decompose(a)
        assert permutation.is_permutation(res.perm)

    @given(square_matrices(max_n=16))
    @settings(max_examples=30, deadline=None)
    def test_solve_inverts_matvec(self, a):
        n = a.shape[0]
        x = np.linspace(-1, 1, n)
        res = lu_decompose(a)
        recovered = solve_lu(res, a @ x)
        assert np.allclose(recovered, x, atol=1e-6)

    @given(square_matrices(max_n=16))
    @settings(max_examples=30, deadline=None)
    def test_triangular_substitution_roundtrip(self, a):
        res = lu_decompose(a)
        lower, upper = res.lower(), res.upper()
        n = a.shape[0]
        x = np.ones(n)
        assert np.allclose(forward_substitute(lower, lower @ x), x, atol=1e-7)
        assert np.allclose(back_substitute(upper, upper @ x), x, atol=1e-6)

    @given(square_matrices(max_n=16))
    @settings(max_examples=30, deadline=None)
    def test_lower_inverse_property(self, a):
        lower = lu_decompose(a).lower()
        linv = invert_lower(lower)
        assert np.allclose(lower @ linv, np.eye(a.shape[0]), atol=1e-7)


class TestPermutationProperties:
    @given(st.integers(1, 50), st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_invert_is_involution(self, n, rnd):
        s = np.array(rnd.sample(range(n), n))
        assert np.array_equal(permutation.invert(permutation.invert(s)), s)

    @given(st.integers(1, 30), st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_row_col_application_consistency(self, n, rnd):
        s = np.array(rnd.sample(range(n), n))
        a = np.arange(float(n * n)).reshape(n, n)
        via_matrix = permutation.to_matrix(s)
        assert np.array_equal(permutation.apply_rows(s, a), via_matrix @ a)
        assert np.array_equal(permutation.apply_columns(s, a), a @ via_matrix)

    @given(
        st.integers(1, 20), st.integers(1, 20), st.randoms(use_true_random=False)
    )
    @settings(max_examples=50, deadline=None)
    def test_augment_preserves_permutation(self, n1, n2, rnd):
        p1 = np.array(rnd.sample(range(n1), n1))
        p2 = np.array(rnd.sample(range(n2), n2))
        assert permutation.is_permutation(permutation.augment(p1, p2))


class TestBlockWrapProperties:
    @given(st.integers(1, 400))
    @settings(max_examples=100, deadline=None)
    def test_factor_grid_invariants(self, m0):
        f1, f2 = factor_grid(m0)
        assert f1 * f2 == m0 and f2 <= f1

    @given(st.integers(0, 100), st.integers(1, 12))
    @settings(max_examples=100, deadline=None)
    def test_contiguous_ranges_partition(self, n, parts):
        ranges = contiguous_ranges(n, parts)
        assert len(ranges) == parts
        covered = [i for a, b in ranges for i in range(a, b)]
        assert covered == list(range(n))

    @given(st.integers(1, 60), st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_strided_indices_partition(self, n, parts):
        seen = sorted(
            int(i) for p in range(parts) for i in strided_indices(n, parts, p)
        )
        assert seen == list(range(n))

    @given(
        st.integers(1, 12),
        st.integers(1, 12),
        st.integers(1, 12),
        st.integers(1, 9),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_multiply_schemes_agree(self, rows, inner, cols, m0, rnd):
        rng = np.random.default_rng(rnd.randrange(2**31))
        a = rng.standard_normal((rows, inner))
        b = rng.standard_normal((inner, cols))
        expected = a @ b
        for scheme in (naive_multiply, block_wrap_multiply, grid_block_multiply):
            out, stats = scheme(a, b, m0)
            assert np.allclose(out, expected, atol=1e-9)
            assert len(stats.per_node_elements_read) >= 1
