"""Plan/dataflow linter: clean pipelines pass, seeded defects are caught.

The acceptance contract: on an intact ``n=4096, nb=512`` plan the linter
reports zero error findings and confirms the ``2^d + 1`` job count without
executing a single job; each deliberately seeded defect (dropped
intermediate write, double-write, wrong job count, broken ``f1*f2 == m0``
grid, flipped transpose flag) produces the expected rule id.
"""

from __future__ import annotations

import pytest

from repro import InversionConfig
from repro.analysis import (
    PreflightError,
    Severity,
    build_model,
    has_errors,
    lint_model,
    lint_pipeline,
    lint_plan,
    preflight_check,
    render_json,
    render_text,
)
from repro.analysis.cli import main as lint_main
from repro.inversion.plan import intermediate_file_count, total_job_count
from repro.inversion.regions import Region


def rule_ids(findings):
    return {f.rule for f in findings}


# -- clean pipelines ---------------------------------------------------------------


def test_intact_4096_512_plan_is_clean():
    """The ISSUE's acceptance case: static validation, no job execution."""
    findings, model = lint_pipeline(4096, InversionConfig(nb=512))
    assert findings == []
    assert model.plan.depth == 3
    assert model.job_count == total_job_count(4096, 512) == 2**3 + 1 == 9
    assert model.job_names == model.plan.job_schedule()


@pytest.mark.parametrize(
    "n, config",
    [
        (256, InversionConfig(nb=64)),
        (256, InversionConfig(nb=64, separate_files=False)),
        (256, InversionConfig(nb=64, transpose_u=False)),
        (256, InversionConfig(nb=64, block_wrap=False)),
        (250, InversionConfig(nb=64, m0=2)),   # odd order, minimal cluster
        (300, InversionConfig(nb=64, m0=6)),   # non-square grid (3, 2)
        (48, InversionConfig(nb=64)),          # single-leaf plan
        (129, InversionConfig(nb=32)),         # non-full tree
    ],
)
def test_clean_configurations_produce_no_findings(n, config):
    findings, model = lint_pipeline(n, config)
    assert findings == [], render_text(findings)
    assert model.job_names == model.plan.job_schedule()


def test_model_counts_intermediate_files_like_section_61():
    """The model's separate factor-file count equals N(d) exactly."""
    config = InversionConfig(nb=64, m0=4)
    model = build_model(512, config)
    # d = 3: N(d) = 2^3 + 2 * (2^3 - 1) = 22 part files.
    assert intermediate_file_count(512, 64, 4) == 22
    assert lint_model(model) == []


def test_output_commit_off_means_no_manifest_paths():
    """With the two-phase commit disabled no manifests exist, so the model
    must not invent them — and PL009 stays silent either way."""
    config = InversionConfig(nb=64, output_commit=False)
    model = build_model(256, config)
    assert model.manifest_writes == set()
    findings = lint_model(model)
    assert "PL009" not in {f.rule for f in findings}
    assert findings == []
    # Contrast: with the commit on, one manifest per master phase and job.
    committed = build_model(256, InversionConfig(nb=64))
    n_master = sum(1 for s in committed.steps if s.kind == "master")
    assert len(committed.manifest_writes) == n_master + committed.job_count
    assert committed.all_writes() >= committed.manifest_writes


# -- seeded defects ----------------------------------------------------------------


def seeded_model():
    return build_model(512, InversionConfig(nb=64))


def test_dropped_intermediate_write_is_pl003():
    model = seeded_model()
    step = model.find_step("lu:/Root[reduce]")
    dropped = sorted(step.writes)[0]
    step.writes.discard(dropped)
    findings = lint_model(model)
    assert "PL003" in rule_ids(findings)
    assert any(dropped in f.message for f in findings if f.rule == "PL003")


def test_dropped_l2_write_also_breaks_nd_count():
    model = seeded_model()
    step = model.find_step("lu:/Root[map]")
    l2_path = sorted(p for p in step.writes if "/L2/" in p)[0]
    step.writes.discard(l2_path)
    ids = rule_ids(lint_model(model))
    assert "PL003" in ids  # the reduce phase reads it
    assert "PL008" in ids  # and the Section 6.1 count no longer matches


def test_double_write_is_pl004():
    model = seeded_model()
    model.find_step("partition[map]").writes.add(model.layout.input_path)
    assert "PL004" in rule_ids(lint_model(model))


def test_missing_final_job_is_pl001():
    model = seeded_model()
    model.steps = [s for s in model.steps if s.job != "invert-final"]
    assert "PL001" in rule_ids(lint_model(model))


def test_bad_grid_factorization_is_pl007():
    model = seeded_model()
    model.grid = (3, 3)  # 9 != m0 = 4
    findings = [f for f in lint_model(model) if f.rule == "PL007"]
    assert findings and findings[0].severity == Severity.ERROR


def test_flipped_transpose_flag_is_pl006():
    model = seeded_model()
    model.config = model.config.with_overrides(transpose_u=False)
    assert "PL006" in rule_ids(lint_model(model))


def test_orphaned_intermediate_is_pl005():
    model = seeded_model()
    model.find_step("partition[map]").writes.add("/Root/junk/never_read")
    findings = [f for f in lint_model(model) if f.rule == "PL005"]
    assert len(findings) == 1
    assert "/Root/junk/never_read" in findings[0].message
    assert findings[0].severity == Severity.WARNING


def test_misshaped_region_is_pl002():
    model = seeded_model()
    tree = model.plan.tree
    nl = model.layout.of(tree)
    # A3 must be n2 x n1 for L2' U1 = A3 to be conformable.
    nl.a3 = Region(tree.n2, tree.n1 + 1, ())
    assert "PL002" in rule_ids(lint_model(model))


# -- pre-flight integration ---------------------------------------------------------


def test_preflight_check_returns_validated_model():
    model = preflight_check(256, InversionConfig(nb=64))
    assert model.job_count == 5


def test_preflight_error_carries_findings():
    model = seeded_model()
    model.grid = (3, 3)
    findings = lint_model(model)
    err = PreflightError(findings)
    assert "PL007" in str(err)
    assert err.findings == findings


def test_pipeline_validators_run_before_the_job():
    from repro.mapreduce import (
        FnMapper,
        JobConf,
        MapReduceRuntime,
        Pipeline,
        splits_for_workers,
    )

    seen = []

    def validator(conf):
        seen.append(conf.name)
        raise PreflightError([])

    runtime = MapReduceRuntime()
    try:
        pipeline = Pipeline(runtime, validators=[validator])
        conf = JobConf(
            name="guarded",
            mapper_factory=lambda: FnMapper(lambda ctx, split: None),
            splits=splits_for_workers(2),
        )
        with pytest.raises(PreflightError):
            pipeline.run_job(conf)
        assert seen == ["guarded"]
        assert pipeline.record.num_jobs == 0  # rejected before launch
    finally:
        runtime.shutdown()


def test_driver_preflight_can_be_disabled():
    import numpy as np

    from repro.inversion import MatrixInverter

    rng = np.random.default_rng(3)
    a = rng.standard_normal((32, 32)) + 32 * np.eye(32)
    with MatrixInverter(InversionConfig(nb=8, preflight=False)) as inverter:
        result = inverter.invert(a)
    assert result.residual(a) < 1e-8


# -- rendering and CLI --------------------------------------------------------------


def test_render_text_and_json_roundtrip():
    model = seeded_model()
    model.grid = (3, 3)
    findings = lint_model(model)
    text = render_text(findings)
    assert "PL007" in text and "error" in text
    import json

    payload = json.loads(render_json(findings))
    assert payload[0]["rule"] == "PL007"
    assert payload[0]["severity"] == "error"


def test_cli_plan_mode_exit_codes(capsys):
    assert lint_main(["--n", "4096", "--nb", "512"]) == 0
    out = capsys.readouterr().out
    assert "9 jobs" in out and "2^d + 1 = 9" in out
    # m0 must be even: configuration rejected before linting.
    assert lint_main(["--n", "256", "--nb", "64", "--m0", "3"]) == 2
    assert lint_main(["--n", "0", "--nb", "64"]) == 2
    assert lint_main(["/nonexistent/pipeline.py"]) == 2


def test_cli_self_check_passes(capsys):
    assert lint_main(["--self-check"]) == 0
    assert "self-check OK" in capsys.readouterr().out


def test_cli_json_mode(capsys):
    assert lint_main(["--n", "256", "--nb", "64", "--json"]) == 0
    import json

    assert json.loads(capsys.readouterr().out) == []


def test_has_errors_and_ignore():
    model = seeded_model()
    model.grid = (3, 3)
    findings = lint_model(model)
    assert has_errors(findings)
    from repro.analysis import filter_ignored

    assert not has_errors(filter_ignored(findings, ["PL007"]))
