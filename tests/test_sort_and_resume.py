"""Distributed sort (custom partitioner), pipeline resume, distributed solve,
and the Gantt renderer."""

import numpy as np
import pytest

from repro import InversionConfig
from repro.inversion import MatrixInverter
from repro.mapreduce import FailNever, JobFailedError, MapReduceRuntime, TaskKind
from repro.mapreduce.faults import FailAlways
from repro.mapreduce.sort import (
    RangePartitioner,
    distributed_sort,
    sample_split_points,
)

from conftest import random_invertible


class TestRangePartitioner:
    def test_split_points_ordered(self):
        pts = sample_split_points(list(range(100)), 4)
        assert pts == sorted(pts)
        assert len(pts) == 3

    def test_single_partition_no_points(self):
        assert sample_split_points([3, 1, 2], 1) == []

    def test_routing_respects_ranges(self):
        p = RangePartitioner([10, 20])
        assert p(5, 3) == 0
        assert p(10, 3) == 1
        assert p(15, 3) == 1
        assert p(25, 3) == 2

    def test_too_many_points_rejected(self):
        with pytest.raises(ValueError):
            RangePartitioner([1, 2, 3])(0, 2)


class TestDistributedSort:
    def test_sorts_integers(self, runtime, rng):
        data = rng.integers(0, 10_000, 500).tolist()
        assert distributed_sort(runtime, data) == sorted(data)

    def test_sorts_strings(self, runtime):
        data = ["pear", "apple", "fig", "banana", "date", "cherry"]
        assert distributed_sort(runtime, data, num_partitions=2) == sorted(data)

    def test_skewed_input(self, runtime):
        data = [1] * 100 + [2] * 5 + list(range(100, 120))
        assert distributed_sort(runtime, data, num_partitions=3) == sorted(data)

    def test_empty(self, runtime):
        assert distributed_sort(runtime, []) == []

    def test_more_partitions_than_keys(self, runtime):
        assert distributed_sort(runtime, [2, 1], num_partitions=8) == [1, 2]


class TestResume:
    def _crash_then_resume(self, rng, crash_job_prefix):
        a = random_invertible(rng, 96)
        cfg = InversionConfig(nb=24, m0=4)

        class FailJob(FailAlways):
            def should_fail(self, attempt):
                return (self.job_name or "").startswith(
                    crash_job_prefix
                ) and super().should_fail(attempt)

        rt = MapReduceRuntime(
            fault_policy=FailJob(kind=TaskKind.REDUCE, task_index=0)
        )
        inv = MatrixInverter(cfg, runtime=rt)
        with pytest.raises(JobFailedError):
            inv.invert(a)
        jobs_at_crash = len(rt.history)
        # "New driver" on the same cluster: disable the fault, resume.
        rt._tracker.fault_policy = FailNever()
        result = MatrixInverter(cfg, runtime=rt).invert(a, resume=True)
        jobs_resumed = len(rt.history) - jobs_at_crash
        rt.shutdown()
        return a, result, jobs_resumed

    def test_resume_after_late_crash_skips_completed_work(self, rng):
        a, result, jobs_resumed = self._crash_then_resume(rng, "lu:/Root/OUT")
        assert result.residual(a) < 1e-9
        assert jobs_resumed < result.plan.num_jobs

    def test_resume_after_early_crash_redoes_most(self, rng):
        a, result, jobs_resumed = self._crash_then_resume(rng, "lu:/Root/A1")
        assert result.residual(a) < 1e-9

    def test_resume_of_untouched_root_runs_everything(self, rng):
        rt = MapReduceRuntime()
        a = random_invertible(rng, 48)
        cfg = InversionConfig(nb=16, m0=4)
        result = MatrixInverter(cfg, runtime=rt).invert(a, resume=True)
        assert result.residual(a) < 1e-9
        assert result.num_jobs == result.plan.num_jobs
        rt.shutdown()

    def test_resume_rejects_different_matrix_order(self, rng):
        rt = MapReduceRuntime()
        cfg = InversionConfig(nb=16, m0=4)
        MatrixInverter(cfg, runtime=rt).invert(random_invertible(rng, 48))
        with pytest.raises(ValueError, match="resume"):
            MatrixInverter(cfg, runtime=rt).invert(
                random_invertible(rng, 64), resume=True
            )
        rt.shutdown()


class TestDistributedSolve:
    def test_vector_rhs(self, rng):
        a = random_invertible(rng, 48)
        x_true = rng.standard_normal(48)
        with MatrixInverter(InversionConfig(nb=16, m0=4)) as inv:
            x = inv.solve(a, a @ x_true)
        assert np.allclose(x, x_true, atol=1e-8)

    def test_matrix_rhs(self, rng):
        a = random_invertible(rng, 32)
        b = rng.standard_normal((32, 5))
        with MatrixInverter(InversionConfig(nb=8, m0=4)) as inv:
            x = inv.solve(a, b)
        assert np.allclose(a @ x, b, atol=1e-8)

    def test_shape_mismatch(self, rng):
        with MatrixInverter(InversionConfig(nb=8, m0=4)) as inv:
            with pytest.raises(ValueError, match="rhs"):
                inv.solve(random_invertible(rng, 16), np.zeros(17))

    def test_product_runs_as_jobs(self, rng):
        rt = MapReduceRuntime()
        a = random_invertible(rng, 32)
        inv = MatrixInverter(InversionConfig(nb=8, m0=4), runtime=rt)
        inv.solve(a, np.ones(32))
        assert any(j.name.startswith("multiply:") for j in rt.history)
        rt.shutdown()


class TestGantt:
    def test_gantt_renders_all_jobs(self, rng):
        from repro.cluster import ClusterSpec, ScaleFactors, simulate_record

        rt = MapReduceRuntime()
        a = random_invertible(rng, 48)
        result = MatrixInverter(InversionConfig(nb=16, m0=4), runtime=rt).invert(a)
        report = simulate_record(
            result.record, ClusterSpec(4), ScaleFactors(flops=1e5, bytes=10)
        )
        text = report.gantt()
        assert text.count("|") >= 2 * result.num_jobs
        assert "invert-final" in text
        assert "=" in text and "#" in text
        rt.shutdown()

    def test_gantt_empty(self):
        from repro.cluster.simulator import SimulationReport

        assert SimulationReport(makespan=0.0).gantt() == "(no jobs)"
