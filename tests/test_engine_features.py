"""Secondary sort (grouping comparators) and block-aligned text splits."""

import pytest

from repro.mapreduce import (
    InputSplit,
    JobConf,
    Mapper,
    MapReduceRuntime,
    Reducer,
)
from repro.mapreduce.job import text_input_splits
from repro.mapreduce.shuffle import sort_and_group


class TestSecondarySortUnit:
    def test_grouping_by_natural_key(self):
        pairs = [(("b", 2), "b2"), (("a", 2), "a2"), (("a", 1), "a1"), (("b", 1), "b1")]
        groups = sort_and_group(pairs, grouping_fn=lambda k: k[0])
        assert groups == [(("a", 1), ["a1", "a2"]), (("b", 1), ["b1", "b2"])]

    def test_values_ordered_by_composite_key(self):
        pairs = [(("x", i), i) for i in (5, 1, 3, 2, 4)]
        groups = sort_and_group(pairs, grouping_fn=lambda k: k[0])
        assert groups == [(("x", 1), [1, 2, 3, 4, 5])]

    def test_without_sort_preserves_arrival(self):
        pairs = [(("x", 2), 2), (("x", 1), 1)]
        groups = sort_and_group(pairs, sort_keys=False, grouping_fn=lambda k: k[0])
        assert groups[0][1] == [2, 1]

    def test_no_grouping_fn_unchanged(self):
        pairs = [("b", 1), ("a", 2)]
        assert sort_and_group(pairs) == [("a", [2]), ("b", [1])]


class _EventMapper(Mapper):
    """Emits (user, timestamp) composite keys for the classic secondary-sort
    use case: per-user event streams in time order."""

    def map(self, ctx, split):
        for user, ts, what in split.payload:
            ctx.emit((user, ts), what)


class _SessionReducer(Reducer):
    def reduce(self, ctx, key, values):
        ctx.emit(key[0], list(values))


class TestSecondarySortJob:
    def test_per_user_time_ordered_streams(self, runtime):
        events = [
            ("bob", 3, "logout"),
            ("alice", 1, "login"),
            ("bob", 1, "login"),
            ("alice", 2, "click"),
            ("bob", 2, "click"),
        ]
        conf = JobConf(
            name="sessions",
            mapper_factory=_EventMapper,
            reducer_factory=_SessionReducer,
            splits=[InputSplit(index=0, payload=events)],
            num_reduce_tasks=2,
            partitioner=lambda key, n: hash(key[0]) % n,  # natural key routing
            grouping_fn=lambda key: key[0],
        )
        result = runtime.run_job(conf)
        out = {k: v for pairs in result.reduce_outputs.values() for k, v in pairs}
        assert out == {
            "alice": ["login", "click"],
            "bob": ["login", "click", "logout"],
        }


class TestTextInputSplits:
    def make_file(self, dfs, lines):
        dfs.write_text("/in/data", "\n".join(lines) + "\n")
        return "/in/data"

    def test_splits_cover_file_without_duplication(self, dfs):
        lines = [f"line-{i:03d}" for i in range(100)]
        path = self.make_file(dfs, lines)
        splits = text_input_splits(dfs, path, target_split_bytes=200)
        assert len(splits) > 1
        total = sum(s.payload[1] for s in splits)
        assert total == dfs.file_size(path)
        # Ranges are contiguous and disjoint.
        pos = 0
        for s in splits:
            assert s.payload[0] == pos
            pos += s.payload[1]

    def test_every_record_seen_exactly_once(self, dfs, runtime):
        lines = [f"w{i % 10}" for i in range(500)]
        path = self.make_file(dfs, lines)

        class CountingMapper(Mapper):
            def map_record(self, ctx, key, value):
                ctx.emit(value, 1)

        class Summer(Reducer):
            def reduce(self, ctx, key, values):
                ctx.emit(key, sum(values))

        conf = JobConf(
            name="split-wc",
            mapper_factory=CountingMapper,
            reducer_factory=Summer,
            splits=text_input_splits(dfs, path, target_split_bytes=300),
            num_reduce_tasks=3,
        )
        result = runtime.run_job(conf)
        total = sum(
            v for pairs in result.reduce_outputs.values() for _, v in pairs
        )
        assert total == 500

    def test_boundaries_are_line_aligned(self, dfs):
        lines = ["x" * 37 for _ in range(50)]
        path = self.make_file(dfs, lines)
        splits = text_input_splits(dfs, path, target_split_bytes=100)
        for s in splits:
            start, length = s.payload
            chunk = dfs.read_range(path, start, length).decode()
            for line in chunk.splitlines():
                assert line == "x" * 37  # no torn records

    def test_empty_file_single_split(self, dfs):
        dfs.write_text("/in/empty", "")
        splits = text_input_splits(dfs, "/in/empty", 100)
        assert len(splits) == 1 and splits[0].payload == (0, 0)

    def test_invalid_target_rejected(self, dfs):
        dfs.write_text("/in/x", "a")
        with pytest.raises(ValueError):
            text_input_splits(dfs, "/in/x", 0)

    def test_single_long_line_not_split(self, dfs):
        dfs.write_text("/in/one", "y" * 1000)
        splits = text_input_splits(dfs, "/in/one", 100)
        assert len(splits) == 1
        assert splits[0].payload == (0, 1000)
