"""invert_path (DFS-resident inputs) and history JSON export."""

import json

import numpy as np
import pytest

from repro import InversionConfig
from repro.dfs import formats
from repro.inversion import MatrixInverter
from repro.mapreduce import HistoryReport, MapReduceRuntime

from conftest import random_invertible


class TestInvertPath:
    def test_inverts_dfs_resident_matrix(self, rng):
        rt = MapReduceRuntime()
        a = random_invertible(rng, 64)
        formats.write_matrix(rt.dfs, "/warehouse/matrix.bin", a)
        inv = MatrixInverter(InversionConfig(nb=16, m0=4), runtime=rt)
        result = inv.invert_path("/warehouse/matrix.bin")
        assert result.residual(a) < 1e-9
        # The caller's file is untouched.
        assert np.array_equal(formats.read_matrix(rt.dfs, "/warehouse/matrix.bin"), a)
        rt.shutdown()

    def test_output_of_one_job_feeds_inversion(self, rng):
        """The Section 1 workflow: a MapReduce job produces the matrix, the
        pipeline inverts it in place on the same DFS."""
        from repro.mapreduce import FnMapper, JobConf, splits_for_workers

        rt = MapReduceRuntime()
        n = 48

        def produce(ctx, split):
            if split.payload == 0:
                rng_local = np.random.default_rng(5)
                m = rng_local.random((n, n)) + 0.5 * np.eye(n)
                ctx.write_bytes("/etl/out.bin", formats.encode_matrix(m))

        rt.run_job(JobConf(name="etl", mapper_factory=lambda: FnMapper(produce),
                           splits=splits_for_workers(2)))
        inv = MatrixInverter(InversionConfig(nb=16, m0=4), runtime=rt)
        result = inv.invert_path("/etl/out.bin")
        a = formats.read_matrix(rt.dfs, "/etl/out.bin")
        assert result.residual(a) < 1e-9
        rt.shutdown()

    def test_non_square_rejected(self, rng):
        rt = MapReduceRuntime()
        formats.write_matrix(rt.dfs, "/m.bin", rng.standard_normal((4, 6)))
        inv = MatrixInverter(InversionConfig(nb=8, m0=4), runtime=rt)
        with pytest.raises(ValueError, match="square"):
            inv.invert_path("/m.bin")
        rt.shutdown()

    def test_text_config_rejected(self, rng):
        rt = MapReduceRuntime()
        formats.write_matrix(rt.dfs, "/m.bin", random_invertible(rng, 8))
        inv = MatrixInverter(
            InversionConfig(nb=8, m0=4, input_format="text"), runtime=rt
        )
        with pytest.raises(ValueError, match="binary"):
            inv.invert_path("/m.bin")
        rt.shutdown()


class TestHistoryJson:
    def test_report_round_trips_through_json(self, rng):
        from repro import invert

        rt = MapReduceRuntime()
        a = random_invertible(rng, 48)
        invert(a, InversionConfig(nb=16, m0=4), runtime=rt)
        report = HistoryReport.of(rt.history)
        payload = json.dumps([vars(j) for j in report.jobs])
        decoded = json.loads(payload)
        assert len(decoded) == len(rt.history)
        assert decoded[0]["name"] == "partition"
        assert all("bytes_read" in j for j in decoded)
        rt.shutdown()
