"""Engine hardening: retry backoff, attempt deadlines, node blacklisting,
and failure-history reporting."""

import time

import pytest

from repro.mapreduce import (
    DelayAttempt,
    FailAlways,
    FailOnce,
    FailOnNode,
    FnMapper,
    JobConf,
    JobFailedError,
    MapReduceRuntime,
    Mapper,
    NodeHealth,
    Reducer,
    RetryPolicy,
    RuntimeConfig,
    TaskKind,
    TaskTimeoutError,
    splits_for_workers,
)
from repro.mapreduce.counters import TASK_GROUP
from repro.mapreduce.counters import TIMED_OUT_MAPS
from repro.mapreduce.worker import SerialExecutor, ThreadPoolBackend


class EchoMapper(Mapper):
    def map(self, ctx, split):
        ctx.emit(split.payload, split.payload)


class PassReducer(Reducer):
    def reduce(self, ctx, key, values):
        ctx.emit(key, list(values))


def simple_conf(num_workers=3, max_attempts=4, retry_policy=None):
    return JobConf(
        name="echo-job",
        mapper_factory=EchoMapper,
        reducer_factory=PassReducer,
        splits=splits_for_workers(num_workers),
        num_reduce_tasks=num_workers,
        max_attempts=max_attempts,
        retry_policy=retry_policy,
    )


def runtime_with(dfs, policy, **cfg):
    return MapReduceRuntime(
        dfs=dfs, config=RuntimeConfig(**cfg), fault_policy=policy
    )


class TestRetryPolicy:
    def test_no_base_delay_means_no_waiting(self):
        policy = RetryPolicy()
        assert policy.delay_for(0) == 0.0
        assert policy.delay_for(5) == 0.0

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base_delay=1.0, backoff=2.0, max_delay=5.0)
        assert policy.delay_for(1) == 1.0
        assert policy.delay_for(2) == 2.0
        assert policy.delay_for(3) == 4.0
        assert policy.delay_for(4) == 5.0  # capped
        assert policy.delay_for(10) == 5.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, backoff=1.0, jitter=0.5, seed=7)
        first = policy.delay_for(1, key="job:map:0")
        assert first == policy.delay_for(1, key="job:map:0")  # same inputs
        assert 0.5 <= first <= 1.0  # jitter only shrinks, by at most 50%
        other = policy.delay_for(1, key="job:map:1")
        assert other != first  # different key, different draw

    def test_seed_changes_jitter(self):
        a = RetryPolicy(base_delay=1.0, backoff=1.0, jitter=0.9, seed=0)
        b = RetryPolicy(base_delay=1.0, backoff=1.0, jitter=0.9, seed=1)
        assert a.delay_for(1, key="k") != b.delay_for(1, key="k")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_delay": -1.0},
            {"backoff": 0.5},
            {"max_delay": -1.0},
            {"jitter": 1.5},
            {"attempt_deadline": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestNodeHealth:
    def test_blacklist_after_consecutive_failures(self):
        health = NodeHealth(num_nodes=3, max_failures=2, blacklist_window=2)
        health.record_failure(1)
        assert not health.is_blacklisted(1)
        health.record_failure(1)
        assert health.is_blacklisted(1)
        assert health.blacklisted_nodes() == [1]

    def test_success_resets_consecutive_count(self):
        health = NodeHealth(num_nodes=2, max_failures=2)
        health.record_failure(0)
        health.record_success(0)
        health.record_failure(0)
        assert not health.is_blacklisted(0)

    def test_blacklist_decays_after_window(self):
        health = NodeHealth(num_nodes=2, max_failures=1, blacklist_window=2)
        health.record_failure(0)
        assert health.is_blacklisted(0)
        health.tick()
        assert health.is_blacklisted(0)
        health.tick()
        assert not health.is_blacklisted(0)
        # Decay also forgave the consecutive count: one more failure needed.
        assert health.consecutive_failures[0] == 0

    def test_pick_node_skips_blacklisted_and_avoided(self):
        health = NodeHealth(num_nodes=3, max_failures=1)
        health.record_failure(0)
        for _ in range(10):
            node = health.pick_node(avoid=1)
            assert node == 2

    def test_all_blacklisted_degrades_instead_of_deadlocking(self):
        health = NodeHealth(num_nodes=2, max_failures=1)
        health.record_failure(0)
        health.record_failure(1)
        assert health.pick_node() in (0, 1)


class TestDeadlines:
    def test_serial_executor_times_out_hung_thunk(self):
        ex = SerialExecutor()
        out = ex.run_all([lambda: time.sleep(0.3) or "late", lambda: "fast"],
                         deadline=0.05)
        assert isinstance(out[0], TaskTimeoutError)
        assert out[1] == "fast"

    def test_threadpool_times_out_hung_thunk(self):
        ex = ThreadPoolBackend(max_workers=2)
        try:
            out = ex.run_all([lambda: time.sleep(0.3) or "late", lambda: "fast"],
                             deadline=0.05)
            assert isinstance(out[0], TaskTimeoutError)
            assert out[1] == "fast"
        finally:
            time.sleep(0.3)  # let the abandoned thunk drain before shutdown
            ex.shutdown()

    def test_no_deadline_waits_out_slow_thunk(self):
        out = SerialExecutor().run_all([lambda: time.sleep(0.02) or "done"])
        assert out == ["done"]

    def test_hung_task_fails_over_and_job_completes(self, dfs):
        # The acceptance scenario: first attempts hang; without a deadline
        # this wave would stall for the full delay — with one, the attempt is
        # abandoned, counted, and the retry (fault no longer matches) wins.
        policy = DelayAttempt(seconds=0.5, job_substring="echo", attempts_below=1)
        rt = runtime_with(dfs, policy)
        retry = RetryPolicy(attempt_deadline=0.05)
        start = time.monotonic()
        result = rt.run_job(simple_conf(retry_policy=retry, max_attempts=3))
        elapsed = time.monotonic() - start
        assert result.succeeded
        assert result.attempts_timed_out >= 3  # one per hung first attempt
        assert result.counters.value(TASK_GROUP, TIMED_OUT_MAPS) >= 3
        # Far faster than serially waiting out 3 x 0.5s hangs.
        assert elapsed < 1.5
        assert sorted(result.reduce_outputs) == [0, 1, 2]

    def test_timed_out_task_gets_speculative_retry(self, dfs):
        policy = DelayAttempt(seconds=0.5, job_substring="echo", attempts_below=1)
        rt = runtime_with(dfs, policy, speculative=True)
        result = rt.run_job(
            simple_conf(retry_policy=RetryPolicy(attempt_deadline=0.05))
        )
        assert result.succeeded
        # After a timeout the task is marked slow: the next wave launches two
        # copies of it even though only one is strictly needed.
        assert result.attempts_launched > 3 + result.attempts_failed


class TestBackoff:
    def test_backoff_sleeps_are_recorded(self, dfs):
        policy = FailOnce(job_substring="echo", kind=TaskKind.MAP, task_index=0)
        retry = RetryPolicy(base_delay=0.01, backoff=2.0, max_delay=0.05)
        rt = runtime_with(dfs, policy)
        result = rt.run_job(simple_conf(retry_policy=retry))
        assert result.succeeded
        assert result.backoff_seconds >= 0.01
        assert result.attempts_failed == 1

    def test_no_policy_means_no_backoff(self, dfs):
        policy = FailOnce(job_substring="echo", kind=TaskKind.MAP, task_index=0)
        rt = runtime_with(dfs, policy)
        result = rt.run_job(simple_conf())
        assert result.succeeded
        assert result.backoff_seconds == 0.0


class TestBlacklisting:
    def test_sick_node_is_blacklisted_and_job_completes(self, dfs):
        policy = FailOnNode(node_id=1)
        rt = runtime_with(dfs, policy, num_workers=3, max_node_failures=2)
        result = rt.run_job(simple_conf(max_attempts=6))
        assert result.succeeded
        health = rt.node_health
        assert health.total_failures[1] >= 2
        assert health.blacklist_events >= 1
        # Healthy nodes never failed anything.
        assert health.total_failures[0] == 0
        assert health.total_failures[2] == 0

    def test_retry_avoids_the_node_that_just_failed(self, dfs):
        # Even before blacklisting kicks in, a retry is routed away from the
        # node the task last failed on, so FailOnNode costs one failure per
        # task, not max_node_failures of them.
        policy = FailOnNode(node_id=0)
        rt = runtime_with(dfs, policy, num_workers=3, max_node_failures=10)
        result = rt.run_job(simple_conf(max_attempts=3))
        assert result.succeeded
        health = rt.node_health
        assert health.total_failures[1] == 0
        assert health.total_failures[2] == 0
        assert result.attempts_failed == health.total_failures[0] >= 1
        # No task failed twice: its retry landed off the sick node.
        assert all(v == 1 for v in result.map_retries.values())
        assert all(v == 1 for v in result.reduce_retries.values())


class TestJobFailedError:
    def test_error_carries_full_attempt_history(self, dfs):
        rt = runtime_with(dfs, FailAlways(kind=TaskKind.MAP, task_index=0))
        with pytest.raises(JobFailedError) as err:
            rt.run_job(simple_conf(max_attempts=3))
        exc = err.value
        assert len(exc.attempts) == 3
        assert [a.attempt.attempt for a in exc.attempts] == [0, 1, 2]
        assert all(a.node is not None for a in exc.attempts)
        assert exc.failed_nodes  # the nodes involved, deduplicated
        # The message itself tells the whole story.
        msg = str(exc)
        assert "attempt 0" in msg and "attempt 2" in msg
        assert "node" in msg

    def test_timeouts_are_marked_in_history(self, dfs):
        # Every attempt hangs (attempts_below above the budget), so the task
        # exhausts its attempts purely through timeouts.
        policy = DelayAttempt(seconds=0.5, job_substring="echo", attempts_below=99)
        rt = runtime_with(dfs, policy)
        with pytest.raises(JobFailedError) as err:
            rt.run_job(
                simple_conf(
                    max_attempts=2, retry_policy=RetryPolicy(attempt_deadline=0.05)
                )
            )
        assert all(a.timed_out for a in err.value.attempts)
        assert "timeout" in str(err.value)
