"""The motivating applications built on the public API."""

import numpy as np
import pytest

from repro.apps import (
    CTReconstructor,
    LinearSolver,
    empirical_covariance,
    inverse_iteration,
    precision_from_contacts,
    predict_contacts,
    projection_matrix,
    rayleigh_quotient,
    sample_observations,
    shepp_logan_1d,
    synthetic_contacts,
)
from repro.inversion import InversionConfig

from conftest import random_invertible

CFG = InversionConfig(nb=16, m0=4)


class TestLinearSolver:
    def test_single_rhs(self, rng):
        a = random_invertible(rng, 40)
        solver = LinearSolver(a, CFG)
        x_true = rng.standard_normal(40)
        report = solver.solve(a @ x_true)
        assert np.allclose(report.x, x_true, atol=1e-8)
        assert report.residual_norm < 1e-10

    def test_matrix_rhs(self, rng):
        a = random_invertible(rng, 32)
        solver = LinearSolver(a, CFG)
        b = rng.standard_normal((32, 3))
        report = solver.solve(b)
        assert np.allclose(a @ report.x, b, atol=1e-8)

    def test_solve_many(self, rng):
        a = random_invertible(rng, 24)
        solver = LinearSolver(a, CFG)
        bs = rng.standard_normal((24, 5))
        reports = solver.solve_many(bs)
        assert len(reports) == 5
        assert all(r.residual_norm < 1e-9 for r in reports)

    def test_rhs_shape_checked(self, rng):
        solver = LinearSolver(random_invertible(rng, 16), CFG)
        with pytest.raises(ValueError):
            solver.solve(np.zeros(17))

    def test_inverse_exposed(self, rng):
        a = random_invertible(rng, 20)
        solver = LinearSolver(a, CFG)
        assert np.allclose(solver.inverse @ a, np.eye(20), atol=1e-8)


class TestInverseIteration:
    def test_converges_to_nearest_eigenpair(self, rng):
        a = rng.standard_normal((32, 32))
        sym = a + a.T
        w, _ = np.linalg.eigh(sym)
        mu = w[-1] + 0.5
        res = inverse_iteration(sym, mu, config=CFG, seed=1)
        assert res.converged
        assert res.eigenvalue == pytest.approx(w[-1], abs=1e-7)
        assert res.residual(sym) < 1e-6

    def test_interior_eigenvalue_with_good_shift(self, rng):
        a = np.diag(np.arange(1.0, 25.0))  # well-separated spectrum
        res = inverse_iteration(a, mu=12.3, config=CFG, seed=2)
        assert res.converged
        assert res.eigenvalue == pytest.approx(12.0, abs=1e-8)

    def test_rayleigh_quotient(self):
        a = np.diag([2.0, 5.0])
        assert rayleigh_quotient(a, np.array([1.0, 0.0])) == 2.0

    def test_history_monotone_progress(self, rng):
        a = np.diag(np.arange(1.0, 17.0))
        res = inverse_iteration(a, mu=8.2, config=CFG, seed=3)
        errors = [abs(h - 8.0) for h in res.history]
        assert errors[-1] <= errors[0]

    def test_zero_start_vector_rejected(self, rng):
        a = np.eye(8)
        with pytest.raises(ValueError):
            inverse_iteration(a, 0.5, v0=np.zeros(8), config=CFG)

    def test_non_square_rejected(self, rng):
        with pytest.raises(ValueError):
            inverse_iteration(rng.standard_normal((3, 4)), 0.1, config=CFG)


class TestCT:
    def test_projection_invertible(self):
        m = projection_matrix(32, seed=1)
        assert np.linalg.matrix_rank(m) == 32

    def test_perfect_reconstruction_without_noise(self):
        m = projection_matrix(48, seed=2)
        ct = CTReconstructor(m, CFG)
        image = shepp_logan_1d(48)
        report = ct.reconstruct(ct.scan(image), image)
        assert report.relative_error < 1e-10
        assert report.max_abs_error < 1e-9

    def test_noisy_reconstruction_degrades_gracefully(self):
        m = projection_matrix(48, seed=2)
        ct = CTReconstructor(m, CFG)
        image = shepp_logan_1d(48)
        noisy = ct.scan(image, noise=1e-6, seed=3)
        report = ct.reconstruct(noisy, image)
        assert 0 < report.relative_error < 1e-3

    def test_phantom_has_structure(self):
        img = shepp_logan_1d(64)
        assert img.min() >= 0.1
        assert img.max() > 1.0

    def test_reconstruct_without_ground_truth(self):
        m = projection_matrix(16, seed=4)
        ct = CTReconstructor(m, CFG)
        report = ct.reconstruct(ct.scan(shepp_logan_1d(16)))
        assert np.isnan(report.relative_error)


class TestCT2D:
    def test_2d_phantom_structure(self):
        from repro.apps import shepp_logan_2d

        img = shepp_logan_2d(16, 20)
        assert img.shape == (16, 20)
        assert img.min() >= 0.1 and img.max() > 1.0
        # Corners are background; center carries density.
        assert img[0, 0] == pytest.approx(0.1)
        assert img[8, 10] > 0.5

    def test_2d_operator_order_scales_with_pixels(self):
        from repro.apps import projection_matrix_2d

        m = projection_matrix_2d(6, 8, seed=1)
        assert m.shape == (48, 48)
        assert np.linalg.matrix_rank(m) == 48

    def test_2d_reconstruction_through_pipeline(self):
        from repro.apps import projection_matrix_2d, shepp_logan_2d

        h, w = 8, 8
        m = projection_matrix_2d(h, w, seed=2)
        ct = CTReconstructor(m, CFG)
        image = shepp_logan_2d(h, w).ravel()
        report = ct.reconstruct(ct.scan(image), image)
        assert report.relative_error < 1e-9
        assert report.reconstructed.reshape(h, w).shape == (h, w)


class TestCovariance:
    def test_contact_recovery(self):
        contacts = synthetic_contacts(24, 6, seed=1)
        prec = precision_from_contacts(24, contacts)
        samples = sample_observations(prec, 6000, seed=2)
        pred = predict_contacts(samples, 6, true_contacts=contacts, config=CFG)
        assert pred.true_positive_rate >= 0.8

    def test_precision_matrix_spd(self):
        contacts = synthetic_contacts(16, 4, seed=3)
        prec = precision_from_contacts(16, contacts)
        assert np.all(np.linalg.eigvalsh(prec) > 0)

    def test_sampling_covariance_converges(self):
        contacts = synthetic_contacts(8, 2, seed=4)
        prec = precision_from_contacts(8, contacts)
        cov_true = np.linalg.inv(prec)
        samples = sample_observations(prec, 60000, seed=5)
        cov_emp = empirical_covariance(samples, shrinkage=0.0)
        assert np.allclose(cov_emp, cov_true, atol=0.05)

    def test_contacts_are_distinct_nontrivial(self):
        contacts = synthetic_contacts(30, 10, seed=6)
        assert len(set(contacts)) == 10
        assert all(j > i + 1 for i, j in contacts)

    def test_empty_prediction_rate(self):
        from repro.apps import ContactPrediction

        p = ContactPrediction(predicted=[], true_contacts=[(0, 2)], precision_matrix=np.eye(3))
        assert p.true_positive_rate == 0.0
