"""Block-wrap multiplication (Section 6.2) and its read-volume accounting."""

import numpy as np
import pytest

from repro.linalg.blockwrap import (
    block_wrap_multiply,
    block_wrap_read_elements,
    contiguous_ranges,
    factor_grid,
    grid_block_multiply,
    naive_multiply,
    naive_read_elements,
    strided_indices,
)


class TestFactorGrid:
    @pytest.mark.parametrize(
        "m0, expected",
        [(1, (1, 1)), (2, (2, 1)), (4, (2, 2)), (6, (3, 2)), (8, (4, 2)),
         (12, (4, 3)), (16, (4, 4)), (36, (6, 6)), (64, (8, 8)), (7, (7, 1))],
    )
    def test_known_grids(self, m0, expected):
        assert factor_grid(m0) == expected

    def test_product_and_ordering(self):
        for m0 in range(1, 200):
            f1, f2 = factor_grid(m0)
            assert f1 * f2 == m0
            assert f2 <= f1
            # No divisor strictly between f2 and f1 (paper's minimality).
            for d in range(f2 + 1, f1):
                assert m0 % d != 0 or m0 // d > f1

    def test_invalid(self):
        with pytest.raises(ValueError):
            factor_grid(0)


class TestRanges:
    def test_contiguous_cover(self):
        ranges = contiguous_ranges(10, 3)
        assert ranges[0][0] == 0 and ranges[-1][1] == 10
        for (a1, b1), (a2, _) in zip(ranges, ranges[1:]):
            assert b1 == a2

    def test_near_equal_sizes(self):
        sizes = [b - a for a, b in contiguous_ranges(100, 7)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_items(self):
        ranges = contiguous_ranges(2, 5)
        assert sum(b - a for a, b in ranges) == 2

    def test_strided_partition_covers(self):
        n, parts = 23, 5
        seen = np.concatenate([strided_indices(n, parts, p) for p in range(parts)])
        assert sorted(seen.tolist()) == list(range(n))

    def test_strided_out_of_range(self):
        with pytest.raises(ValueError):
            strided_indices(10, 4, 4)


class TestMultiplies:
    @pytest.mark.parametrize("scheme", [naive_multiply, block_wrap_multiply, grid_block_multiply])
    @pytest.mark.parametrize("m0", [1, 2, 4, 6, 9])
    def test_correct_product(self, rng, scheme, m0):
        a = rng.standard_normal((12, 8))
        b = rng.standard_normal((8, 10))
        out, _ = scheme(a, b, m0)
        assert np.allclose(out, a @ b)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            naive_multiply(rng.standard_normal((2, 3)), rng.standard_normal((4, 2)), 2)

    def test_block_wrap_reads_less_than_naive(self, rng):
        n, m0 = 64, 16
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        _, naive_stats = naive_multiply(a, b, m0)
        _, wrap_stats = block_wrap_multiply(a, b, m0)
        assert wrap_stats.total_elements_read < naive_stats.total_elements_read

    def test_read_volumes_match_paper_formulas(self, rng):
        """Section 6.2's example: 64 nodes, naive reads 65 n^2, block wrap
        with f1 = f2 = 8 reads 16 n^2."""
        n, m0 = 64, 64
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        _, naive_stats = naive_multiply(a, b, m0)
        _, wrap_stats = block_wrap_multiply(a, b, m0)
        assert naive_stats.total_elements_read == naive_read_elements(n, m0) == 65 * n * n
        assert wrap_stats.total_elements_read == block_wrap_read_elements(n, m0) == 16 * n * n

    def test_per_node_read_block_wrap(self, rng):
        """Each of 64 nodes reads n^2/4 elements in the paper's example."""
        n, m0 = 64, 64
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        _, stats = block_wrap_multiply(a, b, m0)
        assert all(r == n * n // 4 for r in stats.per_node_elements_read)

    def test_grid_block_balances_strided_work(self, rng):
        n, m0 = 20, 4
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        _, stats = grid_block_multiply(a, b, m0)
        assert len(stats.per_node_elements_read) == m0
        assert max(stats.per_node_elements_read) - min(stats.per_node_elements_read) <= 2 * n
