"""Structured matrix families and their behaviour through the pipeline."""

import numpy as np
import pytest

from repro import InversionConfig, invert
from repro.workloads import (
    banded,
    circulant,
    hilbert,
    laplacian_1d,
    toeplitz,
    vandermonde,
)

CFG = InversionConfig(nb=8, m0=4)


class TestGenerators:
    def test_hilbert_values(self):
        h = hilbert(3)
        assert h[0, 0] == 1.0
        assert h[1, 2] == pytest.approx(1.0 / 4.0)
        assert np.allclose(h, h.T)

    def test_hilbert_condition_explodes(self):
        assert np.linalg.cond(hilbert(10)) > 1e12

    def test_toeplitz_structure(self):
        t = toeplitz(np.array([1.0, 2.0, 3.0]), np.array([1.0, 9.0, 8.0]))
        assert t[0, 0] == t[1, 1] == t[2, 2] == 1.0
        assert t[1, 0] == t[2, 1] == 2.0
        assert t[0, 1] == t[1, 2] == 9.0

    def test_toeplitz_mismatch_rejected(self):
        with pytest.raises(ValueError):
            toeplitz(np.array([1.0, 2.0]), np.array([5.0, 2.0]))

    def test_circulant_rotation(self):
        c = circulant(np.array([1.0, 2.0, 3.0]))
        assert np.array_equal(c[1], [3.0, 1.0, 2.0])
        assert np.array_equal(c[2], [2.0, 3.0, 1.0])

    def test_vandermonde(self):
        v = vandermonde(np.array([1.0, 2.0, 3.0]))
        assert np.array_equal(v[:, 2], [1.0, 4.0, 9.0])
        assert np.linalg.matrix_rank(v) == 3

    def test_banded_bandwidth(self):
        a = banded(12, bandwidth=2, seed=1)
        assert np.allclose(np.triu(a, k=3), 0)
        assert np.allclose(np.tril(a, k=-3), 0)
        assert np.linalg.matrix_rank(a) == 12

    def test_laplacian_spd_and_condition(self):
        l = laplacian_1d(16)
        eigs = np.linalg.eigvalsh(l)
        assert eigs[0] > 0
        assert np.allclose(l.sum(axis=1)[1:-1], 0)


class TestThroughPipeline:
    def test_laplacian_inverse(self):
        l = laplacian_1d(32)
        res = invert(l, CFG)
        assert res.residual(l) < 1e-10

    def test_circulant_inverse_is_circulant(self):
        rng = np.random.default_rng(3)
        c = circulant(rng.uniform(1, 2, 24) + np.r_[10, np.zeros(23)])
        res = invert(c, CFG)
        inv = res.inverse
        # The inverse of a circulant is circulant: row 1 is row 0 rotated.
        assert np.allclose(inv[1], np.roll(inv[0], 1), atol=1e-9)

    def test_banded_inverse_correct(self):
        a = banded(40, bandwidth=3, seed=2)
        res = invert(a, CFG)
        assert np.allclose(res.inverse, np.linalg.inv(a), atol=1e-8)

    def test_hilbert_inversion_degrades_like_lapack(self):
        """For a condition-1e13 operator, the pipeline is no worse than
        LAPACK in relative terms (and Newton-Schulz can polish it)."""
        h = hilbert(10)
        padded = np.eye(32)
        padded[:10, :10] = h  # embed so the pipeline has blocks to split
        res = invert(padded, CFG)
        ref = np.linalg.inv(padded)
        rel_pipeline = np.linalg.norm(res.inverse - ref) / np.linalg.norm(ref)
        assert rel_pipeline < 1e-2  # both lose digits; neither explodes
