"""Tile LU, Cholesky, and Newton-Schulz refinement (related-work kernels and
the numerical-stability extension)."""

import numpy as np
import pytest

from repro.linalg import (
    NotPositiveDefiniteError,
    cholesky_decompose,
    cholesky_flop_count,
    cholesky_invert,
    cholesky_solve,
    lu_decompose,
    newton_schulz_refine,
    tile_lu,
    tile_task_counts,
)
from repro.linalg.verify import lu_residual
from repro.workloads import ill_conditioned, symmetric_positive_definite

from conftest import random_invertible


class TestTileLU:
    @pytest.mark.parametrize("n, tile", [(16, 4), (30, 7), (64, 16), (10, 32), (33, 8)])
    def test_pa_equals_lu(self, rng, n, tile):
        a = random_invertible(rng, n)
        res, _ = tile_lu(a, tile=tile)
        assert lu_residual(a, res.lower(), res.upper(), res.perm) < 1e-9

    def test_single_tile_equals_plain_lu(self, rng):
        a = random_invertible(rng, 12)
        tiled, counts = tile_lu(a, tile=12)
        plain = lu_decompose(a)
        assert np.allclose(tiled.lu, plain.lu)
        assert np.array_equal(tiled.perm, plain.perm)
        assert counts.getrf == 1 and counts.trsm == 0 and counts.gemm == 0

    def test_task_counts_match_closed_form(self, rng):
        a = random_invertible(rng, 40)
        _, counts = tile_lu(a, tile=10)
        expected = tile_task_counts(40, 10)
        assert counts.getrf == expected.getrf == 4
        assert counts.trsm == expected.trsm == 12
        assert counts.gemm == expected.gemm == 14

    def test_rescues_zero_leading_element(self, rng):
        a = random_invertible(rng, 24)
        a[0, 0] = 0.0
        res, _ = tile_lu(a, tile=6)
        assert lu_residual(a, res.lower(), res.upper(), res.perm) < 1e-9

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            tile_lu(rng.standard_normal((3, 4)))
        with pytest.raises(ValueError):
            tile_lu(np.eye(4), tile=0)


class TestCholesky:
    @pytest.mark.parametrize("n", [1, 2, 8, 33, 64])
    def test_factor_reconstructs(self, n):
        a = symmetric_positive_definite(n, seed=n)
        lower = cholesky_decompose(a)
        assert np.allclose(lower @ lower.T, a, atol=1e-8 * n)
        assert np.allclose(np.triu(lower, k=1), 0)

    def test_inverse(self):
        a = symmetric_positive_definite(24, seed=1)
        inv = cholesky_invert(a)
        assert np.allclose(a @ inv, np.eye(24), atol=1e-9)

    def test_matches_numpy_cholesky(self):
        a = symmetric_positive_definite(16, seed=2)
        assert np.allclose(cholesky_decompose(a), np.linalg.cholesky(a))

    def test_solve(self, rng):
        a = symmetric_positive_definite(20, seed=3)
        x = rng.standard_normal(20)
        assert np.allclose(cholesky_solve(a, a @ x), x)

    def test_rejects_indefinite(self):
        a = np.diag([1.0, -1.0, 2.0])
        with pytest.raises(NotPositiveDefiniteError):
            cholesky_decompose(a)

    def test_rejects_asymmetric(self, rng):
        a = symmetric_positive_definite(8, seed=4)
        a[0, 1] += 1.0
        with pytest.raises(ValueError, match="symmetric"):
            cholesky_decompose(a)

    def test_half_the_arithmetic_of_lu(self):
        from repro.linalg import lu_flop_count

        assert cholesky_flop_count(100) == lu_flop_count(100) / 2

    def test_agrees_with_pipeline_on_spd(self):
        """The specialized method and the general pipeline agree on SPD
        inputs — the related-work comparison of Section 3."""
        from repro import InversionConfig, invert

        a = symmetric_positive_definite(48, seed=5)
        general = invert(a, InversionConfig(nb=16, m0=4))
        assert np.allclose(general.inverse, cholesky_invert(a), atol=1e-7)


class TestNewtonSchulz:
    def test_polishes_truncated_inverse(self, rng):
        a = random_invertible(rng, 24)
        x0 = np.linalg.inv(a) + 1e-4 * rng.standard_normal((24, 24))
        res = newton_schulz_refine(a, x0)
        assert res.converged
        assert res.final_residual < 1e-12
        assert res.residual_history[0] > res.final_residual

    def test_quadratic_convergence(self, rng):
        a = random_invertible(rng, 16)
        x0 = np.linalg.inv(a) * (1 + 1e-3)
        res = newton_schulz_refine(a, x0, tol=1e-15)
        h = res.residual_history
        # Each step roughly squares the residual until roundoff.
        assert h[1] < h[0] ** 1.5

    def test_exact_inverse_is_fixed_point(self, rng):
        a = random_invertible(rng, 12)
        res = newton_schulz_refine(a, np.linalg.inv(a))
        assert res.iterations <= 1
        assert res.converged

    def test_divergence_detected_not_raised(self, rng):
        a = random_invertible(rng, 10)
        res = newton_schulz_refine(a, np.zeros((10, 10)) + 100.0, max_iterations=5)
        assert not res.converged

    def test_improves_pipeline_result_on_ill_conditioned(self):
        from repro import InversionConfig, invert
        from repro.linalg.verify import identity_residual

        a = ill_conditioned(40, condition=1e10, seed=6)
        raw = invert(a, InversionConfig(nb=10, m0=4)).inverse
        refined = newton_schulz_refine(a, raw).inverse
        assert identity_residual(a, refined) <= identity_residual(a, raw)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            newton_schulz_refine(np.eye(3), np.eye(4))
