"""Cluster substrate: node specs, cost model, trace replay."""

import pytest

from repro.cluster import (
    ClusterSpec,
    EC2_LARGE,
    EC2_MEDIUM,
    ScaleFactors,
    ideal_time,
    ours_inversion_cost,
    ours_lu_cost,
    ours_time,
    ours_total_cost,
    scalapack_lu_cost,
    scalapack_time,
    simulate_record,
    table1_l,
    table2_l,
    task_duration,
)
from repro.cluster.costmodel import straggler_factor
from repro.mapreduce.pipeline import MasterPhase, PipelineRecord
from repro.mapreduce.types import JobId, JobResult, TaskKind, TaskTrace


class TestNodeSpecs:
    def test_medium_matches_paper_description(self):
        assert EC2_MEDIUM.cores == 1
        assert EC2_MEDIUM.memory_bytes == pytest.approx(3.7e9)

    def test_large_has_two_cores(self):
        assert EC2_LARGE.cores == 2
        assert EC2_LARGE.flops == 2 * EC2_LARGE.flops_per_core

    def test_scaled(self):
        fast = EC2_MEDIUM.scaled(2.0)
        assert fast.flops == 2 * EC2_MEDIUM.flops
        assert fast.memory_bytes == EC2_MEDIUM.memory_bytes

    def test_cluster_totals(self):
        c = ClusterSpec(num_nodes=8, node=EC2_LARGE)
        assert c.total_cores == 16
        assert c.total_flops == 8 * EC2_LARGE.flops

    def test_invalid_cluster(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=0)


class TestCostModel:
    def test_table1_l_value(self):
        # m0 = 64 => f1 = f2 = 8 => l = (64 + 16 + 16)/4 = 24.
        assert table1_l(64) == 24.0

    def test_table2_l_value(self):
        assert table2_l(64) == (64 + 8 + 8) / 2

    def test_lu_cost_formulas(self):
        n, m0 = 1000, 16
        cost = ours_lu_cost(n, m0)
        assert cost.write == 1.5 * n * n
        assert cost.read == (table1_l(m0) + 3) * n * n
        assert cost.mults == pytest.approx(n**3 / 3)
        assert cost.adds == cost.mults

    def test_scalapack_lu_transfer(self):
        n, m0 = 1000, 16
        assert scalapack_lu_cost(n, m0).transfer == pytest.approx(2 / 3 * m0 * n * n)

    def test_inversion_cost_mults(self):
        cost = ours_inversion_cost(300, 4)
        assert cost.mults == pytest.approx(2 / 3 * 300**3)

    def test_cost_addition(self):
        total = ours_total_cost(100, 4)
        lu = ours_lu_cost(100, 4)
        inv = ours_inversion_cost(100, 4)
        assert total.flops == lu.flops + inv.flops
        assert total.io_elements == lu.io_elements + inv.io_elements

    def test_ideal_time(self):
        assert ideal_time(100.0, 4) == 25.0


class TestTimeModels:
    def test_ours_time_decreases_with_nodes(self):
        times = [
            ours_time(20480, ClusterSpec(m), 3200).total for m in (2, 4, 8, 16, 32)
        ]
        assert times == sorted(times, reverse=True)

    def test_ours_launch_overhead_constant_in_nodes(self):
        t4 = ours_time(20480, ClusterSpec(4), 3200)
        t64 = ours_time(20480, ClusterSpec(64), 3200)
        assert t4.launch == t64.launch > 0

    def test_scaling_deviates_from_ideal_at_high_nodes(self):
        """Figure 6's deviation: constant terms cap the speedup."""
        t2 = ours_time(20480, ClusterSpec(2), 3200).total
        t64 = ours_time(20480, ClusterSpec(64), 3200).total
        assert t64 > ideal_time(t2 * 2, 64)

    def test_scalapack_straggler_grows(self):
        assert straggler_factor(1) == 1.0
        assert straggler_factor(64) > straggler_factor(8) > 1.0

    def test_figure8_ratio_increases_with_nodes(self):
        ratios = []
        for m0 in (8, 16, 32, 64):
            c = ClusterSpec(m0)
            ratios.append(
                scalapack_time(32768, c).total / ours_time(32768, c, 3200).total
            )
        assert ratios == sorted(ratios)

    def test_figure8_ratio_increases_with_matrix_size(self):
        c = ClusterSpec(64)
        r = [
            scalapack_time(n, c).total / ours_time(n, c, 3200).total
            for n in (20480, 32768, 40960)
        ]
        assert r == sorted(r)

    def test_scalapack_wins_small_scale(self):
        """Figure 8: ratio below 1 at small node counts."""
        c = ClusterSpec(8)
        assert scalapack_time(20480, c).total < ours_time(20480, c, 3200).total

    def test_ours_wins_at_paper_scale_m4(self):
        """Section 7.5: both M4 configurations favor the pipeline."""
        for cluster in (ClusterSpec(64, EC2_MEDIUM), ClusterSpec(128, EC2_LARGE)):
            assert (
                scalapack_time(102400, cluster).total
                > ours_time(102400, cluster, 3200).total
            )

    def test_memory_spill_triggers_when_too_big(self):
        tiny = ClusterSpec(1, EC2_MEDIUM)
        breakdown = scalapack_time(40960, tiny)  # 13 GB matrix on 3.7 GB node
        assert breakdown.spill > 0
        big = ClusterSpec(64, EC2_MEDIUM)
        assert scalapack_time(40960, big).spill == 0


def _trace(kind, flops=0.0, read=0, written=0, shuffled=0):
    return TaskTrace(
        attempt="t", kind=kind, flops=flops, bytes_read=read,
        bytes_written=written, bytes_shuffled=shuffled,
    )


def _job(name, map_traces, reduce_traces=(), map_retries=None):
    return JobResult(
        job_id=JobId(1),
        name=name,
        succeeded=True,
        map_traces=list(map_traces),
        reduce_traces=list(reduce_traces),
        map_retries=map_retries or {},
    )


class TestSimulator:
    CLUSTER = ClusterSpec(num_nodes=2, node=EC2_MEDIUM, job_launch_overhead=10.0)

    def test_task_duration_components(self):
        t = _trace(TaskKind.MAP, flops=5e8, read=60e6, written=0, shuffled=60e6)
        d = task_duration(t, self.CLUSTER, ScaleFactors())
        assert d == pytest.approx(1.0 + 1.0 + 1.0)

    def test_scale_factors_for_order(self):
        s = ScaleFactors.for_order(100, 1000)
        assert s.flops == pytest.approx(1000.0)
        assert s.bytes == pytest.approx(100.0)

    def test_single_job_makespan(self):
        job = _job("j", [_trace(TaskKind.MAP, flops=5e8)] * 2)
        report = simulate_record(PipelineRecord(steps=[job]), self.CLUSTER)
        # launch 10s + two 1s tasks on two nodes in parallel.
        assert report.makespan == pytest.approx(11.0)

    def test_tasks_queue_when_nodes_busy(self):
        job = _job("j", [_trace(TaskKind.MAP, flops=5e8)] * 4)
        report = simulate_record(PipelineRecord(steps=[job]), self.CLUSTER)
        assert report.makespan == pytest.approx(12.0)  # two waves of 1s

    def test_reduce_barrier_after_maps(self):
        job = _job(
            "j",
            [_trace(TaskKind.MAP, flops=5e8)],
            [_trace(TaskKind.REDUCE, flops=5e8)] * 2,
        )
        report = simulate_record(PipelineRecord(steps=[job]), self.CLUSTER)
        assert report.makespan == pytest.approx(10 + 1 + 1)

    def test_master_phase_serializes(self):
        record = PipelineRecord(
            steps=[MasterPhase(name="m", flops=1e9), _job("j", [_trace(TaskKind.MAP, flops=5e8)])]
        )
        report = simulate_record(record, self.CLUSTER)
        assert report.makespan == pytest.approx(2.0 + 10.0 + 1.0)
        assert report.master_seconds == pytest.approx(2.0)

    def test_retry_occupies_slot(self):
        """Section 7.4: the failed attempt delays the retried task until a
        slot frees, stretching the map phase."""
        clean = _job("j", [_trace(TaskKind.MAP, flops=5e8)] * 2)
        failed = _job(
            "j", [_trace(TaskKind.MAP, flops=5e8)] * 2, map_retries={0: 1}
        )
        t_clean = simulate_record(PipelineRecord(steps=[clean]), self.CLUSTER).makespan
        t_failed = simulate_record(PipelineRecord(steps=[failed]), self.CLUSTER).makespan
        assert t_failed == pytest.approx(t_clean + 1.0)

    def test_scaling_lifts_work(self):
        job = _job("j", [_trace(TaskKind.MAP, flops=5e8)])
        base = simulate_record(PipelineRecord(steps=[job]), self.CLUSTER).makespan
        lifted = simulate_record(
            PipelineRecord(steps=[job]), self.CLUSTER, ScaleFactors(flops=8.0)
        ).makespan
        assert lifted == pytest.approx(base + 7.0)

    def test_utilization_bounded(self):
        job = _job("j", [_trace(TaskKind.MAP, flops=5e8)] * 4)
        report = simulate_record(PipelineRecord(steps=[job]), self.CLUSTER)
        assert 0 < report.utilization <= 1
