"""SystemML-style distributed matrix operations."""

import numpy as np
import pytest

from repro.mapreduce import MapReduceRuntime
from repro.systemml import MatrixOps, load_meta, read_matrix, save_matrix


@pytest.fixture
def rt():
    runtime = MapReduceRuntime()
    yield runtime
    runtime.shutdown()


@pytest.fixture
def ops(rt):
    return MatrixOps(rt, m0=4)


def store(rt, name, m, chunks=3):
    return save_matrix(rt.dfs, f"/mats/{name}", m, chunks=chunks)


class TestStorage:
    def test_save_read_roundtrip(self, rt, rng):
        m = rng.standard_normal((11, 7))
        h = store(rt, "A", m)
        assert np.array_equal(read_matrix(rt.dfs, h), m)

    def test_meta_roundtrip(self, rt, rng):
        h = store(rt, "A", rng.standard_normal((5, 6)), chunks=2)
        assert load_meta(rt.dfs, "/mats/A") == h

    def test_more_chunks_than_rows(self, rt, rng):
        m = rng.standard_normal((2, 3))
        h = store(rt, "A", m, chunks=5)
        assert np.array_equal(read_matrix(rt.dfs, h), m)

    def test_non_2d_rejected(self, rt):
        with pytest.raises(ValueError):
            save_matrix(rt.dfs, "/mats/bad", np.zeros(4))


class TestOps:
    def test_transpose(self, rt, ops, rng):
        m = rng.standard_normal((9, 13))
        h = store(rt, "A", m)
        out = ops.transpose(h, "/mats/At")
        assert np.allclose(read_matrix(rt.dfs, out), m.T)
        assert (out.rows, out.cols) == (13, 9)

    def test_transpose_twice_is_identity(self, rt, ops, rng):
        m = rng.standard_normal((6, 10))
        h = store(rt, "A", m)
        back = ops.transpose(ops.transpose(h, "/mats/t1"), "/mats/t2")
        assert np.allclose(read_matrix(rt.dfs, back), m)

    def test_add_and_subtract(self, rt, ops, rng):
        a, b = rng.standard_normal((8, 5)), rng.standard_normal((8, 5))
        ha, hb = store(rt, "A", a), store(rt, "B", b, chunks=2)
        assert np.allclose(read_matrix(rt.dfs, ops.add(ha, hb, "/mats/s")), a + b)
        diff = ops.add(ha, hb, "/mats/d", alpha=1.0, beta=-1.0)
        assert np.allclose(read_matrix(rt.dfs, diff), a - b)

    def test_add_shape_mismatch(self, rt, ops, rng):
        ha = store(rt, "A", rng.standard_normal((4, 4)))
        hb = store(rt, "B", rng.standard_normal((5, 4)))
        with pytest.raises(ValueError):
            ops.add(ha, hb, "/mats/x")

    def test_scale(self, rt, ops, rng):
        a = rng.standard_normal((7, 7))
        h = store(rt, "A", a)
        assert np.allclose(read_matrix(rt.dfs, ops.scale(h, 2.5, "/mats/s")), 2.5 * a)

    def test_elementwise_divide(self, rt, ops, rng):
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((6, 4)) + 3.0
        ha, hb = store(rt, "A", a), store(rt, "B", b)
        assert np.allclose(
            read_matrix(rt.dfs, ops.elementwise_divide(ha, hb, "/mats/q")), a / b
        )

    @pytest.mark.parametrize("shape_a, shape_b", [((12, 8), (8, 10)), ((5, 5), (5, 5)), ((3, 9), (9, 2))])
    def test_multiply(self, rt, ops, rng, shape_a, shape_b):
        a, b = rng.standard_normal(shape_a), rng.standard_normal(shape_b)
        ha, hb = store(rt, "A", a), store(rt, "B", b, chunks=2)
        out = ops.multiply(ha, hb, "/mats/AB")
        assert np.allclose(read_matrix(rt.dfs, out), a @ b)

    def test_multiply_inner_mismatch(self, rt, ops, rng):
        ha = store(rt, "A", rng.standard_normal((4, 3)))
        hb = store(rt, "B", rng.standard_normal((4, 3)))
        with pytest.raises(ValueError):
            ops.multiply(ha, hb, "/mats/x")

    def test_frobenius_norm(self, rt, ops, rng):
        a = rng.standard_normal((10, 6))
        h = store(rt, "A", a)
        assert ops.frobenius_norm(h) == pytest.approx(np.linalg.norm(a))


class TestComposition:
    def test_residual_check_composed_from_ops(self, rt, ops, rng):
        """Section 7.2's I - M M^-1 built from the generic ops: multiply,
        subtract from identity, norm — SystemML-style composition around the
        pipeline's inverse."""
        from repro import InversionConfig, invert

        n = 24
        a = rng.standard_normal((n, n)) + 0.1 * np.eye(n)
        inverse = invert(a, InversionConfig(nb=8, m0=4), runtime=rt).inverse
        ha = store(rt, "A", a)
        hinv = store(rt, "Ainv", inverse)
        hprod = ops.multiply(ha, hinv, "/mats/prod")
        hident = store(rt, "I", np.eye(n))
        hres = ops.add(hident, hprod, "/mats/res", alpha=1.0, beta=-1.0)
        assert ops.frobenius_norm(hres) < 1e-9

    def test_ops_report_flops(self, rt, ops, rng):
        a = rng.standard_normal((16, 16))
        ha = store(rt, "A", a)
        ops.multiply(ha, ha, "/mats/sq")
        mult_jobs = [j for j in rt.history if j.name.startswith("multiply:")]
        assert sum(t.flops for j in mult_jobs for t in j.traces) == pytest.approx(16**3)
