"""PDGETRF on the true 2D block-cyclic grid."""

import numpy as np
import pytest

from repro.linalg import lu_decompose, verify
from repro.mpi import ProcessGrid, World
from repro.mpi.grid import owned_indices
from repro.scalapack import ScaLAPACKInverter
from repro.scalapack.pdgetrf2d import assemble_2d, pdgetrf_2d

from conftest import random_invertible


def run_2d(a, block, f1, f2):
    n = a.shape[0]
    grid = ProcessGrid(f1, f2)
    world = World(grid.size)

    def spmd(comm):
        pr, pc = grid.coords(comm.rank)
        rows = owned_indices(pr, n, block, f1)
        cols = owned_indices(pc, n, block, f2)
        return pdgetrf_2d(comm, a[np.ix_(rows, cols)], n, block, grid)

    results = world.run(spmd)
    packed, perm = assemble_2d(results, n)
    lower = np.tril(packed, k=-1) + np.eye(n)
    return lower, np.triu(packed), perm, world.traffic


class TestPDGETRF2D:
    @pytest.mark.parametrize(
        "n, block, f1, f2",
        [(16, 4, 2, 2), (24, 4, 2, 2), (33, 5, 2, 3), (40, 8, 3, 2), (20, 32, 2, 2), (30, 3, 1, 4), (30, 3, 4, 1)],
    )
    def test_pa_equals_lu(self, rng, n, block, f1, f2):
        a = random_invertible(rng, n)
        lower, upper, perm, _ = run_2d(a, block, f1, f2)
        assert verify.lu_residual(a, lower, upper, perm) < 1e-10

    def test_full_partial_pivoting_matches_lapack(self, rng):
        """The 2D pivot search spans all process rows, so the pivot sequence
        is identical to single-node partial pivoting."""
        a = random_invertible(rng, 28)
        lower, upper, perm, _ = run_2d(a, 4, 2, 3)
        ref = lu_decompose(a)
        assert np.array_equal(perm, ref.perm)
        assert np.allclose(lower, ref.lower())
        assert np.allclose(upper, ref.upper())

    def test_needs_cross_row_swap(self, rng):
        """A leading zero forces a pivot row owned by a different process
        row — the segment-exchange path."""
        a = random_invertible(rng, 24)
        a[0, 0] = 0.0
        lower, upper, perm, _ = run_2d(a, 4, 2, 2)
        assert verify.lu_residual(a, lower, upper, perm) < 1e-10
        assert perm[0] != 0

    def test_singular_detected(self):
        with pytest.raises(Exception, match="pivot"):
            run_2d(np.zeros((8, 8)), 2, 2, 2)

    def test_traffic_measured(self, rng):
        a = random_invertible(rng, 32)
        *_, traffic = run_2d(a, 4, 2, 2)
        assert traffic.bytes_sent > 0
        assert traffic.messages > 10

    def test_grid_size_mismatch_rejected(self, rng):
        a = random_invertible(rng, 8)
        grid = ProcessGrid(2, 2)
        world = World(3)

        def spmd(comm):
            return pdgetrf_2d(comm, a, 8, 2, grid)

        from repro.mpi import MPIError

        with pytest.raises(MPIError, match="grid"):
            world.run(spmd)


class TestDriver2D:
    def test_driver_layout_2d(self, rng):
        a = random_invertible(rng, 36)
        f = ScaLAPACKInverter(nprocs=6, block=6, layout="2d").lu(a)
        assert verify.lu_residual(a, f.lower, f.upper, f.perm) < 1e-10

    def test_1d_and_2d_agree(self, rng):
        a = random_invertible(rng, 30)
        f1d = ScaLAPACKInverter(nprocs=4, block=5, layout="1d").lu(a)
        f2d = ScaLAPACKInverter(nprocs=4, block=5, layout="2d").lu(a)
        assert np.array_equal(f1d.perm, f2d.perm)
        assert np.allclose(f1d.lower, f2d.lower)
        assert np.allclose(f1d.upper, f2d.upper)

    def test_invalid_layout(self):
        with pytest.raises(ValueError, match="layout"):
            ScaLAPACKInverter(layout="3d")

    @pytest.mark.parametrize("n, p, b", [(40, 4, 8), (33, 6, 5), (24, 2, 4)])
    def test_invert_2d(self, rng, n, p, b):
        a = random_invertible(rng, n)
        res = ScaLAPACKInverter(nprocs=p, block=b, layout="2d").invert(a)
        assert res.residual(a) < 1e-9
        assert np.allclose(res.inverse, np.linalg.inv(a), atol=1e-8)

    def test_invert_2d_matches_1d(self, rng):
        a = random_invertible(rng, 36)
        r1 = ScaLAPACKInverter(nprocs=4, block=6, layout="1d").invert(a)
        r2 = ScaLAPACKInverter(nprocs=4, block=6, layout="2d").invert(a)
        assert np.allclose(r1.inverse, r2.inverse, atol=1e-10)

    def test_2d_traffic_same_order_as_1d(self, rng):
        """Both layouts move O(m0 n^2); the grid changes constants, not the
        asymptotics Figure 8's argument rests on."""
        a = random_invertible(rng, 48)
        t1 = ScaLAPACKInverter(nprocs=4, block=8, layout="1d").invert(a).traffic
        t2 = ScaLAPACKInverter(nprocs=4, block=8, layout="2d").invert(a).traffic
        assert 0.2 < t2.bytes_sent / t1.bytes_sent < 5.0
