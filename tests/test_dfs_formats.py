"""Matrix codecs: binary and text round trips, range reads, sizes."""

import numpy as np
import pytest

from repro.dfs import formats


class TestBinaryCodec:
    def test_roundtrip(self, rng):
        m = rng.standard_normal((7, 11))
        assert np.array_equal(formats.decode_matrix(formats.encode_matrix(m)), m)

    def test_preserves_exact_doubles(self):
        m = np.array([[1e-300, -1e300], [np.pi, -0.0]])
        out = formats.decode_matrix(formats.encode_matrix(m))
        assert np.array_equal(out, m)
        assert np.signbit(out[1, 1])

    def test_empty_matrix(self):
        m = np.zeros((0, 5))
        out = formats.decode_matrix(formats.encode_matrix(m))
        assert out.shape == (0, 5)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            formats.encode_matrix(np.zeros(3))

    def test_rejects_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            formats.decode_matrix(b"XXXX" + b"\x00" * 32)

    def test_rejects_truncated_payload(self, rng):
        data = formats.encode_matrix(rng.standard_normal((4, 4)))
        with pytest.raises(ValueError, match="elements"):
            formats.decode_matrix(data[:-8])

    def test_rejects_truncated_header(self):
        with pytest.raises(ValueError, match="header"):
            formats.decode_matrix(b"RM")


class TestDfsHelpers:
    def test_write_read(self, dfs, rng):
        m = rng.standard_normal((6, 6))
        formats.write_matrix(dfs, "/m", m)
        assert np.array_equal(formats.read_matrix(dfs, "/m"), m)

    def test_matrix_shape_reads_header_only(self, dfs, rng):
        m = rng.standard_normal((9, 4))
        formats.write_matrix(dfs, "/m", m)
        before = dfs.stats.snapshot()
        assert formats.matrix_shape(dfs, "/m") == (9, 4)
        delta = dfs.stats.snapshot() - before
        assert delta.bytes_read == 16  # header only

    def test_read_rows_range(self, dfs, rng):
        m = rng.standard_normal((10, 3))
        formats.write_matrix(dfs, "/m", m)
        got = formats.read_rows(dfs, "/m", 2, 7)
        assert np.array_equal(got, m[2:7])

    def test_read_rows_reads_fewer_bytes(self, dfs, rng):
        m = rng.standard_normal((100, 20))
        formats.write_matrix(dfs, "/m", m)
        before = dfs.stats.snapshot()
        formats.read_rows(dfs, "/m", 0, 10)
        delta = dfs.stats.snapshot() - before
        assert delta.bytes_read < m.nbytes / 5

    def test_read_rows_bounds_checked(self, dfs, rng):
        formats.write_matrix(dfs, "/m", rng.standard_normal((5, 5)))
        with pytest.raises(ValueError):
            formats.read_rows(dfs, "/m", 3, 9)


class TestTextCodec:
    def test_roundtrip(self, rng):
        m = rng.standard_normal((5, 8))
        out = formats.decode_matrix_text(formats.encode_matrix_text(m))
        assert np.array_equal(out, m)  # repr(float) round-trips exactly

    def test_ragged_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            formats.decode_matrix_text("1 2 3\n4 5\n")

    def test_empty_text(self):
        assert formats.decode_matrix_text("").shape == (0, 0)

    def test_blank_lines_skipped(self):
        m = formats.decode_matrix_text("1 2\n\n3 4\n")
        assert np.array_equal(m, [[1.0, 2.0], [3.0, 4.0]])

    def test_dfs_text_roundtrip(self, dfs, rng):
        m = rng.standard_normal((4, 4))
        formats.write_matrix_text(dfs, "/t", m)
        assert np.array_equal(formats.read_matrix_text(dfs, "/t"), m)


class TestSizes:
    def test_binary_size_formula(self):
        assert formats.binary_size_bytes(10, 10) == 16 + 800

    def test_text_larger_than_binary(self, rng):
        """Table 3: text representation is ~2.5x the binary one."""
        m = rng.standard_normal((50, 50))
        text = formats.text_size_bytes(m)
        binary = formats.binary_size_bytes(50, 50)
        assert text > 1.5 * binary
