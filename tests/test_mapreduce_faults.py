"""Fault tolerance: retries, permanent failures, speculative execution."""

import pytest

from repro.mapreduce import (
    FailAlways,
    FailNever,
    FailOnce,
    FailRandomly,
    FnMapper,
    InputSplit,
    JobConf,
    JobFailedError,
    MapReduceRuntime,
    Mapper,
    Reducer,
    RuntimeConfig,
    TaskKind,
    splits_for_workers,
)
from repro.mapreduce.counters import FAILED_MAPS, LAUNCHED_MAPS, TASK_GROUP


class EchoMapper(Mapper):
    def map(self, ctx, split):
        ctx.emit(split.payload, split.payload)


class PassReducer(Reducer):
    def reduce(self, ctx, key, values):
        ctx.emit(key, list(values))


def simple_conf(num_workers=3, max_attempts=4):
    return JobConf(
        name="echo-job",
        mapper_factory=EchoMapper,
        reducer_factory=PassReducer,
        splits=splits_for_workers(num_workers),
        num_reduce_tasks=num_workers,
        max_attempts=max_attempts,
    )


def runtime_with(dfs, policy, **cfg):
    return MapReduceRuntime(
        dfs=dfs, config=RuntimeConfig(**cfg), fault_policy=policy
    )


class TestRetry:
    def test_fail_once_map_recovers(self, dfs):
        policy = FailOnce(job_substring="echo", kind=TaskKind.MAP, task_index=1)
        rt = runtime_with(dfs, policy)
        result = rt.run_job(simple_conf())
        assert result.succeeded
        assert result.attempts_failed == 1
        assert result.counters.value(TASK_GROUP, FAILED_MAPS) == 1
        # Retried task's output appears exactly once.
        assert result.reduce_outputs[1] == [(1, [1])]

    def test_fail_once_reduce_recovers(self, dfs):
        policy = FailOnce(job_substring="echo", kind=TaskKind.REDUCE, task_index=0)
        rt = runtime_with(dfs, policy)
        result = rt.run_job(simple_conf())
        assert result.succeeded
        assert result.attempts_failed == 1

    def test_fail_twice_still_recovers_within_attempts(self, dfs):
        p0 = FailOnce(job_substring="echo", kind=TaskKind.MAP, task_index=0, failing_attempt=0)
        # FailOnce only fires once; chain two by failing attempts 0 then 1.
        class FailTwice(FailOnce):
            def should_fail(self, attempt):
                return (
                    attempt.task.kind is TaskKind.MAP
                    and attempt.task.index == 0
                    and attempt.attempt < 2
                )

        rt = runtime_with(dfs, FailTwice(job_substring="echo", kind=TaskKind.MAP, task_index=0))
        result = rt.run_job(simple_conf())
        assert result.succeeded
        assert result.attempts_failed == 2

    def test_policy_scoped_by_job_name(self, dfs):
        policy = FailOnce(job_substring="otherjob", kind=TaskKind.MAP, task_index=0)
        rt = runtime_with(dfs, policy)
        result = rt.run_job(simple_conf())
        assert result.attempts_failed == 0


class TestPermanentFailure:
    def test_fail_always_kills_job(self, dfs):
        policy = FailAlways(kind=TaskKind.MAP, task_index=2)
        rt = runtime_with(dfs, policy)
        with pytest.raises(JobFailedError) as exc:
            rt.run_job(simple_conf())
        assert "m_000002" in str(exc.value)

    def test_max_attempts_respected(self, dfs):
        policy = FailAlways(kind=TaskKind.MAP, task_index=0)
        rt = runtime_with(dfs, policy)
        with pytest.raises(JobFailedError):
            rt.run_job(simple_conf(max_attempts=2))
        # Job failed, so nothing was appended to history.
        assert rt.history == []

    def test_reduce_permanent_failure(self, dfs):
        policy = FailAlways(kind=TaskKind.REDUCE, task_index=1)
        rt = runtime_with(dfs, policy)
        with pytest.raises(JobFailedError) as exc:
            rt.run_job(simple_conf())
        assert "r_000001" in str(exc.value)


class TestUserExceptions:
    def test_mapper_exception_retries_then_fails(self, dfs):
        def explode(ctx, split):
            raise RuntimeError("boom")

        conf = JobConf(
            name="explode",
            mapper_factory=lambda: FnMapper(explode),
            splits=splits_for_workers(1),
            max_attempts=3,
        )
        rt = MapReduceRuntime(dfs=dfs)
        with pytest.raises(JobFailedError) as exc:
            rt.run_job(conf)
        assert "boom" in str(exc.value)

    def test_flaky_mapper_succeeds_via_retry(self, dfs):
        attempts = {"count": 0}

        def flaky(ctx, split):
            attempts["count"] += 1
            if attempts["count"] < 3:
                raise RuntimeError("transient")
            ctx.write_text("/done", "ok")

        conf = JobConf(
            name="flaky",
            mapper_factory=lambda: FnMapper(flaky),
            splits=splits_for_workers(1),
            max_attempts=4,
        )
        rt = MapReduceRuntime(dfs=dfs)
        result = rt.run_job(conf)
        assert result.succeeded
        assert dfs.read_text("/done") == "ok"


class TestSpeculativeExecution:
    def test_duplicate_attempts_mask_single_failure(self, dfs):
        """With speculation on, the duplicate of a failing first attempt
        completes the task in the same wave — no retry wave needed."""
        policy = FailOnce(job_substring="echo", kind=TaskKind.MAP, task_index=0)
        rt = runtime_with(dfs, policy, speculative=True)
        result = rt.run_job(simple_conf())
        assert result.succeeded
        # 3 tasks x 2 speculative copies in one wave.
        assert result.counters.value(TASK_GROUP, LAUNCHED_MAPS) == 6
        assert result.attempts_failed >= 1

    def test_duplicate_results_committed_once(self, dfs):
        rt = runtime_with(dfs, FailNever(), speculative=True)
        result = rt.run_job(simple_conf())
        for j in range(3):
            assert result.reduce_outputs[j] == [(j, [j])]


class TestFaultPolicies:
    def test_fail_randomly_is_seeded(self):
        from repro.mapreduce.types import JobId, TaskAttemptId, TaskId

        def sequence(seed):
            p = FailRandomly(rate=0.5, seed=seed)
            aid = TaskAttemptId(TaskId(JobId(1), TaskKind.MAP, 0), 0)
            return [p.should_fail(aid) for _ in range(20)]

        assert sequence(1) == sequence(1)
        assert sequence(1) != sequence(2)

    def test_fail_randomly_rate_validated(self):
        with pytest.raises(ValueError):
            FailRandomly(rate=1.5)

    def test_fail_never(self):
        from repro.mapreduce.types import JobId, TaskAttemptId, TaskId

        aid = TaskAttemptId(TaskId(JobId(1), TaskKind.MAP, 0), 0)
        FailNever().maybe_fail(aid)  # no raise

    def test_random_failures_high_rate_eventually_fatal(self, dfs):
        policy = FailRandomly(rate=1.0)
        rt = runtime_with(dfs, policy)
        with pytest.raises(JobFailedError):
            rt.run_job(simple_conf())
