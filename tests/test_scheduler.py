"""The dataflow scheduler: block-keyed readiness, plan-order commits, resume.

Covers the scheduler in isolation (hand-built units on a bare DFS) and end
to end through the inversion driver: dataflow mode must produce the exact
inverse, record, and manifest set of barrier mode; a downstream unit must
never observe a pending block; a discarded speculative loser must never
trigger readiness; a crash between sibling-subtree completions must resume;
and the achieved schedule must respect the analyzer's predicted structure.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import InversionConfig
from repro.analysis import build_model
from repro.analysis.dataflow import barrier_slack_data, build_block_dag
from repro.chaos import DriverCrashError
from repro.dfs import DFS, CommitScope
from repro.inversion import MatrixInverter
from repro.mapreduce import (
    DataflowScheduler,
    MapReduceRuntime,
    RuntimeConfig,
    SchedulerStallError,
    UnitSpec,
)

from conftest import random_invertible


def small_cluster(executor: str = "serial", workers: int = 2):
    dfs = DFS(num_datanodes=3, replication=2, block_size=1 << 16, seed=0)
    runtime = MapReduceRuntime(
        dfs=dfs, config=RuntimeConfig(num_workers=workers, executor=executor)
    )
    return dfs, runtime


def publish_unit(dfs, name, needs, writes, log=None, body=None):
    """A minimal unit: publish ``writes`` via a commit scope when run."""

    def run(wait):
        if body is not None:
            body()
        scope = CommitScope(dfs, f"unit-{name}")
        for path in writes:
            scope.stage_bytes(path, name.encode())
        scope.publish()
        if log is not None:
            log.append(name)
        return name

    return UnitSpec(
        name=name,
        kind="phase",
        needs=frozenset(needs),
        run=run,
        commit=lambda payload: None,
    )


class TestSchedulerCore:
    def test_chain_runs_in_dependency_order(self, dfs):
        ran = []
        units = [
            publish_unit(dfs, "a", [], ["/Root/a"], log=ran),
            publish_unit(dfs, "b", ["/Root/a"], ["/Root/b"], log=ran),
            publish_unit(dfs, "c", ["/Root/b"], ["/Root/c"], log=ran),
        ]
        report = DataflowScheduler(dfs=dfs, units=units).run()
        assert ran == ["a", "b", "c"]
        assert report.launch_order == ["a", "b", "c"]
        # b and c were released by publishes, not by the initial scan.
        assert report.triggers["b"] == "/Root/a"
        assert report.triggers["c"] == "/Root/b"

    def test_independent_units_all_complete(self, dfs):
        ran = []
        units = [
            publish_unit(dfs, f"u{i}", [], [f"/Root/u{i}"], log=ran)
            for i in range(6)
        ]
        DataflowScheduler(dfs=dfs, units=units).run()
        assert sorted(ran) == [f"u{i}" for i in range(6)]

    def test_commits_happen_in_plan_order(self, dfs):
        committed = []
        # u1 finishes long after u2 (u2 has no deps), yet u1 commits first.
        slow_release = threading.Event()
        units = [
            publish_unit(
                dfs, "u1", [], ["/Root/u1"], body=lambda: slow_release.wait(5)
            ),
            publish_unit(
                dfs, "u2", [], ["/Root/u2"], body=slow_release.set
            ),
        ]
        for unit in units:
            unit.commit = lambda payload, name=unit.name: committed.append(name)
        DataflowScheduler(dfs=dfs, units=units).run()
        assert committed == ["u1", "u2"]

    def test_missing_input_stalls_with_diagnosis(self, dfs):
        units = [publish_unit(dfs, "u", ["/Root/never-produced"], ["/Root/u"])]
        with pytest.raises(SchedulerStallError, match="never-produced"):
            DataflowScheduler(dfs=dfs, units=units).run()

    def test_unit_failure_reraised_after_drain(self, dfs):
        def explode():
            raise RuntimeError("unit boom")

        units = [
            publish_unit(dfs, "ok", [], ["/Root/ok"]),
            publish_unit(dfs, "bad", [], ["/Root/bad"], body=explode),
        ]
        with pytest.raises(RuntimeError, match="unit boom"):
            DataflowScheduler(dfs=dfs, units=units).run()

    def test_staged_unpublished_block_never_triggers_readiness(self, dfs):
        """A pending (staged, unsealed) block is invisible to the scheduler.

        Models a speculative loser: its attempt stages output for the path a
        downstream unit needs, but the staging is discarded, never
        published — so the downstream unit must stay blocked (stall), not
        launch against torn data.
        """
        loser = CommitScope(dfs, "speculative-loser")
        loser.stage_bytes("/Root/block", b"half-written")
        units = [publish_unit(dfs, "down", ["/Root/block"], ["/Root/out"])]
        scheduler = DataflowScheduler(dfs=dfs, units=units)
        with pytest.raises(SchedulerStallError, match="/Root/block"):
            scheduler.run()
        loser.abort()  # discarded: still nothing published
        assert not dfs.exists("/Root/block")

    def test_done_units_are_skipped_and_satisfy_dependents(self, dfs):
        # Simulates resume: "a" committed in a previous life, its output on
        # the DFS; only "b" should run.
        dfs.write_bytes("/Root/a", b"previous run")
        ran = []
        done = publish_unit(dfs, "a", [], ["/Root/a"], log=ran)
        done.done = True
        units = [done, publish_unit(dfs, "b", ["/Root/a"], ["/Root/b"], log=ran)]
        report = DataflowScheduler(dfs=dfs, units=units).run()
        assert ran == ["b"]
        assert report.skipped == ["a"]
        assert report.launch_order == ["b"]


class TestDataflowInversion:
    def test_matches_barrier_exactly(self, rng):
        a = random_invertible(rng, 16)
        results = {}
        for schedule in ("barrier", "dataflow"):
            dfs, rt = small_cluster()
            cfg = InversionConfig(nb=4, m0=2, schedule=schedule)
            try:
                results[schedule] = MatrixInverter(cfg, runtime=rt).invert(a)
            finally:
                rt.shutdown()
        barrier, dataflow = results["barrier"], results["dataflow"]
        np.testing.assert_array_equal(barrier.inverse, dataflow.inverse)
        # record.steps appends in deterministic plan order under both modes.
        names = lambda r: [
            getattr(s, "name", None) or s.conf.name for s in r.record.steps
        ]
        assert names(barrier) == names(dataflow)
        assert dataflow.scheduler_report is not None
        assert barrier.scheduler_report is None

    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_manifests_identical_to_barrier(self, rng, executor):
        a = random_invertible(rng, 16)
        manifests = {}
        for schedule in ("barrier", "dataflow"):
            dfs, rt = small_cluster(executor)
            cfg = InversionConfig(nb=4, m0=2, schedule=schedule)
            try:
                MatrixInverter(cfg, runtime=rt).invert(a)
                manifests[schedule] = sorted(dfs.list_files("/Root/_commit"))
            finally:
                rt.shutdown()
        assert manifests["barrier"] == manifests["dataflow"]

    def test_dataflow_requires_output_commit(self):
        with pytest.raises(ValueError, match="output_commit"):
            InversionConfig(nb=4, m0=2, schedule="dataflow", output_commit=False)

    def test_runtime_config_schedule_is_fallback(self, rng):
        a = random_invertible(rng, 8)
        dfs = DFS(num_datanodes=3, replication=2, seed=0)
        rt = MapReduceRuntime(
            dfs=dfs,
            config=RuntimeConfig(
                num_workers=2, executor="serial", schedule="dataflow"
            ),
        )
        try:
            result = MatrixInverter(
                InversionConfig(nb=2, m0=2), runtime=rt
            ).invert(a)
        finally:
            rt.shutdown()
        assert result.scheduler_report is not None

    def test_achieved_schedule_matches_predicted_critical_path(self, rng):
        """Every dynamic edge the scheduler observed is a static DAG edge,
        and the launch order is a topological order of the analyzer's DAG —
        the runtime schedule realizes exactly the structure the barrier-slack
        report predicted, with dataflow's sync-point count."""
        a = random_invertible(rng, 16)
        cfg = InversionConfig(nb=4, m0=2, schedule="dataflow")
        dfs, rt = small_cluster()
        try:
            result = MatrixInverter(cfg, runtime=rt).invert(a)
        finally:
            rt.shutdown()
        model = build_model(16, InversionConfig(nb=4, m0=2))
        dag = build_block_dag(model)
        report = result.scheduler_report

        step_unit = {
            s.name: s.job if s.job is not None else s.name
            for s in model.steps
        }
        launched_at = {name: i for i, name in enumerate(report.launch_order)}

        # Every dynamic (observed) release edge crosses between units in a
        # direction the static DAG predicts: the releasing producer's unit
        # launched before the released unit.
        dynamic = report.dynamic_edges(dag)
        assert dynamic, "a chain pipeline must have publish-released units"
        for producer_step, released_unit in dynamic:
            pu = step_unit[producer_step]
            assert launched_at[pu] < launched_at[released_unit], (
                pu, released_unit,
            )

        # Strong check: the launch order is a topological order of the
        # static block DAG — no unit launches before a unit it depends on.
        for edge in dag.edges():
            su, du = step_unit[edge.src], step_unit[edge.dst]
            if su == du or su not in launched_at or du not in launched_at:
                continue
            assert launched_at[su] < launched_at[du], (su, du)

        # The analyzer's sync-point claim holds for the achieved schedule:
        # the scheduler ran all stages with zero global barriers.
        slack = barrier_slack_data(model, dag)
        units_run = len(report.launch_order) + len(report.skipped)
        # write-input and collect-output run outside the scheduler; jobs
        # collapse their map+reduce stages into one unit.
        expected_units = len(
            {
                step_unit[s.name]
                for s in model.steps
                if s.name not in ("write-input", "collect-output")
            }
        )
        assert units_run == expected_units
        assert slack["sync_points"]["dataflow"] == slack["stages"]

    def test_crash_between_sibling_subtrees_resumes(self, rng):
        a = random_invertible(rng, 8)
        dfs, rt = small_cluster("threads")
        cfg = InversionConfig(nb=2, m0=2, schedule="dataflow")

        def hook(op, path):
            if op == "create" and "/Root/OUT/A1" in path:
                dfs.fault_hooks.remove(hook)
                raise DriverCrashError(f"injected crash at {op} {path}")

        dfs.fault_hooks.append(hook)
        try:
            with pytest.raises(DriverCrashError):
                MatrixInverter(cfg, runtime=rt).invert(a)
            result = MatrixInverter(cfg, runtime=rt).invert(a, resume=True)
        finally:
            rt.shutdown()
        assert result.residual(a) < 1e-9
        # The first subtree's committed work was skipped, not re-run.
        assert "lu:/Root/A1" in result.scheduler_report.skipped
        assert "master-lu:/Root/OUT/A1" in result.scheduler_report.launch_order

    @pytest.mark.parametrize("executor", ["threads", "processes"])
    def test_backends_run_dataflow(self, rng, executor):
        a = random_invertible(rng, 16)
        dfs, rt = small_cluster(executor)
        cfg = InversionConfig(nb=4, m0=2, schedule="dataflow")
        try:
            result = MatrixInverter(cfg, runtime=rt).invert(a)
        finally:
            rt.shutdown()
        assert result.residual(a) < 1e-9
        assert result.scheduler_report.launch_order
