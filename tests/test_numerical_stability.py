"""Numerical behaviour across matrix classes: the Section 7.2 claim probed
beyond the paper's random matrices, plus the documented limitation of
block-local pivoting."""

import numpy as np
import pytest

from repro import InversionConfig, invert
from repro.linalg import SingularMatrixError
from repro.linalg.verify import PAPER_RESIDUAL_BOUND, identity_residual
from repro.mapreduce import JobFailedError
from repro.workloads import (
    diagonally_dominant,
    ill_conditioned,
    needs_cross_block_pivot,
    orthogonal,
    random_dense,
    singular_matrix,
    symmetric_positive_definite,
    tridiagonal,
)

CFG = InversionConfig(nb=16, m0=4)


class TestMatrixClasses:
    @pytest.mark.parametrize(
        "gen",
        [
            random_dense,
            diagonally_dominant,
            symmetric_positive_definite,
            orthogonal,
            tridiagonal,
        ],
        ids=lambda g: g.__name__,
    )
    def test_well_behaved_classes_meet_paper_bound(self, gen):
        a = gen(64, seed=9)
        res = invert(a, CFG)
        assert res.residual(a) < PAPER_RESIDUAL_BOUND

    def test_orthogonal_inverse_is_transpose(self):
        q = orthogonal(48, seed=2)
        res = invert(q, CFG)
        assert np.allclose(res.inverse, q.T, atol=1e-10)

    def test_uniform_random_like_paper(self):
        """The paper's exact workload (uniform [0,1) entries) at several
        orders; residual stays far below 1e-5."""
        for n in (32, 64, 128):
            a = random_dense(n, seed=n)
            res = invert(a, InversionConfig(nb=max(n // 4, 8), m0=4))
            assert res.residual(a) < 1e-9


class TestConditioning:
    @pytest.mark.parametrize("cond", [1e2, 1e6, 1e10])
    def test_residual_scales_with_condition_number(self, cond):
        """The relative inversion error grows ~ condition x machine epsilon;
        the identity residual stays small because it is measured against A's
        own scale."""
        a = ill_conditioned(48, condition=cond, seed=1)
        res = invert(a, CFG)
        assert res.residual(a) < 1e-6  # still passes the 1e-5 bound

    def test_extreme_conditioning_degrades(self):
        a = ill_conditioned(48, condition=1e14, seed=2)
        res = invert(a, CFG)
        reference = np.linalg.inv(a)
        rel = np.linalg.norm(res.inverse - reference) / np.linalg.norm(reference)
        # Pipeline degrades comparably to LAPACK, not catastrophically worse.
        assert identity_residual(a, res.inverse) < 100 * identity_residual(a, reference) + 1e-4

    def test_block_local_vs_full_pivot_accuracy(self):
        """Block-local pivoting (P = diag(P1, P2)) tracks full partial
        pivoting on random matrices — the reason the paper can restrict
        pivots to diagonal blocks."""
        from repro.linalg import lu_decompose

        a = random_dense(96, seed=3)
        pipeline = invert(a, InversionConfig(nb=24, m0=4))
        assert pipeline.residual(a) < 1e-10


class TestFailureModes:
    def test_singular_matrix_raises_or_fails_residual(self):
        """Exact zero pivots raise; a numerically singular matrix may slip
        through with a tiny pivot (as in LAPACK's GETRF), in which case the
        Section 7.2 residual check is what exposes the garbage result."""
        a = singular_matrix(32, rank_deficiency=1, seed=4)
        try:
            res = invert(a, CFG)
        except (SingularMatrixError, JobFailedError):
            return
        assert res.residual(a) > PAPER_RESIDUAL_BOUND

    def test_exactly_singular_matrix_raises(self):
        with pytest.raises((SingularMatrixError, JobFailedError)):
            invert(np.ones((32, 32)), CFG)

    def test_cross_block_pivot_limitation_documented(self):
        """An invertible matrix whose leading diagonal block is singular
        defeats block-local pivoting (Algorithm 2 cannot pivot rows across
        the block boundary) — the scheme's known limitation."""
        a = needs_cross_block_pivot(32)
        assert np.linalg.matrix_rank(a) == 32
        with pytest.raises((SingularMatrixError, JobFailedError)):
            invert(a, InversionConfig(nb=8, m0=4))

    def test_same_matrix_fine_when_leaf_covers_it(self):
        """...but if nb >= n the whole matrix is one (fully pivoted) leaf
        and the inversion succeeds — pivot scope is the only difference."""
        a = needs_cross_block_pivot(32)
        res = invert(a, InversionConfig(nb=64, m0=4))
        assert res.residual(a) < 1e-10

    def test_near_singular_leaf_rescued_by_block_pivot(self):
        """A zero in the leading position of a leaf is handled by pivoting
        *within* the block."""
        a = random_dense(64, seed=5) + 0.1 * np.eye(64)
        a[0, 0] = 0.0
        res = invert(a, InversionConfig(nb=16, m0=4))
        assert res.residual(a) < 1e-9
