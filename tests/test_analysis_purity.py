"""Mapper/reducer purity checker: clean tasks pass, stateful ones are flagged.

Covers the AST analysis of live callables (``analyze_callable`` /
``analyze_job``), source-file analysis (``analyze_source``), graceful
degradation when source is unavailable, and both suppression mechanisms.
"""

from __future__ import annotations

import os
import random
import time
from random import Random

import numpy as np
import pytest

from repro import InversionConfig
from repro.analysis import (
    Severity,
    analyze_callable,
    analyze_job,
    analyze_source,
    has_errors,
)
from repro.analysis.cli import main as lint_main, pipeline_job_confs
from repro.analysis.model import build_model
from repro.mapreduce import FnMapper, FnReducer, Mapper, Reducer


def rule_ids(findings):
    return {f.rule for f in findings}


# -- the repo's own pipeline jobs are pure ------------------------------------------


def test_every_inversion_pipeline_job_is_pure():
    model = build_model(256, InversionConfig(nb=64))
    for conf in pipeline_job_confs(model.layout):
        findings = analyze_job(conf)
        assert not has_errors(findings), (conf.name, findings)


# -- clean callables ----------------------------------------------------------------


def test_pure_function_mapper_passes():
    def emit(ctx, split):
        ctx.emit(split.index, split.index * 2)

    assert analyze_callable(FnMapper(emit)) == []


def test_seeded_generator_is_allowed():
    def mapper(ctx, split):
        rng = np.random.default_rng(split.index)
        ctx.emit(0, rng.standard_normal(4))

    assert analyze_callable(FnMapper(mapper)) == []


# -- impure callables ---------------------------------------------------------------


def test_closure_mutation_is_pu003():
    acc = []

    def mapper(ctx, split):
        acc.append(split.index)

    findings = analyze_callable(FnMapper(mapper))
    assert rule_ids(findings) == {"PU003"}
    assert findings[0].severity == Severity.ERROR
    assert "acc" in findings[0].message


def test_input_mutation_is_pu004():
    def mapper(ctx, record):
        record["seen"] = True
        ctx.emit(0, record)

    assert "PU004" in rule_ids(analyze_callable(FnMapper(mapper)))


def test_nondeterministic_calls_are_pu002():
    def mapper(ctx, split):
        ctx.emit(0, random.random() + time.time())

    findings = analyze_callable(FnMapper(mapper))
    assert rule_ids(findings) == {"PU002"}
    assert len(findings) == 2  # one per call site


def test_unseeded_generator_is_pu002():
    def mapper(ctx, split):
        rng = np.random.default_rng()
        ctx.emit(0, rng.standard_normal(4))

    assert "PU002" in rule_ids(analyze_callable(FnMapper(mapper)))


def test_os_urandom_is_pu002():
    def mapper(ctx, split):
        ctx.emit(0, os.urandom(8))

    assert "PU002" in rule_ids(analyze_callable(FnMapper(mapper)))


def test_unseeded_random_instance_is_pu006():
    """Bare-import ``Random()`` without a seed is PU006 (the dotted
    ``random.Random()`` spelling is already PU002 territory)."""

    def mapper(ctx, split):
        rng = Random()
        ctx.emit(0, rng.random())

    findings = analyze_callable(FnMapper(mapper))
    assert "PU006" in rule_ids(findings)
    assert any("seed" in f.message for f in findings)


def test_seeded_random_instance_passes_pu006():
    def mapper(ctx, split):
        rng = Random(split.index)
        ctx.emit(0, rng.random())

    assert analyze_callable(FnMapper(mapper)) == []


def test_wallclock_datetime_is_pu006():
    import datetime

    def mapper(ctx, split):
        ctx.emit(0, datetime.datetime.now().isoformat())

    findings = analyze_callable(FnMapper(mapper))
    assert "PU006" in rule_ids(findings)
    assert findings[0].severity == Severity.ERROR


def test_localtime_formatting_is_pu006():
    def mapper(ctx, split):
        ctx.emit(0, time.strftime("%H:%M"))

    assert "PU006" in rule_ids(analyze_callable(FnMapper(mapper)))


def test_set_iteration_in_for_loop_is_pu007():
    def mapper(ctx, split):
        for key in {split.index, split.index + 1, 0}:
            ctx.emit(key, 1)

    findings = analyze_callable(FnMapper(mapper))
    assert rule_ids(findings) == {"PU007"}
    assert findings[0].severity == Severity.WARNING
    assert not has_errors(findings)


def test_set_iteration_in_comprehension_is_pu007():
    def mapper(ctx, split):
        ctx.emit(0, [k * 2 for k in set(range(split.index))])

    assert "PU007" in rule_ids(analyze_callable(FnMapper(mapper)))


def test_sorted_set_iteration_passes_pu007():
    def mapper(ctx, split):
        for key in sorted({split.index, 0}):
            ctx.emit(key, 1)

    assert analyze_callable(FnMapper(mapper)) == []


def test_stateful_mapper_class_is_pu005_warning():
    class CountingMapper(Mapper):
        def setup(self, ctx):
            self.count = 0  # allowed: setup initializes per-attempt state

        def map(self, ctx, split):
            self.count += 1  # carries state across records
            ctx.emit(0, self.count)

    findings = analyze_callable(CountingMapper())
    assert rule_ids(findings) == {"PU005"}
    assert findings[0].severity == Severity.WARNING
    assert not has_errors(findings)


def test_reducer_mutating_values_is_pu004():
    class SortingReducer(Reducer):
        def reduce(self, ctx, key, values):
            values.sort()
            ctx.emit(key, values)

    assert "PU004" in rule_ids(analyze_callable(SortingReducer()))


def test_global_statement_is_pu003():
    def mapper(ctx, split):
        global _COUNTER  # noqa: PLW0603
        _COUNTER = split.index

    assert "PU003" in rule_ids(analyze_callable(FnMapper(mapper)))


def test_live_lambda_mapper_is_analyzed():
    """getsource on a lambda yields the enclosing statement; the analyzer
    must still find the lambda node (by line and arity) and flag it."""
    hits = []
    mapper = FnMapper(lambda ctx, split: hits.append(split.index))
    assert "PU003" in rule_ids(analyze_callable(mapper))


def test_nested_lambda_in_factory_is_analyzed():
    from repro.mapreduce import JobConf, splits_for_workers

    hits = []
    conf = JobConf(
        name="leaky",
        mapper_factory=lambda: FnMapper(lambda ctx, split: hits.append(split.index)),
        splits=splits_for_workers(4),
    )
    assert "PU003" in rule_ids(analyze_job(conf))


def test_clean_live_lambda_passes():
    assert analyze_callable(FnMapper(lambda ctx, split: ctx.emit(0, split.index))) == []


def test_live_lambda_mutating_input_is_pu004():
    mapper = FnMapper(lambda ctx, record: record.update(seen=True))
    assert "PU004" in rule_ids(analyze_callable(mapper))


def test_fn_reducer_is_analyzed_too():
    shared = {}

    def reducer(ctx, key, values):
        shared[key] = sum(values)

    assert "PU003" in rule_ids(analyze_callable(FnReducer(reducer)))


# -- graceful degradation -----------------------------------------------------------


def test_builtin_without_source_is_pu001_info():
    findings = analyze_callable(len)
    assert rule_ids(findings) == {"PU001"}
    assert findings[0].severity == Severity.INFO
    assert not has_errors(findings)


def test_analyze_job_runs_factories_once_and_dedups():
    from repro.mapreduce import JobConf, splits_for_workers

    acc = []

    def mapper(ctx, split):
        acc.append(split.index)

    conf = JobConf(
        name="impure",
        mapper_factory=lambda: FnMapper(mapper),
        splits=splits_for_workers(4),
    )
    findings = analyze_job(conf)
    assert rule_ids(findings) == {"PU003"}
    assert len([f for f in findings if f.rule == "PU003"]) == 1


# -- suppression --------------------------------------------------------------------


def test_inline_suppression_comment():
    def mapper(ctx, split):
        ctx.emit(0, random.random())  # lint: ignore[PU002]

    assert analyze_callable(FnMapper(mapper)) == []


def test_bare_inline_suppression_silences_all_rules():
    acc = []

    def mapper(ctx, split):
        acc.append(random.random())  # lint: ignore

    assert analyze_callable(FnMapper(mapper)) == []


# -- source-file analysis -----------------------------------------------------------

IMPURE_SOURCE = '''
import random

from repro.mapreduce import FnMapper, Mapper

SEEN = {}


class TallyMapper(Mapper):
    def map(self, ctx, split):
        SEEN[split.index] = True
        ctx.emit(0, split.index)


wrapped = FnMapper(lambda ctx, split: ctx.emit(0, random.random()))
'''

CLEAN_SOURCE = '''
from repro.mapreduce import Mapper


class IdentityMapper(Mapper):
    def map(self, ctx, split):
        ctx.emit(split.index, split.index)
'''


def test_analyze_source_finds_class_and_lambda_defects(tmp_path):
    findings = analyze_source(IMPURE_SOURCE, "impure_pipeline.py")
    ids = rule_ids(findings)
    assert "PU003" in ids  # TallyMapper writes the module-global dict
    assert "PU002" in ids  # the wrapped lambda calls random.random()


def test_analyze_source_clean_pipeline():
    assert analyze_source(CLEAN_SOURCE, "clean_pipeline.py") == []


def test_cli_source_mode_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad_pipeline.py"
    bad.write_text(IMPURE_SOURCE)
    good = tmp_path / "good_pipeline.py"
    good.write_text(CLEAN_SOURCE)

    assert lint_main([str(good)]) == 0
    capsys.readouterr()
    assert lint_main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "PU002" in out and "PU003" in out
    # --ignore downgrades the run to clean.
    assert lint_main([str(bad), "--ignore", "PU002,PU003"]) == 0


def test_repo_pipelines_are_clean_under_source_analysis():
    """Satellite (c): the analyzers found nothing to fix in the shipped
    examples and experiment drivers; pin that state."""
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[1]
    targets = sorted((root / "examples").glob("*.py")) + sorted(
        (root / "src" / "repro" / "experiments").glob("*.py")
    )
    assert targets, "repo layout changed; update the sweep"
    for path in targets:
        findings = analyze_source(path.read_text(), str(path))
        assert findings == [], (path, findings)
