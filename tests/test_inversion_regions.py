"""Region abstraction: index-only slicing and assembly from block files."""

import numpy as np
import pytest

from repro.dfs import formats
from repro.inversion.regions import (
    BlockRef,
    Region,
    stack_regions_horizontally,
    stack_regions_vertically,
)


class DirectReader:
    """Region reader over a plain DFS (no task accounting)."""

    def __init__(self, dfs):
        self.dfs = dfs

    def read_matrix(self, path):
        return formats.read_matrix(self.dfs, path)

    def read_rows(self, path, r1, r2):
        return formats.read_rows(self.dfs, path, r1, r2)


@pytest.fixture
def reader(dfs):
    return DirectReader(dfs)


def store_region_rowchunks(dfs, m, chunk_rows, prefix="/data"):
    """Write m as row-chunk files and return the corresponding Region."""
    refs = []
    r = 0
    i = 0
    rows, cols = m.shape
    while r < rows:
        r2 = min(r + chunk_rows, rows)
        path = f"{prefix}/A.{i}"
        formats.write_matrix(dfs, path, m[r:r2])
        refs.append(
            BlockRef(
                path=path, r1=r, c1=0, rows=r2 - r, cols=cols,
                file_rows=r2 - r, file_cols=cols,
            )
        )
        r, i = r2, i + 1
    return Region(rows, cols, tuple(refs))


class TestAssembly:
    def test_single_file_region(self, dfs, reader, rng):
        m = rng.standard_normal((6, 4))
        formats.write_matrix(dfs, "/m", m)
        region = Region.single("/m", 6, 4)
        assert np.array_equal(region.read(reader), m)

    def test_row_chunked_region(self, dfs, reader, rng):
        m = rng.standard_normal((10, 5))
        region = store_region_rowchunks(dfs, m, 3)
        assert np.array_equal(region.read(reader), m)

    def test_transposed_file(self, dfs, reader, rng):
        m = rng.standard_normal((4, 7))
        formats.write_matrix(dfs, "/mt", m.T)
        region = Region.single("/mt", 4, 7, transposed=True)
        assert np.array_equal(region.read(reader), m)

    def test_gap_detected(self, dfs, reader, rng):
        m = rng.standard_normal((4, 4))
        formats.write_matrix(dfs, "/part", m[:2])
        region = Region(
            4, 4,
            (BlockRef("/part", 0, 0, 2, 4, file_rows=2, file_cols=4),),
        )
        assert not region.covered()
        with pytest.raises(ValueError, match="covered"):
            region.read(reader)

    def test_overlap_detected(self):
        refs = (
            BlockRef("/a", 0, 0, 2, 2, file_rows=2, file_cols=2),
            BlockRef("/b", 1, 1, 2, 2, file_rows=2, file_cols=2),
            BlockRef("/c", 0, 2, 1, 1, file_rows=1, file_cols=1),
            BlockRef("/d", 2, 0, 1, 1, file_rows=1, file_cols=1),
        )
        region = Region(3, 3, refs)
        assert not region.covered()

    def test_block_outside_region_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            Region(2, 2, (BlockRef("/x", 1, 1, 2, 2, file_rows=2, file_cols=2),))


class TestSub:
    def test_sub_matches_numpy_slice(self, dfs, reader, rng):
        m = rng.standard_normal((12, 9))
        region = store_region_rowchunks(dfs, m, 4)
        sub = region.sub(2, 9, 1, 8)
        assert np.array_equal(sub.read(reader), m[2:9, 1:8])

    def test_sub_of_sub(self, dfs, reader, rng):
        m = rng.standard_normal((16, 16))
        region = store_region_rowchunks(dfs, m, 5)
        sub = region.sub(2, 14, 2, 14).sub(1, 9, 3, 10)
        assert np.array_equal(sub.read(reader), m[3:11, 5:12])

    def test_sub_is_index_only(self, dfs, rng):
        """Slicing never touches the DFS — the paper's <1s logical
        partitioning of the Schur complement."""
        m = rng.standard_normal((8, 8))
        region = store_region_rowchunks(dfs, m, 3)
        before = dfs.stats.snapshot()
        region.sub(1, 7, 2, 6)
        delta = dfs.stats.snapshot() - before
        assert delta.bytes_read == 0

    def test_empty_sub(self, dfs, reader, rng):
        region = store_region_rowchunks(dfs, rng.standard_normal((4, 4)), 2)
        sub = region.sub(2, 2, 0, 4)
        assert sub.read(reader).shape == (0, 4)

    def test_out_of_range_rejected(self, dfs, rng):
        region = store_region_rowchunks(dfs, rng.standard_normal((4, 4)), 2)
        with pytest.raises(ValueError):
            region.sub(0, 5, 0, 4)

    def test_sub_transposed_region(self, dfs, reader, rng):
        m = rng.standard_normal((6, 8))
        formats.write_matrix(dfs, "/t", m.T)
        region = Region.single("/t", 6, 8, transposed=True)
        sub = region.sub(1, 5, 2, 7)
        assert np.array_equal(sub.read(reader), m[1:5, 2:7])


class TestIOEfficiency:
    def test_full_width_sub_uses_range_read(self, dfs, reader, rng):
        """A full-width row slice of a row-chunk file must not fetch the
        other rows of that file."""
        m = rng.standard_normal((100, 10))
        region = store_region_rowchunks(dfs, m, 100)  # single big file
        before = dfs.stats.snapshot()
        sub = region.sub(0, 5, 0, 10)
        out = sub.read(reader)
        delta = dfs.stats.snapshot() - before
        assert np.array_equal(out, m[:5])
        assert delta.bytes_read < m.nbytes / 10

    def test_file_paths_deduplicated(self, dfs, rng):
        region = store_region_rowchunks(dfs, rng.standard_normal((6, 6)), 2)
        assert len(region.file_paths()) == 3


class TestStacking:
    def test_vertical(self, dfs, reader, rng):
        top = rng.standard_normal((3, 4))
        bottom = rng.standard_normal((2, 4))
        formats.write_matrix(dfs, "/top", top)
        formats.write_matrix(dfs, "/bot", bottom)
        region = stack_regions_vertically(
            Region.single("/top", 3, 4), Region.single("/bot", 2, 4)
        )
        assert np.array_equal(region.read(reader), np.vstack([top, bottom]))

    def test_horizontal(self, dfs, reader, rng):
        left = rng.standard_normal((3, 2))
        right = rng.standard_normal((3, 5))
        formats.write_matrix(dfs, "/l", left)
        formats.write_matrix(dfs, "/r", right)
        region = stack_regions_horizontally(
            Region.single("/l", 3, 2), Region.single("/r", 3, 5)
        )
        assert np.array_equal(region.read(reader), np.hstack([left, right]))

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            stack_regions_vertically(
                Region(2, 3, ()), Region(2, 4, ())
            )
