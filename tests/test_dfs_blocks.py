"""Block store: placement, replication, checksums, failures."""

import pytest

from repro.dfs.blocks import (
    BlockCorruptionError,
    BlockMissingError,
    BlockStore,
)


@pytest.fixture
def store() -> BlockStore:
    return BlockStore(num_datanodes=5, replication=3, block_size=1024, seed=3)


class TestPlacement:
    def test_write_returns_requested_replication(self, store):
        info = store.write_block(b"hello")
        assert len(info.replicas) == 3

    def test_replicas_are_distinct_nodes(self, store):
        info = store.write_block(b"payload")
        assert len(set(info.replicas)) == len(info.replicas)

    def test_replication_capped_by_cluster_size(self):
        small = BlockStore(num_datanodes=2, replication=3)
        info = small.write_block(b"x")
        assert len(info.replicas) == 2

    def test_each_replica_node_stores_payload(self, store):
        info = store.write_block(b"abc")
        for node_idx in info.replicas:
            assert store.datanodes[node_idx].get(info.block_id) == b"abc"

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            BlockStore(num_datanodes=0)
        with pytest.raises(ValueError):
            BlockStore(num_datanodes=2, replication=0)


class TestReads:
    def test_roundtrip(self, store):
        info = store.write_block(b"some data here")
        assert store.read_block(info) == b"some data here"

    def test_read_survives_single_node_failure(self, store):
        info = store.write_block(b"resilient")
        store.kill_datanode(info.replicas[0])
        assert store.read_block(info) == b"resilient"

    def test_read_survives_all_but_one_failure(self, store):
        info = store.write_block(b"last copy")
        for node_idx in info.replicas[:-1]:
            store.kill_datanode(node_idx)
        assert store.read_block(info) == b"last copy"

    def test_read_fails_when_all_replicas_dead(self, store):
        info = store.write_block(b"gone")
        for node_idx in info.replicas:
            store.kill_datanode(node_idx)
        with pytest.raises(BlockMissingError):
            store.read_block(info)

    def test_revived_node_serves_again(self, store):
        info = store.write_block(b"back")
        for node_idx in info.replicas:
            store.kill_datanode(node_idx)
        store.revive_datanode(info.replicas[0])
        assert store.read_block(info) == b"back"


class TestCorruption:
    def test_corrupt_replica_is_skipped(self, store):
        info = store.write_block(b"check me")
        assert store.corrupt_replica(info, info.replicas[0])
        assert store.read_block(info) == b"check me"

    def test_all_replicas_corrupt_raises(self, store):
        info = store.write_block(b"doomed")
        for node_idx in info.replicas:
            store.corrupt_replica(info, node_idx)
        with pytest.raises(BlockCorruptionError):
            store.read_block(info)

    def test_corrupt_missing_block_returns_false(self, store):
        info = store.write_block(b"x")
        absent = [i for i in range(5) if i not in info.replicas]
        assert not store.corrupt_replica(info, absent[0])


class TestDeletion:
    def test_delete_frees_all_replicas(self, store):
        info = store.write_block(b"bye")
        store.delete_block(info)
        for dn in store.datanodes:
            assert dn.get(info.block_id) is None
        assert store.block_count == 0

    def test_stored_bytes_accounting(self, store):
        store.write_block(b"12345678")
        assert store.total_stored_bytes == 8 * 3
