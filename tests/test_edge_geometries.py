"""Extreme pipeline geometries: deep recursion, degenerate worker counts,
tiny leaves, and chunk-alignment corners."""

import numpy as np
import pytest

from repro import InversionConfig, invert
from repro.inversion import InversionPlan

from conftest import random_invertible


class TestDeepRecursion:
    def test_depth_four_pipeline(self, rng):
        """nb=4 on n=64: depth 4, 17 jobs, leaves of order <= 4."""
        a = random_invertible(rng, 64)
        res = invert(a, InversionConfig(nb=4, m0=4))
        assert res.plan.depth == 4
        assert res.num_jobs == 17
        assert res.residual(a) < 1e-8

    def test_order_one_leaves(self, rng):
        """nb=1: every leaf is a 1x1 block (no pivot choice at all); diagonal
        dominance keeps it safe and the pipeline still composes correctly."""
        from repro.workloads import diagonally_dominant

        a = diagonally_dominant(16, seed=3)
        res = invert(a, InversionConfig(nb=1, m0=2))
        assert res.residual(a) < 1e-8
        assert all(leaf.n == 1 for leaf in res.plan.tree.leaves())

    def test_depth_five_plan_structure(self):
        plan = InversionPlan(n=1024, nb=32, m0=4)
        plan.validate()
        assert plan.depth == 5
        assert plan.num_jobs == 33  # matches M4's shape


class TestDegenerateWorkerCounts:
    def test_more_workers_than_rows(self, rng):
        """m0 = 16 on a 12x12 matrix: most chunks are empty; every task must
        handle its zero-width share gracefully."""
        a = random_invertible(rng, 12)
        res = invert(a, InversionConfig(nb=4, m0=16))
        assert res.residual(a) < 1e-9

    def test_m0_two_minimum(self, rng):
        a = random_invertible(rng, 40)
        res = invert(a, InversionConfig(nb=10, m0=2))
        assert res.residual(a) < 1e-9

    def test_odd_m0_rejected(self):
        with pytest.raises(ValueError, match="even"):
            InversionConfig(nb=8, m0=5)

    def test_large_m0_with_odd_order(self, rng):
        a = random_invertible(rng, 37)
        res = invert(a, InversionConfig(nb=10, m0=12))
        assert res.residual(a) < 1e-9

    def test_prime_order_prime_chunks(self, rng):
        """n=53 with m0=6: nothing divides anything; every chunk boundary is
        irregular."""
        a = random_invertible(rng, 53)
        res = invert(a, InversionConfig(nb=7, m0=6))
        assert np.allclose(res.inverse, np.linalg.inv(a), atol=1e-8)


class TestSmallMatrices:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_tiny_orders(self, rng, n):
        a = random_invertible(rng, n)
        res = invert(a, InversionConfig(nb=2, m0=2))
        assert np.allclose(res.inverse, np.linalg.inv(a), atol=1e-10)

    def test_one_by_one(self):
        res = invert(np.array([[4.0]]), InversionConfig(nb=2, m0=2))
        assert res.inverse[0, 0] == pytest.approx(0.25)

    def test_n_equals_nb_boundary(self, rng):
        """n == nb: single leaf, one job; n == nb + 1: full pipeline."""
        a = random_invertible(rng, 16)
        at_boundary = invert(a, InversionConfig(nb=16, m0=2))
        assert at_boundary.num_jobs == 1
        b = random_invertible(rng, 17)
        past_boundary = invert(b, InversionConfig(nb=16, m0=2))
        assert past_boundary.num_jobs == 3
        assert past_boundary.residual(b) < 1e-9


class TestAblationGeometry:
    def test_naive_mode_deep_recursion(self, rng):
        a = random_invertible(rng, 48)
        res = invert(
            a, InversionConfig(nb=4, m0=4, block_wrap=False, transpose_u=False)
        )
        assert res.residual(a) < 1e-8

    def test_combined_mode_deep_recursion(self, rng):
        a = random_invertible(rng, 48)
        res = invert(a, InversionConfig(nb=4, m0=4, separate_files=False))
        assert res.residual(a) < 1e-8
        combines = [
            p for p in res.record.master_phases if p.name.startswith("combine")
        ]
        assert len(combines) == res.plan.num_lu_jobs
