"""Layout and factor-assembly internals."""

import numpy as np
import pytest

from repro import InversionConfig
from repro.inversion import MatrixInverter
from repro.inversion.factors import perm_from_bytes, perm_to_bytes, read_lower, read_perm, read_upper
from repro.inversion.layout import Layout, factor_paths
from repro.inversion.plan import InversionPlan
from repro.linalg import is_lower_triangular, is_upper_triangular, permutation
from repro.mapreduce import MapReduceRuntime

from conftest import random_invertible


def make_layout(n=64, nb=16, m0=4, **flags):
    cfg = InversionConfig(nb=nb, m0=m0, **flags)
    plan = InversionPlan(n=n, nb=nb, m0=m0, root=cfg.root)
    return Layout(plan, cfg, n)


class TestLayoutStructure:
    def test_all_nodes_present(self):
        layout = make_layout()
        plan_dirs = set()

        def walk(node):
            plan_dirs.add(node.dir)
            if not node.is_leaf:
                walk(node.child1)
                walk(node.child2)

        walk(layout.plan.tree)
        assert plan_dirs == set(layout.by_dir)

    def test_internal_input_node_regions_cover(self):
        layout = make_layout()
        root = layout.plan.tree
        nl = layout.of(root)
        assert nl.a2.covered() and nl.a3.covered() and nl.a4.covered()
        assert nl.a2.rows == root.n1 and nl.a2.cols == root.n2
        assert nl.a3.rows == root.n2 and nl.a3.cols == root.n1

    def test_schur_node_regions_are_views_of_parent_out(self):
        layout = make_layout()
        root = layout.plan.tree
        schur = root.child2
        out_paths = set(layout.of(root).out.file_paths())
        nl = layout.of(schur)
        for region in (nl.a2, nl.a3, nl.a4):
            assert set(region.file_paths()) <= out_paths

    def test_mapper_row_ranges_cover_matrix(self):
        layout = make_layout(n=100, m0=6)
        ranges = layout.mapper_row_ranges()
        assert ranges[0][0] == 0 and ranges[-1][1] == 100
        assert len(ranges) == 6

    def test_out_region_block_wrap_grid(self):
        layout = make_layout(m0=8)  # f1=4, f2=2
        nl = layout.of(layout.plan.tree)
        assert nl.out.covered()
        # Grid naming A.<j1>.<j2>.
        assert any(p.endswith("/OUT/A.0.0") for p in nl.out.file_paths())

    def test_out_region_naive_slabs(self):
        layout = make_layout(block_wrap=False, m0=4)
        nl = layout.of(layout.plan.tree)
        assert nl.out.covered()
        assert any(p.endswith("/OUT/A.0") for p in nl.out.file_paths())

    def test_u2_transposed_flag_follows_config(self):
        on = make_layout(transpose_u=True)
        off = make_layout(transpose_u=False)
        assert all(b.transposed for b in on.of(on.plan.tree).u2.blocks)
        assert not any(b.transposed for b in off.of(off.plan.tree).u2.blocks)

    def test_factor_paths_transpose_naming(self):
        l, u, p = factor_paths("/Root", transpose_u=True)
        assert u.endswith("ut.bin")
        _, u2, _ = factor_paths("/Root", transpose_u=False)
        assert u2.endswith("u.bin")

    def test_leaf_matrix_region(self):
        layout = make_layout(n=64, nb=16)
        leaf = layout.plan.tree.leaves()[0]
        nl = layout.of(leaf)
        assert nl.matrix.covered()
        assert nl.matrix.rows == leaf.n

    def test_intermediate_file_count_matches_formula(self):
        """Section 6.1's N(d) formula counts the L-side part files plus the
        leaf factor files; the layout produces exactly m0/2 L2 files per
        internal node and one l.bin per leaf."""
        from repro.inversion.plan import intermediate_file_count

        layout = make_layout(n=256, nb=16, m0=8)
        tree = layout.plan.tree
        l_files = sum(
            len(layout.of(node).l2.file_paths()) for node in tree.internal_nodes()
        )
        leaf_files = len(tree.leaves())
        assert l_files + leaf_files == intermediate_file_count(256, 16, 8)


class TestFactorAssembly:
    @pytest.fixture
    def run(self, rng):
        runtime = MapReduceRuntime()
        cfg = InversionConfig(nb=16, m0=4)
        inverter = MatrixInverter(config=cfg, runtime=runtime)
        a = random_invertible(rng, 72)
        factors = inverter.lu(a)
        layout = factors.plan, factors

        # Build a reader over the runtime's DFS.
        class Reader:
            def read_bytes(self, path):
                return runtime.dfs.read_bytes(path)

            def read_matrix(self, path):
                from repro.dfs import formats

                return formats.read_matrix(runtime.dfs, path)

            def read_rows(self, path, r1, r2):
                from repro.dfs import formats

                return formats.read_rows(runtime.dfs, path, r1, r2)

            def exists(self, path):
                return runtime.dfs.exists(path)

        inv_layout = Layout(factors.plan, cfg, 72)
        yield a, factors, inv_layout, Reader()
        runtime.shutdown()

    def test_assembled_factors_triangular(self, run):
        a, factors, layout, reader = run
        lower = read_lower(layout, layout.plan.tree, reader)
        upper = read_upper(layout, layout.plan.tree, reader)
        assert is_lower_triangular(lower)
        assert is_upper_triangular(upper)
        assert np.allclose(np.diag(lower), 1.0)

    def test_assembled_perm_valid(self, run):
        a, factors, layout, reader = run
        perm = read_perm(layout, layout.plan.tree, reader)
        assert permutation.is_permutation(perm)

    def test_assembly_matches_driver_output(self, run):
        a, factors, layout, reader = run
        assert np.array_equal(
            read_lower(layout, layout.plan.tree, reader), factors.lower
        )
        assert np.array_equal(
            read_upper(layout, layout.plan.tree, reader), factors.upper
        )

    def test_missing_leaf_factors_raise(self):
        layout = make_layout(n=8, nb=16)  # single leaf

        class Empty:
            def exists(self, path):
                return False

        with pytest.raises(FileNotFoundError):
            read_lower(layout, layout.plan.tree, Empty())


class TestPermCodec:
    def test_roundtrip(self, rng):
        p = rng.permutation(17)
        assert np.array_equal(perm_from_bytes(perm_to_bytes(p)), p)

    def test_empty(self):
        assert perm_from_bytes(perm_to_bytes(np.array([], dtype=np.int64))).size == 0
