"""fsck: detection and rollback of commit-protocol debris.

Three debris categories a driver crash can leave behind — orphaned staging
files, unsealed files outside staging, and manifests that lie about what
was published — plus the CLI self-check and the auto-fsck that
``invert(resume=True)`` runs before trusting any on-DFS state.
"""

import json

import pytest

from repro import InversionConfig
from repro.dfs import DFS, CommitLog, fsck, staging_path
from repro.dfs.cli import main as dfs_main
from repro.inversion import MatrixInverter
from repro.mapreduce import MapReduceRuntime, RuntimeConfig

from conftest import random_invertible


@pytest.fixture
def small(dfs):
    """A healthy published file plus each category of debris."""
    dfs.write_bytes("/Root/keep.bin", b"healthy")
    dfs.stage_bytes(staging_path("attempt-dead", "/Root/lost.bin"), b"orphan")
    dfs.stage_bytes("/Root/torn.bin", b"torn direct write")
    log = CommitLog(dfs, "/Root")
    log.record("job:lying", ["/Root/ghost.bin"])  # lists a file that isn't there
    dfs.write_bytes(log.path("job:broken"), b"{not json")
    return dfs


class TestDetection:
    def test_pristine_tree_is_clean(self, dfs):
        dfs.write_bytes("/Root/a", b"x")
        report = fsck(dfs, repair=False)
        assert report.clean
        assert report.files_checked >= 1

    def test_all_three_categories_detected(self, small):
        report = fsck(small, repair=False)
        kinds = {i.kind for i in report.issues}
        assert kinds == {"orphaned-staging", "unsealed-file", "invalid-manifest"}

    def test_orphaned_staging_path_reported(self, small):
        report = fsck(small, repair=False)
        orphans = [i.path for i in report.issues if i.kind == "orphaned-staging"]
        assert orphans == [staging_path("attempt-dead", "/Root/lost.bin")]

    def test_both_bad_manifests_flagged(self, small):
        report = fsck(small, repair=False)
        bad = [i for i in report.issues if i.kind == "invalid-manifest"]
        assert len(bad) == 2
        details = " ".join(i.detail for i in bad)
        assert "unparseable" in details
        assert "/Root/ghost.bin" in details

    def test_manifest_listing_unsealed_file_is_invalid(self, dfs):
        dfs.stage_bytes("/Root/half.bin", b"pending")  # never sealed
        CommitLog(dfs, "/Root").record("job:x", ["/Root/half.bin"])
        report = fsck(dfs, repair=False)
        assert any(
            i.kind == "invalid-manifest" and "half.bin" in i.detail
            for i in report.issues
        )


class TestRepair:
    def test_report_only_leaves_debris_in_place(self, small):
        fsck(small, repair=False)
        assert small.namenode.walk_files("/_tmp", include_pending=True)
        assert small.namenode.pending_files("/Root")

    def test_repair_rolls_everything_back(self, small):
        report = fsck(small, repair=True)
        assert all(i.repaired for i in report.issues)
        assert fsck(small, repair=False).clean
        assert small.namenode.pending_files("/") == []
        # Healthy published data survives the rollback.
        assert small.read_bytes("/Root/keep.bin") == b"healthy"

    def test_repair_debits_discard_ledger(self, small):
        staged_before = small.stats.bytes_staged
        discarded_before = small.stats.bytes_discarded
        fsck(small, repair=True)
        # Both pending files' bytes moved to the discarded column.
        assert small.stats.bytes_discarded > discarded_before
        assert small.stats.bytes_staged == staged_before

    def test_invalid_manifests_deleted_so_steps_rerun(self, small):
        fsck(small, repair=True)
        log = CommitLog(small, "/Root")
        assert not log.committed("job:lying")
        assert not log.committed("job:broken")


class TestResumeAutoFsck:
    def test_resume_repairs_before_trusting_manifests(self, rng):
        dfs = DFS(num_datanodes=3, replication=2, block_size=1 << 16, seed=0)
        runtime = MapReduceRuntime(
            dfs=dfs, config=RuntimeConfig(num_workers=2, executor="serial")
        )
        config = InversionConfig(nb=2, m0=2)
        a = random_invertible(rng, 8)
        inverter = MatrixInverter(config=config, runtime=runtime)
        first = inverter.invert(a)
        # Simulate crash debris on the completed tree: an orphaned staging
        # file and a manifest lying about a file that was never published.
        dfs.stage_bytes(staging_path("attempt-zombie", "/Root/z.bin"), b"zzz")
        log = CommitLog(dfs, config.root)
        final_manifest = log.published("job:invert-final")
        dfs.delete(log.path("job:invert-final"))
        log.record("job:invert-final", final_manifest + ["/Root/ghost.bin"])
        result = inverter.invert(a, resume=True)
        assert result.residual(a) < 1e-8
        assert abs(result.residual(a) - first.residual(a)) < 1e-8
        report = fsck(dfs, root=config.root, repair=False)
        assert report.clean, report.format()
        # The lying manifest was dropped and the final job re-ran.
        assert log.committed("job:invert-final")
        assert "/Root/ghost.bin" not in log.published("job:invert-final")
        runtime.shutdown()


class TestCLI:
    def test_self_check_is_green(self, capsys):
        assert dfs_main(["fsck", "--self-check"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out

    def test_self_check_json(self, capsys):
        assert dfs_main(["fsck", "--self-check", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert len(payload["checks"]) >= 8

    def test_demo_detects_and_repairs_crash_debris(self, capsys):
        assert dfs_main(["fsck", "--crash-at", "6"]) == 0
        out = capsys.readouterr().out
        assert "repaired" in out or "clean" in out

    def test_no_repair_reports_without_touching(self, capsys):
        assert dfs_main(["fsck", "--crash-at", "6", "--no-repair"]) == 0
