"""MPI substrate: point-to-point, collectives, traffic accounting, grids."""

import numpy as np
import pytest

from repro.mpi import (
    Comm,
    DeadlockError,
    MPIError,
    ProcessGrid,
    World,
    collect_columns,
    cyclic_owner,
    distribute_columns,
    local_count,
    local_index,
    owned_indices,
    payload_bytes,
)


class TestPointToPoint:
    def test_send_recv(self):
        world = World(2)

        def fn(comm):
            if comm.rank == 0:
                comm.send({"x": 1}, dest=1)
                return None
            return comm.recv(source=0)

        results = world.run(fn)
        assert results[1] == {"x": 1}

    def test_messages_ordered_per_channel(self):
        world = World(2)

        def fn(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1)
                return None
            return [comm.recv(source=0) for _ in range(5)]

        assert world.run(fn)[1] == [0, 1, 2, 3, 4]

    def test_self_send_rejected(self):
        world = World(1)

        def fn(comm):
            comm.send(1, dest=0)

        with pytest.raises(MPIError):
            world.run(fn)

    def test_recv_timeout_is_deadlock(self):
        world = World(2, timeout=0.2)

        def fn(comm):
            if comm.rank == 1:
                comm.recv(source=0)  # never sent

        with pytest.raises(MPIError):
            world.run(fn)

    def test_rank_exception_propagates(self):
        world = World(2, timeout=0.5)

        def fn(comm):
            if comm.rank == 1:
                raise ValueError("rank boom")

        with pytest.raises(MPIError, match="rank 1"):
            world.run(fn)


class TestCollectives:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 8])
    def test_bcast_all_sizes(self, size):
        world = World(size)

        def fn(comm):
            return comm.bcast("payload" if comm.rank == 0 else None, root=0)

        assert world.run(fn) == ["payload"] * size

    @pytest.mark.parametrize("root", [0, 1, 2])
    def test_bcast_nonzero_root(self, root):
        world = World(3)

        def fn(comm):
            return comm.bcast(comm.rank if comm.rank == root else None, root=root)

        assert world.run(fn) == [root] * 3

    def test_gather(self):
        world = World(4)

        def fn(comm):
            return comm.gather(comm.rank * 10, root=0)

        results = world.run(fn)
        assert results[0] == [0, 10, 20, 30]
        assert results[1] is None

    def test_scatter(self):
        world = World(3)

        def fn(comm):
            data = [f"item{i}" for i in range(3)] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        assert world.run(fn) == ["item0", "item1", "item2"]

    def test_scatter_wrong_length_rejected(self):
        world = World(2, timeout=0.5)

        def fn(comm):
            data = [1] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        with pytest.raises(MPIError):
            world.run(fn)

    def test_allgather(self):
        world = World(4)

        def fn(comm):
            return comm.allgather(comm.rank)

        assert world.run(fn) == [[0, 1, 2, 3]] * 4

    @pytest.mark.parametrize("size", [1, 2, 5, 8])
    def test_reduce_and_allreduce_sum(self, size):
        world = World(size)

        def fn(comm):
            total = comm.allreduce_sum(comm.rank + 1)
            return total

        expected = size * (size + 1) // 2
        assert world.run(fn) == [expected] * size

    def test_reduce_sum_ndarray(self):
        world = World(3)

        def fn(comm):
            return comm.allreduce_sum(np.full(4, float(comm.rank)))

        for out in world.run(fn):
            assert np.array_equal(out, np.full(4, 3.0))

    def test_barrier(self):
        world = World(4)

        def fn(comm):
            comm.barrier()
            return True

        assert all(world.run(fn))


class TestTraffic:
    def test_payload_bytes_ndarray(self):
        assert payload_bytes(np.zeros((10, 10))) == 800

    def test_payload_bytes_bytes(self):
        assert payload_bytes(b"12345") == 5

    def test_send_traffic_counted(self):
        world = World(2)

        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100), dest=1)
            else:
                comm.recv(source=0)

        world.run(fn)
        assert world.traffic.bytes_sent == 800
        assert world.traffic.messages == 1
        assert world.traffic.per_rank_sent[0] == 800

    def test_bcast_traffic_scales_with_ranks(self):
        def traffic(size):
            world = World(size)

            def fn(comm):
                comm.bcast(np.zeros(128) if comm.rank == 0 else None, root=0)

            world.run(fn)
            return world.traffic.bytes_sent

        assert traffic(8) > traffic(2)
        assert traffic(8) == 7 * 1024  # p-1 messages of 1 KiB


class TestBlockCyclic:
    def test_owner_cycles(self):
        # block=2, nprocs=3: indices 0,1->p0  2,3->p1  4,5->p2  6,7->p0 ...
        owners = [cyclic_owner(g, 2, 3) for g in range(8)]
        assert owners == [0, 0, 1, 1, 2, 2, 0, 0]

    def test_local_index(self):
        assert local_index(6, 2, 3) == 2  # second cycle, first slot
        assert local_index(7, 2, 3) == 3

    def test_owned_indices_partition(self):
        n, b, p = 23, 3, 4
        all_indices = np.concatenate([owned_indices(q, n, b, p) for q in range(p)])
        assert sorted(all_indices.tolist()) == list(range(n))

    def test_local_count_matches_enumeration(self):
        for n in (1, 10, 64, 100):
            for b in (1, 3, 8):
                for p in (1, 2, 5):
                    for q in range(p):
                        assert local_count(q, n, b, p) == owned_indices(q, n, b, p).size

    def test_distribute_collect_roundtrip(self, rng):
        a = rng.standard_normal((12, 17))
        locals_ = distribute_columns(a, 4, 3)
        assert np.array_equal(collect_columns(locals_, 17, 4, 3), a)

    def test_owned_indices_validation(self):
        with pytest.raises(ValueError):
            owned_indices(3, 10, 2, 3)


class TestProcessGrid:
    def test_coords_roundtrip(self):
        g = ProcessGrid(2, 3)
        for r in range(6):
            row, col = g.coords(r)
            assert g.rank(row, col) == r

    def test_members(self):
        g = ProcessGrid(2, 3)
        assert g.row_members(1) == [3, 4, 5]
        assert g.col_members(2) == [2, 5]

    def test_block_owner(self):
        g = ProcessGrid(2, 2)
        assert g.block_owner(0, 0, 4) == 0
        assert g.block_owner(4, 4, 4) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessGrid(0, 2)
        with pytest.raises(ValueError):
            ProcessGrid(2, 2).coords(4)
