"""Property-based tests for the MapReduce engine's core contracts."""

from collections import Counter as PyCounter

from hypothesis import given, settings, strategies as st

from repro.mapreduce.job import default_partitioner
from repro.mapreduce.shuffle import (
    merge_map_outputs,
    partition_pairs,
    sort_and_group,
)

keys = st.one_of(st.integers(-1000, 1000), st.text(max_size=8))
pairs_lists = st.lists(st.tuples(keys, st.integers()), max_size=200)


class TestPartitioning:
    @given(pairs_lists, st.integers(1, 16))
    @settings(max_examples=100, deadline=None)
    def test_partitioning_is_a_partition(self, pairs, nparts):
        """Every pair lands in exactly one bucket; nothing lost, nothing
        duplicated, every bucket index valid."""
        buckets = partition_pairs(pairs, default_partitioner, nparts)
        rebuilt = [p for bucket in buckets.values() for p in bucket]
        assert PyCounter(rebuilt) == PyCounter(pairs)
        assert all(0 <= b < nparts for b in buckets)

    @given(keys, st.integers(1, 16))
    @settings(max_examples=200, deadline=None)
    def test_partitioner_deterministic(self, key, nparts):
        assert default_partitioner(key, nparts) == default_partitioner(key, nparts)

    @given(pairs_lists, st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_same_key_same_bucket(self, pairs, nparts):
        buckets = partition_pairs(pairs, default_partitioner, nparts)
        seen: dict = {}
        for b, bucket in buckets.items():
            for k, _ in bucket:
                assert seen.setdefault(k, b) == b


class TestGrouping:
    @given(pairs_lists)
    @settings(max_examples=100, deadline=None)
    def test_grouping_preserves_multiset(self, pairs):
        groups = sort_and_group(pairs)
        rebuilt = [(k, v) for k, vs in groups for v in vs]
        assert PyCounter(rebuilt) == PyCounter(pairs)

    @given(pairs_lists)
    @settings(max_examples=100, deadline=None)
    def test_each_key_appears_once(self, pairs):
        groups = sort_and_group(pairs)
        group_keys = [k for k, _ in groups]
        assert len(group_keys) == len(set(map(repr, group_keys)))

    @given(pairs_lists)
    @settings(max_examples=100, deadline=None)
    def test_values_keep_arrival_order_within_key(self, pairs):
        groups = dict(
            (repr(k), vs) for k, vs in sort_and_group(pairs, sort_keys=False)
        )
        arrival: dict = {}
        for k, v in pairs:
            arrival.setdefault(repr(k), []).append(v)
        assert groups == arrival


class TestMerge:
    @given(
        st.lists(
            st.lists(st.tuples(st.integers(0, 20), st.integers()), max_size=30),
            max_size=5,
        ),
        st.integers(1, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_then_group_equals_group_of_concat(self, per_map, nparts):
        """The shuffle pipeline (per-map partition -> merge -> group) sees
        exactly the concatenated pairs, regardless of how maps split them."""
        partitioned = [
            partition_pairs(pairs, default_partitioner, nparts) for pairs in per_map
        ]
        merged = merge_map_outputs(partitioned, nparts)
        rebuilt = [p for bucket in merged.values() for p in bucket]
        flat = [p for pairs in per_map for p in pairs]
        assert PyCounter(rebuilt) == PyCounter(flat)
