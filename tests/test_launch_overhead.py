"""Launch-overhead sensitivity experiment (the HaLoop discussion)."""

import pytest

from repro.experiments import ExperimentHarness, launch_overhead


@pytest.fixture(scope="module")
def result():
    return launch_overhead.run(
        matrix="M5",
        overheads=(22.0, 0.0),
        node_counts=(4, 16),
        scale=128,
        harness=ExperimentHarness(),
    )


class TestLaunchOverhead:
    def test_cheaper_launches_are_faster(self, result):
        slow = result.curve(22.0)
        fast = result.curve(0.0)
        for t_slow, t_fast in zip(slow.seconds, fast.seconds):
            assert t_fast < t_slow

    def test_gap_is_launch_cost_times_jobs(self, result):
        """With everything else identical, the makespans differ by exactly
        launch_overhead x number_of_jobs (M5: 9 jobs)."""
        slow = result.curve(22.0)
        fast = result.curve(0.0)
        gap = slow.seconds[0] - fast.seconds[0]
        assert gap == pytest.approx(22.0 * 9, rel=1e-6)

    def test_efficiency_improves_without_pipeline_changes(self, result):
        assert result.curve(0.0).efficiency_at_max() > result.curve(22.0).efficiency_at_max()

    def test_unknown_overhead_lookup(self, result):
        with pytest.raises(KeyError):
            result.curve(5.0)

    def test_format(self, result):
        text = launch_overhead.format_result(result)
        assert "HaLoop" in text and "efficiency" in text
