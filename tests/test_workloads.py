"""Workload generators and the Table 3 suite."""

import numpy as np
import pytest

from repro.workloads import (
    BY_NAME,
    PAPER_NB,
    TABLE3,
    diagonally_dominant,
    get,
    ill_conditioned,
    needs_cross_block_pivot,
    orthogonal,
    random_dense,
    random_gaussian,
    singular_matrix,
    symmetric_positive_definite,
    tridiagonal,
)


class TestGenerators:
    def test_random_dense_range_and_shape(self):
        a = random_dense(32, seed=1)
        assert a.shape == (32, 32)
        assert np.all((a >= 0) & (a < 1))

    def test_seeding_reproducible(self):
        assert np.array_equal(random_dense(16, seed=5), random_dense(16, seed=5))
        assert not np.array_equal(random_dense(16, seed=5), random_dense(16, seed=6))

    def test_gaussian(self):
        a = random_gaussian(64, seed=2)
        assert abs(a.mean()) < 0.2

    def test_spd_is_spd(self):
        a = symmetric_positive_definite(24, seed=3)
        assert np.allclose(a, a.T)
        assert np.all(np.linalg.eigvalsh(a) > 0)

    def test_diagonally_dominant(self):
        a = diagonally_dominant(20, seed=4)
        off = np.sum(np.abs(a), axis=1) - np.abs(np.diag(a))
        assert np.all(np.abs(np.diag(a)) > off)

    def test_ill_conditioned_condition_number(self):
        a = ill_conditioned(24, condition=1e8, seed=5)
        assert np.linalg.cond(a) == pytest.approx(1e8, rel=0.01)

    def test_singular_matrix_rank(self):
        a = singular_matrix(16, rank_deficiency=3, seed=6)
        assert np.linalg.matrix_rank(a) == 13

    def test_singular_validation(self):
        with pytest.raises(ValueError):
            singular_matrix(4, rank_deficiency=0)

    def test_orthogonal(self):
        q = orthogonal(18, seed=7)
        assert np.allclose(q @ q.T, np.eye(18), atol=1e-12)

    def test_tridiagonal_bandwidth(self):
        a = tridiagonal(12, seed=8)
        assert np.allclose(np.triu(a, k=2), 0)
        assert np.allclose(np.tril(a, k=-2), 0)
        assert np.linalg.matrix_rank(a) == 12

    def test_cross_block_pivot_matrix_is_invertible(self):
        a = needs_cross_block_pivot(16)
        assert np.linalg.matrix_rank(a) == 16
        # but its leading half block is singular:
        assert np.linalg.matrix_rank(a[:8, :8]) == 0


class TestSuite:
    def test_five_matrices(self):
        assert len(TABLE3) == 5
        assert set(BY_NAME) == {"M1", "M2", "M3", "M4", "M5"}

    @pytest.mark.parametrize(
        "name, order, jobs",
        [("M1", 20480, 9), ("M2", 32768, 17), ("M3", 40960, 17),
         ("M4", 102400, 33), ("M5", 16384, 9)],
    )
    def test_table3_columns(self, name, order, jobs):
        m = get(name)
        assert m.paper_order == order
        assert m.jobs == jobs

    def test_element_counts_match_paper(self):
        # Table 3: 0.42, 1.07, 1.68, 10.49, 0.26 billion elements.
        expect = {"M1": 0.42, "M2": 1.07, "M3": 1.68, "M4": 10.49, "M5": 0.27}
        for name, val in expect.items():
            assert get(name).elements_billion == pytest.approx(val, abs=0.01)

    def test_binary_sizes_match_paper(self):
        expect = {"M1": 3.2, "M2": 8, "M3": 12.5, "M4": 78.1, "M5": 2}
        for name, val in expect.items():
            assert get(name).binary_gb == pytest.approx(val, rel=0.03)

    def test_scaled_orders_preserve_depth(self):
        from repro.inversion.plan import depth

        for m in TABLE3:
            assert depth(m.order(64), m.nb(64)) == depth(m.paper_order, PAPER_NB)
            assert depth(m.order(128), m.nb(128)) == depth(m.paper_order, PAPER_NB)

    def test_generate_shape_and_determinism(self):
        m = get("M5")
        a = m.generate(scale=128)
        assert a.shape == (128, 128)
        assert np.array_equal(a, m.generate(scale=128))

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            get("M1").order(scale=7)

    def test_unknown_matrix(self):
        with pytest.raises(KeyError):
            get("M9")
