"""Conjugate gradient and the inversion-vs-iterative comparison app."""

import numpy as np
import pytest

from repro.apps import compare_strategies, execute_both
from repro.linalg import (
    cg_flops_per_solve,
    conjugate_gradient,
    inversion_flops,
    solve_strategy_crossover,
)
from repro.workloads import laplacian_1d, symmetric_positive_definite


class TestConjugateGradient:
    @pytest.mark.parametrize("n", [2, 8, 32, 64])
    def test_solves_spd(self, rng, n):
        a = symmetric_positive_definite(n, seed=n)
        x_true = rng.standard_normal(n)
        res = conjugate_gradient(a, a @ x_true)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-6)

    def test_exact_in_n_iterations(self):
        """CG is a direct method in exact arithmetic: <= n iterations."""
        a = laplacian_1d(24)
        b = np.ones(24)
        res = conjugate_gradient(a, b, tol=1e-12)
        assert res.converged
        assert res.iterations <= 24

    def test_well_conditioned_converges_fast(self):
        a = np.eye(50) + 0.01 * symmetric_positive_definite(50, seed=1) / 50
        res = conjugate_gradient(a, np.ones(50))
        assert res.iterations < 10

    def test_residual_history_monotone_at_end(self, rng):
        a = symmetric_positive_definite(20, seed=2)
        res = conjugate_gradient(a, rng.standard_normal(20))
        assert res.residual_history[-1] < res.residual_history[0]

    def test_zero_rhs(self):
        res = conjugate_gradient(np.eye(5), np.zeros(5))
        assert res.converged and res.iterations == 0
        assert np.array_equal(res.x, np.zeros(5))

    def test_warm_start(self, rng):
        a = symmetric_positive_definite(16, seed=3)
        x_true = rng.standard_normal(16)
        res = conjugate_gradient(a, a @ x_true, x0=x_true + 1e-8, tol=1e-7)
        assert res.iterations <= 2

    def test_indefinite_detected(self):
        a = np.diag([1.0, -1.0, 2.0])
        res = conjugate_gradient(a, np.array([1.0, 1.0, 1.0]), max_iterations=10)
        assert not res.converged

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            conjugate_gradient(np.eye(4), np.zeros(5))


class TestStrategyComparison:
    def test_crossover_formula(self):
        # n=100, k=50: CG per rhs = 2*100^2*50 = 1e6; inverse per rhs 1e4;
        # crossover = ceil(1e6 / (1e6 - 1e4)) = ceil(1.0101..) = 2.
        assert solve_strategy_crossover(100, 50) == 2

    def test_flop_formulas(self):
        assert cg_flops_per_solve(10, 5) == 1000
        assert inversion_flops(10, 3) == 1000 + 300

    def test_many_rhs_favors_inversion(self):
        a = symmetric_positive_definite(48, seed=4)
        cmp = compare_strategies(a)
        assert cmp.cheaper_strategy(10_000) == "inversion"

    def test_comparison_reports_iterations(self):
        a = laplacian_1d(32)  # cond ~ n^2: CG needs a meaningful k
        cmp = compare_strategies(a)
        assert 4 < cmp.cg_iterations <= 32

    def test_executed_agreement(self, rng):
        from repro.inversion import InversionConfig

        a = symmetric_positive_definite(48, seed=5)
        rhs = rng.standard_normal((48, 3))
        res = execute_both(a, rhs, config=InversionConfig(nb=16, m0=4))
        assert res.max_solution_difference < 1e-8
        assert all(r.converged for r in res.cg_results)
