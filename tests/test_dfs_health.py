"""DFS health monitoring: scan, scrub, repair convergence, and the enriched
read-path diagnostics."""

import random

import pytest

from repro.dfs import DFS, HealthMonitor
from repro.dfs.blocks import BlockCorruptionError, BlockMissingError


def make_dfs(num_datanodes=5, replication=3, seed=0):
    return DFS(
        num_datanodes=num_datanodes,
        replication=replication,
        block_size=64,
        seed=seed,
    )


def write_files(dfs, count=4, size=200):
    payloads = {}
    for i in range(count):
        path = f"/data/f{i}"
        data = bytes((i + j) % 251 for j in range(size))
        dfs.write_bytes(path, data)
        payloads[path] = data
    return payloads


def all_blocks(dfs):
    return [
        info
        for path in dfs.namenode.walk_files("/")
        for info in dfs.namenode.get_file(path).blocks
    ]


class TestScan:
    def test_clean_cluster_scans_healthy(self):
        dfs = make_dfs()
        write_files(dfs)
        report = dfs.health_monitor().scan()
        assert report.healthy
        assert report.blocks_total == len(all_blocks(dfs))
        assert report.under_replicated == 0
        assert report.corrupt_replicas == 0

    def test_dead_node_shows_as_under_replication(self):
        dfs = make_dfs()
        write_files(dfs)
        dfs.blocks.kill_datanode(0)
        report = dfs.health_monitor().scan()
        assert report.dead_replicas > 0
        assert report.under_replicated > 0
        assert not report.healthy

    def test_corrupt_replica_is_counted(self):
        dfs = make_dfs()
        write_files(dfs)
        info = all_blocks(dfs)[0]
        assert dfs.blocks.corrupt_replica(info, info.replicas[0])
        report = dfs.health_monitor().scan()
        assert report.corrupt_replicas == 1

    def test_target_degrades_with_cluster_size(self):
        # 2 live nodes cannot hold 3 replicas: target is min(replication,
        # live nodes), so the scan does not cry wolf about the impossible.
        dfs = make_dfs(num_datanodes=2, replication=3)
        write_files(dfs, count=1)
        assert dfs.health_monitor().scan().healthy


class TestRepair:
    def test_repair_restores_replication_after_death(self):
        dfs = make_dfs()
        write_files(dfs)
        dfs.blocks.kill_datanode(1)
        report = dfs.health_monitor().repair()
        assert report.fully_repaired
        assert report.copies_made > 0
        assert report.bytes_copied > 0
        assert dfs.under_replicated_blocks() == 0
        assert dfs.health_monitor().scan().healthy

    def test_repair_scrubs_corrupt_replicas(self):
        dfs = make_dfs()
        payloads = write_files(dfs)
        for info in all_blocks(dfs)[:3]:
            dfs.blocks.corrupt_replica(info, info.replicas[0])
        report = dfs.health_monitor().repair()
        assert report.corrupt_replicas_dropped == 3
        assert report.copies_made >= 3  # the dropped copies were replaced
        assert dfs.health_monitor().scan().corrupt_replicas == 0
        for path, data in payloads.items():
            assert dfs.read_bytes(path) == data

    def test_unrecoverable_block_reported_not_raised(self):
        dfs = make_dfs(num_datanodes=3, replication=2)
        write_files(dfs, count=1)
        info = all_blocks(dfs)[0]
        for node in list(info.replicas):
            dfs.blocks.corrupt_replica(info, node)
        report = dfs.health_monitor().repair()
        assert not report.fully_repaired
        assert str(info.block_id) in report.unrecoverable
        with pytest.raises(BlockMissingError):
            dfs.blocks.read_block(info)

    def test_repair_is_idempotent(self):
        dfs = make_dfs()
        write_files(dfs)
        dfs.blocks.kill_datanode(0)
        dfs.health_monitor().repair()
        second = dfs.health_monitor().repair()
        assert second.copies_made == 0
        assert second.corrupt_replicas_dropped == 0

    def test_repair_traffic_hits_iostats(self):
        dfs = make_dfs()
        write_files(dfs)
        dfs.blocks.kill_datanode(0)
        before = dfs.stats.snapshot()
        report = dfs.health_monitor().repair()
        delta = dfs.stats.snapshot() - before
        assert delta.repair_copies == report.copies_made > 0
        assert delta.bytes_written >= report.bytes_copied


class TestReadDiagnostics:
    def test_missing_error_lists_each_replica_status(self):
        dfs = make_dfs(num_datanodes=3, replication=3)
        write_files(dfs, count=1)
        info = all_blocks(dfs)[0]
        for node in range(3):
            dfs.blocks.kill_datanode(node)
        with pytest.raises(BlockMissingError) as err:
            dfs.blocks.read_block(info)
        msg = str(err.value)
        assert msg.count("dead") == 3
        assert "node" in msg

    def test_corruption_error_preferred_and_detailed(self):
        # All replicas corrupt: the corruption error (the more actionable
        # diagnosis) wins over plain missing, and names the bad replicas.
        dfs = make_dfs(num_datanodes=3, replication=2)
        write_files(dfs, count=1)
        info = all_blocks(dfs)[0]
        for node in list(info.replicas):
            dfs.blocks.corrupt_replica(info, node)
        with pytest.raises(BlockCorruptionError) as err:
            dfs.blocks.read_block(info)
        assert str(err.value).count("corrupt") >= 2


class TestConvergenceProperty:
    """Satellite (d): random seeded kill/revive/corrupt sequences, then a
    repair pass, always land every block at ``min(replication, live_nodes)``
    healthy replicas — or the block is provably unrecoverable."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_fault_sequences_converge(self, seed):
        rng = random.Random(seed)
        dfs = make_dfs(num_datanodes=rng.randint(3, 6), replication=3, seed=seed)
        write_files(dfs, count=rng.randint(2, 5), size=rng.randint(100, 400))

        for _ in range(rng.randint(3, 10)):
            op = rng.random()
            node = rng.randrange(len(dfs.blocks.datanodes))
            if op < 0.4:
                dfs.blocks.kill_datanode(node)
            elif op < 0.6:
                dfs.blocks.revive_datanode(node)
            else:
                info = rng.choice(all_blocks(dfs))
                if info.replicas:
                    dfs.blocks.corrupt_replica(info, rng.choice(info.replicas))

        monitor = dfs.health_monitor()
        report = monitor.repair()
        live = sum(dn.alive for dn in dfs.blocks.datanodes)
        target = min(dfs.blocks.replication, live)
        for info in all_blocks(dfs):
            healthy = sum(
                1 for _, s in dfs.blocks.replica_status(info) if s == "healthy"
            )
            if str(info.block_id) in report.unrecoverable:
                # Unrecoverable must mean it: no healthy copy anywhere.
                assert healthy == 0
                with pytest.raises((BlockMissingError, BlockCorruptionError)):
                    dfs.blocks.read_block(info)
            else:
                assert healthy >= target
        # A second pass finds nothing left to do.
        again = monitor.repair()
        assert again.copies_made == 0 and again.corrupt_replicas_dropped == 0
