"""A post-deadline straggler attempt must not corrupt the job's accounting.

Python threads cannot be killed, so an attempt abandoned by the
``RetryPolicy.attempt_deadline`` watchdog keeps running in the background and
eventually finishes on its own.  These tests pin the two properties that make
that safe:

* ``_run_with_deadline`` never reads a result boxed after the deadline, and
* the master merges counters / commits output only from the winning attempt,
  so a straggler that wakes up and completes late changes nothing.
"""

from __future__ import annotations

import threading
import time

from repro.mapreduce import (
    JobConf,
    Mapper,
    MapReduceRuntime,
    Reducer,
    RetryPolicy,
    RuntimeConfig,
    splits_for_workers,
)
from repro.mapreduce.counters import TASK_GROUP, TIMED_OUT_MAPS
from repro.mapreduce.worker import TaskTimeoutError, _run_with_deadline

STRAGGLER_GROUP = "test.straggler"


class TestRunWithDeadline:
    def test_late_result_is_never_read(self):
        """The straggler's boxed result exists but the caller already
        returned a TaskTimeoutError — the late write is dead."""
        box_written = threading.Event()
        release = threading.Event()

        def slow():
            release.wait(5.0)
            box_written.set()
            return "late-value"

        out = _run_with_deadline(slow, deadline=0.05)
        assert isinstance(out, TaskTimeoutError)
        assert not box_written.is_set()  # still parked at the deadline
        release.set()
        assert box_written.wait(5.0)  # straggler finishes on its own...
        assert isinstance(out, TaskTimeoutError)  # ...and `out` is unchanged

    def test_late_exception_is_never_raised(self):
        release = threading.Event()

        def slow_boom():
            release.wait(5.0)
            raise RuntimeError("straggler exploding after abandonment")

        out = _run_with_deadline(slow_boom, deadline=0.05)
        assert isinstance(out, TaskTimeoutError)
        release.set()


class StragglerMapper(Mapper):
    """Attempt 0 hangs past the deadline, then wakes and *still* runs its
    side effects: it increments counters, writes a DFS file, and emits.
    Attempt 1 returns promptly.  Only attempt 1's effects may be visible
    in the job result."""

    # Class-level so every per-attempt factory instance shares them.
    straggler_done = threading.Event()
    release = threading.Event()

    def map(self, ctx, split):
        attempt = ctx.attempt_id.attempt
        if attempt == 0:
            # Park until the test releases us, well past the 50ms deadline.
            StragglerMapper.release.wait(5.0)
        ctx.increment(STRAGGLER_GROUP, "map_calls")
        ctx.write_bytes(
            f"/straggler/out.{split.index}", f"attempt-{attempt}".encode()
        )
        ctx.emit(split.index, attempt)
        if attempt == 0:
            StragglerMapper.straggler_done.set()


class KeepAllReducer(Reducer):
    def reduce(self, ctx, key, values):
        ctx.emit(key, sorted(values))


class TestStragglerAccounting:
    def test_late_attempt_cannot_corrupt_counters_or_dfs(self, dfs):
        StragglerMapper.straggler_done.clear()
        StragglerMapper.release.clear()
        rt = MapReduceRuntime(
            dfs=dfs, config=RuntimeConfig(num_workers=1, executor="serial")
        )
        conf = JobConf(
            name="straggler-probe",
            mapper_factory=StragglerMapper,
            reducer_factory=KeepAllReducer,
            splits=splits_for_workers(1),
            num_reduce_tasks=1,
            max_attempts=3,
            retry_policy=RetryPolicy(attempt_deadline=0.05),
        )
        try:
            result = rt.run_job(conf)
            assert result.succeeded
            assert result.attempts_timed_out == 1
            assert result.counters.value(TASK_GROUP, TIMED_OUT_MAPS) == 1

            # Let the abandoned attempt wake up and run all its side effects.
            StragglerMapper.release.set()
            assert StragglerMapper.straggler_done.wait(5.0)

            # Counters were merged from the winning attempt only: the
            # straggler (and the speculative duplicate the master hedges a
            # timed-out task with) incremented their own per-attempt
            # Counters objects, which the master never saw.
            assert result.counters.value(STRAGGLER_GROUP, "map_calls") == 1

            # The reduce output carries only the winning attempt's record:
            # attempt 1, the first success in the retry wave.
            assert result.reduce_outputs == {0: [(0, [1])]}
        finally:
            StragglerMapper.release.set()
            rt.shutdown()

    def test_dfs_output_is_the_winning_attempts(self, dfs):
        """Attempts write deterministic per-task paths, so even the
        straggler's late write is idempotent: last writer wins but both
        wrote task output, and the committed content matches a completed
        attempt, not a torn mix."""
        StragglerMapper.straggler_done.clear()
        StragglerMapper.release.clear()
        rt = MapReduceRuntime(
            dfs=dfs, config=RuntimeConfig(num_workers=1, executor="serial")
        )
        conf = JobConf(
            name="straggler-dfs",
            mapper_factory=StragglerMapper,
            reducer_factory=KeepAllReducer,
            splits=splits_for_workers(1),
            num_reduce_tasks=1,
            max_attempts=3,
            retry_policy=RetryPolicy(attempt_deadline=0.05),
        )
        try:
            result = rt.run_job(conf)
            assert result.succeeded
            # Attempt 1 won, but the speculative duplicate the master hedges
            # a timed-out task with (attempt 2) may have rewritten the same
            # deterministic path afterwards.  Either way the content is one
            # complete attempt's write, never a torn mix.
            assert dfs.read_bytes("/straggler/out.0") in (
                b"attempt-1",
                b"attempt-2",
            )

            StragglerMapper.release.set()
            assert StragglerMapper.straggler_done.wait(5.0)
            # The straggler overwrote the same deterministic path — an
            # idempotent, complete rewrite, never a partial one.
            assert dfs.read_bytes("/straggler/out.0") in (
                b"attempt-0",
                b"attempt-1",
                b"attempt-2",
            )
            # Job-level accounting is frozen at completion time.
            assert result.counters.value(STRAGGLER_GROUP, "map_calls") == 1
            assert result.attempts_timed_out == 1
        finally:
            StragglerMapper.release.set()
            rt.shutdown()
