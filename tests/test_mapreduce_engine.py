"""MapReduce engine: programming model, shuffle, counters, executors."""

from collections import Counter as PyCounter

import pytest

from repro.mapreduce import (
    Counters,
    FnMapper,
    FnReducer,
    InputSplit,
    JobConf,
    Mapper,
    MapReduceRuntime,
    Reducer,
    RuntimeConfig,
    splits_for_workers,
)
from repro.mapreduce.counters import TASK_GROUP, MAP_OUTPUT_RECORDS
from repro.mapreduce.job import default_partitioner
from repro.mapreduce.shuffle import (
    merge_map_outputs,
    partition_pairs,
    sort_and_group,
)


class WordCountMapper(Mapper):
    def map_record(self, ctx, key, value):
        for word in value.split():
            ctx.emit(word, 1)


class SummingReducer(Reducer):
    def reduce(self, ctx, key, values):
        ctx.emit(key, sum(values))


def wordcount_conf(num_reducers=2, combiner=False):
    return JobConf(
        name="wordcount",
        mapper_factory=WordCountMapper,
        reducer_factory=SummingReducer,
        combiner_factory=SummingReducer if combiner else None,
        splits=[
            InputSplit(index=0, path="/in/part0"),
            InputSplit(index=1, path="/in/part1"),
        ],
        num_reduce_tasks=num_reducers,
    )


@pytest.fixture
def corpus(dfs):
    dfs.write_text("/in/part0", "the quick brown fox\nthe lazy dog")
    dfs.write_text("/in/part1", "the dog barks\nquick quick")
    return {"the": 3, "quick": 3, "brown": 1, "fox": 1, "lazy": 1, "dog": 2, "barks": 1}


def collect_outputs(result):
    merged = {}
    for pairs in result.reduce_outputs.values():
        for k, v in pairs:
            merged[k] = v
    return merged


class TestWordCount:
    def test_basic_job(self, runtime, corpus):
        result = runtime.run_job(wordcount_conf())
        assert result.succeeded
        assert collect_outputs(result) == corpus

    def test_single_reducer(self, runtime, corpus):
        result = runtime.run_job(wordcount_conf(num_reducers=1))
        assert collect_outputs(result) == corpus
        assert len(result.reduce_outputs) == 1

    def test_many_reducers(self, runtime, corpus):
        result = runtime.run_job(wordcount_conf(num_reducers=7))
        assert collect_outputs(result) == corpus

    def test_threaded_executor_matches_serial(self, threaded_runtime, corpus):
        result = threaded_runtime.run_job(wordcount_conf())
        assert collect_outputs(result) == corpus

    def test_combiner_preserves_results_and_shrinks_shuffle(self, dfs, corpus):
        rt_plain = MapReduceRuntime(dfs=dfs)
        plain = rt_plain.run_job(wordcount_conf())
        combined = rt_plain.run_job(wordcount_conf(combiner=True))
        assert collect_outputs(plain) == collect_outputs(combined) == corpus
        shuffled_plain = sum(t.bytes_shuffled for t in plain.map_traces)
        shuffled_combined = sum(t.bytes_shuffled for t in combined.map_traces)
        assert shuffled_combined < shuffled_plain

    def test_counters(self, runtime, corpus):
        result = runtime.run_job(wordcount_conf())
        emitted = result.counters.value(TASK_GROUP, MAP_OUTPUT_RECORDS)
        assert emitted == sum(corpus.values())


class TestMapOnly:
    def test_map_only_side_effects(self, runtime):
        def write_marker(ctx, split):
            ctx.write_text(f"/out/marker.{split.payload}", str(split.payload))

        conf = JobConf(
            name="markers",
            mapper_factory=lambda: FnMapper(write_marker),
            splits=splits_for_workers(4),
        )
        result = runtime.run_job(conf)
        assert result.succeeded
        assert result.reduce_outputs == {}
        for j in range(4):
            assert runtime.dfs.read_text(f"/out/marker.{j}") == str(j)

    def test_map_only_has_no_reduce_traces(self, runtime):
        conf = JobConf(
            name="noop",
            mapper_factory=lambda: FnMapper(lambda ctx, split: None),
            splits=splits_for_workers(2),
        )
        result = runtime.run_job(conf)
        assert result.reduce_traces == []


class TestShuffle:
    def test_partition_routing_complete(self):
        pairs = [(i, i) for i in range(100)]
        buckets = partition_pairs(pairs, default_partitioner, 7)
        total = sum(len(v) for v in buckets.values())
        assert total == 100
        for p, bucket in buckets.items():
            for k, _ in bucket:
                assert default_partitioner(k, 7) == p

    def test_bad_partitioner_detected(self):
        with pytest.raises(ValueError, match="partitioner"):
            partition_pairs([(1, 1)], lambda k, n: n + 5, 4)

    def test_sort_and_group(self):
        pairs = [("b", 1), ("a", 2), ("b", 3), ("a", 4)]
        groups = sort_and_group(pairs)
        assert groups == [("a", [2, 4]), ("b", [1, 3])]

    def test_group_without_sort_preserves_arrival(self):
        pairs = [("b", 1), ("a", 2), ("b", 3)]
        groups = sort_and_group(pairs, sort_keys=False)
        assert [k for k, _ in groups] == ["b", "a"]

    def test_merge_preserves_map_order_within_partition(self):
        m1 = {0: [("k", 1)]}
        m2 = {0: [("k", 2)]}
        merged = merge_map_outputs([m1, m2], 1)
        assert merged[0] == [("k", 1), ("k", 2)]

    def test_integer_keys_route_identically(self):
        """The pipeline relies on key j landing on reducer j for j < m0."""
        for j in range(16):
            assert default_partitioner(j, 16) == j

    def test_heterogeneous_keys_sortable(self):
        pairs = [(1, "a"), ("x", "b"), ((2, 3), "c")]
        groups = sort_and_group(pairs)
        assert len(groups) == 3


class TestCounters:
    def test_increment_and_read(self):
        c = Counters()
        c.increment("g", "n", 5)
        c.increment("g", "n", 2)
        assert c.value("g", "n") == 7

    def test_missing_is_zero(self):
        assert Counters().value("g", "n") == 0

    def test_merge(self):
        a, b = Counters(), Counters()
        a.increment("g", "x", 1)
        b.increment("g", "x", 2)
        b.increment("h", "y", 3)
        a.merge(b)
        assert a.value("g", "x") == 3
        assert a.value("h", "y") == 3

    def test_format_is_stable(self):
        c = Counters()
        c.increment("B", "b")
        c.increment("A", "a")
        lines = c.format().splitlines()
        assert lines[0] == "A"


class TestValidation:
    def test_empty_splits_rejected(self):
        with pytest.raises(ValueError, match="splits"):
            JobConf(name="bad", mapper_factory=Mapper, splits=[])

    def test_map_only_forces_zero_reducers(self):
        conf = JobConf(
            name="m", mapper_factory=Mapper, splits=splits_for_workers(1)
        )
        assert conf.num_reduce_tasks == 0
        assert conf.is_map_only

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            splits_for_workers(0)

    def test_runtime_config_validated(self):
        with pytest.raises(ValueError):
            RuntimeConfig(num_workers=0)
        with pytest.raises(ValueError):
            RuntimeConfig(job_launch_overhead=-1)

    def test_fn_reducer_adapter(self, runtime, dfs):
        dfs.write_text("/in/a", "x x x")
        conf = JobConf(
            name="fn",
            mapper_factory=WordCountMapper,
            reducer_factory=lambda: FnReducer(
                lambda ctx, k, vs: ctx.emit(k, len(list(vs)))
            ),
            splits=[InputSplit(index=0, path="/in/a")],
            num_reduce_tasks=1,
        )
        result = runtime.run_job(conf)
        assert collect_outputs(result) == {"x": 3}


class TestRuntimeBookkeeping:
    def test_history_and_overhead(self, runtime, dfs):
        dfs.write_text("/in/a", "hello")
        conf = JobConf(
            name="j",
            mapper_factory=WordCountMapper,
            reducer_factory=SummingReducer,
            splits=[InputSplit(index=0, path="/in/a")],
            num_reduce_tasks=1,
        )
        runtime.run_job(conf)
        runtime.run_job(conf)
        assert runtime.jobs_run() == 2
        assert runtime.total_launch_overhead() == pytest.approx(2.0)

    def test_job_ids_increment(self, runtime, dfs):
        dfs.write_text("/in/a", "w")
        conf = JobConf(
            name="j",
            mapper_factory=WordCountMapper,
            splits=[InputSplit(index=0, path="/in/a")],
        )
        r1 = runtime.run_job(conf)
        r2 = runtime.run_job(conf)
        assert str(r1.job_id) != str(r2.job_id)
