"""Chaos harness: schedules, nemesis mechanics, campaign invariants, CLI."""

import json

import pytest

from repro.chaos import (
    CrashDriver,
    DriverCrashError,
    FaultSchedule,
    KillDatanode,
    Nemesis,
    ReviveDatanode,
    builtin_schedules,
    run_campaign,
    run_schedule,
    schedule_by_name,
)
from repro.chaos.cli import main as chaos_main
from repro.dfs import DFS
from repro.mapreduce.job import JobConf, splits_for_workers


def _comparable(outcome):
    """Outcome dict minus wall-clock noise, for determinism comparisons."""
    d = outcome.to_dict()
    d.pop("wall_seconds")
    d.pop("backoff_seconds")
    return d


class TestSchedules:
    def test_battery_has_at_least_five_distinct_schedules(self):
        schedules = builtin_schedules(seed=0)
        names = [s.name for s in schedules]
        assert len(set(names)) == len(names) >= 5

    def test_combined_schedule_crashes_the_driver(self):
        combined = schedule_by_name("combined")
        assert combined.crashes_driver
        assert any(isinstance(e, KillDatanode) for e in combined.events)
        assert combined.retry is not None
        assert combined.retry.attempt_deadline is not None
        assert combined.make_task_faults(0) is not None

    def test_task_fault_factories_return_fresh_policies(self):
        flaky = schedule_by_name("flaky-tasks")
        assert flaky.make_task_faults(0) is not flaky.make_task_faults(0)

    def test_unknown_schedule_name(self):
        with pytest.raises(KeyError):
            schedule_by_name("does-not-exist")


class TestNemesis:
    def _conf(self, name="j"):
        return JobConf(name=name, mapper_factory=None, splits=splits_for_workers(1))

    def test_events_fire_at_their_job_index_once(self):
        dfs = DFS(num_datanodes=3)
        nemesis = Nemesis(
            (KillDatanode(at_job=1, node=0), ReviveDatanode(at_job=2, node=0)),
            dfs,
            seed=0,
        )
        nemesis(self._conf("a"))
        assert dfs.blocks.datanodes[0].alive
        nemesis(self._conf("b"))
        assert not dfs.blocks.datanodes[0].alive
        nemesis(self._conf("c"))
        assert dfs.blocks.datanodes[0].alive
        nemesis(self._conf("d"))  # nothing left to fire
        assert len(nemesis.ctx.log) == 2

    def test_crash_event_is_consumed_before_raising(self):
        dfs = DFS(num_datanodes=3)
        nemesis = Nemesis((CrashDriver(at_job=0),), dfs, seed=0)
        with pytest.raises(DriverCrashError):
            nemesis(self._conf())
        # The resumed driver sees the same hook; the crash must not re-fire.
        nemesis(self._conf())
        assert "driver crash" in nemesis.ctx.log[0]

    def test_skipped_indices_still_fire(self):
        # An event pinned to a job index the (resumed, shorter) pipeline
        # never reaches by count still fires at the next launch.
        dfs = DFS(num_datanodes=3)
        nemesis = Nemesis((KillDatanode(at_job=0, node=1),), dfs, seed=0)
        nemesis.jobs_seen = 3
        nemesis(self._conf())
        assert not dfs.blocks.datanodes[1].alive


class TestCampaign:
    def test_full_battery_is_green(self):
        report = run_campaign(seed=0)
        failures = {
            o.schedule: [inv.to_dict() for inv in o.invariants if not inv.ok]
            + ([o.error] if o.error else [])
            for o in report.outcomes
            if not o.ok
        }
        assert report.ok, failures
        assert len(report.outcomes) >= 5
        names = {inv.name for o in report.outcomes for inv in o.invariants}
        assert names == {
            "correctness",
            "job-accounting",
            "replication",
            "no-orphans",
        }

    def test_combined_crash_and_resume(self):
        outcome = run_schedule(schedule_by_name("combined"), seed=0)
        assert outcome.ok
        assert outcome.crashed_and_resumed
        assert any("driver crash" in e for e in outcome.events_log)
        assert outcome.attempts_timed_out > 0  # the hung tasks were abandoned
        assert outcome.repair_copies > 0  # the killed node's blocks re-homed

    def test_hung_task_schedule_times_out_instead_of_stalling(self):
        outcome = run_schedule(schedule_by_name("hung-task"), seed=0)
        assert outcome.ok
        assert outcome.attempts_timed_out > 0
        assert outcome.attempts_failed >= outcome.attempts_timed_out

    def test_datanode_kill_triggers_auto_repair(self):
        outcome = run_schedule(schedule_by_name("datanode-kill"), seed=0)
        assert outcome.ok
        assert outcome.repair_copies > 0

    def test_same_seed_same_outcome(self):
        schedule = schedule_by_name("kill-revive-corrupt")
        first = run_schedule(schedule, seed=5)
        second = run_schedule(schedule, seed=5)
        assert first.ok and second.ok
        assert _comparable(first) == _comparable(second)

    def test_run_error_is_reported_not_raised(self):
        # A schedule whose events make the run impossible must produce a
        # red outcome, never an exception out of the harness.
        hopeless = FaultSchedule(
            name="kill-everything",
            description="no datanode survives",
            events=tuple(KillDatanode(at_job=0, node=i) for i in range(5)),
        )
        outcome = run_schedule(hopeless, seed=0)
        assert not outcome.ok
        assert outcome.error is not None


class TestCLI:
    def test_list(self, capsys):
        assert chaos_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "combined" in out

    def test_json_single_schedule(self, capsys):
        assert chaos_main(["--schedule", "baseline", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["schedules"][0]["schedule"] == "baseline"
        assert {i["name"] for i in payload["schedules"][0]["invariants"]} == {
            "correctness",
            "job-accounting",
            "replication",
            "no-orphans",
        }

    def test_unknown_schedule_exits_2(self, capsys):
        assert chaos_main(["--schedule", "nope"]) == 2
        assert "unknown chaos schedule" in capsys.readouterr().err

    def test_text_report_single_schedule(self, capsys):
        assert chaos_main(["--schedule", "datanode-kill"]) == 0
        out = capsys.readouterr().out
        assert "campaign PASSED" in out
        assert "nemesis: before job 1" in out


class TestTornWriteSchedule:
    def test_torn_write_schedule_is_in_the_battery(self):
        names = {s.name for s in builtin_schedules(seed=0)}
        assert "torn-write" in names

    def test_torn_write_crashes_and_resumes_clean(self):
        outcome = run_schedule(schedule_by_name("torn-write"), seed=0)
        assert outcome.ok, [inv.to_dict() for inv in outcome.invariants]
        assert outcome.crashed_and_resumed
        # The torn pending files must not survive as orphans.
        assert all(inv.ok for inv in outcome.invariants)


class TestCrashPointSweep:
    def test_sweep_is_exhaustive_and_green(self):
        from repro.chaos import run_crash_point_sweep

        sweep = run_crash_point_sweep(seed=0)
        assert sweep.ok, sweep.format()
        # Every create and publish of the baseline run was crash-tested.
        assert sweep.num_points > 50
        assert {p.point.op for p in sweep.outcomes} == {"create", "publish"}
        assert all(p.crashed for p in sweep.outcomes)

    def test_sweep_report_serializes(self):
        from repro.chaos import run_crash_point_sweep

        sweep = run_crash_point_sweep(seed=0)
        payload = sweep.to_dict()
        assert payload["ok"] is True
        assert payload["num_points"] == len(payload["points"])
        assert "PASSED" in sweep.format()
