"""The Section 8 experiment module and the threaded Spark executor."""

import numpy as np
import pytest

from repro.experiments import ExperimentHarness, sec8_spark
from repro.spark import SparkContext, SparkInversionConfig, SparkMatrixInverter


class TestSec8Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return sec8_spark.run(n=96, nb=24, chunks=4, harness=ExperimentHarness())

    def test_read_reduction_is_large(self, result):
        assert result.read_reduction > 10

    def test_engines_agree(self, result):
        assert result.agreement < 1e-9

    def test_lineage_recovery_exercised(self, result):
        assert result.lineage_recomputed >= 1

    def test_format(self, result):
        out = sec8_spark.format_result(result)
        assert "Section 8" in out and "read reduction" in out


class TestThreadedSparkExecutor:
    def test_matches_serial(self, rng):
        a = rng.random((80, 80)) + 0.1 * np.eye(80)
        cfg = SparkInversionConfig(nb=20, chunks=4)
        serial = SparkMatrixInverter(cfg, sc=SparkContext()).invert(a)
        threaded = SparkMatrixInverter(
            cfg, sc=SparkContext(default_parallelism=4, executor="threads")
        ).invert(a)
        assert np.allclose(serial.inverse, threaded.inverse)

    def test_threaded_wordcount(self):
        sc = SparkContext(default_parallelism=4, executor="threads")
        counts = (
            sc.parallelize([f"w{i % 7}" for i in range(200)], 8)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b, 4)
            .collect_as_map()
        )
        assert sum(counts.values()) == 200

    def test_threaded_cache_and_eviction(self):
        sc = SparkContext(default_parallelism=4, executor="threads")
        rdd = sc.range(100, 8).map(lambda x: x * 2).cache()
        first = rdd.collect()
        sc.evict(rdd, 3)
        assert rdd.collect() == first

    def test_invalid_executor(self):
        with pytest.raises(ValueError, match="executor"):
            SparkContext(executor="processes")
