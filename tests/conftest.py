"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dfs import DFS
from repro.mapreduce import MapReduceRuntime, RuntimeConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def dfs() -> DFS:
    return DFS(num_datanodes=4, replication=3, block_size=1 << 16, seed=7)


@pytest.fixture
def runtime(dfs: DFS) -> MapReduceRuntime:
    rt = MapReduceRuntime(dfs=dfs, config=RuntimeConfig(num_workers=4, executor="serial"))
    yield rt
    rt.shutdown()


@pytest.fixture
def threaded_runtime(dfs: DFS) -> MapReduceRuntime:
    rt = MapReduceRuntime(
        dfs=dfs, config=RuntimeConfig(num_workers=4, executor="threads")
    )
    yield rt
    rt.shutdown()


def random_invertible(rng: np.random.Generator, n: int) -> np.ndarray:
    """A random dense matrix; shifted slightly so tests never hit an unlucky
    near-singular draw."""
    return rng.standard_normal((n, n)) + 0.1 * np.eye(n)
