"""Namenode namespace semantics."""

import pytest

from repro.dfs.namenode import (
    DirectoryNotEmpty,
    FileAlreadyExists,
    FileNotFound,
    IsADirectory,
    NameNode,
    NotADirectory,
    normalize,
)


@pytest.fixture
def nn() -> NameNode:
    return NameNode()


class TestNormalize:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("/a/b", "/a/b"),
            ("a/b", "/a/b"),
            ("/a//b/", "/a/b"),
            ("/", "/"),
            ("", "/"),
            ("/a/./b", "/a/b"),
        ],
    )
    def test_forms(self, raw, expected):
        assert normalize(raw) == expected


class TestCreate:
    def test_create_file_makes_parents(self, nn):
        nn.create_file("/Root/A1/A2/file")
        assert nn.is_dir("/Root/A1/A2")
        assert nn.is_file("/Root/A1/A2/file")

    def test_create_duplicate_rejected(self, nn):
        nn.create_file("/f")
        with pytest.raises(FileAlreadyExists):
            nn.create_file("/f")

    def test_overwrite_allowed_when_requested(self, nn):
        first = nn.create_file("/f")
        second = nn.create_file("/f", overwrite=True)
        assert second is not first

    def test_create_over_directory_rejected(self, nn):
        nn.mkdirs("/d")
        with pytest.raises(IsADirectory):
            nn.create_file("/d")

    def test_create_under_file_rejected(self, nn):
        nn.create_file("/f")
        with pytest.raises(NotADirectory):
            nn.create_file("/f/child")


class TestListing:
    def test_list_dir_sorted(self, nn):
        for name in ("b", "a", "c"):
            nn.create_file(f"/d/{name}")
        assert nn.list_dir("/d") == ["a", "b", "c"]

    def test_list_missing_raises(self, nn):
        with pytest.raises(FileNotFound):
            nn.list_dir("/nope")

    def test_list_file_raises(self, nn):
        nn.create_file("/f")
        with pytest.raises(NotADirectory):
            nn.list_dir("/f")

    def test_walk_files_depth_first(self, nn):
        nn.create_file("/r/x")
        nn.create_file("/r/sub/y")
        assert nn.walk_files("/r") == ["/r/sub/y", "/r/x"]


class TestDelete:
    def test_delete_file(self, nn):
        nn.create_file("/f")
        removed = nn.delete("/f")
        assert len(removed) == 1
        assert not nn.exists("/f")

    def test_delete_nonempty_dir_needs_recursive(self, nn):
        nn.create_file("/d/f")
        with pytest.raises(DirectoryNotEmpty):
            nn.delete("/d")
        removed = nn.delete("/d", recursive=True)
        assert len(removed) == 1

    def test_delete_collects_nested_files(self, nn):
        nn.create_file("/d/a")
        nn.create_file("/d/sub/b")
        removed = nn.delete("/d", recursive=True)
        assert len(removed) == 2

    def test_delete_missing_raises(self, nn):
        with pytest.raises(FileNotFound):
            nn.delete("/missing")


class TestRename:
    def test_rename_file(self, nn):
        nn.create_file("/a")
        nn.rename("/a", "/b/c")
        assert not nn.exists("/a")
        assert nn.is_file("/b/c")

    def test_rename_directory_moves_children(self, nn):
        nn.create_file("/src/f")
        nn.rename("/src", "/dst")
        assert nn.is_file("/dst/f")

    def test_rename_onto_existing_rejected(self, nn):
        nn.create_file("/a")
        nn.create_file("/b")
        with pytest.raises(FileAlreadyExists):
            nn.rename("/a", "/b")
