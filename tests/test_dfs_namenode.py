"""Namenode namespace semantics."""

import pytest

from repro.dfs.namenode import (
    DirectoryNotEmpty,
    FileAlreadyExists,
    FileNotFound,
    IsADirectory,
    NameNode,
    NotADirectory,
    normalize,
)


@pytest.fixture
def nn() -> NameNode:
    return NameNode()


class TestNormalize:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("/a/b", "/a/b"),
            ("a/b", "/a/b"),
            ("/a//b/", "/a/b"),
            ("/", "/"),
            ("", "/"),
            ("/a/./b", "/a/b"),
        ],
    )
    def test_forms(self, raw, expected):
        assert normalize(raw) == expected


class TestCreate:
    def test_create_file_makes_parents(self, nn):
        nn.create_file("/Root/A1/A2/file")
        assert nn.is_dir("/Root/A1/A2")
        assert nn.is_file("/Root/A1/A2/file")

    def test_create_duplicate_rejected(self, nn):
        nn.create_file("/f")
        with pytest.raises(FileAlreadyExists):
            nn.create_file("/f")

    def test_overwrite_allowed_when_requested(self, nn):
        first = nn.create_file("/f")
        second = nn.create_file("/f", overwrite=True)
        assert second is not first

    def test_create_over_directory_rejected(self, nn):
        nn.mkdirs("/d")
        with pytest.raises(IsADirectory):
            nn.create_file("/d")

    def test_create_under_file_rejected(self, nn):
        nn.create_file("/f")
        with pytest.raises(NotADirectory):
            nn.create_file("/f/child")


class TestListing:
    def test_list_dir_sorted(self, nn):
        for name in ("b", "a", "c"):
            nn.create_file(f"/d/{name}")
        assert nn.list_dir("/d") == ["a", "b", "c"]

    def test_list_missing_raises(self, nn):
        with pytest.raises(FileNotFound):
            nn.list_dir("/nope")

    def test_list_file_raises(self, nn):
        nn.create_file("/f")
        with pytest.raises(NotADirectory):
            nn.list_dir("/f")

    def test_walk_files_depth_first(self, nn):
        nn.create_file("/r/x")
        nn.create_file("/r/sub/y")
        assert nn.walk_files("/r") == ["/r/sub/y", "/r/x"]


class TestDelete:
    def test_delete_file(self, nn):
        nn.create_file("/f")
        removed = nn.delete("/f")
        assert len(removed) == 1
        assert not nn.exists("/f")

    def test_delete_nonempty_dir_needs_recursive(self, nn):
        nn.create_file("/d/f")
        with pytest.raises(DirectoryNotEmpty):
            nn.delete("/d")
        removed = nn.delete("/d", recursive=True)
        assert len(removed) == 1

    def test_delete_collects_nested_files(self, nn):
        nn.create_file("/d/a")
        nn.create_file("/d/sub/b")
        removed = nn.delete("/d", recursive=True)
        assert len(removed) == 2

    def test_delete_missing_raises(self, nn):
        with pytest.raises(FileNotFound):
            nn.delete("/missing")


class TestRename:
    def test_rename_file(self, nn):
        nn.create_file("/a")
        nn.rename("/a", "/b/c")
        assert not nn.exists("/a")
        assert nn.is_file("/b/c")

    def test_rename_directory_moves_children(self, nn):
        nn.create_file("/src/f")
        nn.rename("/src", "/dst")
        assert nn.is_file("/dst/f")

    def test_rename_onto_existing_rejected(self, nn):
        nn.create_file("/a")
        nn.create_file("/b")
        with pytest.raises(FileAlreadyExists):
            nn.rename("/a", "/b")

    def test_rename_overwrite_returns_displaced_entry(self, nn):
        nn.create_file("/a")
        old = nn.create_file("/b")
        displaced = nn.rename("/a", "/b", overwrite=True)
        assert displaced == [old]
        assert not nn.exists("/a")
        assert nn.is_file("/b")

    def test_rename_onto_directory_rejected_even_with_overwrite(self, nn):
        nn.create_file("/a")
        nn.mkdirs("/d")
        with pytest.raises(IsADirectory):
            nn.rename("/a", "/d", overwrite=True)
        assert nn.is_file("/a")  # untouched on failure

    def test_rename_onto_pending_file_never_blocks(self, nn):
        nn.create_file("/a")
        pending = nn.create_file("/b", pending=True)
        displaced = nn.rename("/a", "/b")  # no overwrite needed
        assert displaced == [pending]
        assert nn.is_file("/b")

    def test_renamed_entries_keep_their_generation(self, nn):
        entry = nn.create_file("/a")
        nn.rename("/a", "/b")
        assert nn.get_file("/b").generation == entry.generation


class TestPendingLifecycle:
    def test_pending_file_is_invisible_until_sealed(self, nn):
        nn.create_file("/Root/f", pending=True)
        assert not nn.exists("/Root/f")
        assert not nn.is_file("/Root/f")
        with pytest.raises(FileNotFound):
            nn.get_file("/Root/f")
        assert nn.exists("/Root/f", include_pending=True)
        assert nn.walk_files("/") == []
        assert nn.walk_files("/", include_pending=True) == ["/Root/f"]
        nn.seal("/Root/f")
        assert nn.is_file("/Root/f")
        assert nn.walk_files("/") == ["/Root/f"]

    def test_pending_files_lists_only_unsealed(self, nn):
        nn.create_file("/sealed")
        nn.create_file("/torn", pending=True)
        assert nn.pending_files("/") == ["/torn"]

    def test_pending_file_never_blocks_recreation(self, nn):
        # A crashed writer's half-written file must not make the retry fail.
        nn.create_file("/f", pending=True)
        nn.create_file("/f", pending=True)  # no overwrite flag needed
        entry = nn.create_file("/f")
        assert nn.get_file("/f") is entry

    def test_sealed_file_still_requires_overwrite(self, nn):
        nn.create_file("/f")
        with pytest.raises(FileAlreadyExists):
            nn.create_file("/f", pending=True)


class TestPublish:
    def test_publish_moves_and_seals_every_pair(self, nn):
        nn.create_file("/_tmp/t/Root/a", pending=True)
        nn.create_file("/_tmp/t/Root/b", pending=True)
        nn.publish([("/_tmp/t/Root/a", "/Root/a"), ("/_tmp/t/Root/b", "/Root/b")])
        assert nn.is_file("/Root/a") and nn.is_file("/Root/b")
        assert nn.get_file("/Root/a").sealed
        assert nn.pending_files("/Root") == []

    def test_publish_replaces_sealed_destination(self, nn):
        debris = nn.create_file("/Root/a")  # an earlier publish's output
        nn.create_file("/_tmp/t/Root/a", pending=True)
        displaced = nn.publish([("/_tmp/t/Root/a", "/Root/a")])
        assert debris in displaced

    def test_publish_validates_all_before_moving_any(self, nn):
        # Second pair is bad (missing source): the first must not move either.
        nn.create_file("/_tmp/t/Root/a", pending=True)
        with pytest.raises(FileNotFound):
            nn.publish([("/_tmp/t/Root/a", "/Root/a"), ("/_tmp/t/Root/b", "/Root/b")])
        assert not nn.exists("/Root/a")
        assert nn.exists("/_tmp/t/Root/a", include_pending=True)

    def test_publish_onto_directory_rejected_atomically(self, nn):
        nn.create_file("/_tmp/t/Root/a", pending=True)
        nn.create_file("/_tmp/t/Root/b", pending=True)
        nn.mkdirs("/Root/b")
        with pytest.raises(IsADirectory):
            nn.publish([("/_tmp/t/Root/a", "/Root/a"), ("/_tmp/t/Root/b", "/Root/b")])
        assert not nn.exists("/Root/a")
