"""Baseline inversion methods and the method job-count comparison."""

import numpy as np
import pytest

from repro.baselines import (
    gauss_jordan_invert,
    gauss_jordan_mapreduce_jobs,
    gauss_jordan_solve,
    lapack_lu,
    method_job_counts,
    numpy_invert,
    qr_invert,
    qr_mapreduce_jobs,
    svd_invert,
)
from repro.linalg.lu import SingularMatrixError

from conftest import random_invertible


class TestGaussJordan:
    @pytest.mark.parametrize("n", [1, 2, 5, 20, 50])
    def test_inverse(self, rng, n):
        a = random_invertible(rng, n)
        inv = gauss_jordan_invert(a)
        assert np.allclose(a @ inv, np.eye(n), atol=1e-9)

    def test_matches_numpy(self, rng):
        a = random_invertible(rng, 16)
        assert np.allclose(gauss_jordan_invert(a), numpy_invert(a), atol=1e-9)

    def test_pivoting_handles_zero_leading(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert np.allclose(gauss_jordan_invert(a), a)

    def test_no_pivot_fails(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(SingularMatrixError):
            gauss_jordan_invert(a, pivot=False)

    def test_singular_detected(self):
        with pytest.raises(SingularMatrixError):
            gauss_jordan_invert(np.ones((4, 4)))

    def test_non_square_rejected(self, rng):
        with pytest.raises(ValueError):
            gauss_jordan_invert(rng.standard_normal((2, 3)))

    def test_solve(self, rng):
        a = random_invertible(rng, 10)
        x = rng.standard_normal(10)
        assert np.allclose(gauss_jordan_solve(a, a @ x), x)


class TestOtherMethods:
    def test_svd_invert(self, rng):
        a = random_invertible(rng, 20)
        assert np.allclose(svd_invert(a), numpy_invert(a), atol=1e-8)

    def test_svd_detects_singular(self):
        with pytest.raises(np.linalg.LinAlgError):
            svd_invert(np.ones((4, 4)))

    def test_qr_invert(self, rng):
        a = random_invertible(rng, 20)
        assert np.allclose(qr_invert(a), numpy_invert(a), atol=1e-8)

    def test_lapack_lu_convention(self, rng):
        """lapack_lu returns the same PA = LU convention as repro.linalg."""
        a = random_invertible(rng, 12)
        s, lower, upper = lapack_lu(a)
        assert np.allclose(a[s], lower @ upper, atol=1e-10)

    def test_all_methods_agree_on_pipeline_output(self, rng):
        from repro import InversionConfig, invert

        a = random_invertible(rng, 32)
        pipeline = invert(a, InversionConfig(nb=8, m0=4)).inverse
        for method in (numpy_invert, gauss_jordan_invert, svd_invert, qr_invert):
            assert np.allclose(pipeline, method(a), atol=1e-7)


class TestJobCountComparison:
    def test_section42_example(self):
        """"Inverting a matrix with n = 10^5 requires 32 iterations using
        block LU ... as opposed to 10^5 iterations" (nb = 3200)."""
        counts = method_job_counts(100_000, 3200)
        assert counts["gauss-jordan"] == 100_000
        assert counts["qr"] == 100_000
        # 32 LU iterations -> 31 LU jobs + partition + final = 33 (Table 3).
        assert counts["block-lu"] == 33

    def test_block_lu_always_fewest(self):
        for n in (100, 1000, 10000):
            counts = method_job_counts(n, 64)
            assert counts["block-lu"] < counts["gauss-jordan"]
            assert counts["block-lu"] < counts["qr"]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            gauss_jordan_mapreduce_jobs(0)
        with pytest.raises(ValueError):
            qr_mapreduce_jobs(0)
