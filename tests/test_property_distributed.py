"""Property-based tests across the distributed layers: SystemML ops, the
streaming protocol, Spark RDD algebra, and block-cyclic distribution."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mapreduce import MapReduceRuntime
from repro.mapreduce.streaming import parse_kv_line
from repro.spark import SparkContext
from repro.systemml import MatrixOps, read_matrix, save_matrix


class TestSystemMLProperties:
    @given(
        st.integers(1, 10),
        st.integers(1, 10),
        st.integers(1, 10),
        st.integers(1, 6),
        st.integers(0, 2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_multiply_matches_numpy(self, rows, inner, cols, chunks, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((rows, inner))
        b = rng.standard_normal((inner, cols))
        rt = MapReduceRuntime()
        ops = MatrixOps(rt, m0=4)
        ha = save_matrix(rt.dfs, "/p/A", a, chunks=chunks)
        hb = save_matrix(rt.dfs, "/p/B", b, chunks=chunks)
        out = read_matrix(rt.dfs, ops.multiply(ha, hb, "/p/AB"))
        rt.shutdown()
        assert np.allclose(out, a @ b, atol=1e-9)

    @given(st.integers(1, 12), st.integers(1, 12), st.integers(1, 5), st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_transpose_involution(self, rows, cols, chunks, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((rows, cols))
        rt = MapReduceRuntime()
        ops = MatrixOps(rt, m0=3)
        h = save_matrix(rt.dfs, "/p/A", a, chunks=chunks)
        back = ops.transpose(ops.transpose(h, "/p/t"), "/p/tt")
        out = read_matrix(rt.dfs, back)
        rt.shutdown()
        assert np.array_equal(out, a)


class TestStreamingProtocolProperties:
    @given(st.text(alphabet=st.characters(blacklist_characters="\t\n\r"), max_size=20),
           st.text(alphabet=st.characters(blacklist_characters="\n\r"), max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_kv_line_roundtrip(self, key, value):
        line = f"{key}\t{value}"
        k, v = parse_kv_line(line)
        assert k == key and v == value

    @given(st.text(alphabet=st.characters(blacklist_characters="\t\n\r"), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_tabless_line_is_key_only(self, text):
        assert parse_kv_line(text) == (text, "")


class TestSparkAlgebraProperties:
    @given(st.lists(st.integers(-100, 100), max_size=50), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_collect_is_identity(self, data, parts):
        sc = SparkContext()
        assert sc.parallelize(data, parts).collect() == data

    @given(st.lists(st.integers(-50, 50), max_size=40), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_map_then_filter_equals_python(self, data, parts):
        sc = SparkContext()
        out = (
            sc.parallelize(data, parts)
            .map(lambda x: x * 3)
            .filter(lambda x: x % 2 == 0)
            .collect()
        )
        assert out == [x * 3 for x in data if (x * 3) % 2 == 0]

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(-10, 10)), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_reduce_by_key_matches_python(self, pairs):
        sc = SparkContext()
        out = sc.parallelize(pairs, 3).reduce_by_key(lambda a, b: a + b, 4).collect_as_map()
        expected: dict[int, int] = {}
        for k, v in pairs:
            expected[k] = expected.get(k, 0) + v
        assert out == expected

    @given(st.lists(st.integers(0, 20), max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_distinct_matches_set(self, data):
        sc = SparkContext()
        assert sorted(sc.parallelize(data, 2).distinct().collect()) == sorted(set(data))
