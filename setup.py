"""Setup shim.

The execution environment has no network and no ``wheel`` package, so PEP 517
editable installs (which build a wheel) fail.  Keeping a ``setup.py`` and no
``[build-system]`` table lets ``pip install -e .`` take the legacy
``setup.py develop`` path, which works offline.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
