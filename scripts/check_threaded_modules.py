"""Guard: every module in THREADED_MODULES must exist on disk.

Usage:  PYTHONPATH=src python scripts/check_threaded_modules.py

The concurrency sweep (``python -m repro lint --concurrency``) analyzes the
modules listed in :data:`repro.analysis.THREADED_MODULES`.  A rename that
misses the list would silently shrink the sweep — the analyzer has nothing
to read, so the lint keeps passing while checking less.  ``make lint`` runs
this script to turn that silence into a failure.
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis import THREADED_MODULES, missing_threaded_modules  # noqa: E402


def main() -> int:
    missing = missing_threaded_modules()
    if missing:
        print(
            f"{len(missing)} of {len(THREADED_MODULES)} THREADED_MODULES "
            "entries missing on disk (renamed without updating the list?):"
        )
        for rel in missing:
            print(f"  src/repro/{rel}")
        return 1
    print(f"all {len(THREADED_MODULES)} THREADED_MODULES entries exist")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
