"""Run every static analyzer and print one summary table per rule family.

Usage:  PYTHONPATH=src python scripts/lint_summary.py

Five sweeps, one line each:

* **PL** — plan dataflow rules at the acceptance configuration.
* **DF** — block-dataflow defect rules (write-before-read, dead blocks,
  redundant reads, cycles, generation order) over the acceptance plan's
  block DAG.
* **PU** — task-purity rules over the shipped examples and experiment
  drivers (plus the pipeline's own job confs, linted alongside PL).
* **CN** — lock-discipline rules over the engine's threaded modules.
* **PS** — process-safety rules over the whole ``repro`` package.

Any finding is listed below its family's row.  Exit status 0 iff no
error-severity findings anywhere — the single gate ``make lint`` rides on.
"""

from __future__ import annotations

import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis import (  # noqa: E402
    Severity,
    analyze_concurrency_files,
    analyze_procsafety_files,
    build_model,
    default_procsafety_files,
    default_threaded_files,
    lint_dataflow,
    lint_pipeline,
    lint_source_file,
)


def main() -> int:
    rows = []
    all_findings = []

    t0 = time.perf_counter()
    pl_pu, _model = lint_pipeline(4096)
    rows.append(("PL+PU", "pipeline n=4096 nb=512", 1, pl_pu, time.perf_counter() - t0))

    t0 = time.perf_counter()
    df = lint_dataflow(build_model(4096))
    rows.append(("DF", "block DAG n=4096 nb=512", 1, df, time.perf_counter() - t0))

    source_paths = sorted((ROOT / "examples").glob("*.py"))
    source_paths += sorted((ROOT / "src" / "repro" / "experiments").glob("*.py"))
    t0 = time.perf_counter()
    pu = [f for p in source_paths for f in lint_source_file(p)]
    rows.append(("PU", "examples + experiments", len(source_paths), pu, time.perf_counter() - t0))

    cn_paths = default_threaded_files()
    t0 = time.perf_counter()
    cn = analyze_concurrency_files(cn_paths)
    rows.append(("CN", "engine threaded modules", len(cn_paths), cn, time.perf_counter() - t0))

    ps_paths = default_procsafety_files()
    t0 = time.perf_counter()
    ps = analyze_procsafety_files(ps_paths)
    rows.append(("PS", "whole repro package", len(ps_paths), ps, time.perf_counter() - t0))

    header = f"{'family':<8}{'sweep':<26}{'modules':>8}{'errors':>8}{'warnings':>10}{'info':>6}{'secs':>8}"
    print(header)
    print("-" * len(header))
    for family, sweep, nmods, findings, secs in rows:
        errors = sum(1 for f in findings if f.severity == Severity.ERROR)
        warnings = sum(1 for f in findings if f.severity == Severity.WARNING)
        infos = len(findings) - errors - warnings
        print(
            f"{family:<8}{sweep:<26}{nmods:>8}{errors:>8}{warnings:>10}"
            f"{infos:>6}{secs:>8.2f}"
        )
        all_findings.extend(findings)

    if all_findings:
        print()
        for f in sorted(all_findings, key=lambda f: (f.rule, f.location or "")):
            loc = f" [{f.location}]" if f.location else ""
            print(f"  {f.rule} {f.severity.value}{loc}: {f.message}")
    else:
        print("\nall analyzers clean")

    n_errors = sum(1 for f in all_findings if f.severity == Severity.ERROR)
    return 1 if n_errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
