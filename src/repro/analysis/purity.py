"""Mapper/reducer purity checker.

The simulated runtime (like Hadoop) re-executes tasks: failed attempts are
retried, speculative copies race the originals, and Section 6.1's
"separate HDFS files, never combined on the master" rule exists precisely
because concurrent workers must not share mutable state.  A map/reduce
callable is therefore only safe if it is *pure up to its declared I/O*: no
mutation of closure or global state, no mutation of its inputs, no
nondeterministic APIs (a retried task must write byte-identical output).

This module inspects task callables ahead of execution, via
``inspect.getsource`` + ``ast`` for live objects and plain ``ast`` for source
files:

``PU001``  source unavailable (builtin / C-implemented callable) — INFO;
``PU002``  nondeterministic API call (``random``, ``time.time``,
           ``os.urandom``, unseeded ``default_rng`` ...);
``PU003``  mutation of closure or global state shared across tasks;
``PU004``  mutation of a task input argument;
``PU005``  instance attribute assigned inside ``map``/``reduce`` — WARNING;
``PU006``  wall-clock reads (``datetime.now``, ``time.localtime`` ...) or a
           seedable generator (``Random()``, ``RandomState()``) constructed
           without an injected seed;
``PU007``  iteration over a set whose order can leak into emitted keys —
           WARNING (hash randomization makes replay order differ between
           attempts; wrap in ``sorted(...)``).

Suppressions: append ``# lint: ignore[PU002]`` (or a bare
``# lint: ignore``) to the offending line.
"""

from __future__ import annotations

import ast
import inspect
import linecache
import re
import textwrap
from typing import Any, Callable, Iterable

from ..mapreduce.job import FnMapper, FnReducer, JobConf, Mapper, Reducer
from .findings import Finding

#: Method names whose call mutates the receiver in place.
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear",
        "add", "discard", "update", "setdefault", "popitem",
        "sort", "reverse", "fill", "itemset", "resize", "put",
    }
)

#: Exact dotted calls that are nondeterministic.
_NONDET_EXACT = frozenset(
    {
        "os.urandom", "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "uuid.uuid1", "uuid.uuid4",
    }
)

#: Bare names (``from x import y`` style) that are nondeterministic.
_NONDET_BARE = frozenset(
    {
        "urandom", "uuid1", "uuid4", "getrandbits", "randbytes",
        "token_bytes", "token_hex", "perf_counter", "monotonic",
    }
)

#: Parameter names that are the sanctioned task API, not data inputs.
_API_PARAMS = frozenset({"self", "cls", "ctx", "context"})

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _root_name(node: ast.AST) -> str | None:
    """Leftmost Name of an attribute/subscript chain (``a`` in ``a.b[0].c``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_nondet_call(call: ast.Call) -> str | None:
    """A human-readable description when ``call`` is nondeterministic."""
    dotted = _dotted(call.func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    leaf = parts[-1]
    if leaf == "default_rng" or leaf == "Generator":
        if not call.args and not call.keywords:
            return f"{dotted}() without a seed"
        return None
    if leaf == "seed":
        return None  # explicit seeding is the fix, not the defect
    if parts[0] in ("random", "secrets"):
        return f"{dotted}()"
    if "random" in parts[:-1]:  # np.random.*, numpy.random.*
        return f"{dotted}()"
    if dotted in _NONDET_EXACT:
        return f"{dotted}()"
    if len(parts) == 1 and leaf in _NONDET_BARE:
        return f"{leaf}()"
    if len(parts) == 1 and leaf == "time":
        return "time()"
    return None


def _is_wallclock_or_unseeded(call: ast.Call) -> str | None:
    """PU006 patterns :func:`_is_nondet_call` does not already cover:
    wall-clock formatting/reads and seedable generator classes constructed
    without arguments (``random.*`` and ``np.random.*`` dotted calls are
    PU002 territory; this catches the bare-import spellings)."""
    dotted = _dotted(call.func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    leaf = parts[-1]
    if (
        leaf in ("Random", "RandomState", "SystemRandom")
        and not call.args
        and not call.keywords
    ):
        return f"{dotted}() without a seed"
    if len(parts) >= 2:
        if leaf in ("now", "utcnow", "today") and parts[-2] in (
            "datetime",
            "date",
        ):
            return f"{dotted}()"
        if parts[0] == "time" and leaf in (
            "localtime", "gmtime", "ctime", "asctime", "strftime",
        ):
            return f"{dotted}()"
    return None


def _set_iteration_desc(node: ast.AST) -> str | None:
    """Describe ``node`` when it is a set-valued iterable (PU007)."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func)
        leaf = dotted.split(".")[-1] if dotted else ""
        if leaf in ("set", "frozenset"):
            return f"{leaf}(...)"
    return None


class _CollectLocals(ast.NodeVisitor):
    """Pre-pass: every name the function binds locally (params included)."""

    def __init__(self) -> None:
        self.names: set[str] = set()

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self.names.add(node.id)

    def visit_For(self, node: ast.For) -> None:
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.names.add(node.name)  # nested def binds its name; skip its body

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.names.add(node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


class _TaskBodyVisitor(ast.NodeVisitor):
    """Walk one task function body collecting purity findings."""

    def __init__(
        self,
        *,
        qualname: str,
        filename: str,
        line_offset: int,
        input_params: set[str],
        local_names: set[str],
        self_name: str | None,
        check_self_state: bool,
    ) -> None:
        self.qualname = qualname
        self.filename = filename
        self.line_offset = line_offset
        self.input_params = input_params
        self.local_names = local_names
        self.self_name = self_name
        self.check_self_state = check_self_state
        self.declared_shared: set[str] = set()  # global / nonlocal names
        self.findings: list[Finding] = []

    # -- helpers -------------------------------------------------------------

    def _loc(self, node: ast.AST) -> str:
        line = getattr(node, "lineno", 1) + self.line_offset
        return f"{self.filename}:{line}"

    def _emit(self, rule: str, message: str, node: ast.AST, hint: str = "") -> None:
        self.findings.append(
            Finding.of(
                rule,
                f"{self.qualname}: {message}",
                location=self._loc(node),
                hint=hint,
            )
        )

    def _classify_root(self, target: ast.AST, node: ast.AST, what: str) -> None:
        """Report mutation of ``target`` according to who owns its root."""
        root = _root_name(target)
        if root is None:
            return
        if root == self.self_name or root in ("self", "cls"):
            if self.check_self_state:
                self._emit(
                    "PU005",
                    f"{what} mutates instance state ({root}.…)",
                    node,
                    hint="task instances are rebuilt per attempt; carried "
                    "state diverges under retries and speculation",
                )
            return
        if root in _API_PARAMS:
            return
        if root in self.input_params:
            self._emit(
                "PU004",
                f"{what} mutates input argument {root!r}",
                node,
                hint="inputs may be shared with other attempts of the same "
                "task; copy before modifying",
            )
            return
        if root in self.declared_shared or root not in self.local_names:
            self._emit(
                "PU003",
                f"{what} mutates shared state {root!r} captured from an "
                "enclosing scope",
                node,
                hint="emit through the context or write to a task-private "
                "DFS path instead (Section 6.1's separate-files rule)",
            )

    # -- visitors ------------------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self.declared_shared.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.declared_shared.update(node.names)

    def visit_Call(self, node: ast.Call) -> None:
        desc = _is_nondet_call(node)
        if desc is not None:
            self._emit(
                "PU002",
                f"calls {desc}",
                node,
                hint="retried/speculative attempts must produce identical "
                "output; derive randomness from a seed in the split or "
                "job params",
            )
        else:
            clock = _is_wallclock_or_unseeded(node)
            if clock is not None:
                self._emit(
                    "PU006",
                    f"calls {clock}",
                    node,
                    hint="inject the seed/timestamp through the split or "
                    "job params so a retried attempt replays identically",
                )
        if isinstance(node.func, ast.Attribute) and node.func.attr in _MUTATORS:
            self._classify_root(
                node.func.value, node, f"call to .{node.func.attr}()"
            )
        self.generic_visit(node)

    def _visit_targets(self, targets: Iterable[ast.AST], node: ast.AST) -> None:
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                self._visit_targets(target.elts, node)
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                self._classify_root(target, node, "assignment")
            elif isinstance(target, ast.Name):
                if target.id in self.declared_shared:
                    self._emit(
                        "PU003",
                        f"assignment rebinds shared name {target.id!r} "
                        "(global/nonlocal)",
                        node,
                        hint="emit through the context instead of writing "
                        "to enclosing scopes",
                    )

    def _check_set_iter(self, iterable: ast.AST, node: ast.AST) -> None:
        desc = _set_iteration_desc(iterable)
        if desc is not None:
            self._emit(
                "PU007",
                f"iterates over {desc} (hash-randomized order)",
                node,
                hint="wrap the iterable in sorted(...) so emitted key order "
                "is identical across attempts",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iter(node.iter, node)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_set_iter(node.iter, node.iter)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._visit_targets(node.targets, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._visit_targets([node.target], node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._visit_targets([node.target], node)
        self.generic_visit(node)


def _function_findings(
    func_node: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    qualname: str,
    filename: str,
    line_offset: int = 0,
    check_self_state: bool,
) -> list[Finding]:
    """Analyze one function AST node."""
    arg_names = [a.arg for a in func_node.args.args]
    arg_names += [a.arg for a in func_node.args.posonlyargs]
    arg_names += [a.arg for a in func_node.args.kwonlyargs]
    self_name = (
        arg_names[0]
        if arg_names and arg_names[0] in ("self", "cls")
        else None
    )
    input_params = {a for a in arg_names if a not in _API_PARAMS}

    locals_pass = _CollectLocals()
    for stmt in func_node.body:
        locals_pass.visit(stmt)
    local_names = locals_pass.names | set(arg_names)

    visitor = _TaskBodyVisitor(
        qualname=qualname,
        filename=filename,
        line_offset=line_offset,
        input_params=input_params,
        local_names=local_names,
        self_name=self_name,
        check_self_state=check_self_state,
    )
    for stmt in func_node.body:
        visitor.visit(stmt)
    return visitor.findings


def _lambda_findings(
    lam: ast.Lambda,
    *,
    qualname: str,
    filename: str,
    line_offset: int = 0,
) -> list[Finding]:
    """Analyze one lambda AST node (no statements, so no locals pre-pass)."""
    arg_names = [
        a.arg
        for a in (*lam.args.posonlyargs, *lam.args.args, *lam.args.kwonlyargs)
    ]
    visitor = _TaskBodyVisitor(
        qualname=qualname,
        filename=filename,
        line_offset=line_offset,
        input_params={a for a in arg_names if a not in _API_PARAMS},
        local_names=set(arg_names),
        self_name=None,
        check_self_state=False,
    )
    visitor.visit(lam.body)
    return visitor.findings


def _suppressed(finding: Finding) -> bool:
    """Honour ``# lint: ignore[...]`` on the finding's source line."""
    if ":" not in finding.location:
        return False
    filename, _, lineno = finding.location.rpartition(":")
    if not lineno.isdigit():
        return False
    line = linecache.getline(filename, int(lineno))
    return _line_suppresses(line, finding.rule)


def _line_suppresses(line: str, rule: str) -> bool:
    match = _IGNORE_RE.search(line)
    if not match:
        return False
    rules = match.group(1)
    if rules is None:
        return True
    return rule in {r.strip().upper() for r in rules.split(",")}


# One analysis per code object: factories recreate task instances per call,
# but the underlying functions (and their findings) are identical.
_CODE_CACHE: dict[Any, tuple[Finding, ...]] = {}


def _analyze_function_obj(
    fn: Callable[..., Any], *, check_self_state: bool
) -> list[Finding]:
    code = getattr(fn, "__code__", None)
    key = (code, check_self_state)
    if code is not None and key in _CODE_CACHE:
        return list(_CODE_CACHE[key])
    qualname = getattr(fn, "__qualname__", repr(fn))
    try:
        source = inspect.getsource(fn)
        filename = inspect.getsourcefile(fn) or "<unknown>"
        _, base_line = inspect.getsourcelines(fn)
    except (OSError, TypeError):
        return [
            Finding.of(
                "PU001",
                f"{qualname}: source unavailable; cannot verify purity",
                location=qualname,
                hint="built-in or C-implemented callables are assumed pure",
            )
        ]
    try:
        tree = ast.parse(textwrap.dedent(source))
    except SyntaxError:
        return [
            Finding.of(
                "PU001",
                f"{qualname}: source does not parse standalone",
                location=filename,
            )
        ]
    func_node = next(
        (
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ),
        None,
    )
    if func_node is not None:
        findings = _function_findings(
            func_node,
            qualname=qualname,
            filename=filename,
            line_offset=base_line - func_node.lineno,
            check_self_state=check_self_state,
        )
    else:
        # A lambda: getsource returns the whole enclosing statement, so pick
        # the lambda node matching the code object's line and arity.
        lambdas = [n for n in ast.walk(tree) if isinstance(n, ast.Lambda)]
        if code is not None and lambdas:
            on_line = [
                n for n in lambdas
                if n.lineno == code.co_firstlineno - base_line + 1
            ]
            lambdas = on_line or lambdas
            by_arity = [
                n for n in lambdas
                if len(n.args.posonlyargs) + len(n.args.args) == code.co_argcount
            ]
            lambdas = by_arity or lambdas
        if not lambdas:
            return [
                Finding.of(
                    "PU001",
                    f"{qualname}: cannot locate the function in its source "
                    "statement; cannot verify purity",
                    location=filename,
                )
            ]
        findings = _lambda_findings(
            lambdas[0],
            qualname=qualname,
            filename=filename,
            line_offset=base_line - 1,
        )
    findings = [f for f in findings if not _suppressed(f)]
    if code is not None:
        _CODE_CACHE[key] = tuple(findings)
    return findings


def _overridden_methods(obj: Mapper | Reducer) -> list[tuple[str, Callable[..., Any]]]:
    """(name, function) for task methods the class actually overrides."""
    base = Mapper if isinstance(obj, Mapper) else Reducer
    out: list[tuple[str, Callable[..., Any]]] = []
    for name in ("setup", "map", "map_record", "reduce", "cleanup"):
        fn = getattr(type(obj), name, None)
        if fn is None or getattr(base, name, None) is fn:
            continue
        out.append((name, fn))
    return out


def analyze_callable(obj: Any) -> list[Finding]:
    """Purity findings for one task callable.

    Accepts a :class:`Mapper`/:class:`Reducer` instance (every overridden
    task method is analyzed), an :class:`FnMapper`/:class:`FnReducer`
    (the wrapped function is analyzed), or a plain function.
    """
    if isinstance(obj, (FnMapper, FnReducer)):
        return _analyze_function_obj(obj._fn, check_self_state=False)
    if isinstance(obj, (Mapper, Reducer)):
        findings: list[Finding] = []
        for name, fn in _overridden_methods(obj):
            findings.extend(
                _analyze_function_obj(
                    fn,
                    # setup/cleanup legitimately build per-task state.
                    check_self_state=name in ("map", "map_record", "reduce"),
                )
            )
        return findings
    if callable(obj):
        return _analyze_function_obj(obj, check_self_state=False)
    raise TypeError(f"not a task callable: {obj!r}")


def analyze_job(conf: JobConf) -> list[Finding]:
    """Purity findings for one job's mapper (and reducer, if any)."""
    findings: list[Finding] = []
    for factory in (conf.mapper_factory, conf.reducer_factory):
        if factory is None:
            continue
        try:
            task = factory()
        except Exception as exc:  # pragma: no cover - defensive
            findings.append(
                Finding.of(
                    "PU001",
                    f"job {conf.name!r}: task factory raised {exc!r}; "
                    "cannot analyze",
                    location=conf.name,
                )
            )
            continue
        findings.extend(analyze_callable(task))
    # The same class serves many jobs; drop exact duplicates.
    seen: set[tuple[str, str, str]] = set()
    unique: list[Finding] = []
    for f in findings:
        key = (f.rule, f.message, f.location)
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


# -- source-file analysis (no imports executed) ---------------------------------


def _class_is_task(node: ast.ClassDef) -> bool:
    base_names = {b.id if isinstance(b, ast.Name) else getattr(b, "attr", "") for b in node.bases}
    if any("Mapper" in b or "Reducer" in b for b in base_names):
        return True
    methods = {
        stmt.name
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    return bool(methods & {"map", "map_record", "reduce"})


def analyze_source(text: str, filename: str = "<string>") -> list[Finding]:
    """Purity findings for every task callable defined in a source file.

    Analyzes (a) methods of classes that look like mappers/reducers
    (subclass naming or a ``map``/``map_record``/``reduce`` method) and
    (b) functions passed to ``FnMapper``/``FnReducer`` anywhere in the file.
    Driver-side code is deliberately not checked: seeding generators or
    timing on the master is fine — only task bodies must be pure.
    """
    try:
        tree = ast.parse(text, filename=filename)
    except SyntaxError as exc:
        return [
            Finding.of(
                "PU001",
                f"{filename} does not parse: {exc.msg} (line {exc.lineno})",
                location=f"{filename}:{exc.lineno or 1}",
            )
        ]
    lines = text.splitlines()
    findings: list[Finding] = []

    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.setdefault(node.name, node)

    analyzed: set[ast.AST] = set()

    def run(
        func_node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        *,
        check_self_state: bool,
    ) -> None:
        if func_node in analyzed:
            return
        analyzed.add(func_node)
        findings.extend(
            _function_findings(
                func_node,
                qualname=qualname,
                filename=filename,
                check_self_state=check_self_state,
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and _class_is_task(node):
            for stmt in node.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if stmt.name in ("map", "map_record", "reduce", "setup", "cleanup"):
                    run(
                        stmt,
                        f"{node.name}.{stmt.name}",
                        check_self_state=stmt.name
                        in ("map", "map_record", "reduce"),
                    )
        elif isinstance(node, ast.Call):
            callee = node.func
            callee_name = (
                callee.id
                if isinstance(callee, ast.Name)
                else getattr(callee, "attr", "")
            )
            if callee_name in ("FnMapper", "FnReducer") and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Name) and arg.id in functions:
                    run(functions[arg.id], arg.id, check_self_state=False)
                elif isinstance(arg, ast.Lambda):
                    findings.extend(
                        _lambda_findings(
                            arg,
                            qualname=f"<lambda:{arg.lineno}>",
                            filename=filename,
                        )
                    )

    def keep(f: Finding) -> bool:
        _, _, lineno = f.location.rpartition(":")
        if lineno.isdigit() and 1 <= int(lineno) <= len(lines):
            return not _line_suppresses(lines[int(lineno) - 1], f.rule)
        return True

    return [f for f in findings if keep(f)]
