"""Process-safety & ownership analyzer: proving task code can cross a
process boundary.

The engine runs tasks on :class:`SerialExecutor`,
:class:`ThreadPoolBackend`, or :class:`ProcessPoolBackend` (see
``mapreduce/backends.py``).  The process pool (with
``multiprocessing.shared_memory`` block transport) requires every mapper,
reducer, combiner, factory, ``before_job`` hook, and executor thunk to be
safe to *pickle and ship*: no captured locks or threads, no smuggled DFS
handles, no mutation of state that would silently fork into per-process
copies, and no writes to the borrowed read-only views the zero-copy DFS
read path hands out.  This module proves those properties statically, over
the AST, without importing the analyzed code.

Task-boundary code is discovered structurally:

* classes that look like mappers/reducers (``Mapper``/``Reducer`` bases or a
  ``map``/``map_record``/``reduce`` method) — their task methods and
  ``__init__`` captures;
* functions/lambdas passed to ``FnMapper``/``FnReducer``;
* ``mapper_factory``/``reducer_factory``/``combiner_factory`` keywords of
  ``JobConf(...)`` calls (the factory closure itself crosses the boundary);
* hooks registered via ``<runtime>.before_job.append(...)`` (including the
  constructor captures of callable hook objects);
* any function or lambda whose ``def`` line carries a ``# task-boundary``
  comment — the explicit annotation for engine internals such as executor
  thunks, mirroring the concurrency analyzer's annotation conventions.

Rules:

``PS001``  unpicklable object captured in a task closure (threads, open
           files, subprocess handles, generators);
``PS002``  DFS/NameNode/JobTracker/runtime handle captured by value instead
           of received through the sanctioned ``TaskContext`` channel;
``PS003``  module-global state mutated from task code (each process would
           mutate its own copy; accounting silently diverges);
``PS004``  in-place mutation of a borrowed DFS read view obtained without
           ``writable=True`` (aug-assign, slice assignment, ``out=``,
           mutating methods) — tracked interprocedurally through same-module
           helpers, like the concurrency analyzer's ``_locked`` convention;
``PS005``  borrowed view escaping the task scope (returned, stored on
           ``self``, appended to a captured container);
``PS006``  fork-unsafe global RNG use in task code (``random.random``,
           ``np.random.*``) — forked workers inherit identical state;
``PS007``  lock/condition/semaphore primitive crossing a task boundary;
``PS008``  ``multiprocessing.shared_memory`` segment closed or unlinked
           while a ``frombuffer`` view over its buffer is still used
           (checked in *every* function, not just task code — this is the
           lifetime discipline the planned ``ProcessPoolBackend`` must obey).

Suppressions reuse the shared mechanism: append ``# lint: ignore[PS004]``
(or a bare ``# lint: ignore``) to the offending line.

Known limitations: helper propagation (PS004) covers module-level functions
of the same module; view aliasing follows names, subscripts, and the common
numpy view attributes/methods but treats unknown method calls as copies;
PS008 reasons in source order within one function.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .findings import Finding
from .purity import _line_suppresses

_BOUNDARY_RE = re.compile(r"#\s*task-boundary\b")

_FACTORY_KEYWORDS = ("mapper_factory", "reducer_factory", "combiner_factory")
_TASK_METHODS = ("setup", "map", "map_record", "reduce", "cleanup", "__call__")

#: Synchronization primitives (PS007).
_LOCK_CTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
     "Event", "Barrier"}
)

#: Unpicklable captures (PS001): constructor leaf -> description.
_UNPICKLABLE_CTORS = {
    "Thread": "a thread",
    "Timer": "a timer thread",
    "open": "an open file handle",
    "Popen": "a subprocess handle",
    "socket": "a socket",
    "ThreadPoolExecutor": "a thread pool",
    "ProcessPoolExecutor": "a process pool",
}

#: Engine-handle constructors and attribute leaves (PS002).
_HANDLE_CTORS = frozenset(
    {"DFS", "NameNode", "JobTracker", "MapReduceRuntime", "BlockStore",
     "DataNode"}
)
_HANDLE_ATTRS = frozenset({"dfs", "namenode", "jobtracker"})

#: Calls producing borrowed (read-only, storage-backed) views unless
#: ``writable=True`` is passed.
_BORROW_CALLS = frozenset({"read_matrix", "read_rows", "decode_matrix"})
#: Calls returning ``(view, nbytes)`` pairs.
_BORROW_PAIR_CALLS = frozenset({"read_through"})

#: Wrappers that materialize a private copy — the sanctioned way to get a
#: mutable value out of a borrowed view.
_COPYING_CALLS = frozenset(
    {"array", "copy", "deepcopy", "ascontiguousarray", "asfortranarray",
     "vstack", "hstack", "stack", "concatenate", "list", "dict", "tuple",
     "sorted", "bytes", "float", "int"}
)
_COPY_METHODS = frozenset(
    {"copy", "astype", "tolist", "tobytes", "item", "sum", "mean", "min",
     "max", "dot", "trace", "conj", "round", "flatten"}
)
#: Methods/attributes that return another view over the same buffer.
_VIEW_METHODS = frozenset(
    {"reshape", "transpose", "view", "swapaxes", "squeeze", "ravel"}
)
_VIEW_ATTRS = frozenset({"T", "real", "imag", "flat"})

#: In-place mutators (numpy + container staples).
_NP_MUTATORS = frozenset(
    {"fill", "sort", "resize", "itemset", "put", "partition", "setfield",
     "byteswap", "setflags"}
)
_CONTAINER_MUTATORS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "clear", "add",
     "discard", "update", "setdefault", "popitem"}
)
_ESCAPE_APPENDERS = frozenset({"append", "extend", "add", "insert"})

#: ``random``/``np.random`` leaves that construct *private* generators —
#: these are fork-safe (each task seeds its own) and not PS006.
_PRIVATE_RNG_LEAVES = frozenset(
    {"Random", "SystemRandom", "RandomState", "default_rng", "Generator",
     "SeedSequence", "PCG64", "Philox", "MT19937", "BitGenerator"}
)

_API_PARAMS = frozenset({"self", "cls", "ctx", "context"})


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _root_name(node: ast.AST) -> str | None:
    """Leftmost Name of an attribute/subscript chain (``a`` in ``a.b[0].c``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _writable_true(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "writable":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


def _classify_value(expr: ast.AST | None) -> tuple[str, str] | None:
    """``(rule, description)`` when a value expression names something that
    must not cross a task boundary."""
    if expr is None:
        return None
    if isinstance(expr, ast.GeneratorExp):
        return "PS001", "a generator expression"
    if isinstance(expr, ast.Call):
        dotted = _dotted(expr.func)
        if dotted is None:
            return None
        leaf = dotted.split(".")[-1]
        if leaf in _LOCK_CTORS:
            return "PS007", f"a {leaf} primitive"
        if leaf in _UNPICKLABLE_CTORS:
            return "PS001", _UNPICKLABLE_CTORS[leaf]
        if leaf in _HANDLE_CTORS:
            return "PS002", f"a {leaf} handle"
        return None
    if isinstance(expr, ast.Attribute):
        dotted = _dotted(expr)
        if dotted is not None and dotted.split(".")[-1] in _HANDLE_ATTRS:
            return "PS002", f"the engine handle {dotted!r}"
    return None


def _function_param_names(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
) -> list[str]:
    a = node.args
    names = [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
    if a.vararg:
        names.append(a.vararg.arg)
    if a.kwarg:
        names.append(a.kwarg.arg)
    return names


class _LocalNames(ast.NodeVisitor):
    """Names a function binds locally (assignments, loops, withitems,
    nested def names — not nested bodies)."""

    def __init__(self) -> None:
        self.names: set[str] = set()

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self.names.add(node.id)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.names.add(node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.names.add(node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.names.add(node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.names.add((alias.asname or alias.name).split(".")[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            self.names.add(alias.asname or alias.name)


def _local_names(body: Iterable[ast.stmt]) -> set[str]:
    pass_ = _LocalNames()
    for stmt in body:
        pass_.visit(stmt)
    return pass_.names


def _scope_bindings(body: Iterable[ast.stmt]) -> dict[str, ast.AST]:
    """name -> value expression for simple bindings in one scope (used to
    classify what a captured name refers to).  Walks nested statements but
    not nested function/class bodies."""
    bindings: dict[str, ast.AST] = {}

    def scan(stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bindings[stmt.name] = stmt
                continue
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        bindings[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                    bindings[stmt.target.id] = stmt.value
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    if isinstance(item.optional_vars, ast.Name):
                        bindings[item.optional_vars.id] = item.context_expr
            for child_body in (
                getattr(stmt, "body", None),
                getattr(stmt, "orelse", None),
                getattr(stmt, "finalbody", None),
            ):
                if isinstance(child_body, list):
                    scan(child_body)
            for handler in getattr(stmt, "handlers", []) or []:
                scan(handler.body)

    scan(body)
    return bindings


def _class_is_task(node: ast.ClassDef) -> bool:
    base_names = {
        b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
        for b in node.bases
    }
    if any("Mapper" in b or "Reducer" in b for b in base_names):
        return True
    methods = {
        stmt.name
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    return bool(methods & {"map", "map_record", "reduce"})


# -- helper (interprocedural) summaries -------------------------------------------


@dataclass
class _HelperInfo:
    """Borrow/mutation summary of one module-level function."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: list[str]
    returns_borrowed: bool = False
    mutated_params: set[int] = field(default_factory=set)


class _HelperScan(ast.NodeVisitor):
    """One pass over a helper body: which params it mutates in place and
    whether it returns a borrowed view.  ``helpers`` lets summaries
    propagate (run to a fixed point by the analyzer)."""

    def __init__(self, info: _HelperInfo, helpers: dict[str, _HelperInfo]) -> None:
        self.info = info
        self.helpers = helpers
        # Local names currently bound to borrowed views.
        self.borrowed: set[str] = set()
        self.param_index = {p: i for i, p in enumerate(info.params)}
        self.changed = False

    # -- borrow classification ----------------------------------------------------

    def _is_borrowed(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.borrowed
        if isinstance(expr, ast.Subscript):
            return self._is_borrowed(expr.value)
        if isinstance(expr, ast.Attribute):
            return expr.attr in _VIEW_ATTRS and self._is_borrowed(expr.value)
        if isinstance(expr, ast.Call):
            return self._call_borrows(expr)
        return False

    def _call_borrows(self, call: ast.Call) -> bool:
        dotted = _dotted(call.func) or ""
        leaf = dotted.split(".")[-1]
        if leaf in _BORROW_CALLS and not _writable_true(call):
            return True
        if (
            isinstance(call.func, ast.Name)
            and call.func.id in self.helpers
            and self.helpers[call.func.id].returns_borrowed
        ):
            return True
        if isinstance(call.func, ast.Attribute) and leaf in _VIEW_METHODS:
            return self._is_borrowed(call.func.value)
        return False

    # -- mutation recording ---------------------------------------------------------

    def _record_param_mutation(self, root: str | None) -> None:
        if root is not None and root in self.param_index:
            idx = self.param_index[root]
            if idx not in self.info.mutated_params:
                self.info.mutated_params.add(idx)
                self.changed = True

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                self._record_param_mutation(_root_name(target))
            elif isinstance(target, ast.Name):
                if self._is_borrowed(node.value):
                    self.borrowed.add(target.id)
                else:
                    self.borrowed.discard(target.id)
            elif isinstance(target, ast.Tuple) and isinstance(node.value, ast.Call):
                dotted = _dotted(node.value.func) or ""
                if dotted.split(".")[-1] in _BORROW_PAIR_CALLS and target.elts:
                    first = target.elts[0]
                    if isinstance(first, ast.Name):
                        self.borrowed.add(first.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_param_mutation(_root_name(node.target))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _NP_MUTATORS | _CONTAINER_MUTATORS:
                self._record_param_mutation(_root_name(node.func.value))
        for kw in node.keywords:
            if kw.arg == "out":
                self._record_param_mutation(_root_name(kw.value))
        # Param handed to another mutating helper.
        if isinstance(node.func, ast.Name) and node.func.id in self.helpers:
            callee = self.helpers[node.func.id]
            for i, arg in enumerate(node.args):
                if i in callee.mutated_params:
                    self._record_param_mutation(_root_name(arg))
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None and self._is_borrowed(node.value):
            if not self.info.returns_borrowed:
                self.info.returns_borrowed = True
                self.changed = True
        self.generic_visit(node)


# -- the task-body walker ---------------------------------------------------------


class _TaskWalker(ast.NodeVisitor):
    """Walk one task-boundary function body, emitting PS findings."""

    def __init__(
        self,
        *,
        qualname: str,
        filename: str,
        bindings: dict[str, ast.AST],
        module_globals: set[str],
        module_imports: set[str],
        helpers: dict[str, _HelperInfo],
        params: list[str],
        local_names: set[str],
        self_name: str | None,
    ) -> None:
        self.qualname = qualname
        self.filename = filename
        self.bindings = bindings
        self.module_globals = module_globals
        self.module_imports = module_imports
        self.helpers = helpers
        self.params = set(params)
        self.local_names = local_names | set(params)
        self.self_name = self_name
        self.declared_global: set[str] = set()
        self.borrowed: dict[str, str] = {}  # name -> producer description
        self.reported_captures: set[str] = set()
        self.findings: list[Finding] = []

    # -- plumbing ------------------------------------------------------------------

    def _loc(self, node: ast.AST) -> str:
        return f"{self.filename}:{getattr(node, 'lineno', 1)}"

    def _emit(self, rule: str, message: str, node: ast.AST, hint: str = "") -> None:
        self.findings.append(
            Finding.of(
                rule,
                f"{self.qualname}: {message}",
                location=self._loc(node),
                hint=hint,
            )
        )

    # -- borrow classification (mirrors _HelperScan, plus descriptions) -------------

    def _borrow_desc(self, expr: ast.AST) -> str | None:
        if isinstance(expr, ast.Name):
            return self.borrowed.get(expr.id)
        if isinstance(expr, ast.Subscript):
            return self._borrow_desc(expr.value)
        if isinstance(expr, ast.Attribute):
            if expr.attr in _VIEW_ATTRS:
                return self._borrow_desc(expr.value)
            return None
        if isinstance(expr, ast.Call):
            return self._call_borrow_desc(expr)
        return None

    def _call_borrow_desc(self, call: ast.Call) -> str | None:
        dotted = _dotted(call.func) or ""
        leaf = dotted.split(".")[-1]
        if leaf in _BORROW_CALLS and not _writable_true(call):
            return f"{dotted}(...)"
        if (
            isinstance(call.func, ast.Name)
            and call.func.id in self.helpers
            and self.helpers[call.func.id].returns_borrowed
        ):
            return f"{call.func.id}(...) (helper returning a borrowed view)"
        if isinstance(call.func, ast.Attribute) and leaf in _VIEW_METHODS:
            return self._borrow_desc(call.func.value)
        return None

    # -- mutation / escape dispatch --------------------------------------------------

    def _check_mutation(self, target: ast.AST, node: ast.AST, what: str) -> None:
        root = _root_name(target)
        if root is None:
            return
        if root in self.borrowed:
            self._emit(
                "PS004",
                f"{what} mutates borrowed view {root!r} "
                f"(from {self.borrowed[root]})",
                node,
                hint="read with writable=True (private copy) or copy "
                "explicitly before mutating; the zero-copy read path "
                "shares one buffer across tasks",
            )
            return
        if (
            root not in self.local_names
            and root not in _API_PARAMS
            and root != self.self_name
            and root in self.module_globals
        ) or root in self.declared_global:
            self._emit(
                "PS003",
                f"{what} mutates module-global {root!r}",
                node,
                hint="each worker process would mutate a private copy; "
                "emit through the context or write to a task-private "
                "DFS path instead",
            )

    def _check_capture(self, name: str, node: ast.AST) -> None:
        if (
            name in self.local_names
            or name in _API_PARAMS
            or name == self.self_name
            or name in self.reported_captures
        ):
            return
        classified = _classify_value(self.bindings.get(name))
        if classified is None:
            return
        rule, desc = classified
        self.reported_captures.add(name)
        hints = {
            "PS001": "pass picklable data (paths, seeds, descriptors) and "
            "recreate the resource inside the task",
            "PS002": "tasks must reach storage through their TaskContext "
            "(ctx.read_*/ctx.write_*), which a process backend can rebind",
            "PS007": "synchronization cannot cross a process boundary; "
            "restructure so the lock stays driver-side",
        }
        self._emit(
            rule,
            f"captures {desc} as {name!r} across the task boundary",
            node,
            hint=hints[rule],
        )

    # -- visitors -------------------------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self.declared_global.update(node.names)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._check_capture(node.id, node)

    def _bind_targets(self, targets: Sequence[ast.AST], value: ast.AST) -> None:
        desc = self._borrow_desc(value)
        pair = (
            isinstance(value, ast.Call)
            and (_dotted(value.func) or "").split(".")[-1] in _BORROW_PAIR_CALLS
        )
        for target in targets:
            if isinstance(target, ast.Name):
                if desc is not None:
                    self.borrowed[target.id] = desc
                else:
                    self.borrowed.pop(target.id, None)
            elif isinstance(target, ast.Tuple) and pair and target.elts:
                first = target.elts[0]
                if isinstance(first, ast.Name):
                    dotted = _dotted(value.func) or "read_through"
                    self.borrowed[first.id] = f"{dotted}(...)"

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                self._check_mutation(target, node, "assignment")
                root = _root_name(target)
                if (
                    isinstance(target, ast.Attribute)
                    and root is not None
                    and (root == self.self_name or root in ("self", "cls"))
                ):
                    desc = self._borrow_desc(node.value)
                    if desc is not None:
                        self._emit(
                            "PS005",
                            f"stores borrowed view (from {desc}) on "
                            f"{root}.{target.attr}",
                            node,
                            hint="the view outlives the task attempt and "
                            "aliases the shared read buffer; copy first",
                        )
        self._bind_targets(node.targets, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            if isinstance(node.target, (ast.Subscript, ast.Attribute)):
                self._check_mutation(node.target, node, "assignment")
            self._bind_targets([node.target], node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        self._check_mutation(node.target, node, "augmented assignment")
        if isinstance(node.target, (ast.Attribute, ast.Subscript)):
            self.visit(node.target.value)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            desc = self._borrow_desc(node.value)
            if desc is not None:
                self._emit(
                    "PS005",
                    f"returns borrowed view (from {desc})",
                    node,
                    hint="the caller receives an alias of the shared read "
                    "buffer; copy before returning",
                )
            self.visit(node.value)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func) or ""
        parts = dotted.split(".")
        leaf = parts[-1] if parts else ""

        # PS006: module-global RNG.
        if len(parts) >= 2 and leaf not in _PRIVATE_RNG_LEAVES:
            if parts[0] == "random" or "random" in parts[:-1]:
                self._emit(
                    "PS006",
                    f"calls {dotted}() — the process-wide global RNG",
                    node,
                    hint="forked workers inherit identical RNG state; use a "
                    "private default_rng(seed) derived from the split or "
                    "job params",
                )

        if isinstance(node.func, ast.Attribute):
            # PS004: mutating method on a borrowed view / PS003 on globals.
            if leaf in _NP_MUTATORS | _CONTAINER_MUTATORS:
                self._check_mutation(node.func.value, node, f"call to .{leaf}()")
            # PS005: borrowed view appended to a captured container.
            if leaf in _ESCAPE_APPENDERS:
                root = _root_name(node.func.value)
                if (
                    root is not None
                    and root not in self.local_names
                    and root not in _API_PARAMS
                    and root not in self.module_imports
                ):
                    for arg in node.args:
                        desc = self._borrow_desc(arg)
                        if desc is not None:
                            self._emit(
                                "PS005",
                                f"appends borrowed view (from {desc}) to "
                                f"captured container {root!r}",
                                node,
                                hint="the container outlives the task and "
                                "aliases the shared read buffer; copy first",
                            )

        # PS004: out= targeting a borrowed view.
        for kw in node.keywords:
            if kw.arg == "out":
                self._check_mutation(kw.value, node, "out= argument")

        # PS004: borrowed argument to a same-module mutating helper.
        if isinstance(node.func, ast.Name) and node.func.id in self.helpers:
            callee = self.helpers[node.func.id]
            for i, arg in enumerate(node.args):
                if i in callee.mutated_params:
                    desc = self._borrow_desc(arg)
                    if desc is not None:
                        self._emit(
                            "PS004",
                            f"passes borrowed view (from {desc}) to "
                            f"{node.func.id}(), which mutates parameter "
                            f"{callee.params[i]!r} in place",
                            node,
                            hint="read with writable=True or copy before "
                            "handing the array to an in-place helper",
                        )
        self.generic_visit(node)


# -- PS008: shared_memory lifetime --------------------------------------------------


class _ShmWalker(ast.NodeVisitor):
    """Source-order scan of one function for shared_memory lifetime bugs."""

    def __init__(self, qualname: str, filename: str) -> None:
        self.qualname = qualname
        self.filename = filename
        self.shm_vars: set[str] = set()
        self.views: dict[str, str] = {}  # view name -> shm name
        self.closed: dict[str, str] = {}  # shm name -> "close"/"unlink"
        self.reported: set[str] = set()
        self.findings: list[Finding] = []

    def _emit(self, message: str, node: ast.AST) -> None:
        self.findings.append(
            Finding.of(
                "PS008",
                f"{self.qualname}: {message}",
                location=f"{self.filename}:{getattr(node, 'lineno', 1)}",
                hint="keep the segment open for the lifetime of every view "
                "over its buffer; copy the data out before close()/unlink()",
            )
        )

    def _shm_of(self, expr: ast.AST) -> str | None:
        """Name of the SharedMemory object whose ``.buf`` appears in expr."""
        for sub in ast.walk(expr):
            if (
                isinstance(sub, ast.Attribute)
                and sub.attr == "buf"
                and isinstance(sub.value, ast.Name)
                and sub.value.id in self.shm_vars
            ):
                return sub.value.id
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        targets = [t for t in node.targets if isinstance(t, ast.Name)]
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func) or ""
            leaf = dotted.split(".")[-1]
            if leaf == "SharedMemory":
                for t in targets:
                    self.shm_vars.add(t.id)
                    self.closed.pop(t.id, None)
                return
            if leaf in ("frombuffer", "ndarray", "asarray", "memoryview"):
                shm = self._shm_of(value)
                if shm is not None:
                    for t in targets:
                        self.views[t.id] = shm
                    return
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("close", "unlink")
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in self.shm_vars
        ):
            self.closed.setdefault(node.func.value.id, node.func.attr)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if not isinstance(node.ctx, ast.Load):
            if isinstance(node.ctx, ast.Store) and node.id in self.views:
                del self.views[node.id]
            return
        shm = self.views.get(node.id)
        if shm is not None and shm in self.closed and node.id not in self.reported:
            self.reported.add(node.id)
            self._emit(
                f"uses view {node.id!r} over shared_memory segment "
                f"{shm!r} after {shm}.{self.closed[shm]}()",
                node,
            )


# -- the analyzer -----------------------------------------------------------------


@dataclass
class _TaskFn:
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    qualname: str
    bindings: dict[str, ast.AST]
    self_name: str | None = None


@dataclass
class _ModuleSource:
    filename: str
    tree: ast.Module
    lines: list[str]


class ProcSafetyAnalyzer:
    """Process-safety analysis over one or more modules (no imports
    executed).  ``add_module``/``add_file`` then ``run``."""

    def __init__(self) -> None:
        self.modules: list[_ModuleSource] = []
        self.findings: list[Finding] = []

    def add_module(self, text: str, filename: str = "<string>") -> None:
        try:
            tree = ast.parse(text, filename=filename)
        except SyntaxError as exc:
            self.findings.append(
                Finding.of(
                    "PS001",
                    f"{filename} does not parse: {exc.msg} (line {exc.lineno})",
                    location=f"{filename}:{exc.lineno or 1}",
                )
            )
            return
        self.modules.append(_ModuleSource(filename, tree, text.splitlines()))

    def add_file(self, path: str | pathlib.Path) -> None:
        path = pathlib.Path(path)
        self.add_module(path.read_text(encoding="utf-8"), str(path))

    # -- per-module machinery -------------------------------------------------------

    @staticmethod
    def _helper_summaries(tree: ast.Module) -> dict[str, _HelperInfo]:
        helpers = {
            stmt.name: _HelperInfo(stmt, _function_param_names(stmt))
            for stmt in tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        # Fixed point over helper-calls-helper propagation.
        for _ in range(len(helpers) + 1):
            changed = False
            for info in helpers.values():
                scan = _HelperScan(info, helpers)
                scan.borrowed.clear()
                for stmt in info.node.body:
                    scan.visit(stmt)
                changed = changed or scan.changed
            if not changed:
                break
        return helpers

    def _discover(self, mod: _ModuleSource) -> list[tuple[_TaskFn, str]]:
        """All task-boundary functions with their capture environments.
        Returns ``(task_fn, kind)`` pairs; ``kind`` labels the discovery
        route for messages."""
        found: list[tuple[_TaskFn, str]] = []
        seen: set[ast.AST] = set()
        lines = mod.lines

        def boundary_annotated(node: ast.AST) -> bool:
            lineno = getattr(node, "lineno", 0)
            if 1 <= lineno <= len(lines):
                return bool(_BOUNDARY_RE.search(lines[lineno - 1]))
            return False

        def register(
            node: ast.AST,
            qualname: str,
            bindings: dict[str, ast.AST],
            kind: str,
            self_name: str | None = None,
        ) -> None:
            if node in seen or not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return
            seen.add(node)
            found.append(
                (_TaskFn(node, qualname, dict(bindings), self_name), kind)
            )

        def class_instance_checks(
            cls: ast.ClassDef, bindings: dict[str, ast.AST]
        ) -> None:
            """Register task methods + __init__ capture checks of a class."""
            for stmt in cls.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if stmt.name in _TASK_METHODS:
                    params = _function_param_names(stmt)
                    register(
                        stmt,
                        f"{cls.name}.{stmt.name}",
                        bindings,
                        "method",
                        self_name=params[0] if params else None,
                    )
                elif stmt.name == "__init__":
                    self._check_init_captures(mod, cls, stmt, bindings)

        def hook_target(call: ast.Call, bindings: dict[str, ast.AST]) -> None:
            """``x.before_job.append(arg)`` — analyze the hook."""
            if not call.args:
                return
            arg: ast.AST = call.args[0]
            if isinstance(arg, ast.Name):
                arg = bindings.get(arg.id, arg)
            if isinstance(arg, (ast.FunctionDef, ast.AsyncFunctionDef)):
                register(arg, f"{arg.name} (before_job hook)", bindings, "hook")
            elif isinstance(arg, ast.Lambda):
                register(
                    arg, f"<lambda:{arg.lineno}> (before_job hook)", bindings, "hook"
                )
            elif isinstance(arg, ast.Call):
                # Callable hook object: its constructor arguments cross the
                # boundary with it.
                ctor = _dotted(arg.func) or "hook"
                for sub in (*arg.args, *(kw.value for kw in arg.keywords)):
                    expr = sub
                    if isinstance(sub, ast.Name):
                        expr = bindings.get(sub.id, sub)
                    classified = _classify_value(expr)
                    if classified is not None:
                        rule, desc = classified
                        self.findings.append(
                            Finding.of(
                                rule,
                                f"before_job hook {ctor}(...) captures "
                                f"{desc} by value",
                                location=f"{mod.filename}:{call.lineno}",
                                hint="hooks ride the job launch path; keep "
                                "engine handles out of their state or keep "
                                "the hook driver-side",
                            )
                        )
                # Same-module class: analyze its __call__ too.
                cls = bindings.get(ctor.split(".")[0])
                if isinstance(cls, ast.ClassDef):
                    for stmt in cls.body:
                        if (
                            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                            and stmt.name == "__call__"
                        ):
                            params = _function_param_names(stmt)
                            register(
                                stmt,
                                f"{cls.name}.__call__ (before_job hook)",
                                bindings,
                                "hook",
                                self_name=params[0] if params else None,
                            )

        def scan_region(
            stmts: Iterable[ast.stmt],
            outer: dict[str, ast.AST],
            qual: str,
        ) -> None:
            merged = {**outer, **_scope_bindings(stmts)}

            def walk(node: ast.AST) -> None:
                if isinstance(node, ast.ClassDef):
                    if _class_is_task(node):
                        class_instance_checks(node, merged)
                    for stmt in node.body:
                        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            shadow = dict(merged)
                            for p in _function_param_names(stmt):
                                shadow.pop(p, None)
                            scan_region(
                                stmt.body, shadow, f"{qual}{node.name}.{stmt.name}."
                            )
                    return
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if boundary_annotated(node):
                        register(node, f"{qual}{node.name}", merged, "boundary")
                    shadow = dict(merged)
                    for p in _function_param_names(node):
                        shadow.pop(p, None)
                    scan_region(node.body, shadow, f"{qual}{node.name}.")
                    return
                if isinstance(node, ast.Lambda):
                    if boundary_annotated(node):
                        register(
                            node, f"{qual}<lambda:{node.lineno}>", merged, "boundary"
                        )
                    # Lambdas registered through other routes are handled
                    # there; still scan the body expression for patterns.
                    walk(node.body)
                    return
                if isinstance(node, ast.Call):
                    self._discover_call(node, merged, qual, register, hook_target)
                for child in ast.iter_child_nodes(node):
                    walk(child)

            for stmt in stmts:
                walk(stmt)

        scan_region(mod.tree.body, {}, "")
        return found

    def _discover_call(
        self,
        node: ast.Call,
        bindings: dict[str, ast.AST],
        qual: str,
        register,
        hook_target,
    ) -> None:
        callee = _dotted(node.func) or ""
        leaf = callee.split(".")[-1]
        if leaf in ("FnMapper", "FnReducer") and node.args:
            arg: ast.AST = node.args[0]
            if isinstance(arg, ast.Name):
                arg = bindings.get(arg.id, arg)
                label = getattr(arg, "name", None) or _dotted(node.args[0]) or "task"
            else:
                label = f"<lambda:{getattr(arg, 'lineno', node.lineno)}>"
            register(arg, f"{qual}{label}", bindings, "fn")
        elif leaf == "JobConf":
            for kw in node.keywords:
                if kw.arg not in _FACTORY_KEYWORDS:
                    continue
                value: ast.AST = kw.value
                if isinstance(value, ast.Name):
                    value = bindings.get(value.id, value)
                label = (
                    getattr(value, "name", None)
                    or f"<lambda:{getattr(value, 'lineno', node.lineno)}>"
                )
                register(value, f"{qual}{label} ({kw.arg})", bindings, "factory")
        elif (
            leaf == "append"
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr == "before_job"
        ):
            hook_target(node, bindings)

    def _check_init_captures(
        self,
        mod: _ModuleSource,
        cls: ast.ClassDef,
        init: ast.FunctionDef | ast.AsyncFunctionDef,
        bindings: dict[str, ast.AST],
    ) -> None:
        """``self.x = <lock/handle/...>`` in a task __init__: the instance
        ships to the worker with that object aboard."""
        local = _scope_bindings(init.body)
        for stmt in ast.walk(init):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                expr: ast.AST = stmt.value
                if isinstance(expr, ast.Name):
                    expr = local.get(expr.id) or bindings.get(expr.id, expr)
                classified = _classify_value(expr)
                if classified is not None:
                    rule, desc = classified
                    self.findings.append(
                        Finding.of(
                            rule,
                            f"{cls.name}.__init__ stores {desc} on "
                            f"self.{target.attr} — it ships with every task "
                            "instance",
                            location=f"{mod.filename}:{stmt.lineno}",
                            hint="pass picklable descriptors and recreate "
                            "per-attempt state in setup()",
                        )
                    )

    # -- running --------------------------------------------------------------------

    @staticmethod
    def _module_imports(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    names.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    names.add(alias.asname or alias.name)
        return names

    def _analyze_task_fn(
        self,
        mod: _ModuleSource,
        task: _TaskFn,
        helpers: dict[str, _HelperInfo],
        module_globals: set[str],
        module_imports: set[str],
    ) -> None:
        node = task.node
        params = _function_param_names(node)
        if isinstance(node, ast.Lambda):
            body: list[ast.stmt] = []
            local = set(params)
        else:
            body = node.body
            local = _local_names(body) | set(params)
        walker = _TaskWalker(
            qualname=task.qualname,
            filename=mod.filename,
            bindings=task.bindings,
            module_globals=module_globals,
            module_imports=module_imports,
            helpers=helpers,
            params=params,
            local_names=local,
            self_name=task.self_name,
        )
        if isinstance(node, ast.Lambda):
            walker.visit(node.body)
        else:
            for stmt in body:
                walker.visit(stmt)
        self.findings.extend(walker.findings)

    def run(self) -> list[Finding]:
        for mod in self.modules:
            helpers = self._helper_summaries(mod.tree)
            module_globals = {
                name
                for name, expr in _scope_bindings(mod.tree.body).items()
                if not isinstance(
                    expr, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            }
            module_imports = self._module_imports(mod.tree)
            for task, _kind in self._discover(mod):
                self._analyze_task_fn(
                    mod, task, helpers, module_globals, module_imports
                )
            # PS008 runs over every function — the lifetime discipline binds
            # backend/engine code, not just task bodies.
            for node in ast.walk(mod.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    shm = _ShmWalker(node.name, mod.filename)
                    for stmt in node.body:
                        shm.visit(stmt)
                    self.findings.extend(shm.findings)
        return self._suppressed_filtered()

    def _suppressed_filtered(self) -> list[Finding]:
        lines_by_file = {m.filename: m.lines for m in self.modules}
        out: list[Finding] = []
        seen: set[tuple[str, str, str]] = set()
        for f in self.findings:
            filename, _, lineno = f.location.rpartition(":")
            lines = lines_by_file.get(filename)
            if (
                lines is not None
                and lineno.isdigit()
                and 1 <= int(lineno) <= len(lines)
                and _line_suppresses(lines[int(lineno) - 1], f.rule)
            ):
                continue
            key = (f.rule, f.message, f.location)
            if key in seen:
                continue
            seen.add(key)
            out.append(f)
        out.sort(key=lambda f: (f.location, f.rule))
        return out


# -- public API -------------------------------------------------------------------


def default_procsafety_files() -> list[pathlib.Path]:
    """Every module of the installed ``repro`` package — the engine sweep
    population for ``python -m repro lint --procsafety``.

    ``__pycache__`` is excluded: an installation can leave stale ``.py``
    artifacts there (editable installs, source-preserving bytecode caches),
    and sweeping them would lint code that no longer exists.
    """
    root = pathlib.Path(__file__).resolve().parent.parent
    return sorted(
        p for p in root.rglob("*.py") if "__pycache__" not in p.parts
    )


def analyze_procsafety_sources(
    sources: Iterable[tuple[str, str]],
) -> list[Finding]:
    """Process-safety findings for ``(text, filename)`` modules."""
    analyzer = ProcSafetyAnalyzer()
    for text, filename in sources:
        analyzer.add_module(text, filename)
    return analyzer.run()


def analyze_procsafety_files(
    paths: Iterable[str | pathlib.Path],
) -> list[Finding]:
    """Process-safety findings for a set of module files."""
    analyzer = ProcSafetyAnalyzer()
    for path in paths:
        analyzer.add_file(path)
    return analyzer.run()


__all__ = [
    "ProcSafetyAnalyzer",
    "analyze_procsafety_files",
    "analyze_procsafety_sources",
    "default_procsafety_files",
]
