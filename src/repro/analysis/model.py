"""Static dataflow model of the inversion pipeline.

Section 5's structural claim — "the number of jobs in the pipeline and the
data movement between the jobs can be precisely determined before the start
of the computation" — means the *entire* read/write set of every step is a
pure function of ``(n, config)``.  :func:`build_model` computes it: the same
step sequence the driver executes (master input write, partition job,
in-order LU walk with master-side leaf decompositions, final inversion job,
master output collection), with each MapReduce job split into its map and
reduce phases so that intra-job dataflow (mappers write ``L2``/``U2``,
reducers read them) is modeled too.

Nothing here touches a runtime or a DFS; the model exists so
:mod:`repro.analysis.planlint` can validate the dataflow ahead of execution,
and so tests can corrupt a model (drop a write, break the grid) and assert
the linter catches it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dfs.commit import manifest_path
from ..inversion.config import InversionConfig
from ..inversion.layout import Layout
from ..inversion.plan import InversionPlan, PlanNode


@dataclass
class StepModel:
    """One step of the predefined pipeline with its full DFS read/write set.

    ``kind`` is ``"master"`` for serial master-node phases, ``"map"`` /
    ``"reduce"`` for the two phases of a MapReduce job; ``job`` names the
    job a map/reduce phase belongs to (``None`` for master phases), so the
    model's job count is ``len({s.job for s in steps if s.job})``.
    """

    name: str
    kind: str
    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    job: str | None = None


@dataclass
class PipelineModel:
    """The precomputed pipeline of one inversion, ready for linting.

    Mutable by design: tests (and the ``--self-check`` mode) corrupt a model
    — remove a write, change :attr:`grid` — and assert the linter reports
    the seeded defect.
    """

    config: InversionConfig
    plan: InversionPlan
    layout: Layout
    grid: tuple[int, int]
    steps: list[StepModel]
    #: Commit manifests the driver writes under ``<root>/_commit/`` (one per
    #: job and per master phase) when the two-phase output commit is on.
    #: Kept out of :attr:`steps` — manifests are control metadata written by
    #: the commit protocol, not dataflow any step may read.
    manifest_writes: set[str] = field(default_factory=set)

    @property
    def n(self) -> int:
        return self.plan.n

    @property
    def job_names(self) -> list[str]:
        """Distinct job names in launch order."""
        seen: dict[str, None] = {}
        for step in self.steps:
            if step.job is not None:
                seen.setdefault(step.job, None)
        return list(seen)

    @property
    def job_count(self) -> int:
        return len(self.job_names)

    def all_writes(self) -> set[str]:
        out: set[str] = set(self.manifest_writes)
        for step in self.steps:
            out |= step.writes
        return out

    def find_step(self, name: str) -> StepModel:
        for step in self.steps:
            if step.name == name:
                return step
        raise KeyError(name)

    def block_dag(self):
        """The block-granularity dependency DAG over this pipeline's steps
        (:class:`repro.analysis.dataflow.BlockDAG`) — every DFS block write
        edged to every step that reads it.  This is the public structure a
        dataflow scheduler consumes instead of the barrier schedule."""
        from .dataflow import build_block_dag

        return build_block_dag(self)


def _combined(node: PlanNode, config: InversionConfig) -> bool:
    """True when ``node``'s factors live in single combined files — always
    for leaves (the master writes them), and for internal nodes when the
    Section 6.1 separate-files optimization is off (a combine step merges
    them)."""
    return node.is_leaf or not config.separate_files


def lower_read_paths(layout: Layout, node: PlanNode) -> set[str]:
    """Every path :func:`repro.inversion.factors.read_lower` touches."""
    nl = layout.of(node)
    if _combined(node, layout.config):
        return {nl.l_path}
    assert node.child1 is not None and node.child2 is not None
    assert nl.l2 is not None
    return (
        lower_read_paths(layout, node.child1)
        | set(nl.l2.file_paths())
        | perm_read_paths(layout, node.child2)
        | lower_read_paths(layout, node.child2)
    )


def upper_read_paths(layout: Layout, node: PlanNode) -> set[str]:
    """Every path :func:`repro.inversion.factors.read_upper` touches."""
    nl = layout.of(node)
    if _combined(node, layout.config):
        return {nl.u_path}
    assert node.child1 is not None and node.child2 is not None
    assert nl.u2 is not None
    return (
        upper_read_paths(layout, node.child1)
        | set(nl.u2.file_paths())
        | upper_read_paths(layout, node.child2)
    )


def perm_read_paths(layout: Layout, node: PlanNode) -> set[str]:
    """Every path :func:`repro.inversion.factors.read_perm` touches."""
    nl = layout.of(node)
    if _combined(node, layout.config):
        return {nl.p_path}
    assert node.child1 is not None and node.child2 is not None
    return perm_read_paths(layout, node.child1) | perm_read_paths(
        layout, node.child2
    )


def factor_read_paths(layout: Layout, node: PlanNode) -> set[str]:
    """Union of the L, U, and P read sets of ``node``."""
    return (
        lower_read_paths(layout, node)
        | upper_read_paths(layout, node)
        | perm_read_paths(layout, node)
    )


def _control_paths(layout: Layout) -> set[str]:
    """Section 5.1's ``MapInput/A.<j>`` control files (read by every job)."""
    return {layout.map_input_path(j) for j in range(layout.config.m0)}


def _invert_writes(layout: Layout) -> tuple[set[str], set[str]]:
    """(mapper writes, reducer writes) of the final inversion job."""
    from ..inversion.invert_job import reducer_indices

    cfg = layout.config
    n = layout.plan.tree.n
    map_writes = {layout.inv_l_path(j) for j in range(cfg.mhalf)} | {
        layout.inv_u_path(i) for i in range(cfg.m0 - cfg.mhalf)
    }
    reduce_writes: set[str] = set()
    for p in range(cfg.m0):
        rows, cols = reducer_indices(layout, p, n)
        if rows.size and cols.size:
            reduce_writes.add(layout.final_path(p))
    return map_writes, reduce_writes


def _decompose_steps(
    layout: Layout, node: PlanNode, steps: list[StepModel]
) -> None:
    """Algorithm 2's in-order walk, mirrored as model steps."""
    cfg = layout.config
    nl = layout.of(node)
    if node.is_leaf:
        if node is layout.plan.tree:
            # Single-leaf plan: no partition job ran; the master reads the
            # input file directly.
            reads = {layout.input_path}
        else:
            assert nl.matrix is not None
            reads = set(nl.matrix.file_paths())
        steps.append(
            StepModel(
                name=f"master-lu:{node.dir}",
                kind="master",
                reads=reads,
                writes={nl.l_path, nl.u_path, nl.p_path},
            )
        )
        return

    assert node.child1 is not None and node.child2 is not None
    assert nl.a2 is not None and nl.a3 is not None and nl.a4 is not None
    assert nl.l2 is not None and nl.u2 is not None and nl.out is not None
    _decompose_steps(layout, node.child1, steps)
    job = f"lu:{node.dir}"
    # Map phase (Figure 5): L-side mappers solve L2' U1 = A3 reading U1 and
    # A3; U-side mappers solve L1 U2 = P1 A2 reading L1, P1, and A2.
    steps.append(
        StepModel(
            name=f"{job}[map]",
            kind="map",
            job=job,
            reads=(
                _control_paths(layout)
                | factor_read_paths(layout, node.child1)
                | set(nl.a3.file_paths())
                | set(nl.a2.file_paths())
            ),
            writes=set(nl.l2.file_paths()) | set(nl.u2.file_paths()),
        )
    )
    # Reduce phase: each reducer's block-wrap cell of B = A4 - L2' U2.
    steps.append(
        StepModel(
            name=f"{job}[reduce]",
            kind="reduce",
            job=job,
            reads=(
                set(nl.l2.file_paths())
                | set(nl.u2.file_paths())
                | set(nl.a4.file_paths())
            ),
            writes=set(nl.out.file_paths()),
        )
    )
    _decompose_steps(layout, node.child2, steps)

    if not cfg.separate_files:
        # Section 6.1 ablation: the master serially combines the factors.
        steps.append(
            StepModel(
                name=f"combine:{node.dir}",
                kind="master",
                reads=(
                    factor_read_paths(layout, node.child1)
                    | set(nl.l2.file_paths())
                    | set(nl.u2.file_paths())
                    | factor_read_paths(layout, node.child2)
                ),
                writes={nl.l_path, nl.u_path, nl.p_path},
            )
        )


def build_model(
    n: int, config: InversionConfig | None = None
) -> PipelineModel:
    """Compute the full pipeline model for an order-``n`` inversion.

    Pure precomputation — mirrors :meth:`MatrixInverter.invert` step for
    step but touches no runtime, no DFS, and no matrix data.
    """
    cfg = config or InversionConfig()
    if n < 1 or cfg.nb < 1:
        raise ValueError("n and nb must be >= 1")
    plan = InversionPlan(n=n, nb=cfg.nb, m0=cfg.m0, root=cfg.root)
    layout = Layout(plan, cfg, n)
    tree = plan.tree
    steps: list[StepModel] = []

    # Step 1 (Section 5.1): the master writes the input and control files.
    steps.append(
        StepModel(
            name="write-input",
            kind="master",
            writes={layout.input_path} | _control_paths(layout),
        )
    )

    # Step 2 (Algorithm 3): the map-only partition job.
    if not tree.is_leaf:
        partition_writes: set[str] = set()
        for node in tree.input_nodes():
            nl = layout.of(node)
            if node.is_leaf:
                assert nl.matrix is not None
                partition_writes |= set(nl.matrix.file_paths())
            else:
                assert nl.a2 is not None and nl.a3 is not None
                assert nl.a4 is not None
                partition_writes |= set(nl.a2.file_paths())
                partition_writes |= set(nl.a3.file_paths())
                partition_writes |= set(nl.a4.file_paths())
        steps.append(
            StepModel(
                name="partition[map]",
                kind="map",
                job="partition",
                reads={layout.input_path} | _control_paths(layout),
                writes=partition_writes,
            )
        )

    # Step 3 (Algorithm 2): the LU recursion.
    _decompose_steps(layout, tree, steps)

    # Step 4 (Section 5.4): the final inversion job.
    map_writes, reduce_writes = _invert_writes(layout)
    steps.append(
        StepModel(
            name="invert-final[map]",
            kind="map",
            job="invert-final",
            reads=(
                _control_paths(layout)
                | lower_read_paths(layout, tree)
                | upper_read_paths(layout, tree)
            ),
            writes=map_writes,
        )
    )
    steps.append(
        StepModel(
            name="invert-final[reduce]",
            kind="reduce",
            job="invert-final",
            reads=set(map_writes),
            writes=reduce_writes,
        )
    )

    # Step 5: the master assembles A^-1 (pivot permutation applied).
    steps.append(
        StepModel(
            name="collect-output",
            kind="master",
            reads=set(reduce_writes) | perm_read_paths(layout, tree),
        )
    )

    # Commit manifests: one per master phase and one per job, written by
    # the commit protocol when the two-phase output commit is on.  The
    # phase names in ``steps`` mirror the driver's ``master_phase`` calls
    # exactly, so deriving manifests from the steps keeps the two in sync.
    manifest_writes: set[str] = set()
    if cfg.output_commit:
        manifest_steps = [
            f"phase:{s.name}" for s in steps if s.kind == "master"
        ] + [f"job:{name}" for name in plan.job_schedule()]
        manifest_writes = {
            manifest_path(cfg.root, step) for step in manifest_steps
        }

    return PipelineModel(
        config=cfg,
        plan=plan,
        layout=layout,
        grid=cfg.grid,
        steps=steps,
        manifest_writes=manifest_writes,
    )
