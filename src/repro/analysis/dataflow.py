"""Block-granularity dataflow DAG and the ``DF0xx`` rule family.

The pipeline model (:mod:`repro.analysis.model`) knows every DFS path each
step reads and writes.  This module turns those sets into the structure the
ROADMAP's "kill the inter-job barrier" item needs: a producer→consumer DAG
over *blocks* — every DFS file write, edged to every step that reads it —
so barrier removal becomes a checked property instead of a leap of faith.

What the DAG proves about the paper's schedule (Section 5 runs the
``2^d + 1`` jobs as a barrier-synchronized sequence):

* **The recursion is a dependency chain.**  The in-order job walk of
  Algorithm 2 is exactly the data-dependency order: every stage consumes
  the immediately preceding stage's output (child1 factors feed the node's
  job, the node's Schur complement feeds child2), so the static critical
  path threads through *all* stages.  No reordering of stages can shorten
  the pipeline — the slack is elsewhere:
* **Every global barrier is replaceable by its block edges.**  A barrier
  makes stage ``k`` wait for *everything* before it; the DAG shows each
  stage needs only its direct producers' blocks.  The critical path costs
  ``stages - 1`` point-to-point edges, strictly shorter than the barrier
  schedule's ``stages + (stages - 1)`` global synchronization points — a
  DAG scheduler keeps the stages and deletes every barrier.
* **Sibling LU subtrees exchange no blocks.**  For every internal tree
  node, the two child subtrees have zero direct edges between their step
  groups — all coupling flows through the parent's LU job — so the
  schedule-order barrier between the sibling groups carries no dataflow of
  its own (rule ``DF001`` reports each such pair).

Rules (catalog in :mod:`repro.analysis.findings`):

========  ========================================================
``DF001``  false barrier between sibling LU subtrees (info)
``DF002``  cross-stage write-before-read hazard (error)
``DF003``  dead block: written, never read, never published (warning)
``DF004``  redundant same-stage read of an own write (warning)
``DF005``  critical-path / barrier-slack summary (info)
``DF006``  cycle in the block dependency DAG (error)
``DF007``  generation-order violation inside one job (error)
``DF008``  observed read edge missing from the static DAG (error)
========  ========================================================

``DF008`` is the static-vs-dynamic cross-check: :func:`replay_spans`
replays a telemetry span export (``repro trace --jsonl``) against the DAG
and flags any DFS read the model did not predict — the gate that makes the
model trustworthy enough to drive a scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from ..dfs.commit import COMMIT_DIR, STAGING_ROOT
from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..inversion.plan import PlanNode
    from ..telemetry.spans import Span
    from .model import PipelineModel

#: Cap on the paths quoted per aggregated finding — keeps a corrupt model
#: from flooding the report while still naming concrete evidence.
_MAX_PATHS_QUOTED = 3


def _quote_paths(paths: Iterable[str]) -> str:
    ordered = sorted(paths)
    shown = ", ".join(ordered[:_MAX_PATHS_QUOTED])
    extra = len(ordered) - _MAX_PATHS_QUOTED
    return shown if extra <= 0 else f"{shown} (+{extra} more)"


@dataclass(frozen=True)
class BlockEdge:
    """All blocks flowing from one producing step to one consuming step."""

    src: str
    dst: str
    paths: tuple[str, ...]


@dataclass
class BlockDAG:
    """The block-granularity dependency DAG of one pipeline.

    Nodes are the model's steps (one per barrier stage, in schedule order);
    an edge ``src → dst`` exists for every DFS path ``src`` writes and
    ``dst`` reads.  Exposed as :meth:`PipelineModel.block_dag` — the public
    API a dataflow scheduler consumes instead of the barrier schedule.
    """

    #: Step names in barrier-schedule order (one stage per step).
    stages: list[str]
    #: path -> name of the earliest step that writes it.
    producers: dict[str, str]
    #: path -> names of the steps that read it, in stage order.
    consumers: dict[str, list[str]]
    #: step -> names of the steps producing its reads (direct dependencies).
    deps: dict[str, set[str]]
    #: Paths read by some step but written by none (external inputs; empty
    #: for a well-formed pipeline — the master writes the input file too).
    external_reads: set[str]
    #: step -> parallel task slots inside the stage (m0 for job phases,
    #: 1 for master phases).
    task_counts: dict[str, int]
    _stage_index: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._stage_index:
            self._stage_index = {name: i for i, name in enumerate(self.stages)}

    # -- structure queries -------------------------------------------------------

    def stage_of(self, step: str) -> int:
        return self._stage_index[step]

    def edges(self) -> list[BlockEdge]:
        """Aggregated producer→consumer edges in stage order."""
        grouped: dict[tuple[str, str], set[str]] = {}
        for path, src in self.producers.items():
            for dst in self.consumers.get(path, []):
                if dst != src:
                    grouped.setdefault((src, dst), set()).add(path)
        return [
            BlockEdge(src=src, dst=dst, paths=tuple(sorted(paths)))
            for (src, dst), paths in sorted(
                grouped.items(),
                key=lambda kv: (
                    self._stage_index.get(kv[0][0], -1),
                    self._stage_index.get(kv[0][1], -1),
                ),
            )
        ]

    def edge_paths(self, src: str, dst: str) -> set[str]:
        """Blocks flowing from ``src`` to ``dst`` (empty set if no edge)."""
        return {
            path
            for path, producer in self.producers.items()
            if producer == src and dst in self.consumers.get(path, [])
        }

    def forward_deps(self, step: str) -> set[str]:
        """Direct producers of ``step`` that run at an earlier stage — the
        schedule-consistent subgraph ASAP/critical-path analysis uses (a
        corrupted model's backward edges are DF002's business, not ours)."""
        mine = self._stage_index[step]
        return {
            d
            for d in self.deps.get(step, set())
            if self._stage_index.get(d, mine) < mine
        }

    # -- schedule analysis -------------------------------------------------------

    def asap(self) -> dict[str, int]:
        """Earliest stage each step could run at with barriers replaced by
        block edges: ``asap(s) = 1 + max(asap of producers)``."""
        levels: dict[str, int] = {}
        for name in self.stages:  # stage order topologically sorts fwd edges
            producer_levels = [levels[d] for d in self.forward_deps(name)]
            levels[name] = 1 + max(producer_levels, default=-1)
        return levels

    def critical_path(self) -> list[str]:
        """One longest dependency chain, as step names in stage order."""
        levels = self.asap()
        best: str | None = None
        for name in self.stages:
            if best is None or levels[name] > levels[best]:
                best = name
        if best is None:
            return []
        chain = [best]
        while True:
            prevs = self.forward_deps(chain[-1])
            if not prevs:
                break
            chain.append(max(prevs, key=lambda d: (levels[d], -self._stage_index[d])))
        return list(reversed(chain))

    def max_width(self) -> int:
        """Most task slots runnable concurrently under the ASAP leveling."""
        levels = self.asap()
        width: dict[int, int] = {}
        for name, level in levels.items():
            width[level] = width.get(level, 0) + self.task_counts.get(name, 1)
        return max(width.values(), default=0)

    def find_cycle(self) -> list[str] | None:
        """One dependency cycle as ``[a, b, ..., a]``, or ``None``."""
        WHITE, GREY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self.stages}
        parent: dict[str, str] = {}

        def dfs(node: str) -> list[str] | None:
            color[node] = GREY
            for succ in sorted(self._successors().get(node, set())):
                if color.get(succ, WHITE) == GREY:
                    cycle = [succ, node]
                    cur = node
                    while cur != succ:
                        cur = parent[cur]
                        cycle.append(cur)
                    return list(reversed(cycle))
                if color.get(succ, WHITE) == WHITE:
                    parent[succ] = node
                    found = dfs(succ)
                    if found:
                        return found
            color[node] = BLACK
            return None

        for name in self.stages:
            if color[name] == WHITE:
                found = dfs(name)
                if found:
                    return found
        return None

    def _successors(self) -> dict[str, set[str]]:
        succ: dict[str, set[str]] = {}
        for step, producers in self.deps.items():
            for p in producers:
                succ.setdefault(p, set()).add(step)
        return succ


def build_block_dag(model: "PipelineModel") -> BlockDAG:
    """Derive the block DAG from a pipeline model's read/write sets."""
    stages = [step.name for step in model.steps]
    producers: dict[str, str] = {}
    consumers: dict[str, list[str]] = {}
    task_counts: dict[str, int] = {}
    m0 = model.config.m0
    for step in model.steps:
        task_counts[step.name] = 1 if step.kind == "master" else m0
        for path in step.writes:
            producers.setdefault(path, step.name)
    external_reads: set[str] = set()
    deps: dict[str, set[str]] = {name: set() for name in stages}
    for step in model.steps:
        for path in sorted(step.reads):
            producer = producers.get(path)
            if producer is None:
                external_reads.add(path)
                continue
            consumers.setdefault(path, []).append(step.name)
            if producer != step.name:
                deps[step.name].add(producer)
    return BlockDAG(
        stages=stages,
        producers=producers,
        consumers=consumers,
        deps=deps,
        external_reads=external_reads,
        task_counts=task_counts,
    )


# -- sibling-subtree independence (DF001) ------------------------------------------


@dataclass(frozen=True)
class SiblingReport:
    """Block coupling between the two child subtrees of one internal node."""

    #: Directory of the internal node whose children are compared.
    parent_dir: str
    #: The LU job mediating all coupling between the subtrees.
    parent_job: str
    #: Tree depth of the sibling subtree roots (root children are depth 1).
    depth: int
    child1_dir: str
    child2_dir: str
    #: Steps of each subtree group, in stage order.
    child1_steps: tuple[str, ...]
    child2_steps: tuple[str, ...]
    #: Direct block edges crossing between the groups (either direction).
    cross_edges: tuple[BlockEdge, ...]

    @property
    def independent(self) -> bool:
        return not self.cross_edges


def _step_dir(name: str) -> str | None:
    """The tree directory a step name refers to, if any."""
    for prefix in ("master-lu:", "combine:"):
        if name.startswith(prefix):
            return name[len(prefix):]
    if name.startswith("lu:"):
        return name[len("lu:"):].split("[", 1)[0]
    return None


def _subtree_steps(dag: BlockDAG, root_dir: str) -> tuple[str, ...]:
    out = []
    for name in dag.stages:
        d = _step_dir(name)
        if d is not None and (d == root_dir or d.startswith(root_dir + "/")):
            out.append(name)
    return tuple(out)


def sibling_reports(model: "PipelineModel", dag: BlockDAG | None = None) -> list[SiblingReport]:
    """One report per internal tree node: do its child subtrees exchange
    blocks directly, or only through the node's own LU job?"""
    dag = dag or build_block_dag(model)
    reports: list[SiblingReport] = []

    def visit(node: "PlanNode", depth: int) -> None:
        if node.is_leaf:
            return
        assert node.child1 is not None and node.child2 is not None
        group1 = _subtree_steps(dag, node.child1.dir)
        group2 = _subtree_steps(dag, node.child2.dir)
        in1, in2 = set(group1), set(group2)
        cross = tuple(
            edge
            for edge in dag.edges()
            if (edge.src in in1 and edge.dst in in2)
            or (edge.src in in2 and edge.dst in in1)
        )
        reports.append(
            SiblingReport(
                parent_dir=node.dir,
                parent_job=f"lu:{node.dir}",
                depth=depth + 1,
                child1_dir=node.child1.dir,
                child2_dir=node.child2.dir,
                child1_steps=group1,
                child2_steps=group2,
                cross_edges=cross,
            )
        )
        visit(node.child1, depth + 1)
        visit(node.child2, depth + 1)

    visit(model.plan.tree, 0)
    return reports


# -- the DF rule checks ------------------------------------------------------------


def _check_write_before_read(model: "PipelineModel", dag: BlockDAG) -> list[Finding]:
    """DF002: a stage reads a block first written at the same or a later
    stage — the barrier schedule would execute the read against nothing."""
    findings: list[Finding] = []
    for step in model.steps:
        late: dict[str, set[str]] = {}
        for path in step.reads:
            producer = dag.producers.get(path)
            if producer is None or producer == step.name:
                continue
            if dag.stage_of(producer) >= dag.stage_of(step.name):
                late.setdefault(producer, set()).add(path)
        for producer, paths in sorted(late.items()):
            findings.append(
                Finding.of(
                    "DF002",
                    f"{step.name} (stage {dag.stage_of(step.name)}) reads "
                    f"{_quote_paths(paths)} first written by {producer} "
                    f"(stage {dag.stage_of(producer)})",
                    location=step.name,
                    hint="a consumer must run at a strictly later stage than "
                    "its producer under the barrier schedule",
                )
            )
    return findings


def _check_dead_blocks(model: "PipelineModel", dag: BlockDAG) -> list[Finding]:
    """DF003: blocks written but never read and never published (a commit
    manifest is the only legitimate write-only path)."""
    findings: list[Finding] = []
    for step in model.steps:
        dead = {
            path
            for path in step.writes
            if not dag.consumers.get(path)
            and path not in model.manifest_writes
        }
        if dead:
            findings.append(
                Finding.of(
                    "DF003",
                    f"{step.name} writes {len(dead)} dead block(s) no step "
                    f"reads: {_quote_paths(dead)}",
                    location=step.name,
                    hint="drop the write or add the consumer the block was "
                    "meant for",
                )
            )
    return findings


def _check_redundant_reads(model: "PipelineModel", dag: BlockDAG) -> list[Finding]:
    """DF004: a stage reads a block it writes itself — either a dependency
    that belongs in an earlier stage or a redundant DFS round-trip of data
    the stage already holds in memory."""
    findings: list[Finding] = []
    for step in model.steps:
        own = step.reads & step.writes
        if own:
            findings.append(
                Finding.of(
                    "DF004",
                    f"{step.name} reads its own same-stage write(s): "
                    f"{_quote_paths(own)}",
                    location=step.name,
                    hint="split the producer into an earlier stage or keep "
                    "the data in memory instead of round-tripping the DFS",
                )
            )
    return findings


def _check_acyclic(dag: BlockDAG) -> list[Finding]:
    """DF006: the block DAG must be acyclic regardless of stage order."""
    cycle = dag.find_cycle()
    if cycle is None:
        return []
    return [
        Finding.of(
            "DF006",
            "block dependency cycle: " + " -> ".join(cycle),
            location=cycle[0],
            hint="no schedule (barrier or dataflow) can satisfy a cyclic "
            "read/write set; the model or the pipeline is corrupt",
        )
    ]


def _check_generation_order(model: "PipelineModel", dag: BlockDAG) -> list[Finding]:
    """DF007: inside one job, generations go map → reduce; a map phase
    reading its own job's reduce output inverts the shuffle."""
    findings: list[Finding] = []
    by_name = {step.name: step for step in model.steps}
    for edge in dag.edges():
        src, dst = by_name.get(edge.src), by_name.get(edge.dst)
        if src is None or dst is None or src.job is None:
            continue
        if src.job == dst.job and src.kind == "reduce" and dst.kind == "map":
            findings.append(
                Finding.of(
                    "DF007",
                    f"map phase of {dst.job} reads its own reduce phase's "
                    f"output: {_quote_paths(edge.paths)}",
                    location=dst.name,
                    hint="a job's generations are map -> shuffle -> reduce; "
                    "data flowing backwards needs a separate job",
                )
            )
    return findings


def _structural_findings(model: "PipelineModel", dag: BlockDAG) -> list[Finding]:
    """DF001 and DF005: the positive structure the barrier-removal refactor
    rides on, reported at info severity."""
    findings: list[Finding] = []
    for report in sibling_reports(model, dag):
        if report.independent and report.child1_steps and report.child2_steps:
            findings.append(
                Finding.of(
                    "DF001",
                    f"false barrier: depth-{report.depth} sibling subtrees "
                    f"{report.child1_dir} and {report.child2_dir} exchange "
                    "no direct block edges (all coupling flows through "
                    f"{report.parent_job}); the schedule-order barrier "
                    "between them carries no dataflow",
                    location=report.parent_dir,
                    hint="a DAG scheduler needs only the block edges through "
                    f"{report.parent_job}, not a global barrier",
                )
            )
    stages = len(dag.stages)
    cp_edges = max(len(dag.critical_path()) - 1, 0)
    barriers = max(stages - 1, 0)
    findings.append(
        Finding.of(
            "DF005",
            f"critical path {cp_edges} point-to-point edges vs barrier "
            f"schedule {stages} stages + {barriers} global barriers "
            f"({stages + barriers} sync points); max width "
            f"{dag.max_width()} tasks",
            location="schedule",
            hint="replacing each barrier with its block edges keeps every "
            "stage and deletes every global synchronization point",
        )
    )
    return findings


def lint_dataflow(
    model: "PipelineModel",
    dag: BlockDAG | None = None,
    *,
    structural: bool = False,
) -> list[Finding]:
    """All static DF checks over one model.

    ``structural=True`` additionally emits the info-severity structure
    reports (``DF001`` sibling independence, ``DF005`` barrier slack) that
    ``--dataflow`` mode prints; the defect rules alone run in the driver
    pre-flight, where a clean pipeline must stay silent.
    """
    dag = dag or build_block_dag(model)
    findings = _check_write_before_read(model, dag)
    findings += _check_dead_blocks(model, dag)
    findings += _check_redundant_reads(model, dag)
    findings += _check_acyclic(dag)
    findings += _check_generation_order(model, dag)
    if structural:
        findings += _structural_findings(model, dag)
    return findings


# -- static-vs-dynamic replay (DF008) ----------------------------------------------


@dataclass
class ReplayStats:
    """What a span-export replay saw and how it mapped onto the model."""

    total_read_spans: int = 0
    attributed: int = 0
    matched: int = 0
    commit_internal: int = 0
    unattributed: int = 0
    observed_edges: set[tuple[str, str]] = field(default_factory=set)

    def summary(self) -> str:
        return (
            f"{self.total_read_spans} dfs.read span(s): "
            f"{self.attributed} attributed to pipeline steps, "
            f"{self.matched} matched the static DAG, "
            f"{len(self.observed_edges)} distinct observed edge(s), "
            f"{self.commit_internal} commit-internal, "
            f"{self.unattributed} outside the pipeline"
        )


def _owning_step(span: "Span", by_id: dict[str, "Span"]) -> str | None:
    """The model step name a DFS span executed under, resolved by walking
    the span's ancestor chain (task → job, or master phase)."""
    from ..telemetry.spans import SpanKind

    phase: str | None = None
    cur = span
    while cur.parent_id is not None:
        cur = by_id.get(cur.parent_id)  # type: ignore[assignment]
        if cur is None:
            return None
        if cur.kind is SpanKind.TASK:
            phase = str(cur.attrs.get("phase", "")) or phase
        elif cur.kind is SpanKind.JOB:
            return f"{cur.name}[{phase}]" if phase else cur.name
        elif cur.kind is SpanKind.MASTER_PHASE:
            return cur.name
        elif cur.kind is SpanKind.COMMIT or cur.kind is SpanKind.DFS_REPAIR:
            return None
    return None


def replay_spans(
    model: "PipelineModel", spans: Sequence["Span"]
) -> tuple[list[Finding], ReplayStats]:
    """DF008: replay a recorded span export against the static DAG.

    Every observed DFS read is attributed to its pipeline step via the span
    hierarchy (task → job, or enclosing master phase) and checked against
    that step's modeled read set.  An observed edge the model missed means
    the model under-approximates the real dataflow — exactly the failure a
    DAG scheduler must never inherit — and is an error.  Model reads never
    observed are fine: the model is a deliberate over-approximation (it
    unions all tasks of a step).
    """
    from ..telemetry.spans import SpanKind

    by_id = {span.span_id: span for span in spans}
    step_names = {step.name for step in model.steps}
    reads_of = {step.name: step.reads for step in model.steps}
    commit_prefix = f"{model.config.root}/{COMMIT_DIR}/"

    stats = ReplayStats()
    missing: dict[tuple[str, str], int] = {}
    unmodeled: dict[str, int] = {}
    for span in spans:
        if span.kind is not SpanKind.DFS_READ:
            continue
        stats.total_read_spans += 1
        path = span.name
        if path.startswith(STAGING_ROOT + "/") or path.startswith(commit_prefix):
            stats.commit_internal += 1
            continue
        step = _owning_step(span, by_id)
        if step is None:
            stats.unattributed += 1
            continue
        stats.attributed += 1
        if step not in step_names:
            unmodeled[step] = unmodeled.get(step, 0) + 1
            continue
        stats.observed_edges.add((step, path))
        if path in reads_of[step]:
            stats.matched += 1
        else:
            missing[(step, path)] = missing.get((step, path), 0) + 1

    findings: list[Finding] = []
    for step, count in sorted(unmodeled.items()):
        findings.append(
            Finding.of(
                "DF008",
                f"observed {count} read(s) under step {step!r}, which the "
                "static model has no stage for",
                location=step,
                hint="the model's step list has drifted from the driver; "
                "rebuild it from the same (n, config)",
            )
        )
    for (step, path), count in sorted(missing.items()):
        findings.append(
            Finding.of(
                "DF008",
                f"observed read edge missing from the static DAG: {step} "
                f"read {path} ({count} time(s))",
                location=step,
                hint="the model under-approximates the pipeline's dataflow; "
                "a scheduler driven by it would start this stage too early",
            )
        )
    return findings, stats


# -- the barrier-slack report ------------------------------------------------------


def barrier_slack_data(
    model: "PipelineModel", dag: BlockDAG | None = None
) -> dict:
    """The barrier-slack report as plain data (``--report --json``).

    Same numbers :func:`render_barrier_slack` prints, keyed for machines:
    the scheduler benchmark and tests consume ``sync_points`` and
    ``critical_path`` rather than re-deriving them.
    """
    dag = dag or build_block_dag(model)
    stages = len(dag.stages)
    barriers = max(stages - 1, 0)
    chain = dag.critical_path()
    cfg = model.config
    return {
        "n": model.n,
        "nb": cfg.nb,
        "m0": cfg.m0,
        "depth": model.plan.depth,
        "jobs": model.job_count,
        "stages": stages,
        "barriers": barriers,
        "sync_points": {
            # Barrier mode synchronizes at every stage boundary *and* start:
            # each of the `stages` steps plus the global barrier after each
            # non-final step.  Dataflow keeps only the per-stage completions.
            "barrier": stages + barriers,
            "dataflow": stages,
        },
        "critical_path": list(chain),
        "critical_path_edges": max(len(chain) - 1, 0),
        "max_width": dag.max_width(),
        "blocks": len(dag.producers),
        "block_edges": len(dag.edges()),
        "implied_orderings": stages * (stages - 1) // 2,
        "sibling_barriers": [
            {
                "depth": r.depth,
                "parent_dir": r.parent_dir,
                "parent_job": r.parent_job,
                "child1": r.child1_dir,
                "child2": r.child2_dir,
                "cross_block_edges": sum(len(e.paths) for e in r.cross_edges),
                "removable": r.independent,
            }
            for r in sorted(
                (
                    r
                    for r in sibling_reports(model, dag)
                    if r.child1_steps and r.child2_steps
                ),
                key=lambda r: (r.depth, r.parent_dir),
            )
        ],
    }


def render_barrier_slack(model: "PipelineModel", dag: BlockDAG | None = None) -> str:
    """Human-readable barrier-slack table for ``--dataflow --report``."""
    dag = dag or build_block_dag(model)
    stages = len(dag.stages)
    barriers = max(stages - 1, 0)
    chain = dag.critical_path()
    cp_edges = max(len(chain) - 1, 0)
    edges = dag.edges()
    n_edge_pairs = len(edges)
    n_blocks = len(dag.producers)
    implied = stages * (stages - 1) // 2
    d = model.plan.depth
    cfg = model.config

    lines = [
        (
            f"barrier-slack report (n={model.n} nb={cfg.nb} m0={cfg.m0} "
            f"d={d}, {model.job_count} jobs = 2^d + 1)"
        ),
        (
            f"  barrier schedule : {stages} stages + {barriers} global "
            f"barriers = {stages + barriers} sync points"
        ),
        (
            f"  critical path    : {cp_edges} point-to-point edges "
            f"(spans {len(chain)} stages) -- strictly shorter than the "
            "barrier schedule: every global barrier is replaced by block "
            "edges, none by a new stage"
        ),
        f"  max width        : {dag.max_width()} tasks (m0 = {cfg.m0})",
        (
            f"  block coupling   : {n_blocks} blocks flow over "
            f"{n_edge_pairs} step-pair edges; of the {implied} pairwise "
            f"orderings the barriers impose, only {n_edge_pairs} carry "
            "blocks directly"
        ),
    ]

    reports = [
        r
        for r in sibling_reports(model, dag)
        if r.child1_steps and r.child2_steps
    ]
    if reports:
        lines.append("  removable sibling barriers (per depth):")
        for r in sorted(reports, key=lambda r: (r.depth, r.parent_dir)):
            if r.independent:
                verdict = f"0 direct edges, coupled only via {r.parent_job} -> removable"
            else:
                crossing = sum(len(e.paths) for e in r.cross_edges)
                verdict = f"{crossing} direct block edge(s) cross -> NOT removable"
            lines.append(
                f"    depth {r.depth}: {r.child1_dir} <-> {r.child2_dir}: "
                f"{verdict}"
            )
    lines.append("  critical path chain:")
    lines.append("    " + " -> ".join(chain))
    return "\n".join(lines)


__all__ = [
    "BlockDAG",
    "BlockEdge",
    "ReplayStats",
    "SiblingReport",
    "barrier_slack_data",
    "build_block_dag",
    "lint_dataflow",
    "render_barrier_slack",
    "replay_spans",
    "sibling_reports",
]
