"""Static analysis of the predefined MapReduce pipeline.

Because the paper's workflow is fully precomputable (Section 5: depth, job
count ``2^d + 1``, and every intermediate DFS file are functions of
``(n, nb, m0)`` alone), the entire dataflow can be validated *before* any
task executes.  This package does exactly that:

* :mod:`~repro.analysis.model` — the static dataflow model: every pipeline
  step with its full DFS read/write set, computed without a runtime;
* :mod:`~repro.analysis.planlint` — plan rules (``PL0xx``): job counts,
  shape conformability, read-before-write, single-writer files, orphaned
  intermediates, Section 6 optimization-flag consistency;
* :mod:`~repro.analysis.dataflow` — the block-granularity dependency DAG
  (every DFS block write edged to every reader) and the ``DF0xx`` rules:
  false barriers between sibling LU subtrees, write-before-read hazards,
  dead blocks, redundant reads, critical path vs the barrier schedule,
  acyclicity/generation order, and the telemetry-replay cross-check that
  proves the static DAG covers the observed dataflow;
* :mod:`~repro.analysis.purity` — mapper/reducer purity rules (``PU0xx``):
  closure/global mutation, input mutation, nondeterministic APIs — the
  hazard classes that break task retries and speculative execution;
* :mod:`~repro.analysis.concurrency` — lock-discipline rules (``CN0xx``):
  ``# guarded-by:`` lockset checking, lock-order deadlock cycles, locks
  held across blocking calls — proved over the threaded engine itself;
* :mod:`~repro.analysis.procsafety` — process-safety/ownership rules
  (``PS0xx``): closure-capture, escape, and borrowed-view mutation analysis
  over task-boundary code — the static gate for the planned
  ``ProcessPoolBackend``;
* :mod:`~repro.analysis.cli` — ``python -m repro lint``.

The driver runs :func:`preflight_check` before each pipeline (opt out with
``InversionConfig(preflight=False)``).
"""

from .cli import lint_pipeline, lint_source_file
from .concurrency import (
    THREADED_MODULES,
    ConcurrencyAnalyzer,
    analyze_concurrency_files,
    analyze_concurrency_sources,
    default_threaded_files,
    missing_threaded_modules,
)
from .dataflow import (
    BlockDAG,
    BlockEdge,
    ReplayStats,
    SiblingReport,
    build_block_dag,
    lint_dataflow,
    barrier_slack_data,
    render_barrier_slack,
    replay_spans,
    sibling_reports,
)
from .findings import (
    RULES,
    Finding,
    PreflightError,
    RuleSpec,
    Severity,
    filter_ignored,
    has_errors,
    max_severity,
    render_json,
    render_text,
)
from .model import PipelineModel, StepModel, build_model
from .planlint import lint_model, lint_plan
from .procsafety import (
    ProcSafetyAnalyzer,
    analyze_procsafety_files,
    analyze_procsafety_sources,
    default_procsafety_files,
)
from .purity import analyze_callable, analyze_job, analyze_source

__all__ = [
    "BlockDAG",
    "BlockEdge",
    "ConcurrencyAnalyzer",
    "Finding",
    "PipelineModel",
    "PreflightError",
    "ProcSafetyAnalyzer",
    "RULES",
    "ReplayStats",
    "RuleSpec",
    "Severity",
    "SiblingReport",
    "StepModel",
    "THREADED_MODULES",
    "analyze_callable",
    "analyze_concurrency_files",
    "analyze_concurrency_sources",
    "analyze_job",
    "analyze_procsafety_files",
    "analyze_procsafety_sources",
    "analyze_source",
    "build_block_dag",
    "build_model",
    "default_procsafety_files",
    "default_threaded_files",
    "filter_ignored",
    "has_errors",
    "lint_dataflow",
    "lint_model",
    "lint_pipeline",
    "lint_plan",
    "lint_source_file",
    "max_severity",
    "missing_threaded_modules",
    "preflight_check",
    "barrier_slack_data",
    "render_barrier_slack",
    "render_json",
    "render_text",
    "replay_spans",
    "sibling_reports",
]


def preflight_check(n: int, config=None) -> "PipelineModel":
    """Validate a pipeline before running it; raise on error findings.

    Runs the pipeline analyzers (plan rules, block-dataflow defect rules
    over the :meth:`PipelineModel.block_dag`, task purity) for an
    order-``n`` inversion under ``config`` and raises
    :class:`PreflightError` if any error-severity finding is produced.
    Returns the validated model so the caller can reuse the precomputation.
    """
    findings, model = lint_pipeline(n, config)
    if has_errors(findings):
        raise PreflightError(findings)
    return model
