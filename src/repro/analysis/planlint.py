"""Plan/dataflow linter: validate a pipeline before any task runs.

The paper's pipeline is predefined (Section 5): job count, every
intermediate DFS file, and every read/write edge are pure functions of
``(n, config)``.  This module checks that precomputed structure for internal
consistency — the class of defect that otherwise only surfaces as a deep
runtime failure (a job reading a path nothing wrote) or a silently wrong
inverse (non-conformable block shapes):

``PL001``  job count disagrees with the closed form ``2^d + 1`` (Table 3);
``PL002``  block shapes not conformable across a job boundary;
``PL003``  a step reads a DFS path no earlier step writes;
``PL004``  a DFS path is written by more than one step (Section 5.2's
           single-writer-per-file invariant);
``PL005``  an intermediate is written but never read (orphan);
``PL006``  U-transposed storage inconsistent with the Section 6.3 flag;
``PL007``  block-wrap grid does not factor ``m0`` (``f1 * f2 != m0``);
``PL008``  separate-factor-file count disagrees with Section 6.1's
           ``N(d) = 2^d + (m0/2)(2^d - 1)``;
``PL009``  a step reads or writes the ``/_tmp`` staging namespace or the
           ``_commit`` manifest directory — both are private to the
           two-phase output commit; steps exchange data only through
           published final paths.
"""

from __future__ import annotations

from ..dfs.commit import COMMIT_DIR, STAGING_ROOT
from ..inversion.config import InversionConfig
from ..inversion.plan import (
    PlanNode,
    intermediate_file_count,
    is_full_tree,
    total_job_count,
)
from ..inversion.regions import Region
from .findings import Finding
from .model import PipelineModel, build_model


def _check_job_count(model: PipelineModel) -> list[Finding]:
    """PL001: the model's launch sequence must match the plan's predefined
    schedule, and — for full recursion trees — the closed form."""
    findings: list[Finding] = []
    schedule = model.plan.job_schedule()
    if model.job_names != schedule:
        findings.append(
            Finding.of(
                "PL001",
                f"pipeline launches {model.job_count} job(s) "
                f"{model.job_names}, plan schedule is {len(schedule)} "
                f"job(s) {schedule}",
                location=f"n={model.n}, nb={model.config.nb}",
                hint="the model was corrupted or the driver walk and the "
                "plan tree disagree",
            )
        )
    if is_full_tree(model.n, model.config.nb):
        expected = total_job_count(model.n, model.config.nb)
        if model.job_count != expected:
            findings.append(
                Finding.of(
                    "PL001",
                    f"{model.job_count} jobs, closed form 2^d + 1 gives "
                    f"{expected} (d={model.plan.depth})",
                    location=f"n={model.n}, nb={model.config.nb}",
                )
            )
    return findings


def _region_shape_findings(
    name: str, region: Region | None, rows: int, cols: int, where: str
) -> list[Finding]:
    """Shape + tiling check of one layout region."""
    findings: list[Finding] = []
    if region is None:
        findings.append(
            Finding.of("PL002", f"{name} region missing", location=where)
        )
        return findings
    if (region.rows, region.cols) != (rows, cols):
        findings.append(
            Finding.of(
                "PL002",
                f"{name} region is {region.rows}x{region.cols}, "
                f"expected {rows}x{cols}",
                location=where,
            )
        )
    if not region.covered():
        findings.append(
            Finding.of(
                "PL002",
                f"{name} region {region.rows}x{region.cols} is not exactly "
                "tiled by its block files (gap or overlap)",
                location=where,
            )
        )
    for ref in region.blocks:
        if ref.file_rows <= 0 or ref.file_cols <= 0:
            continue
        # file_rows/file_cols are the file content's *logical* dims: when
        # ``transposed`` the disk layout is flipped, the coordinates not.
        if (
            ref.fr1 + ref.rows > ref.file_rows
            or ref.fc1 + ref.cols > ref.file_cols
        ):
            findings.append(
                Finding.of(
                    "PL002",
                    f"{name} block {ref.path} reads rows "
                    f"[{ref.fr1}, {ref.fr1 + ref.rows}) x cols "
                    f"[{ref.fc1}, {ref.fc1 + ref.cols}) of a "
                    f"{frows}x{fcols} file",
                    location=where,
                )
            )
    return findings


def _check_shapes(model: PipelineModel) -> list[Finding]:
    """PL002: conformability of every job boundary in the recursion tree."""
    findings: list[Finding] = []
    layout = model.layout

    def walk(node: PlanNode) -> None:
        nl = layout.of(node)
        where = node.dir
        if node.is_leaf:
            if node.kind == "input" or nl.matrix is not None:
                findings.extend(
                    _region_shape_findings(
                        "matrix", nl.matrix, node.n, node.n, where
                    )
                )
            return
        assert node.child1 is not None and node.child2 is not None
        n1, n2 = node.n1, node.n2
        if n1 + n2 != node.n or node.child1.n != n1 or node.child2.n != n2:
            findings.append(
                Finding.of(
                    "PL002",
                    f"split {node.n} -> ({n1}, {n2}) disagrees with children "
                    f"({node.child1.n}, {node.child2.n})",
                    location=where,
                )
            )
        # Inputs of this node's job: L2' U1 = A3 needs A3 with n1 columns;
        # L1 U2 = P1 A2 needs A2 with n1 rows; B = A4 - L2' U2 needs
        # conformable (n2 x n1) @ (n1 x n2) against an n2 x n2 A4.
        findings.extend(_region_shape_findings("A2", nl.a2, n1, n2, where))
        findings.extend(_region_shape_findings("A3", nl.a3, n2, n1, where))
        findings.extend(_region_shape_findings("A4", nl.a4, n2, n2, where))
        findings.extend(_region_shape_findings("L2", nl.l2, n2, n1, where))
        findings.extend(_region_shape_findings("U2", nl.u2, n1, n2, where))
        findings.extend(_region_shape_findings("OUT", nl.out, n2, n2, where))
        walk(node.child1)
        walk(node.child2)

    walk(model.plan.tree)
    return findings


def _check_dataflow(model: PipelineModel) -> list[Finding]:
    """PL003/PL004/PL005: replay the step sequence over path sets only."""
    findings: list[Finding] = []
    written_by: dict[str, str] = {}
    read_paths: set[str] = set()

    for step in model.steps:
        for path in sorted(step.reads):
            if path not in written_by:
                findings.append(
                    Finding.of(
                        "PL003",
                        f"step {step.name!r} reads {path}, which no earlier "
                        "step writes",
                        location=step.name,
                        hint="a producing step is missing from the pipeline, "
                        "writes a different path, or the path is staged but "
                        "never published",
                    )
                )
            read_paths.add(path)
        for path in sorted(step.writes):
            if path in written_by:
                findings.append(
                    Finding.of(
                        "PL004",
                        f"{path} written by both {written_by[path]!r} and "
                        f"{step.name!r}",
                        location=step.name,
                        hint="Section 5.2: no two writers may share a file; "
                        "give each task its own output path",
                    )
                )
            else:
                written_by[path] = step.name

    for path, writer in sorted(written_by.items()):
        if path not in read_paths:
            findings.append(
                Finding.of(
                    "PL005",
                    f"{path} (written by {writer!r}) is never read by any "
                    "later step",
                    location=writer,
                    hint="dead intermediate: drop the write or wire up the "
                    "consumer",
                )
            )
    return findings


def _check_transpose(model: PipelineModel) -> list[Finding]:
    """PL006: the Section 6.3 flag must agree with file naming and with
    every U block ref's on-disk orientation."""
    findings: list[Finding] = []
    flag = model.config.transpose_u
    layout = model.layout

    def walk(node: PlanNode) -> None:
        nl = layout.of(node)
        wants_ut = nl.u_path.endswith("ut.bin")
        if wants_ut != flag:
            findings.append(
                Finding.of(
                    "PL006",
                    f"factor file {nl.u_path} implies transpose_u={wants_ut}, "
                    f"config says {flag}",
                    location=node.dir,
                )
            )
        if nl.u2 is not None:
            for ref in nl.u2.blocks:
                if ref.transposed != flag:
                    findings.append(
                        Finding.of(
                            "PL006",
                            f"U2 block {ref.path} stored "
                            f"transposed={ref.transposed}, config says {flag}",
                            location=node.dir,
                        )
                    )
        if not node.is_leaf:
            assert node.child1 is not None and node.child2 is not None
            walk(node.child1)
            walk(node.child2)

    walk(model.plan.tree)
    return findings


def _check_grid(model: PipelineModel) -> list[Finding]:
    """PL007: block-wrap needs a true factorization m0 = f1 * f2."""
    f1, f2 = model.grid
    m0 = model.config.m0
    if f1 < 1 or f2 < 1 or f1 * f2 != m0:
        return [
            Finding.of(
                "PL007",
                f"grid ({f1}, {f2}) does not factor m0={m0} "
                f"(f1 * f2 = {f1 * f2})",
                location=f"m0={m0}",
                hint="Section 6.2 requires m0 = f1 * f2 with |f1 - f2| "
                "minimal; see repro.linalg.blockwrap.factor_grid",
            )
        ]
    return []


def _check_intermediate_count(model: PipelineModel) -> list[Finding]:
    """PL008: count the separate factor part files the pipeline writes and
    compare with Section 6.1's closed form (full trees, separate-files mode,
    every L2 chunk non-empty)."""
    cfg = model.config
    if not cfg.separate_files or not is_full_tree(model.n, cfg.nb):
        return []
    internals = model.plan.tree.internal_nodes()
    if any(node.n2 < cfg.mhalf for node in internals):
        return []  # empty chunks: the closed form assumes full chunk fan-out
    layout = model.layout
    all_writes = model.all_writes()
    leaf_files = {
        layout.of(leaf).l_path for leaf in model.plan.tree.leaves()
    }
    l2_files: set[str] = set()
    for node in internals:
        l2 = layout.of(node).l2
        assert l2 is not None
        l2_files |= set(l2.file_paths())
    actual = len(leaf_files & all_writes) + len(l2_files & all_writes)
    expected = intermediate_file_count(model.n, cfg.nb, cfg.m0)
    if actual != expected:
        return [
            Finding.of(
                "PL008",
                f"pipeline writes {actual} separate factor part files, "
                f"N(d) = 2^d + (m0/2)(2^d - 1) gives {expected} "
                f"(d={model.plan.depth}, m0={cfg.m0})",
                location=f"n={model.n}, nb={cfg.nb}",
            )
        ]
    return []


def _check_staging_isolation(model: PipelineModel) -> list[Finding]:
    """PL009: no step may touch the commit protocol's private namespaces.

    Staging paths (``/_tmp/...``) hold uncommitted attempt output that fsck
    may delete at any quiescent moment; manifests (``<root>/_commit/...``)
    are the committer's own done-markers.  A step depending on either would
    read data that is not crash-consistent.
    """
    findings: list[Finding] = []
    staging_prefix = STAGING_ROOT + "/"
    commit_prefix = f"{model.config.root}/{COMMIT_DIR}/"
    for step in model.steps:
        for verb, paths in (("reads", step.reads), ("writes", step.writes)):
            for path in sorted(paths):
                if path == STAGING_ROOT or path.startswith(staging_prefix):
                    kind = "staging"
                elif path.startswith(commit_prefix):
                    kind = "manifest"
                else:
                    continue
                findings.append(
                    Finding.of(
                        "PL009",
                        f"step {step.name!r} {verb} {kind} path {path}",
                        location=step.name,
                        hint="staging and manifests are private to the "
                        "two-phase output commit; steps exchange data only "
                        "through published final paths",
                    )
                )
    return findings


def lint_model(model: PipelineModel) -> list[Finding]:
    """Run every plan rule over a pipeline model."""
    findings: list[Finding] = []
    findings.extend(_check_job_count(model))
    findings.extend(_check_shapes(model))
    findings.extend(_check_dataflow(model))
    findings.extend(_check_transpose(model))
    findings.extend(_check_grid(model))
    findings.extend(_check_intermediate_count(model))
    findings.extend(_check_staging_isolation(model))
    return findings


def lint_plan(
    n: int, config: InversionConfig | None = None
) -> tuple[list[Finding], PipelineModel]:
    """Build the model for ``(n, config)`` and lint it.

    Returns the findings together with the model so callers (CLI, driver
    pre-flight) can also report the validated job count.
    """
    model = build_model(n, config)
    return lint_model(model), model
