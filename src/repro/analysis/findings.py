"""Structured findings emitted by the static analyzers.

Every check reports :class:`Finding` records — rule id, severity, location,
message, and a fix hint — rather than raising on first failure, so a single
pre-flight pass can surface *all* problems in a pipeline (the paper's whole
workflow is predefined, Section 5, so there is no reason to discover defects
one runtime crash at a time).  The rule catalog lives in :data:`RULES`;
``docs/static_analysis.md`` is its human-readable rendering.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable, Sequence


class Severity(enum.IntEnum):
    """Ordered severities; ``ERROR`` findings make the pre-flight fail."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class RuleSpec:
    """One catalog entry: stable id, default severity, one-line title."""

    id: str
    severity: Severity
    title: str


#: The rule catalog.  Ids are stable API: tests, suppressions
#: (``--ignore`` / ``# lint: ignore[ID]``), and docs all key on them.
RULES: dict[str, RuleSpec] = {
    spec.id: spec
    for spec in (
        # -- plan / dataflow rules (planlint) --------------------------------
        RuleSpec("PL001", Severity.ERROR,
                 "job count disagrees with the closed form 2^d + 1 (Table 3)"),
        RuleSpec("PL002", Severity.ERROR,
                 "block shapes not conformable across a job boundary"),
        RuleSpec("PL003", Severity.ERROR,
                 "step reads a DFS path no earlier step writes"),
        RuleSpec("PL004", Severity.ERROR,
                 "DFS path written by more than one step (Section 5.2 "
                 "requires single-writer files)"),
        RuleSpec("PL005", Severity.WARNING,
                 "intermediate written but never read (orphan)"),
        RuleSpec("PL006", Severity.ERROR,
                 "U-transposed layout inconsistent with the Section 6.3 flag"),
        RuleSpec("PL007", Severity.ERROR,
                 "block-wrap grid does not factor m0 (f1 * f2 != m0)"),
        RuleSpec("PL008", Severity.WARNING,
                 "separate-factor-file count disagrees with Section 6.1's "
                 "N(d) = 2^d + (m0/2)(2^d - 1)"),
        RuleSpec("PL009", Severity.ERROR,
                 "step touches the /_tmp staging or _commit manifest "
                 "namespace (private to the two-phase output commit)"),
        # -- block-dataflow rules (dataflow) -----------------------------------
        RuleSpec("DF001", Severity.INFO,
                 "false barrier: sibling LU subtrees exchange no direct "
                 "block edges (coupling flows only through the parent job)"),
        RuleSpec("DF002", Severity.ERROR,
                 "cross-stage write-before-read hazard: a stage reads a "
                 "block first written at the same or a later stage"),
        RuleSpec("DF003", Severity.WARNING,
                 "dead block: written, never read by any stage, never "
                 "published through a commit manifest"),
        RuleSpec("DF004", Severity.WARNING,
                 "redundant read: a stage round-trips its own same-stage "
                 "write through the DFS"),
        RuleSpec("DF005", Severity.INFO,
                 "barrier slack: static critical-path length vs the "
                 "barrier schedule's global sync points"),
        RuleSpec("DF006", Severity.ERROR,
                 "cycle in the block dependency DAG (no schedule can "
                 "satisfy it)"),
        RuleSpec("DF007", Severity.ERROR,
                 "generation-order violation: a map phase reads its own "
                 "job's reduce output"),
        RuleSpec("DF008", Severity.ERROR,
                 "observed read edge missing from the static DAG "
                 "(telemetry replay cross-check)"),
        # -- mapper/reducer purity rules (purity) -----------------------------
        RuleSpec("PU001", Severity.INFO,
                 "source unavailable; callable not analyzable"),
        RuleSpec("PU002", Severity.ERROR,
                 "nondeterministic API call in a task body"),
        RuleSpec("PU003", Severity.ERROR,
                 "mutation of closure/global state shared across tasks"),
        RuleSpec("PU004", Severity.ERROR,
                 "mutation of a task input argument"),
        RuleSpec("PU005", Severity.WARNING,
                 "instance attribute assigned inside map/reduce (task-carried "
                 "state breaks replay after a retry)"),
        RuleSpec("PU006", Severity.ERROR,
                 "wall-clock or seedable generator constructed without an "
                 "injected seed inside a task body"),
        RuleSpec("PU007", Severity.WARNING,
                 "iteration over a set whose order can leak into emitted "
                 "keys (hash randomization breaks replay determinism)"),
        # -- concurrency rules (concurrency) ----------------------------------
        RuleSpec("CN001", Severity.ERROR,
                 "read of a guarded-by attribute without holding its lock"),
        RuleSpec("CN002", Severity.ERROR,
                 "write/mutation of a guarded-by attribute without holding "
                 "its lock"),
        RuleSpec("CN003", Severity.ERROR,
                 "lock-required helper called without holding the lock it "
                 "assumes"),
        RuleSpec("CN004", Severity.WARNING,
                 "guarded mutable state escapes its lock scope (returned "
                 "without copying)"),
        RuleSpec("CN005", Severity.ERROR,
                 "lock-order cycle between locks (potential deadlock)"),
        RuleSpec("CN006", Severity.WARNING,
                 "lock held across a blocking call (join/result/sleep/DFS "
                 "I/O)"),
        RuleSpec("CN007", Severity.ERROR,
                 "guarded-by annotation names a lock the class never "
                 "defines"),
        RuleSpec("CN008", Severity.WARNING,
                 "thread-shared closure state mutated without a lock in an "
                 "escaping callback"),
        # -- process-safety / ownership rules (procsafety) ---------------------
        RuleSpec("PS001", Severity.ERROR,
                 "unpicklable object captured in a task closure (thread, "
                 "open file, subprocess, generator)"),
        RuleSpec("PS002", Severity.ERROR,
                 "engine handle (DFS/NameNode/JobTracker/runtime) captured "
                 "by value instead of received via TaskContext"),
        RuleSpec("PS003", Severity.ERROR,
                 "module-global state mutated from task code"),
        RuleSpec("PS004", Severity.ERROR,
                 "in-place mutation of a borrowed DFS read view (read "
                 "without writable=True)"),
        RuleSpec("PS005", Severity.WARNING,
                 "borrowed DFS read view escapes the task scope (returned, "
                 "stored on self, or appended to a captured container)"),
        RuleSpec("PS006", Severity.ERROR,
                 "fork-unsafe global RNG used in task code (forked workers "
                 "inherit identical generator state)"),
        RuleSpec("PS007", Severity.ERROR,
                 "lock/condition primitive crosses a task boundary"),
        RuleSpec("PS008", Severity.ERROR,
                 "shared_memory segment closed/unlinked while a frombuffer "
                 "view is live"),
    )
}


@dataclass(frozen=True)
class Finding:
    """One analyzer result.

    ``location`` is free-form but conventionally ``file:line`` for source
    findings and a step/path description for plan findings.
    """

    rule: str
    message: str
    location: str = ""
    hint: str = ""
    severity: Severity = field(default=Severity.ERROR)

    @staticmethod
    def of(rule: str, message: str, *, location: str = "", hint: str = "") -> "Finding":
        """Build a finding with the rule's catalog severity."""
        spec = RULES[rule]
        return Finding(
            rule=rule,
            message=message,
            location=location,
            hint=hint,
            severity=spec.severity,
        )

    def format(self) -> str:
        loc = f" at {self.location}" if self.location else ""
        hint = f"\n    hint: {self.hint}" if self.hint else ""
        return f"[{self.rule}] {self.severity}: {self.message}{loc}{hint}"


def max_severity(findings: Iterable[Finding]) -> Severity | None:
    """Highest severity present, or ``None`` for an empty set."""
    best: Severity | None = None
    for f in findings:
        if best is None or f.severity > best:
            best = f.severity
    return best


def has_errors(findings: Iterable[Finding]) -> bool:
    return any(f.severity >= Severity.ERROR for f in findings)


def filter_ignored(
    findings: Iterable[Finding], ignore: Iterable[str]
) -> list[Finding]:
    """Drop findings whose rule id is in ``ignore``."""
    ignored = {r.strip().upper() for r in ignore if r.strip()}
    return [f for f in findings if f.rule not in ignored]


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report, most severe first."""
    if not findings:
        return "no findings"
    ordered = sorted(findings, key=lambda f: (-f.severity, f.rule, f.location))
    counts: dict[Severity, int] = {}
    for f in findings:
        counts[f.severity] = counts.get(f.severity, 0) + 1
    summary = ", ".join(
        f"{counts[s]} {s}" for s in sorted(counts, reverse=True)
    )
    return "\n".join([f.format() for f in ordered] + [f"-- {summary}"])


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (one object per finding, stable keys)."""
    return json.dumps(
        [
            {
                "rule": f.rule,
                "severity": str(f.severity),
                "message": f.message,
                "location": f.location,
                "hint": f.hint,
            }
            for f in findings
        ],
        indent=2,
    )


class PreflightError(RuntimeError):
    """Raised by the driver when the pre-flight linter finds errors."""

    def __init__(self, findings: Sequence[Finding]) -> None:
        self.findings = list(findings)
        errors = [f for f in self.findings if f.severity >= Severity.ERROR]
        super().__init__(
            "pipeline pre-flight failed with "
            f"{len(errors)} error finding(s):\n{render_text(errors)}"
        )
