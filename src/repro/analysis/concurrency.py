"""Static concurrency analyzer: guarded-by locksets and lock-order checking.

The threaded engine (JobTracker waves on a thread pool, DFS block store with
per-object locks, thread-safe telemetry) protects shared state with
``threading.Lock``/``RLock`` instances, but nothing *proved* the discipline:
a new call path reading ``BlockStore._blocks`` without the lock, or two
subsystems nesting locks in opposite orders, would only surface as a rare
flaked test.  This module makes the lock contracts machine-checked source
annotations:

``# guarded-by: <lock-attr>``
    on the line assigning a shared attribute (in ``__init__`` or at class
    level, including dataclass fields) declares that every post-construction
    read or write of that attribute must happen while the named sibling lock
    attribute is held;

``# requires-lock: <lock-attr>``
    on a ``def`` line declares a helper that assumes its *caller* holds the
    lock (the ``_locked`` method-name suffix implies the same for classes
    with a single lock): its own accesses are exempt, and every call site is
    checked instead.

The analyzer parses whole modules (no imports executed), builds a per-class
model (locks, guarded attributes, attribute/return types for a light
receiver-type inference), and walks every function body tracking the set of
locks held.  Violations are reported through the shared
:class:`~repro.analysis.findings.Finding` framework:

``CN001``  guarded attribute read without the lock;
``CN002``  guarded attribute written/mutated without the lock;
``CN003``  lock-required helper called without the lock held;
``CN004``  guarded mutable state returned without copying (the reference
           escapes the lock's protection);
``CN005``  lock-order cycle in the whole-package acquisition graph
           (potential deadlock), including same-``Lock`` re-acquisition;
``CN006``  lock held across a blocking call (``Thread.join``,
           ``future.result``, ``Queue.get``, ``time.sleep``, executor
           ``run_all``, DFS block I/O);
``CN007``  ``guarded-by`` names a lock attribute the class never defines;
``CN008``  a callback that escapes to another thread (returned, stored, or
           handed to an executor/Thread) mutates enclosing mutable state
           without holding any lock.

Suppressions reuse the purity checker's mechanism: append
``# lint: ignore[CN006]`` (or a bare ``# lint: ignore``) to the line.

Known limitations (see ``docs/static_analysis.md``): the analysis is
instance-insensitive (all instances of a class share one abstract lock), the
type inference covers only constructor assignments, parameter/return
annotations, and homogeneous containers, and ``acquire``/``release`` pairs
are modelled block-locally — ``with`` statements are the verified idiom.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .findings import Finding
from .purity import _line_suppresses

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")
_REQUIRES_RE = re.compile(r"#\s*requires-lock:\s*([A-Za-z_]\w*)")

#: Constructors recognised as locks, with their kind ("Lock" participates in
#: self-deadlock detection; "RLock"/"Condition" are reentrant).
_LOCK_CTORS = {"Lock": "Lock", "RLock": "RLock", "Condition": "Condition"}

#: Methods whose call mutates the receiver in place (subset shared with the
#: purity checker, plus dict/list staples).
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear",
        "add", "discard", "update", "setdefault", "popitem",
        "sort", "reverse",
    }
)

#: Copy-making callables: wrapping a guarded attribute in one of these before
#: returning it is the sanctioned escape (CN004 does not fire).
_COPYING_CALLS = frozenset(
    {"list", "dict", "tuple", "set", "frozenset", "sorted", "str", "bytes",
     "len", "sum", "min", "max", "deepcopy", "copy"}
)

#: Method names that block (or can block) the calling thread.
_BLOCKING_METHODS = frozenset(
    {"result", "run_all", "read_block", "write_block", "read_bytes",
     "write_bytes", "read_range", "read_text", "write_text",
     "rereplicate_all", "repair", "wait"}
)

#: Methods exempt from guarded-attribute checks on ``self`` — the object is
#: not yet (or no longer) shared while they run.
_CONSTRUCTION_METHODS = frozenset({"__init__", "__post_init__", "__del__"})


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_lock_ctor(node: ast.AST) -> str | None:
    """Lock kind when ``node`` is ``threading.Lock()`` / ``RLock()`` /
    ``Condition()`` or a dataclass ``field(default_factory=threading.Lock)``."""
    if not isinstance(node, ast.Call):
        return None
    dotted = _dotted(node.func)
    if dotted is not None:
        leaf = dotted.split(".")[-1]
        if leaf in _LOCK_CTORS:
            return _LOCK_CTORS[leaf]
        if leaf == "field":
            for kw in node.keywords:
                if kw.arg == "default_factory":
                    factory = _dotted(kw.value)
                    if factory is not None:
                        fleaf = factory.split(".")[-1]
                        if fleaf in _LOCK_CTORS:
                            return _LOCK_CTORS[fleaf]
    return None


_IMMUTABLE_ANNS = frozenset({"int", "float", "bool", "str", "bytes", "None"})


def _is_immutable_value(
    value: ast.AST | None, annotation: ast.AST | None
) -> bool:
    """True when a guarded attribute holds an immutable scalar (per its
    initializer literal or annotation) — sharing the *value* is then safe."""
    if isinstance(value, ast.Constant):
        return True
    if isinstance(value, ast.UnaryOp) and isinstance(value.operand, ast.Constant):
        return True
    if annotation is not None:
        names = _ann_identifiers(annotation)
        if names and set(names) <= _IMMUTABLE_ANNS:
            return True
    return False


def _ann_identifiers(node: ast.AST | None) -> list[str]:
    """Candidate class names mentioned by an annotation node (handles string
    forward references, ``Optional[X]``, ``X | None``, ``list[X]``)."""
    if node is None:
        return []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return re.findall(r"[A-Za-z_]\w*", node.value)
    names: list[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.append(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            names.extend(re.findall(r"[A-Za-z_]\w*", sub.value))
    return names


@dataclass
class ClassModel:
    """Everything the analyzer knows about one class."""

    name: str
    filename: str
    node: ast.ClassDef
    lock_attrs: dict[str, str] = field(default_factory=dict)  # attr -> kind
    guarded: dict[str, str] = field(default_factory=dict)  # attr -> lock attr
    guard_lines: dict[str, int] = field(default_factory=dict)
    #: Guarded attrs whose value is an immutable scalar — returning them
    #: from inside the lock is a valid snapshot, not an escape (no CN004).
    immutable_attrs: set[str] = field(default_factory=set)
    attr_types: dict[str, str] = field(default_factory=dict)  # attr -> class
    attr_elem_types: dict[str, str] = field(default_factory=dict)
    method_returns: dict[str, str] = field(default_factory=dict)
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    properties: set[str] = field(default_factory=set)
    requires_lock: dict[str, str] = field(default_factory=dict)

    def single_lock(self) -> str | None:
        if len(self.lock_attrs) == 1:
            return next(iter(self.lock_attrs))
        return None


@dataclass(frozen=True)
class LockOrderEdge:
    """``held`` was held while ``acquired`` was (directly or transitively)
    acquired at ``location``."""

    held: str
    acquired: str
    location: str


class _ModuleSource:
    """One parsed input module."""

    def __init__(self, text: str, filename: str) -> None:
        self.text = text
        self.filename = filename
        self.lines = text.splitlines()
        self.tree: ast.Module | None
        self.parse_error: SyntaxError | None = None
        try:
            self.tree = ast.parse(text, filename=filename)
        except SyntaxError as exc:
            self.tree = None
            self.parse_error = exc

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class ConcurrencyAnalyzer:
    """Whole-package lockset and lock-order analysis.

    Feed modules with :meth:`add_module` (or :meth:`add_file`), then call
    :meth:`run` for the combined findings.  All modules share one class
    table, so cross-module receiver types (``DFS.blocks`` -> ``BlockStore``)
    and the lock-order graph resolve across file boundaries.
    """

    def __init__(self) -> None:
        self._modules: list[_ModuleSource] = []
        self.classes: dict[str, ClassModel] = {}
        self.edges: list[LockOrderEdge] = []
        self._lock_kinds: dict[str, str] = {}  # "Class.attr" -> kind
        self.findings: list[Finding] = []
        # (class, method) -> locks directly acquired / callees, for the
        # transitive-acquisition fixpoint behind CN005.
        self._direct_acquires: dict[tuple[str, str], set[str]] = {}
        self._calls: dict[tuple[str, str], set[tuple[str, str]]] = {}
        # Deferred call events: (held locks, callee, location).
        self._call_events: list[tuple[frozenset[str], tuple[str, str], str]] = []

    # -- input -----------------------------------------------------------------

    def add_module(self, text: str, filename: str = "<string>") -> None:
        module = _ModuleSource(text, filename)
        self._modules.append(module)
        if module.tree is not None:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    self._collect_class(node, module)

    def add_file(self, path: str | pathlib.Path) -> None:
        path = pathlib.Path(path)
        self.add_module(path.read_text(encoding="utf-8"), str(path))

    # -- class model collection ------------------------------------------------

    def _collect_class(self, node: ast.ClassDef, module: _ModuleSource) -> None:
        model = ClassModel(name=node.name, filename=module.filename, node=node)
        self.classes[node.name] = model
        for stmt in node.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                self._collect_attr_stmt(model, stmt, module, selfless=True)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_method(model, stmt, module)
        for attr, kind in model.lock_attrs.items():
            self._lock_kinds[f"{model.name}.{attr}"] = kind

    def _collect_method(
        self,
        model: ClassModel,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        module: _ModuleSource,
    ) -> None:
        for deco in fn.decorator_list:
            deco_name = _dotted(deco) or ""
            if deco_name == "property" or deco_name.endswith(".setter"):
                model.properties.add(fn.name)
        model.methods.setdefault(fn.name, fn)
        ret = self._first_match_later(_ann_identifiers(fn.returns))
        if ret is not None:
            model.method_returns[fn.name] = ret
        required = _REQUIRES_RE.search(module.line(fn.lineno))
        if required is not None:
            model.requires_lock[fn.name] = required.group(1)
        elif fn.name.endswith("_locked"):
            model.requires_lock[fn.name] = "?"  # resolved against single_lock
        # ``self.x = ...`` statements anywhere in the method feed the model;
        # guarded-by comments are conventionally in ``__init__``.
        for stmt in ast.walk(fn):
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                self._collect_attr_stmt(
                    model, stmt, module, selfless=False, fn=fn
                )

    def _collect_attr_stmt(
        self,
        model: ClassModel,
        stmt: ast.Assign | ast.AnnAssign,
        module: _ModuleSource,
        *,
        selfless: bool,
        fn: ast.FunctionDef | ast.AsyncFunctionDef | None = None,
    ) -> None:
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        value = stmt.value
        annotation = stmt.annotation if isinstance(stmt, ast.AnnAssign) else None
        for target in targets:
            attr: str | None = None
            if selfless and isinstance(target, ast.Name):
                attr = target.id
            elif (
                not selfless
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attr = target.attr
            if attr is None:
                continue
            guard = _GUARDED_RE.search(module.line(stmt.lineno))
            if guard is not None:
                model.guarded[attr] = guard.group(1)
                model.guard_lines[attr] = stmt.lineno
                if _is_immutable_value(value, annotation):
                    model.immutable_attrs.add(attr)
            kind = _is_lock_ctor(value) if value is not None else None
            if kind is None and annotation is not None:
                ann_names = _ann_identifiers(annotation)
                for name in ann_names:
                    if name in _LOCK_CTORS:
                        kind = _LOCK_CTORS[name]
                        break
            if kind is not None:
                model.lock_attrs[attr] = kind
                continue
            self._collect_attr_type(model, attr, value, annotation, fn)

    def _collect_attr_type(
        self,
        model: ClassModel,
        attr: str,
        value: ast.AST | None,
        annotation: ast.AST | None,
        fn: ast.FunctionDef | ast.AsyncFunctionDef | None,
    ) -> None:
        """Record ``attr``'s (element) type when statically evident."""
        if annotation is not None:
            names = _ann_identifiers(annotation)
            resolved = self._first_match_later(names)
            if resolved is not None:
                if names and names[0] in ("list", "List", "dict", "Dict",
                                          "tuple", "Tuple", "set", "Set"):
                    model.attr_elem_types.setdefault(attr, resolved)
                else:
                    model.attr_types.setdefault(attr, resolved)
        if value is None:
            return
        if isinstance(value, ast.Call):
            callee = _dotted(value.func)
            if callee is not None:
                model.attr_types.setdefault(attr, callee.split(".")[-1])
        elif isinstance(value, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            if isinstance(value.elt, ast.Call):
                callee = _dotted(value.elt.func)
                if callee is not None:
                    model.attr_elem_types.setdefault(attr, callee.split(".")[-1])
        elif isinstance(value, (ast.List, ast.Tuple)) and value.elts:
            first = value.elts[0]
            if isinstance(first, ast.Call):
                callee = _dotted(first.func)
                if callee is not None:
                    model.attr_elem_types.setdefault(attr, callee.split(".")[-1])
        elif isinstance(value, ast.Name) and fn is not None:
            # ``self.x = param`` with an annotated parameter.
            for arg in (*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs):
                if arg.arg == value.id:
                    resolved = self._first_match_later(
                        _ann_identifiers(arg.annotation)
                    )
                    if resolved is not None:
                        model.attr_types.setdefault(attr, resolved)
                    break

    def _first_match_later(self, names: Iterable[str]) -> str | None:
        """Names are matched against the class table lazily (collection order
        is arbitrary), so raw candidates are stored and filtered on use; this
        helper keeps the first candidate that *could* be a class name."""
        for name in names:
            if name and name[0].isupper():
                return name
        return None

    def _known_class(self, name: str | None) -> ClassModel | None:
        if name is None:
            return None
        return self.classes.get(name)

    # -- analysis --------------------------------------------------------------

    def run(self) -> list[Finding]:
        """Analyze every collected module; returns all findings."""
        for module in self._modules:
            if module.parse_error is not None:
                exc = module.parse_error
                self._emit(
                    "CN007",
                    f"{module.filename} does not parse: {exc.msg} "
                    f"(line {exc.lineno})",
                    f"{module.filename}:{exc.lineno or 1}",
                )
                continue
            self._check_annotations(module)
            assert module.tree is not None
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    model = self.classes[node.name]
                    for stmt in node.body:
                        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            self._analyze_function(stmt, module, owner=model)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._analyze_function(node, module, owner=None)
        self._resolve_call_events()
        self._check_lock_order()
        return self._suppressed_filtered()

    # -- annotation sanity (CN007) ---------------------------------------------

    def _check_annotations(self, module: _ModuleSource) -> None:
        for model in self.classes.values():
            if model.filename != module.filename:
                continue
            for attr, lock in model.guarded.items():
                if lock not in model.lock_attrs:
                    self._emit(
                        "CN007",
                        f"{model.name}.{attr} is guarded-by {lock!r} but "
                        f"{model.name} defines no such lock attribute",
                        f"{model.filename}:{model.guard_lines.get(attr, model.node.lineno)}",
                        hint="declare the lock (e.g. self._lock = "
                        "threading.Lock()) or fix the annotation",
                    )

    # -- function analysis -----------------------------------------------------

    def _analyze_function(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        module: _ModuleSource,
        owner: ClassModel | None,
    ) -> None:
        walker = _FunctionWalker(self, module, owner, fn)
        walker.analyze()

    # -- lock-order graph ------------------------------------------------------

    def record_direct_acquire(self, caller: tuple[str, str], lock: str) -> None:
        self._direct_acquires.setdefault(caller, set()).add(lock)

    def record_call(
        self,
        caller: tuple[str, str],
        callee: tuple[str, str],
        held: frozenset[str],
        location: str,
    ) -> None:
        self._calls.setdefault(caller, set()).add(callee)
        if held:
            self._call_events.append((held, callee, location))

    def record_edge(self, held: str, acquired: str, location: str) -> None:
        self.edges.append(LockOrderEdge(held, acquired, location))

    def _transitive_acquires(self) -> dict[tuple[str, str], set[str]]:
        acquires = {k: set(v) for k, v in self._direct_acquires.items()}
        keys = set(acquires) | set(self._calls)
        for key in keys:
            acquires.setdefault(key, set())
        changed = True
        while changed:
            changed = False
            for caller, callees in self._calls.items():
                bucket = acquires.setdefault(caller, set())
                before = len(bucket)
                for callee in callees:
                    bucket |= acquires.get(callee, set())
                if len(bucket) != before:
                    changed = True
        return acquires

    def _resolve_call_events(self) -> None:
        acquires = self._transitive_acquires()
        for held, callee, location in self._call_events:
            for lock in acquires.get(callee, ()):  # may re-enter own lock
                for h in held:
                    self.record_edge(h, lock, location)

    def _check_lock_order(self) -> None:
        graph: dict[str, set[str]] = {}
        locations: dict[tuple[str, str], str] = {}
        for edge in self.edges:
            if edge.held == edge.acquired:
                # Re-acquisition: deadlock only for non-reentrant locks.
                if self._lock_kinds.get(edge.held) == "Lock":
                    self._emit(
                        "CN005",
                        f"non-reentrant lock {edge.held} can be re-acquired "
                        "while already held (self-deadlock)",
                        edge.location,
                        hint="use an RLock or restructure via a "
                        "*_locked helper",
                    )
                continue
            graph.setdefault(edge.held, set()).add(edge.acquired)
            locations.setdefault((edge.held, edge.acquired), edge.location)
        for cycle in _find_cycles(graph):
            pairs = list(zip(cycle, cycle[1:] + cycle[:1]))
            where = "; ".join(
                f"{a} -> {b} at {locations.get((a, b), '?')}" for a, b in pairs
            )
            self._emit(
                "CN005",
                "lock-order cycle (potential deadlock): "
                + " -> ".join(cycle + [cycle[0]]),
                locations.get(pairs[0], ""),
                hint=f"acquisition sites: {where}; impose a global order "
                "or narrow one critical section",
            )

    # -- findings --------------------------------------------------------------

    def _emit(
        self, rule: str, message: str, location: str, hint: str = ""
    ) -> None:
        self.findings.append(
            Finding.of(rule, message, location=location, hint=hint)
        )

    def _suppressed_filtered(self) -> list[Finding]:
        by_file = {m.filename: m for m in self._modules}
        out: list[Finding] = []
        for finding in self.findings:
            filename, _, lineno = finding.location.rpartition(":")
            module = by_file.get(filename)
            if (
                module is not None
                and lineno.isdigit()
                and _line_suppresses(module.line(int(lineno)), finding.rule)
            ):
                continue
            out.append(finding)
        return out


class _Scope:
    """Per-function naming environment for the light type inference."""

    def __init__(self) -> None:
        self.types: dict[str, str] = {}  # local/param name -> class name
        self.elem_types: dict[str, str] = {}  # container local -> elem class
        self.local_locks: set[str] = set()  # local names bound to Lock()


class _FunctionWalker:
    """Walks one function body tracking the lockset and emitting findings."""

    def __init__(
        self,
        analyzer: ConcurrencyAnalyzer,
        module: _ModuleSource,
        owner: ClassModel | None,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        enclosing: "_FunctionWalker | None" = None,
    ) -> None:
        self.analyzer = analyzer
        self.module = module
        self.owner = owner
        self.fn = fn
        self.enclosing = enclosing
        self.scope = _Scope()
        self.lockset: set[str] = set()
        self.key: tuple[str, str] = (
            owner.name if owner is not None else f"<module {module.filename}>",
            fn.name,
        )
        #: nested function name -> (node, mutated enclosing names seen
        #: without a lock); lambdas use a synthetic name.
        self.nested: dict[str, ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda] = {}
        self._exempt_self = False
        if owner is not None:
            if fn.name in _CONSTRUCTION_METHODS:
                self._exempt_self = True
            required = owner.requires_lock.get(fn.name)
            if required is not None:
                lock = required if required != "?" else owner.single_lock()
                if lock is not None and lock in owner.lock_attrs:
                    # The caller holds it; assume so for the body.
                    self.lockset.add(f"{owner.name}.{lock}")

    # -- entry ----------------------------------------------------------------

    def analyze(self) -> None:
        self._seed_scope()
        self._walk_stmts(self.fn.body)
        self._analyze_nested()

    def _seed_scope(self) -> None:
        if self.owner is not None:
            self.scope.types["self"] = self.owner.name
        args = self.fn.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            resolved = self.analyzer._first_match_later(
                _ann_identifiers(arg.annotation)
            )
            if self.analyzer._known_class(resolved) is not None:
                assert resolved is not None
                self.scope.types.setdefault(arg.arg, resolved)
        # Flow-insensitive pre-pass: local constructor calls and lock locals.
        for stmt in ast.walk(self.fn):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if _is_lock_ctor(stmt.value) is not None:
                    self.scope.local_locks.add(target.id)
                    continue
                inferred = self._infer(stmt.value)
                if inferred is not None:
                    self.scope.types.setdefault(target.id, inferred)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                if isinstance(stmt.target, ast.Name):
                    elem = self._infer_elem(stmt.iter)
                    if elem is not None:
                        self.scope.types.setdefault(stmt.target.id, elem)

    # -- type inference --------------------------------------------------------

    def _infer(self, node: ast.AST) -> str | None:
        """Class name of ``node``'s value, when statically evident."""
        if isinstance(node, ast.Name):
            return self.scope.types.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._infer(node.value)
            model = self.analyzer._known_class(base)
            if model is not None:
                return model.attr_types.get(node.attr)
            return None
        if isinstance(node, ast.Subscript):
            return self._infer_elem(node.value)
        if isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Name):
                if self.analyzer._known_class(callee.id) is not None:
                    return callee.id
                return None
            if isinstance(callee, ast.Attribute):
                base = self._infer(callee.value)
                model = self.analyzer._known_class(base)
                if model is not None:
                    return model.method_returns.get(callee.attr)
            return None
        if isinstance(node, ast.BoolOp):
            for value in reversed(node.values):
                inferred = self._infer(value)
                if inferred is not None:
                    return inferred
        return None

    def _infer_elem(self, node: ast.AST) -> str | None:
        """Element class of a container expression."""
        if isinstance(node, ast.Name):
            return self.scope.elem_types.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._infer(node.value)
            model = self.analyzer._known_class(base)
            if model is not None:
                return model.attr_elem_types.get(node.attr)
        return None

    def _lock_key(self, node: ast.AST) -> str | None:
        """Abstract lock named by a ``with`` item / acquire receiver."""
        if isinstance(node, ast.Name) and node.id in self.scope.local_locks:
            return f"{self.key[0]}.{self.key[1]}.<{node.id}>"
        if self.enclosing is not None and isinstance(node, ast.Name):
            enclosing_key = self.enclosing._lock_key(node)
            if enclosing_key is not None:
                return enclosing_key
        if isinstance(node, ast.Attribute):
            base = self._infer(node.value)
            model = self.analyzer._known_class(base)
            if model is not None and node.attr in model.lock_attrs:
                return f"{model.name}.{node.attr}"
        return None

    # -- statement walk --------------------------------------------------------

    def _walk_stmts(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired: list[str] = []
            for item in stmt.items:
                self._scan_expr(item.context_expr)
                key = self._lock_key(item.context_expr)
                if key is not None:
                    for held in self.lockset:
                        self.analyzer.record_edge(held, key, self._loc(stmt))
                    self.analyzer.record_direct_acquire(self.key, key)
                    acquired.append(key)
            added = [k for k in acquired if k not in self.lockset]
            self.lockset.update(added)
            self._walk_stmts(stmt.body)
            self.lockset.difference_update(added)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            pass  # nested classes: out of scope
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_escape(stmt.value, stmt)
                self._scan_expr(stmt.value)
        elif isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets: list[ast.expr]
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            else:
                targets = [stmt.target]
            for target in targets:
                self._check_store(target, stmt)
            if stmt.value is not None:
                self._scan_expr(stmt.value)
            if isinstance(stmt, ast.AugAssign):
                # ``x.attr += v`` also reads the attribute; the store check
                # already covers the access, so nothing further.
                pass
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._check_store(target, stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter)
            self._check_store(stmt.target, stmt)
            self._walk_stmts(stmt.body)
            self._walk_stmts(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._scan_expr(stmt.test)
            self._walk_stmts(stmt.body)
            self._walk_stmts(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._scan_expr(stmt.test)
            self._walk_stmts(stmt.body)
            self._walk_stmts(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self._walk_stmts(stmt.body)
            for handler in stmt.handlers:
                self._walk_stmts(handler.body)
            self._walk_stmts(stmt.orelse)
            self._walk_stmts(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self._scan_expr(stmt.value)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._walk_stmt(child)
                elif isinstance(child, ast.expr):
                    self._scan_expr(child)

    # -- expression scanning ---------------------------------------------------

    def _scan_expr(self, expr: ast.expr) -> None:
        # A mutator call (``self.items.append(x)``) is reported once, as a
        # CN002 write; the receiver attribute load it contains must not also
        # surface as a CN001 read of the same defect.  ast.walk is BFS, so a
        # Call is always seen before its receiver chain.
        reported_as_write: set[ast.Attribute] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Lambda):
                self.nested[f"<lambda:{node.lineno}>"] = node
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                    attr = self._guarded_attr_of(func.value)
                    if attr is not None:
                        reported_as_write.add(attr)
                self._check_call(node)
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                if node not in reported_as_write:
                    self._check_access(node, write=False)

    def _check_store(self, target: ast.expr, stmt: ast.stmt) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_store(elt, stmt)
            return
        attr = self._guarded_attr_of(target)
        if attr is not None:
            self._check_access(attr, write=True)
        # Subscript values / slices may themselves read guarded state.
        if isinstance(target, ast.Subscript):
            self._scan_expr(target.slice)

    def _guarded_attr_of(self, node: ast.expr) -> ast.Attribute | None:
        """The attribute being written through ``node`` (strips subscripts)."""
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):
            return node
        return None

    def _check_access(self, node: ast.Attribute, *, write: bool) -> None:
        base = self._infer(node.value)
        model = self.analyzer._known_class(base)
        if model is None:
            return
        # Property access on a typed receiver behaves like a method call for
        # lock-order purposes (the getter may acquire the object's lock).
        if not write and node.attr in model.properties:
            self.analyzer.record_call(
                self.key,
                (model.name, node.attr),
                frozenset(self.lockset),
                self._loc(node),
            )
        guard = model.guarded.get(node.attr)
        if guard is None:
            return
        is_self = isinstance(node.value, ast.Name) and node.value.id == "self"
        if is_self and self._exempt_self and model is self.owner:
            return
        required = f"{model.name}.{guard}"
        if required in self.lockset:
            return
        rule = "CN002" if write else "CN001"
        action = "written" if write else "read"
        self._emit(
            rule,
            f"{self._qual()}: {model.name}.{node.attr} {action} without "
            f"holding {required}",
            node,
            hint=f"wrap the access in `with {'self' if is_self else '<obj>'}."
            f"{guard}:` or route it through a locked accessor",
        )

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        # Mutator methods on guarded attributes are writes.
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            attr = self._guarded_attr_of(func.value)
            if attr is not None:
                self._check_access(attr, write=True)
        # acquire()/release() outside ``with``: modelled block-locally.
        if isinstance(func, ast.Attribute) and func.attr in ("acquire", "release"):
            key = self._lock_key(func.value)
            if key is not None:
                if func.attr == "acquire":
                    for held in self.lockset:
                        self.analyzer.record_edge(held, key, self._loc(node))
                    self.analyzer.record_direct_acquire(self.key, key)
                    self.lockset.add(key)
                else:
                    self.lockset.discard(key)
                return
        blocking = self._blocking_desc(node)
        if blocking is not None and self.lockset:
            self._emit(
                "CN006",
                f"{self._qual()}: holds {', '.join(sorted(self.lockset))} "
                f"across blocking call {blocking}",
                node,
                hint="copy what you need under the lock, release it, then "
                "block",
            )
        callee = self._resolve_callee(func)
        if callee is not None:
            callee_model, method = callee
            self.analyzer.record_call(
                self.key,
                (callee_model.name, method),
                frozenset(self.lockset),
                self._loc(node),
            )
            required = callee_model.requires_lock.get(method)
            if required is not None:
                lock = (
                    required
                    if required != "?"
                    else callee_model.single_lock()
                )
                if lock is not None:
                    required_key = f"{callee_model.name}.{lock}"
                    if required_key not in self.lockset:
                        self._emit(
                            "CN003",
                            f"{self._qual()}: calls lock-required helper "
                            f"{callee_model.name}.{method} without holding "
                            f"{required_key}",
                            node,
                            hint="acquire the lock first, or call the "
                            "public locked wrapper instead",
                        )

    def _resolve_callee(
        self, func: ast.expr
    ) -> tuple[ClassModel, str] | None:
        if not isinstance(func, ast.Attribute):
            return None
        base = self._infer(func.value)
        model = self.analyzer._known_class(base)
        if model is not None and func.attr in model.methods:
            return model, func.attr
        return None

    def _blocking_desc(self, node: ast.Call) -> str | None:
        func = node.func
        dotted = _dotted(func)
        if dotted in ("time.sleep", "sleep"):
            return f"{dotted}()"
        if not isinstance(func, ast.Attribute):
            return None
        name = func.attr
        if name in _BLOCKING_METHODS:
            return f".{name}()"
        receiver = func.value
        receiver_name = ""
        if isinstance(receiver, ast.Name):
            receiver_name = receiver.id
        elif isinstance(receiver, ast.Attribute):
            receiver_name = receiver.attr
        lowered = receiver_name.lower()
        if name == "join" and any(
            tag in lowered for tag in ("thread", "runner", "worker", "proc")
        ):
            return f"{receiver_name}.join()"
        if name == "get" and "queue" in lowered:
            return f"{receiver_name}.get()"
        return None

    # -- escapes (CN004) -------------------------------------------------------

    def _check_escape(self, value: ast.expr, stmt: ast.stmt) -> None:
        if not isinstance(value, ast.Attribute):
            return
        base = self._infer(value.value)
        model = self.analyzer._known_class(base)
        if model is None:
            return
        guard = model.guarded.get(value.attr)
        if guard is None or value.attr in model.immutable_attrs:
            return
        if self.owner is model and self.fn.name in _CONSTRUCTION_METHODS:
            return
        self._emit(
            "CN004",
            f"{self._qual()}: returns guarded {model.name}.{value.attr} "
            "directly — the reference escapes "
            f"{model.name}.{guard}'s protection",
            stmt,
            hint="return a copy (dict(...)/list(...)) or an immutable "
            "snapshot instead",
        )

    # -- nested functions (CN008 + empty-lockset re-analysis) ------------------

    def _analyze_nested(self) -> None:
        escaping = self._escaping_names()
        for name, node in self.nested.items():
            escapes = name in escaping or isinstance(node, ast.Lambda)
            checker = _NestedChecker(self, node, escapes=escapes)
            checker.run()

    def _escaping_names(self) -> set[str]:
        """Nested-function names that leave the defining function: loaded
        anywhere except as the function position of a direct call."""
        out: set[str] = set()
        call_func_ids = {
            id(call.func)
            for call in ast.walk(self.fn)
            if isinstance(call, ast.Call)
        }
        for node in ast.walk(self.fn):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in self.nested
                and id(node) not in call_func_ids
            ):
                out.add(node.id)
        return out

    # -- helpers ---------------------------------------------------------------

    def _qual(self) -> str:
        return f"{self.key[0]}.{self.key[1]}" if self.owner else self.key[1]

    def _loc(self, node: ast.AST) -> str:
        return f"{self.module.filename}:{getattr(node, 'lineno', 1)}"

    def _emit(
        self, rule: str, message: str, node: ast.AST, hint: str = ""
    ) -> None:
        self.analyzer._emit(rule, message, self._loc(node), hint)


class _NestedChecker:
    """Analyzes a nested function defined inside a method.

    The nested body may run on *another thread* (executor thunk, Thread
    target, callback), so the enclosing lockset does NOT apply: guarded
    attributes are re-checked with an empty lockset, and mutations of
    enclosing-scope state without a lock are CN008 when the function
    escapes.
    """

    def __init__(
        self,
        parent: _FunctionWalker,
        node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
        *,
        escapes: bool,
    ) -> None:
        self.parent = parent
        self.node = node
        self.escapes = escapes

    def run(self) -> None:
        if isinstance(self.node, ast.Lambda):
            if self.escapes:
                self._check_closure_mutations_lambda(self.node)
            return
        walker = _FunctionWalker(
            self.parent.analyzer,
            self.parent.module,
            self.parent.owner,
            self.node,
            enclosing=self.parent,
        )
        # Runs on an arbitrary thread: never inherits the enclosing lockset,
        # and construction-phase exemptions don't apply.
        walker.lockset = set()
        walker._exempt_self = False
        # Share the enclosing type environment for receiver inference.
        walker.scope.types.update(self.parent.scope.types)
        walker._seed_scope()
        if self.escapes:
            self._check_closure_mutations(walker)
        walker._walk_stmts(self.node.body)
        walker._analyze_nested()

    # -- CN008 -----------------------------------------------------------------

    def _own_names(self) -> set[str]:
        assert not isinstance(self.node, ast.Lambda)
        names: set[str] = set()
        args = self.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            names.add(arg.arg)
        for sub in ast.walk(self.node):
            if isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                names.add(sub.id)
        return names

    def _enclosing_mutable_names(self) -> set[str]:
        """Names bound anywhere up the enclosing-function chain (closure
        candidates) — a callback may capture state from a grandparent scope
        (executor thunk factories are the common double-nesting)."""
        names: set[str] = set()
        walker: _FunctionWalker | None = self.parent
        while walker is not None:
            args = walker.fn.args
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                names.add(arg.arg)
            for sub in ast.walk(walker.fn):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                    names.add(sub.id)
            walker = walker.enclosing
        return names

    def _check_closure_mutations(self, walker: _FunctionWalker) -> None:
        assert not isinstance(self.node, ast.Lambda)
        own = self._own_names()
        enclosing = self._enclosing_mutable_names()
        lock_guarded_lines = self._lines_under_local_lock(walker)
        for sub in ast.walk(self.node):
            mutated: str | None = None
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                if sub.func.attr in _MUTATORS and isinstance(
                    sub.func.value, ast.Name
                ):
                    mutated = sub.func.value.id
            elif isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    inner: ast.expr = target
                    while isinstance(inner, ast.Subscript):
                        inner = inner.value
                    if isinstance(inner, ast.Name) and not isinstance(
                        target, ast.Name
                    ):
                        mutated = inner.id
            if (
                mutated is not None
                and mutated not in own
                and mutated in enclosing
                and getattr(sub, "lineno", 0) not in lock_guarded_lines
            ):
                self.parent._emit(
                    "CN008",
                    f"{self.parent._qual()}.{self.node.name}: escaping "
                    f"callback mutates enclosing state {mutated!r} without "
                    "a lock (it may run on another thread)",
                    sub,
                    hint="guard the shared structure with a lock, or have "
                    "the callback return the value instead",
                )

    def _check_closure_mutations_lambda(self, lam: ast.Lambda) -> None:
        enclosing = self._enclosing_mutable_names()
        arg_names = {
            a.arg
            for a in (*lam.args.posonlyargs, *lam.args.args, *lam.args.kwonlyargs)
        }
        for sub in ast.walk(lam.body):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _MUTATORS
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id in enclosing
                and sub.func.value.id not in arg_names
            ):
                self.parent._emit(
                    "CN008",
                    f"{self.parent._qual()}.<lambda>: escaping lambda "
                    f"mutates enclosing state {sub.func.value.id!r} "
                    "without a lock",
                    sub,
                    hint="guard the shared structure with a lock, or have "
                    "the callback return the value instead",
                )

    def _lines_under_local_lock(self, walker: _FunctionWalker) -> set[int]:
        """Line numbers inside ``with <lock>`` blocks of the nested body,
        where the lock resolves via the enclosing scope's lock locals or a
        class lock — those mutations are properly guarded."""
        assert not isinstance(self.node, ast.Lambda)
        lines: set[int] = set()
        for sub in ast.walk(self.node):
            if isinstance(sub, (ast.With, ast.AsyncWith)):
                if any(
                    walker._lock_key(item.context_expr) is not None
                    for item in sub.items
                ):
                    for inner in ast.walk(sub):
                        lineno = getattr(inner, "lineno", None)
                        if lineno is not None:
                            lines.add(lineno)
        return lines


def _find_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Elementary cycles via DFS over strongly-connected subgraphs; each
    cycle is reported once, rotated to start at its smallest node."""
    cycles: set[tuple[str, ...]] = set()
    nodes = sorted(set(graph) | {n for vs in graph.values() for n in vs})

    def dfs(start: str, current: str, path: list[str], visited: set[str]) -> None:
        for succ in sorted(graph.get(current, ())):
            if succ == start and len(path) > 1:
                smallest = min(range(len(path)), key=lambda i: path[i])
                cycles.add(tuple(path[smallest:] + path[:smallest]))
            elif succ not in visited and succ >= start:
                visited.add(succ)
                dfs(start, succ, path + [succ], visited)
                visited.discard(succ)

    for node in nodes:
        dfs(node, node, [node], {node})
    return [list(c) for c in sorted(cycles)]


# -- public API -------------------------------------------------------------------


#: The engine's threaded modules, relative to the ``repro`` package — the
#: default analysis set for ``python -m repro lint --concurrency`` and the
#: population whose lock discipline the self-check gates on.
THREADED_MODULES: tuple[str, ...] = (
    "mapreduce/master.py",
    "mapreduce/backends.py",
    "mapreduce/counters.py",
    "mapreduce/faults.py",
    "mapreduce/pipeline.py",
    "mapreduce/scheduler.py",
    "dfs/blocks.py",
    "dfs/cache.py",
    "dfs/filesystem.py",
    "dfs/iostats.py",
    "dfs/namenode.py",
    "dfs/health.py",
    "telemetry/spans.py",
    "telemetry/metrics.py",
    "telemetry/exporters.py",
)


def default_threaded_files() -> list[pathlib.Path]:
    """Absolute paths of :data:`THREADED_MODULES` in this installation."""
    root = pathlib.Path(__file__).resolve().parent.parent
    return [root / rel for rel in THREADED_MODULES]


def missing_threaded_modules() -> list[str]:
    """Entries of :data:`THREADED_MODULES` that no longer exist on disk.

    A rename would otherwise silently drop the module from the CN sweep —
    the analyzer skips unreadable files, so the lint would keep passing
    while checking less.  ``scripts/check_threaded_modules.py`` gates
    ``make lint`` on this returning empty.
    """
    root = pathlib.Path(__file__).resolve().parent.parent
    return [rel for rel in THREADED_MODULES if not (root / rel).is_file()]


def analyze_concurrency_sources(
    sources: Iterable[tuple[str, str]],
) -> list[Finding]:
    """Concurrency findings for ``(text, filename)`` modules analyzed as one
    package (shared class table and lock-order graph)."""
    analyzer = ConcurrencyAnalyzer()
    for text, filename in sources:
        analyzer.add_module(text, filename)
    return analyzer.run()


def analyze_concurrency_files(
    paths: Iterable[str | pathlib.Path],
) -> list[Finding]:
    """Concurrency findings for a set of module files."""
    analyzer = ConcurrencyAnalyzer()
    for path in paths:
        analyzer.add_file(path)
    return analyzer.run()


__all__ = [
    "THREADED_MODULES",
    "ClassModel",
    "ConcurrencyAnalyzer",
    "LockOrderEdge",
    "analyze_concurrency_files",
    "analyze_concurrency_sources",
    "default_threaded_files",
    "missing_threaded_modules",
]
