"""``python -m repro lint`` — pre-flight static analysis from the shell.

Three modes:

* **plan mode** (no paths): build the pipeline model for ``--n/--nb/--m0``
  and run the plan linter plus the purity checker over every task class the
  pipeline would launch — validating the whole workflow without executing a
  single job;
* **source mode** (paths given): purity-check every mapper/reducer defined
  in the files, and plan-lint any pipeline configuration statically
  resolvable from the source (literal ``InversionConfig``/``InversionPlan``
  arguments, including module-level integer constants);
* **concurrency mode** (``--concurrency``): run the lockset / lock-order
  analyzer (rules ``CN001``–``CN008``) over the given paths, or over the
  engine's threaded modules (``repro.mapreduce``, ``repro.dfs``,
  ``repro.telemetry``) when no paths are given;
* **process-safety mode** (``--procsafety``): run the closure-capture /
  escape / mutation analyzer (rules ``PS001``–``PS008``) over the given
  paths, or over the whole ``repro`` package when no paths are given —
  the gate the planned ``ProcessPoolBackend`` rides on;
* **dataflow mode** (``--dataflow``): build the block-granularity
  dependency DAG for the plan and run the ``DF001``–``DF008`` rules —
  false barriers, write-before-read hazards, dead blocks, critical path
  vs the barrier schedule; ``--report`` adds the barrier-slack table and
  ``--replay spans.jsonl`` cross-checks a recorded trace against the DAG;
* **--self-check**: assert the analyzers themselves work — clean plans
  produce no findings, seeded defects produce the expected rule ids, and
  the engine's own modules pass the concurrency and process-safety
  analyzers — so ``make lint`` has a real gate even where ruff/mypy are
  unavailable.

Exit status is nonzero iff any error-severity finding survives
``--ignore`` / inline suppressions, making the command scriptable in CI.
"""

from __future__ import annotations

import argparse
import ast
import json
import pathlib
import sys
from typing import Sequence

from ..dfs.commit import manifest_path, staging_path
from ..inversion.config import InversionConfig
from ..inversion.plan import total_job_count
from .findings import (
    Finding,
    filter_ignored,
    has_errors,
    render_json,
    render_text,
)
from .concurrency import analyze_concurrency_files, default_threaded_files
from .dataflow import (
    build_block_dag,
    lint_dataflow,
    barrier_slack_data,
    render_barrier_slack,
    replay_spans,
)
from .procsafety import analyze_procsafety_files, default_procsafety_files
from .model import PipelineModel, build_model
from .planlint import lint_model, lint_plan
from .purity import analyze_job, analyze_source


def pipeline_job_confs(layout) -> list:
    """One representative :class:`JobConf` per task class the pipeline
    launches (all LU jobs share their mapper/reducer classes)."""
    from ..inversion.invert_job import invert_job
    from ..inversion.lu_jobs import lu_job, partition_job

    confs = []
    tree = layout.plan.tree
    if not tree.is_leaf:
        confs.append(partition_job(layout))
        confs.append(lu_job(layout, tree))
    confs.append(invert_job(layout))
    return confs


def lint_pipeline(
    n: int, config: InversionConfig | None = None
) -> tuple[list[Finding], PipelineModel]:
    """All pipeline analyzers: plan rules, block-dataflow defect rules
    (DF002/3/4/6/7 — the structural DF001/DF005 reports are ``--dataflow``
    mode's business), and task purity.  This is what the driver pre-flight
    runs."""
    findings, model = lint_plan(n, config)
    findings.extend(lint_dataflow(model))
    for conf in pipeline_job_confs(model.layout):
        findings.extend(analyze_job(conf))
    return findings, model


# -- source mode -----------------------------------------------------------------


def _module_int_constants(tree: ast.Module) -> dict[str, int]:
    """Module-level ``NAME = 42`` (and tuple-unpacked) integer constants."""
    consts: dict[str, int] = {}
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if (
                isinstance(target, ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, int)
            ):
                consts[target.id] = stmt.value.value
            elif (
                isinstance(target, ast.Tuple)
                and isinstance(stmt.value, ast.Tuple)
                and len(target.elts) == len(stmt.value.elts)
            ):
                for name_node, value_node in zip(target.elts, stmt.value.elts):
                    if (
                        isinstance(name_node, ast.Name)
                        and isinstance(value_node, ast.Constant)
                        and isinstance(value_node.value, int)
                    ):
                        consts[name_node.id] = value_node.value
    return consts


def _resolve_int(node: ast.AST, consts: dict[str, int]) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.Name):
        return consts.get(node.id)
    return None


def _plan_specs_from_source(
    tree: ast.Module,
) -> list[tuple[int | None, dict[str, int]]]:
    """Statically resolvable pipeline configurations in a module.

    Returns ``(n, {nb, m0, ...})`` tuples: ``InversionPlan(n=..., nb=...)``
    calls give a concrete order ``n``; ``InversionConfig(nb=..., m0=...)``
    calls give only the tunables (``n`` is runtime data), reported as
    ``None`` and linted at a representative full-tree order.
    """
    consts = _module_int_constants(tree)
    specs: list[tuple[int | None, dict[str, int]]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = (
            node.func.id
            if isinstance(node.func, ast.Name)
            else getattr(node.func, "attr", "")
        )
        if name not in ("InversionConfig", "InversionPlan"):
            continue
        kwargs: dict[str, int] = {}
        for kw in node.keywords:
            if kw.arg is None:
                continue
            value = _resolve_int(kw.value, consts)
            if value is not None:
                kwargs[kw.arg] = value
        if name == "InversionPlan":
            specs.append((kwargs.pop("n", None), kwargs))
        else:
            specs.append((None, kwargs))
    return specs


def lint_source_file(path: str | pathlib.Path) -> list[Finding]:
    """Source mode for one file: purity of task callables plus plan lint of
    any statically resolvable pipeline configuration."""
    path = pathlib.Path(path)
    text = path.read_text(encoding="utf-8")
    findings = analyze_source(text, str(path))
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError:
        return findings  # analyze_source already reported it
    for n, kwargs in _plan_specs_from_source(tree):
        config_kwargs = {
            k: v for k, v in kwargs.items() if k in ("nb", "m0")
        }
        try:
            config = InversionConfig(**config_kwargs)
        except (TypeError, ValueError) as exc:
            findings.append(
                Finding.of(
                    "PL002",
                    f"invalid pipeline configuration {config_kwargs}: {exc}",
                    location=str(path),
                )
            )
            continue
        # Without a concrete order, validate at a representative full-tree
        # size (depth 3) — the layout rules are order-independent.
        order = n if n is not None else 8 * config.nb
        plan_findings, _ = lint_plan(order, config)
        findings.extend(plan_findings)
    return findings


# -- self-check -------------------------------------------------------------------


def _self_check(verbose: bool = True) -> int:
    """Assert the analyzers detect what they claim to detect."""
    failures: list[str] = []

    def check(label: str, ok: bool, detail: str = "") -> None:
        if verbose:
            print(f"  {'ok' if ok else 'FAIL'}  {label}")
        if not ok:
            failures.append(f"{label}: {detail}")

    # 1. Clean pipelines (both analyzers) across the paper's ablations.
    clean_cases = [
        (4096, InversionConfig(nb=512)),
        (256, InversionConfig(nb=64)),
        (256, InversionConfig(nb=64, separate_files=False)),
        (256, InversionConfig(nb=64, transpose_u=False)),
        (256, InversionConfig(nb=64, block_wrap=False)),
        (250, InversionConfig(nb=64, m0=2)),
        (48, InversionConfig(nb=64)),  # single-leaf plan
    ]
    for n, config in clean_cases:
        findings, model = lint_pipeline(n, config)
        check(
            f"clean plan n={n} nb={config.nb} m0={config.m0} "
            f"sep={config.separate_files} wrap={config.block_wrap} "
            f"tU={config.transpose_u} -> no findings "
            f"({model.job_count} jobs)",
            not findings,
            render_text(findings),
        )

    # 2. Seeded defects each produce the expected rule id.
    def rules_of(model: PipelineModel) -> set[str]:
        return {f.rule for f in lint_model(model)}

    model = build_model(512, InversionConfig(nb=64))
    dropped = sorted(model.find_step("lu:/Root[reduce]").writes)[0]
    model.find_step("lu:/Root[reduce]").writes.discard(dropped)
    check("dropped intermediate write -> PL003", "PL003" in rules_of(model))

    model = build_model(512, InversionConfig(nb=64))
    model.find_step("partition[map]").writes.add(model.layout.input_path)
    check("double-written path -> PL004", "PL004" in rules_of(model))

    model = build_model(512, InversionConfig(nb=64))
    model.steps = [s for s in model.steps if s.job != "invert-final"]
    check("missing final job -> PL001", "PL001" in rules_of(model))

    model = build_model(512, InversionConfig(nb=64))
    model.grid = (3, 3)
    check("f1*f2 != m0 -> PL007", "PL007" in rules_of(model))

    model = build_model(512, InversionConfig(nb=64))
    model.config = model.config.with_overrides(transpose_u=False)
    check("transpose flag flipped -> PL006", "PL006" in rules_of(model))

    model = build_model(512, InversionConfig(nb=64))
    step = model.find_step("lu:/Root[reduce]")
    step.reads.add(staging_path("attempt-bad", "/Root/lu/L2/L.0"))
    step.writes.add(manifest_path(model.config.root, "job:lu:/Root"))
    check(
        "job touching staging/manifest paths -> PL009",
        "PL009" in rules_of(model),
    )

    # 3. Purity checker on known-impure task bodies.
    from .purity import analyze_callable

    counter: list[int] = []

    def impure_mapper(ctx, split):
        import random

        counter.append(random.random())  # noqa: S311 - the point of the test
        split.payload = 0

    purity_rules = {f.rule for f in analyze_callable(impure_mapper)}
    check(
        "impure mapper -> PU002/PU003/PU004",
        {"PU002", "PU003", "PU004"} <= purity_rules,
        str(purity_rules),
    )
    check("builtin -> PU001 info", {
        f.rule for f in analyze_callable(len)
    } == {"PU001"})

    def clockbound_mapper(ctx, split):
        from random import Random

        rng = Random()
        for key in {1, 2, 3}:
            ctx.emit(key, rng.random())

    pu67_rules = {f.rule for f in analyze_callable(clockbound_mapper)}
    check(
        "unseeded Random + set iteration -> PU006/PU007",
        {"PU006", "PU007"} <= pu67_rules,
        str(pu67_rules),
    )

    # 4. Concurrency analyzer: seeded-bad sources fire each CN rule, the
    # engine's real threaded modules are clean.
    from .concurrency import analyze_concurrency_sources

    bad_store = """\
import threading

class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}  # guarded-by: _lock

    def get(self, key):
        return self._items[key]

    def put(self, key, value):
        self._refresh(key)
        self._items[key] = value

    def _refresh(self, key):  # requires-lock: _lock
        self._items.pop(key, None)

    def snapshot(self):
        return self._items

    def drain(self, worker_thread):
        with self._lock:
            worker_thread.join()

class Mislabeled:
    def __init__(self):
        self.state = 0  # guarded-by: _mutex

class Pool:
    def submit_all(self, items):
        out = []
        def task(item):
            out.append(item)
        return [task for _ in items]
"""
    cn_rules = {
        f.rule
        for f in analyze_concurrency_sources([(bad_store, "bad_store.py")])
    }
    check(
        "seeded concurrency defects -> CN001/2/3/4/6/7/8",
        {"CN001", "CN002", "CN003", "CN004", "CN006", "CN007", "CN008"}
        <= cn_rules,
        str(cn_rules),
    )

    bad_order = """\
import threading

class Left:
    def __init__(self, right: "Right"):
        self._lock = threading.Lock()
        self.right = right

    def poke(self):
        with self._lock:
            with self.right._lock:
                pass

class Right:
    def __init__(self, left: "Left"):
        self._lock = threading.Lock()
        self.left = left

    def poke(self):
        with self._lock:
            with self.left._lock:
                pass

class Caller:
    def __init__(self):
        self._lock = threading.Lock()
        self.helper = Helper()

    def outer(self):
        with self._lock:
            self.helper.inner()

class Helper:
    def __init__(self):
        self._lock = threading.Lock()
        self.caller: "Caller | None" = None

    def inner(self):
        with self._lock:
            pass
"""
    order_rules = {
        f.rule
        for f in analyze_concurrency_sources([(bad_order, "bad_order.py")])
    }
    check(
        "opposing lock nesting -> CN005 (helper without CN003 noise)",
        "CN005" in order_rules and "CN003" not in order_rules,
        str(order_rules),
    )

    clean_store = """\
import threading

class Good:
    def __init__(self):
        self._lock = threading.Lock()
        self._data = {}  # guarded-by: _lock

    def put(self, key, value):
        with self._lock:
            self._data[key] = value

    def snapshot(self):
        with self._lock:
            return dict(self._data)
"""
    clean_cn = analyze_concurrency_sources([(clean_store, "clean_store.py")])
    check(
        "guarded store -> no concurrency findings",
        not clean_cn,
        render_text(clean_cn),
    )

    engine_findings = analyze_concurrency_files(default_threaded_files())
    check(
        "engine threaded modules (mapreduce/dfs/telemetry) concurrency-clean",
        not engine_findings,
        render_text(engine_findings),
    )

    # 5. Process-safety analyzer: seeded-bad sources fire every PS rule, the
    # whole engine package is clean.
    from .procsafety import analyze_procsafety_sources

    bad_tasks = """\
import threading
import numpy as np
from repro.dfs import DFS
from repro.mapreduce import FnMapper, JobConf

REGISTRY = {}
lock = threading.Lock()
dfs = DFS()
log_file = open("/tmp/task.log", "w")

def helper_scale(m, factor):
    m *= factor

def task(ctx, split):
    with lock:
        pass
    dfs.read_bytes("/a")
    log_file.write("x")
    REGISTRY[split.index] = 1
    m = ctx.read_matrix("/m")
    m[0, 0] = 2.0
    helper_scale(ctx.read_matrix("/m2"), 2.0)
    np.random.shuffle([1, 2])
    return m

conf = JobConf(name="t", mapper_factory=lambda: FnMapper(task), splits=[])
"""
    ps_rules = {
        f.rule
        for f in analyze_procsafety_sources([(bad_tasks, "bad_tasks.py")])
    }
    check(
        "seeded process-safety defects -> PS001/2/3/4/5/6/7",
        {"PS001", "PS002", "PS003", "PS004", "PS005", "PS006", "PS007"}
        <= ps_rules,
        str(ps_rules),
    )

    bad_shm = """\
import numpy as np
from multiprocessing import shared_memory

def ship_block(name):
    shm = shared_memory.SharedMemory(name=name)
    view = np.frombuffer(shm.buf, dtype=np.float64)
    shm.close()
    return float(view[0])
"""
    shm_rules = {
        f.rule for f in analyze_procsafety_sources([(bad_shm, "bad_shm.py")])
    }
    check("view used after shm.close() -> PS008", shm_rules == {"PS008"},
          str(shm_rules))

    clean_task = """\
import numpy as np
from repro.mapreduce import FnMapper, JobConf

def task(ctx, split):
    rng = np.random.default_rng(1000 + split.index)
    m = ctx.read_matrix("/m")
    out = m @ m + rng.standard_normal(m.shape)
    ctx.write_matrix(f"/out/part.{split.index}", out)

conf = JobConf(name="t", mapper_factory=lambda: FnMapper(task), splits=[])
"""
    clean_ps = analyze_procsafety_sources([(clean_task, "clean_task.py")])
    check(
        "context-disciplined task -> no process-safety findings",
        not clean_ps,
        render_text(clean_ps),
    )

    engine_ps = analyze_procsafety_files(default_procsafety_files())
    check(
        "whole repro package process-safety-clean (ProcessPoolBackend gate)",
        not engine_ps,
        render_text(engine_ps),
    )

    # 6. Dataflow analyzer (DF rules): the acceptance plan's structure is
    # reported, seeded model corruptions fire each defect rule, and a real
    # traced run replays cleanly against the static DAG.
    from .dataflow import build_block_dag, lint_dataflow, replay_spans
    from .findings import Severity

    acceptance = InversionConfig(nb=2, m0=2)
    model = build_model(8, acceptance)
    dag = build_block_dag(model)
    df = lint_dataflow(model, dag, structural=True)
    check(
        "acceptance plan n=8 nb=2 m0=2 -> DF001+DF005 info only, "
        "zero DF hazards",
        {f.rule for f in df} == {"DF001", "DF005"}
        and all(f.severity == Severity.INFO for f in df),
        render_text(df),
    )
    depth1 = [
        f for f in df if f.rule == "DF001" and f.location == "/Root"
    ]
    check(
        "depth-1 sibling subtrees /Root/A1 and /Root/OUT barrier-independent",
        len(depth1) == 1 and "/Root/A1" in depth1[0].message
        and "/Root/OUT" in depth1[0].message,
        render_text(depth1),
    )
    chain = dag.critical_path()
    check(
        "critical path edges strictly shorter than barrier sync points",
        len(chain) - 1 < 2 * len(model.steps) - 1
        and len(chain) == len(model.steps),
        f"chain {len(chain)} of {len(model.steps)} stages",
    )

    def df_rules(m: PipelineModel) -> set[str]:
        return {f.rule for f in lint_dataflow(m)}

    model = build_model(8, acceptance)
    model.find_step("lu:/Root[map]").reads.add(model.layout.final_path(0))
    check("read of a later stage's block -> DF002", "DF002" in df_rules(model))

    model = build_model(8, acceptance)
    model.find_step("partition[map]").writes.add("/Root/dead.bin")
    check("write nobody reads -> DF003", "DF003" in df_rules(model))

    model = build_model(8, acceptance)
    step = model.find_step("lu:/Root[map]")
    step.reads.add(sorted(step.writes)[0])
    check("same-stage DFS round-trip -> DF004", "DF004" in df_rules(model))

    model = build_model(8, acceptance)
    out_path = sorted(model.find_step("lu:/Root[reduce]").writes)[0]
    model.find_step("lu:/Root[map]").reads.add(out_path)
    check("reciprocal map/reduce reads -> DF006 cycle", "DF006" in df_rules(model))

    model = build_model(8, acceptance)
    model.find_step("invert-final[map]").reads.add(model.layout.final_path(0))
    check(
        "map reading its own job's reduce output -> DF007",
        "DF007" in df_rules(model),
    )

    model = build_model(8, acceptance)
    cross = model.find_step("master-lu:/Root/A1/A1").writes
    model.find_step("master-lu:/Root/OUT/A1").reads.add(sorted(cross)[0])
    df001_left = {
        f.location for f in lint_dataflow(model, structural=True)
        if f.rule == "DF001"
    }
    check(
        "seeded cross-subtree edge removes the root's DF001 independence",
        "/Root" not in df001_left,
        str(df001_left),
    )

    # Static-vs-dynamic: record one traced inversion at the acceptance
    # configuration and replay its span export against the DAG.
    import tempfile

    from ..telemetry.cli import run_traced_inversion
    from ..telemetry.exporters import read_jsonl

    with tempfile.TemporaryDirectory() as tmp:
        jsonl = f"{tmp}/spans.jsonl"
        run_traced_inversion(n=8, nb=2, m0=2, seed=0, jsonl=jsonl)
        spans = read_jsonl(jsonl)
    model = build_model(8, acceptance)
    replay_findings, stats = replay_spans(model, spans)
    check(
        "traced n=8 run replays cleanly against the static DAG "
        f"({stats.matched} reads matched)",
        not replay_findings and stats.matched > 0
        and stats.matched == stats.attributed,
        render_text(replay_findings) or stats.summary(),
    )
    dropped_step = model.find_step("invert-final[map]")
    dropped_step.reads -= set(
        model.layout.map_input_path(j) for j in range(acceptance.m0)
    )
    replay_findings, _ = replay_spans(model, spans)
    check(
        "dropped model read surfaces as DF008 on replay",
        {f.rule for f in replay_findings} == {"DF008"},
        render_text(replay_findings),
    )

    if failures:
        print(f"self-check FAILED ({len(failures)} failure(s))")
        return 1
    print("self-check OK")
    return 0


# -- entry point ------------------------------------------------------------------


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Statically validate inversion pipelines (plan dataflow "
        "+ mapper/reducer purity) without executing any job.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="source files to lint; when omitted, lint the plan for "
        "--n/--nb/--m0",
    )
    parser.add_argument("--n", type=int, default=4096)
    parser.add_argument("--nb", type=int, default=512)
    parser.add_argument("--m0", type=int, default=4)
    parser.add_argument(
        "--ignore",
        default="",
        help="comma-separated rule ids to suppress (e.g. PL008,PU001)",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON findings")
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help="run the lockset/lock-order analyzer (CN rules) over PATHS, or "
        "over the engine's threaded modules when no paths are given",
    )
    parser.add_argument(
        "--procsafety",
        action="store_true",
        help="run the process-safety/ownership analyzer (PS rules) over "
        "PATHS, or over the whole repro package when no paths are given",
    )
    parser.add_argument(
        "--dataflow",
        action="store_true",
        help="run the block-dataflow analyzer (DF rules) over the plan for "
        "--n/--nb/--m0: block DAG, false barriers, hazards, dead blocks, "
        "critical path vs the barrier schedule",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="with --dataflow, print the barrier-slack table (per-depth "
        "removable barriers, critical path, max width)",
    )
    parser.add_argument(
        "--replay",
        metavar="SPANS_JSONL",
        help="with --dataflow, replay a span export (repro trace --jsonl) "
        "against the static DAG and flag observed read edges the model "
        "missed (DF008)",
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="verify the analyzers against clean and deliberately corrupted "
        "pipelines",
    )
    args = parser.parse_args(argv)

    if args.self_check:
        return _self_check()

    if (args.report or args.replay) and not args.dataflow:
        print("--report/--replay require --dataflow", file=sys.stderr)
        return 2

    if args.dataflow:
        try:
            config = InversionConfig(nb=args.nb, m0=args.m0)
            model = build_model(args.n, config)
        except ValueError as exc:
            print(f"invalid configuration: {exc}", file=sys.stderr)
            return 2
        dag = build_block_dag(model)
        findings = lint_dataflow(model, dag, structural=True)
        stats = None
        if args.replay:
            from ..telemetry.exporters import read_jsonl

            try:
                spans = read_jsonl(args.replay)
            except (OSError, ValueError) as exc:
                print(f"cannot read span export: {exc}", file=sys.stderr)
                return 2
            replay_findings, stats = replay_spans(model, spans)
            findings.extend(replay_findings)
        if not args.json:
            print(
                f"dataflow n={args.n} nb={args.nb} m0={args.m0}: "
                f"{len(model.steps)} stages, {model.job_count} jobs, "
                f"{len(dag.producers)} blocks, {len(dag.edges())} "
                "producer->consumer edges"
            )
            if args.report:
                print(render_barrier_slack(model, dag))
            if stats is not None:
                print(f"replay {args.replay}: {stats.summary()}")
        findings = filter_ignored(findings, args.ignore.split(","))
        if args.json and args.report:
            # Machine-readable --report: one object holding the slack table
            # and the findings (plain --json stays a bare findings array).
            print(
                json.dumps(
                    {
                        "report": barrier_slack_data(model, dag),
                        "findings": json.loads(render_json(findings)),
                    },
                    indent=2,
                )
            )
        else:
            print(render_json(findings) if args.json else render_text(findings))
        return 1 if has_errors(findings) else 0

    findings: list[Finding] = []
    if args.concurrency or args.procsafety:
        if args.concurrency:
            analyze, default_paths, label = (
                analyze_concurrency_files, default_threaded_files, "concurrency"
            )
        else:
            analyze, default_paths, label = (
                analyze_procsafety_files, default_procsafety_files, "procsafety"
            )
        paths = [pathlib.Path(p) for p in args.paths] or default_paths()
        try:
            findings = analyze(paths)
        except OSError as exc:
            print(f"cannot read sources: {exc}", file=sys.stderr)
            return 2
        if not args.json:
            print(f"{label}: analyzed {len(paths)} module(s)")
        findings = filter_ignored(findings, args.ignore.split(","))
        print(render_json(findings) if args.json else render_text(findings))
        return 1 if has_errors(findings) else 0
    if args.paths:
        for path in args.paths:
            try:
                findings.extend(lint_source_file(path))
            except OSError as exc:
                print(f"cannot read {path}: {exc}", file=sys.stderr)
                return 2
    else:
        try:
            config = InversionConfig(nb=args.nb, m0=args.m0)
            findings, model = lint_pipeline(args.n, config)
        except ValueError as exc:
            print(f"invalid configuration: {exc}", file=sys.stderr)
            return 2
        if not args.json:
            closed_form = total_job_count(args.n, args.nb)
            print(
                f"plan n={args.n} nb={args.nb} m0={args.m0}: "
                f"depth {model.plan.depth}, {model.job_count} jobs "
                f"(closed form 2^d + 1 = {closed_form}), "
                f"{len(model.steps)} steps, "
                f"{len(model.all_writes())} DFS files"
            )

    findings = filter_ignored(findings, args.ignore.split(","))
    print(render_json(findings) if args.json else render_text(findings))
    return 1 if has_errors(findings) else 0


def register_commands(registry) -> None:
    """Hook for the ``python -m repro`` subcommand registry."""
    registry.add_passthrough(
        "lint",
        main,
        help="statically validate pipelines without running them "
        "(plan dataflow + block DAG/barrier slack + mapper/reducer purity "
        "+ lock discipline + process safety); see python -m repro lint "
        "--help",
    )
