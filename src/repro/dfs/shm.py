"""Shared-memory export of DFS file contents for process-parallel workers.

The in-memory DFS lives in the driver process; a worker running in a child
process cannot follow object references into it.  Instead of pickling block
payloads into every task (serialization on the hot path — the anti-pattern
mrtsqr's C++ pipeline exists to avoid), the driver *exports* the sealed
namespace into ``multiprocessing.shared_memory`` segments once per wave and
ships only a :class:`ShmManifest` — a picklable map of
``path -> (segment, offset, length, generation)``.  Workers attach the
segments and map read-only ``numpy.frombuffer`` views directly onto them,
so PR 5's zero-copy read path survives the process boundary.

Lifetime discipline
-------------------

* Export segments are **driver-owned**: created by :class:`ShmExporter`,
  re-used across waves while file generations are unchanged, unlinked by
  :meth:`ShmExporter.close` (or compaction).  Unlinking with children still
  attached is safe on POSIX — their mappings stay valid until they close.
* Result segments (large task write-back) are created by the *child* and
  adopted by the driver, which unlinks them after landing the bytes.
* Every open handle in this process is tracked in :data:`REGISTRY` so tests
  can assert nothing leaks after a job ends.
* PS008 close discipline: views are created and consumed in different
  functions from the ones that call ``close()``; no function takes a view
  and then closes its segment.

``resource_tracker`` interplay (CPython 3.11): *every* ``SharedMemory``
construction — attach as well as create — registers the name with the
process's resource tracker, which unlinks still-registered names when it
shuts down.  A forked child shares the driver's tracker process, so its
registrations are harmless no-ops and must **not** be unregistered (that
would strip the driver's crash protection).  A spawned child has its own
tracker, which would destroy shared segments when the child exits — those
registrations must be dropped.  :func:`set_child_tracker_shared` tells this
module which world the current worker process lives in.
"""

from __future__ import annotations

import threading
import uuid
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .filesystem import DFS

from .namenode import FileNotFound, IsADirectory, NotADirectory, normalize

#: Every segment this package creates carries this name prefix, so leak
#: checks can scan ``/dev/shm`` without false positives from other software.
SEGMENT_PREFIX = "repro-shm-"

#: ``None`` in the driver process; set in worker processes by the pool
#: backend: ``True`` when the worker shares the driver's resource tracker
#: (fork), ``False`` when it has its own (spawn/forkserver).
_CHILD_TRACKER_SHARED: bool | None = None


def set_child_tracker_shared(shared: bool) -> None:
    """Declare this process a pool worker (see module docstring)."""
    global _CHILD_TRACKER_SHARED
    _CHILD_TRACKER_SHARED = shared


def new_segment_name() -> str:
    return SEGMENT_PREFIX + uuid.uuid4().hex[:16]


class SegmentRegistry:
    """Process-local ledger of open shared-memory handles.

    Purely observational: the lifetime tests assert :meth:`live` is empty
    after a job ends, catching leaked exports or un-adopted result segments.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._open: dict[str, str] = {}  # guarded-by: _lock

    def add(self, name: str, role: str) -> None:
        with self._lock:
            self._open[name] = role

    def drop(self, name: str) -> None:
        with self._lock:
            self._open.pop(name, None)

    def live(self) -> dict[str, str]:
        with self._lock:
            return dict(self._open)


#: The process-wide registry (one per process; children get their own).
REGISTRY = SegmentRegistry()


def _untrack(seg: shared_memory.SharedMemory) -> None:
    """Drop this process's resource-tracker registration for ``seg``."""
    try:
        resource_tracker.unregister(
            getattr(seg, "_name", seg.name), "shared_memory"
        )
    except Exception:  # pragma: no cover - tracker already gone
        pass


def create_segment(
    size: int, name: str | None = None
) -> shared_memory.SharedMemory:
    """Create a segment; ownership per the module's tracker rules."""
    seg = shared_memory.SharedMemory(
        name=name or new_segment_name(), create=True, size=max(size, 1)
    )
    if _CHILD_TRACKER_SHARED is False:
        # Spawned worker: its private tracker would unlink this segment at
        # child exit, destroying it before the driver adopts the bytes.
        _untrack(seg)
    REGISTRY.add(seg.name, "created")
    return seg


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment by name."""
    seg = shared_memory.SharedMemory(name=name)
    if _CHILD_TRACKER_SHARED is False:
        _untrack(seg)
    REGISTRY.add(seg.name, "attached")
    return seg


def close_segment(
    seg: shared_memory.SharedMemory, *, unlink: bool = False
) -> None:
    """Close (and optionally unlink) a segment, updating the registry."""
    name = seg.name
    seg.close()
    if unlink:
        try:
            seg.unlink()
        except FileNotFoundError:
            pass
    REGISTRY.drop(name)


def destroy_segment(name: str) -> bool:
    """Best-effort unlink of a segment by name (e.g. after killing the
    child that created it).  Returns whether a segment was found."""
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - lost a race
        return False
    REGISTRY.drop(name)
    return True


@dataclass(frozen=True)
class ShmFile:
    """Where one DFS file's bytes live inside the shared export."""

    segment: str
    offset: int
    length: int
    generation: int


@dataclass(frozen=True)
class ShmManifest:
    """Picklable snapshot of the sealed namespace mapped onto segments.

    ``errors`` carries per-path read failures discovered at export time
    (e.g. every replica lost under a chaos schedule): the *file* is listed
    but unreadable, and a worker touching it gets the recorded error —
    failing just that attempt, exactly as an in-process read would.
    """

    files: dict[str, ShmFile] = field(default_factory=dict)
    errors: dict[str, str] = field(default_factory=dict)
    #: All directory paths at export time (for ``list_dir`` on dirs that
    #: contain only sub-directories and for ``is_dir``).
    dirs: frozenset[str] = frozenset()

    def segment_names(self) -> set[str]:
        return {f.segment for f in self.files.values()}


class SharedDFSView:
    """Read-only DFS facade over a :class:`ShmManifest` (worker side).

    ``segments`` may be shared across views so a long-lived worker keeps
    its attachments between tasks; :meth:`prune` drops attachments the
    current manifest no longer references.  Views handed out by
    :meth:`read_buffer` alias segment memory — callers must not hold them
    across :meth:`close`.
    """

    def __init__(
        self,
        manifest: ShmManifest,
        segments: dict[str, shared_memory.SharedMemory] | None = None,
    ) -> None:
        self.manifest = manifest
        self._segments = segments if segments is not None else {}

    # -- plumbing ------------------------------------------------------------

    def _entry(self, path: str) -> ShmFile:
        norm = normalize(path)
        entry = self.manifest.files.get(norm)
        if entry is None:
            message = self.manifest.errors.get(norm)
            if message is not None:
                raise IOError(
                    f"{norm}: unreadable at export time: {message}"
                )
            if norm in self.manifest.dirs:
                raise IsADirectory(norm)
            raise FileNotFound(norm)
        return entry

    def read_buffer(self, path: str) -> memoryview:
        """The file's bytes as a zero-copy view onto its shared segment."""
        entry = self._entry(path)
        seg = self._segments.get(entry.segment)
        if seg is None:
            seg = attach_segment(entry.segment)
            self._segments[entry.segment] = seg
        return seg.buf[entry.offset : entry.offset + entry.length]

    # -- DFS read surface ----------------------------------------------------

    def read_bytes(self, path: str, *, local: bool = False) -> bytes:
        return bytes(self.read_buffer(path))

    def read_text(self, path: str, *, local: bool = False) -> str:
        return self.read_bytes(path).decode("utf-8")

    def read_range(
        self, path: str, offset: int, length: int, *, local: bool = False
    ) -> bytes:
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        buf = self.read_buffer(path)
        return bytes(buf[offset : offset + length])

    def exists(self, path: str) -> bool:
        norm = normalize(path)
        return (
            norm in self.manifest.files
            or norm in self.manifest.errors
            or norm in self.manifest.dirs
        )

    def is_dir(self, path: str) -> bool:
        return normalize(path) in self.manifest.dirs

    def file_size(self, path: str) -> int:
        return self._entry(path).length

    def list_dir(self, path: str) -> list[str]:
        norm = normalize(path)
        if norm in self.manifest.files:
            raise NotADirectory(norm)
        if norm not in self.manifest.dirs:
            raise FileNotFound(norm)
        prefix = norm.rstrip("/") + "/"
        if norm == "/":
            prefix = "/"
        names = set()
        for known in (
            *self.manifest.files,
            *self.manifest.errors,
            *self.manifest.dirs,
        ):
            if known != norm and known.startswith(prefix):
                names.add(known[len(prefix) :].split("/", 1)[0])
        return sorted(names)

    # -- lifetime ------------------------------------------------------------

    def prune(self, keep: set[str]) -> None:
        """Close attachments the current manifest no longer references."""
        for name in list(self._segments):
            if name not in keep:
                try:
                    close_segment(self._segments.pop(name))
                except BufferError:  # pragma: no cover - a view escaped
                    pass

    def close(self) -> None:
        self.prune(set())


class ShmExporter:
    """Incremental, generation-keyed export of the namespace into segments.

    Each :meth:`sync` diffs the sealed namespace against what is already
    exported: unchanged ``(path, generation)`` pairs are re-used verbatim
    (no copy, no read accounting), while new or rewritten files are read
    through the normal accounted DFS read path — so the export shows up in
    iostats and DFS_READ spans as the one physical read it is, and worker
    reads against the segments cost nothing — and appended into one fresh
    segment per wave-delta.

    Overwritten or deleted files leave garbage bytes behind in old
    segments; when the garbage exceeds ``compact_garbage_bytes`` the
    exporter drops every segment and re-exports the live set.
    """

    def __init__(
        self, dfs: "DFS", *, compact_garbage_bytes: int = 64 << 20
    ) -> None:
        self.dfs = dfs
        self.compact_garbage_bytes = compact_garbage_bytes
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._files: dict[str, ShmFile] = {}
        #: (generation, message) per path that failed to read, so a broken
        #: file is re-read only when its content actually changes.
        self._errors: dict[str, tuple[int, str]] = {}
        self._garbage_bytes = 0

    def sync(self) -> ShmManifest:
        namenode = self.dfs.namenode
        paths = namenode.walk_files("/")
        dirs = self._collect_dirs(paths)
        live: dict[str, ShmFile] = {}
        errors: dict[str, str] = {}
        fresh: list[tuple[str, int]] = []
        for path in paths:
            try:
                generation = namenode.get_file(path).generation
            except FileNotFound:  # pragma: no cover - raced a delete
                continue
            known = self._files.get(path)
            if known is not None and known.generation == generation:
                live[path] = known
                continue
            failed = self._errors.get(path)
            if failed is not None and failed[0] == generation:
                errors[path] = failed[1]
                continue
            fresh.append((path, generation))

        self._garbage_bytes += sum(
            entry.length
            for path, entry in self._files.items()
            if live.get(path) is not entry
        )

        if fresh:
            payloads: list[tuple[str, int, bytes]] = []
            for path, generation in fresh:
                try:
                    data = self.dfs.read_bytes(path)
                except Exception as exc:
                    self._errors[path] = (generation, str(exc))
                    errors[path] = str(exc)
                    continue
                payloads.append((path, generation, data))
            if payloads:
                seg = create_segment(sum(len(d) for _, _, d in payloads))
                offset = 0
                for path, generation, data in payloads:
                    seg.buf[offset : offset + len(data)] = data
                    live[path] = ShmFile(
                        segment=seg.name,
                        offset=offset,
                        length=len(data),
                        generation=generation,
                    )
                    offset += len(data)
                self._segments[seg.name] = seg

        self._files = live
        for path in list(self._errors):
            if path not in errors:
                del self._errors[path]
        self._drop_dead_segments()
        if self._garbage_bytes > self.compact_garbage_bytes:
            self._compact()
        return ShmManifest(
            files=dict(self._files), errors=errors, dirs=dirs
        )

    @staticmethod
    def _collect_dirs(paths: list[str]) -> frozenset[str]:
        dirs = {"/"}
        for path in paths:
            parts = path.split("/")[1:-1]
            prefix = ""
            for part in parts:
                prefix += "/" + part
                dirs.add(prefix)
        return frozenset(dirs)

    def _drop_dead_segments(self) -> None:
        referenced = {entry.segment for entry in self._files.values()}
        for name in list(self._segments):
            if name not in referenced:
                close_segment(self._segments.pop(name), unlink=True)

    def _compact(self) -> None:
        """Drop everything; the next :meth:`sync` re-exports the live set.

        Children still attached to the old segments keep valid mappings
        until they prune — POSIX keeps unlinked memory alive while mapped.
        """
        for name in list(self._segments):
            close_segment(self._segments.pop(name), unlink=True)
        self._files = {}
        self._errors = {}
        self._garbage_bytes = 0

    @property
    def exported_bytes(self) -> int:
        return sum(entry.length for entry in self._files.values())

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def close(self) -> None:
        self._compact()


__all__ = [
    "REGISTRY",
    "SEGMENT_PREFIX",
    "SegmentRegistry",
    "SharedDFSView",
    "ShmExporter",
    "ShmFile",
    "ShmManifest",
    "attach_segment",
    "close_segment",
    "create_segment",
    "destroy_segment",
    "new_segment_name",
    "set_child_tracker_shared",
]
