"""Two-phase output commit: staging paths, commit scopes, manifests.

The protocol mirrors Hadoop's ``OutputCommitter``: every writer (a task
attempt or a master phase) stages its files under a private directory in
the ``/_tmp`` namespace as *pending* (invisible) files, and the committer
publishes the winning attempt's files to their final paths with one atomic
multi-file rename (:meth:`repro.dfs.filesystem.DFS.publish`).  A crash at
any point leaves either nothing visible or everything visible — never a
torn prefix.

Completed steps are recorded in a :class:`CommitLog`: a JSON manifest per
step, written *last*, listing exactly the files the step published.  Resume
consults manifests instead of probing for file existence, so a crash
between two files of a multi-file write can never be mistaken for a
completed step.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .filesystem import DFS

#: Root of the staging namespace.  Everything under it is uncommitted by
#: definition; fsck may delete the whole subtree at any quiescent moment.
STAGING_ROOT = "/_tmp"

#: Name of the manifest directory kept under the pipeline root.
COMMIT_DIR = "_commit"


def staging_dir(tag: str) -> str:
    """The private staging directory for one writer (attempt or phase)."""
    return f"{STAGING_ROOT}/{tag}"


def staging_path(tag: str, final_path: str) -> str:
    """Where ``final_path`` is staged while ``tag``'s writer is running."""
    return f"{STAGING_ROOT}/{tag}{final_path}"


def _quote(step: str) -> str:
    """Flatten a step name into a single manifest-file component."""
    return step.replace("%", "%25").replace("/", "%2F")


def manifest_path(root: str, step: str) -> str:
    return f"{root}/{COMMIT_DIR}/{_quote(step)}.json"


class CommitScope:
    """One writer's staged output: stage files, then publish or abort.

    The scope never touches final paths until :meth:`publish`, which moves
    every staged file in one atomic namenode operation.  :meth:`abort`
    (or a crashed writer followed by fsck) deletes the staging directory
    and leaves the final namespace untouched.
    """

    def __init__(self, dfs: "DFS", tag: str) -> None:
        self.dfs = dfs
        self.tag = tag
        #: ``(staged_path, final_path)`` in stage order.
        self.staged: list[tuple[str, str]] = []

    def stage_bytes(self, final_path: str, data: bytes) -> None:
        src = staging_path(self.tag, final_path)
        self.dfs.stage_bytes(src, data)
        self.staged.append((src, final_path))

    def publish(self) -> list[str]:
        """Atomically move every staged file to its final path."""
        self.dfs.publish(list(self.staged))
        published = [dst for _, dst in self.staged]
        self.staged.clear()
        self.dfs.discard_staging(staging_dir(self.tag))
        return published

    def abort(self) -> None:
        self.staged.clear()
        self.dfs.discard_staging(staging_dir(self.tag))


class CommitLog:
    """Durable step-done markers: one JSON manifest per committed step."""

    def __init__(self, dfs: "DFS", root: str) -> None:
        self.dfs = dfs
        self.root = root

    def path(self, step: str) -> str:
        return manifest_path(self.root, step)

    def record(self, step: str, published: list[str]) -> None:
        """Write the manifest for ``step`` — the step's commit point.

        The manifest itself goes through stage + publish, so a crash while
        writing it leaves no manifest at all and the step simply re-runs.
        """
        payload = json.dumps(
            {"step": step, "published": sorted(published)}, indent=0
        ).encode("utf-8")
        src = staging_path(f"manifest-{_quote(step)}", self.path(step))
        self.dfs.stage_bytes(src, payload)
        self.dfs.publish([(src, self.path(step))])
        self.dfs.discard_staging(staging_dir(f"manifest-{_quote(step)}"))

    def committed(self, step: str) -> bool:
        return self.dfs.exists(self.path(step))

    def published(self, step: str) -> list[str]:
        """The files ``step``'s manifest lists (empty if not committed)."""
        if not self.committed(step):
            return []
        payload = json.loads(self.dfs.read_bytes(self.path(step)))
        return list(payload.get("published", []))

    def clear(self) -> None:
        """Drop every manifest (a from-scratch run must not trust them)."""
        if self.dfs.exists(f"{self.root}/{COMMIT_DIR}"):
            self.dfs.delete(f"{self.root}/{COMMIT_DIR}", recursive=True)


__all__ = [
    "COMMIT_DIR",
    "STAGING_ROOT",
    "CommitLog",
    "CommitScope",
    "manifest_path",
    "staging_dir",
    "staging_path",
]
