"""Byte-level I/O accounting for the DFS substrate.

The paper's evaluation reasons heavily about I/O volume: Table 1 and Table 2
give closed-form expressions for bytes written, read, and transferred over the
network, and Section 7.4 reports ">500 GB written / >20 TB read" for the
largest matrix.  Every DFS operation therefore reports into an :class:`IOStats`
instance so experiments can compare measured traffic against the analytic cost
model.

Transfer semantics follow HDFS: a write of ``b`` bytes with replication factor
``r`` moves ``b * (r - 1)`` bytes across the network in addition to the local
write (the first replica is assumed local to the writer, as in HDFS); a read
is remote unless the caller declares locality.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class IOSnapshot:
    """Immutable copy of the counters at one point in time."""

    bytes_read: int = 0
    bytes_written: int = 0
    bytes_transferred: int = 0
    files_created: int = 0
    files_opened: int = 0
    files_deleted: int = 0
    read_ops: int = 0
    write_ops: int = 0
    repair_copies: int = 0
    corrupt_replicas_dropped: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bytes_requested: int = 0
    cache_bytes_served: int = 0
    cache_bytes_missed: int = 0
    bytes_staged: int = 0
    bytes_published: int = 0
    bytes_discarded: int = 0
    files_published: int = 0
    files_discarded: int = 0

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            bytes_read=self.bytes_read - other.bytes_read,
            bytes_written=self.bytes_written - other.bytes_written,
            bytes_transferred=self.bytes_transferred - other.bytes_transferred,
            files_created=self.files_created - other.files_created,
            files_opened=self.files_opened - other.files_opened,
            files_deleted=self.files_deleted - other.files_deleted,
            read_ops=self.read_ops - other.read_ops,
            write_ops=self.write_ops - other.write_ops,
            repair_copies=self.repair_copies - other.repair_copies,
            corrupt_replicas_dropped=(
                self.corrupt_replicas_dropped - other.corrupt_replicas_dropped
            ),
            cache_hits=self.cache_hits - other.cache_hits,
            cache_misses=self.cache_misses - other.cache_misses,
            cache_bytes_requested=(
                self.cache_bytes_requested - other.cache_bytes_requested
            ),
            cache_bytes_served=self.cache_bytes_served - other.cache_bytes_served,
            cache_bytes_missed=self.cache_bytes_missed - other.cache_bytes_missed,
            bytes_staged=self.bytes_staged - other.bytes_staged,
            bytes_published=self.bytes_published - other.bytes_published,
            bytes_discarded=self.bytes_discarded - other.bytes_discarded,
            files_published=self.files_published - other.files_published,
            files_discarded=self.files_discarded - other.files_discarded,
        )


@dataclass
class IOStats:
    """Thread-safe mutable I/O counters shared by one DFS instance."""

    bytes_read: int = 0  # guarded-by: _lock
    bytes_written: int = 0  # guarded-by: _lock
    bytes_transferred: int = 0  # guarded-by: _lock
    files_created: int = 0  # guarded-by: _lock
    files_opened: int = 0  # guarded-by: _lock
    files_deleted: int = 0  # guarded-by: _lock
    read_ops: int = 0  # guarded-by: _lock
    write_ops: int = 0  # guarded-by: _lock
    repair_copies: int = 0  # guarded-by: _lock
    corrupt_replicas_dropped: int = 0  # guarded-by: _lock
    cache_hits: int = 0  # guarded-by: _lock
    cache_misses: int = 0  # guarded-by: _lock
    cache_bytes_requested: int = 0  # guarded-by: _lock
    cache_bytes_served: int = 0  # guarded-by: _lock
    cache_bytes_missed: int = 0  # guarded-by: _lock
    bytes_staged: int = 0  # guarded-by: _lock
    bytes_published: int = 0  # guarded-by: _lock
    bytes_discarded: int = 0  # guarded-by: _lock
    files_published: int = 0  # guarded-by: _lock
    files_discarded: int = 0  # guarded-by: _lock
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_read(self, nbytes: int, *, local: bool = False) -> None:
        with self._lock:
            self.bytes_read += nbytes
            self.read_ops += 1
            if not local:
                self.bytes_transferred += nbytes

    def record_write(self, nbytes: int, *, replication: int = 1) -> None:
        with self._lock:
            self.bytes_written += nbytes * replication
            self.write_ops += 1
            # First replica is local to the writer; the rest cross the network.
            self.bytes_transferred += nbytes * max(replication - 1, 0)

    def record_replication(self, nbytes: int) -> None:
        """Maintenance traffic: block copies made to restore replication."""
        with self._lock:
            self.bytes_written += nbytes
            self.bytes_transferred += nbytes

    def record_repair(
        self, *, copies: int = 0, corrupt_dropped: int = 0, nbytes: int = 0
    ) -> None:
        """HealthMonitor repair work: re-replication copies (with their
        byte traffic, accounted like :meth:`record_replication`) and corrupt
        replicas invalidated."""
        with self._lock:
            self.repair_copies += copies
            self.corrupt_replicas_dropped += corrupt_dropped
            self.bytes_written += nbytes
            self.bytes_transferred += nbytes

    def record_cache_request(self, nbytes: int) -> None:
        """A logical matrix read arrived at a cache-backed reader (recorded
        whether it is then served from memory or read through)."""
        with self._lock:
            self.cache_bytes_requested += nbytes

    def record_cache_hit(self, nbytes: int) -> None:
        """A logical read served entirely from the decoded-block cache —
        no DFS bytes moved."""
        with self._lock:
            self.cache_hits += 1
            self.cache_bytes_served += nbytes

    def record_cache_miss(self, nbytes: int) -> None:
        """A cache-backed read that fell through to the DFS (its physical
        bytes are accounted by :meth:`record_read` as usual)."""
        with self._lock:
            self.cache_misses += 1
            self.cache_bytes_missed += nbytes

    def record_stage(self, nbytes: int) -> None:
        """Logical bytes written into the staging namespace as pending files
        (their physical write is accounted by :meth:`record_write` as usual;
        this ledger tracks commit-protocol conservation:
        ``staged == published + discarded`` once the namespace is quiescent)."""
        with self._lock:
            self.bytes_staged += nbytes

    def record_publish(self, nbytes: int, *, files: int) -> None:
        """Staged bytes atomically renamed to their final paths."""
        with self._lock:
            self.bytes_published += nbytes
            self.files_published += files

    def record_discard(self, nbytes: int, *, files: int) -> None:
        """Staged bytes deleted without publication (losing or aborted
        attempts, fsck rollback) — debited from the staging ledger so the
        reconciliation term stays exact."""
        with self._lock:
            self.bytes_discarded += nbytes
            self.files_discarded += files

    def record_create(self) -> None:
        with self._lock:
            self.files_created += 1

    def record_open(self) -> None:
        with self._lock:
            self.files_opened += 1

    def record_delete(self, count: int = 1) -> None:
        with self._lock:
            self.files_deleted += count

    def snapshot(self) -> IOSnapshot:
        with self._lock:
            return IOSnapshot(
                bytes_read=self.bytes_read,
                bytes_written=self.bytes_written,
                bytes_transferred=self.bytes_transferred,
                files_created=self.files_created,
                files_opened=self.files_opened,
                files_deleted=self.files_deleted,
                read_ops=self.read_ops,
                write_ops=self.write_ops,
                repair_copies=self.repair_copies,
                corrupt_replicas_dropped=self.corrupt_replicas_dropped,
                cache_hits=self.cache_hits,
                cache_misses=self.cache_misses,
                cache_bytes_requested=self.cache_bytes_requested,
                cache_bytes_served=self.cache_bytes_served,
                cache_bytes_missed=self.cache_bytes_missed,
                bytes_staged=self.bytes_staged,
                bytes_published=self.bytes_published,
                bytes_discarded=self.bytes_discarded,
                files_published=self.files_published,
                files_discarded=self.files_discarded,
            )

    def reset(self) -> None:
        with self._lock:
            self.bytes_read = 0
            self.bytes_written = 0
            self.bytes_transferred = 0
            self.files_created = 0
            self.files_opened = 0
            self.files_deleted = 0
            self.read_ops = 0
            self.write_ops = 0
            self.repair_copies = 0
            self.corrupt_replicas_dropped = 0
            self.cache_hits = 0
            self.cache_misses = 0
            self.cache_bytes_requested = 0
            self.cache_bytes_served = 0
            self.cache_bytes_missed = 0
            self.bytes_staged = 0
            self.bytes_published = 0
            self.bytes_discarded = 0
            self.files_published = 0
            self.files_discarded = 0
