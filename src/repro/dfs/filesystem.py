"""The DFS facade: HDFS-like file operations over the namenode + block store.

This is the interface the MapReduce engine and the inversion pipeline program
against.  Semantics mirror the HDFS client:

* files are written once (create + append while the writer is open), split
  into blocks, and replicated;
* reads fetch whole files or byte ranges, reassembled from blocks;
* every byte moved is reported to :class:`~repro.dfs.iostats.IOStats`.

The implementation is in-memory, which keeps experiments deterministic and
fast while preserving all the quantities the paper measures (file counts,
bytes read/written/transferred, synchronization-free file naming).
"""

from __future__ import annotations

import fnmatch

from typing import TYPE_CHECKING

from ..telemetry.spans import SpanKind, current_tracer
from .blocks import BlockStore
from .iostats import IOStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cache import BlockCache
    from .health import HealthMonitor
from .namenode import (
    FileEntry,
    FileNotFound,
    IsADirectory,
    NameNode,
    normalize,
)


class DFSWriter:
    """Write handle buffering appends into block-sized chunks."""

    def __init__(self, dfs: "DFS", entry: FileEntry) -> None:
        self._dfs = dfs
        self._entry = entry
        self._buffer = bytearray()
        # Sub-block remainder kept as the caller's immutable bytes object
        # (zero copies until flush).  Invariant: when _tail is set, _buffer
        # is empty — a subsequent write folds the tail back into the buffer.
        self._tail: bytes | None = None
        self._closed = False

    def write(self, data: bytes) -> int:
        if self._closed:
            raise ValueError("write to closed DFS file")
        block_size = self._dfs.blocks.block_size
        if self._tail is not None:
            self._buffer.extend(self._tail)
            self._tail = None
        mv = memoryview(data)
        if self._buffer:
            take = min(block_size - len(self._buffer), len(mv))
            self._buffer.extend(mv[:take])
            mv = mv[take:]
            if len(self._buffer) == block_size:
                self._flush_block(bytes(self._buffer))
                self._buffer.clear()
        # Full blocks flush straight from the caller's data: one slice into
        # the immutable payload instead of buffer-extend plus re-slice.
        while len(mv) >= block_size:
            self._flush_block(bytes(mv[:block_size]))
            mv = mv[block_size:]
        if len(mv):
            if not self._buffer and len(mv) == len(data) and isinstance(data, bytes):
                # Whole write fits under a block and nothing is buffered: keep
                # the caller's bytes as-is (the common one-write-per-file case
                # costs zero copies end to end).
                self._tail = data
            else:
                self._buffer.extend(mv)
        return len(data)

    def _flush_block(self, chunk: bytes) -> None:
        info = self._dfs.blocks.write_block(chunk)
        self._entry.blocks.append(info)
        self._dfs.stats.record_write(len(chunk), replication=len(info.replicas))

    def close(self) -> None:
        if self._closed:
            return
        if self._tail is not None:
            self._flush_block(self._tail)
            self._tail = None
        elif self._buffer:
            self._flush_block(bytes(self._buffer))
            self._buffer.clear()
        self._closed = True

    def __enter__(self) -> "DFSWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class DFS:
    """One distributed filesystem instance shared by a simulated cluster."""

    def __init__(
        self,
        num_datanodes: int = 4,
        replication: int = 3,
        block_size: int = 1 << 20,
        seed: int | None = 0,
    ) -> None:
        self.namenode = NameNode()
        self.blocks = BlockStore(
            num_datanodes=num_datanodes,
            replication=replication,
            block_size=block_size,
            seed=seed,
        )
        self.stats = IOStats()
        #: Optional decoded-block cache (:class:`~repro.dfs.cache.BlockCache`)
        #: consulted by matrix readers (``TaskContext.read_matrix`` and the
        #: master's reader).  ``None`` keeps the paper-faithful read path.
        self.cache: "BlockCache | None" = None

    # -- decoded-block cache ---------------------------------------------------

    def attach_cache(self, capacity_bytes: int) -> "BlockCache":
        """Attach (or re-attach at a new capacity) a decoded-block cache."""
        from .cache import BlockCache

        if self.cache is None or self.cache.capacity_bytes != capacity_bytes:
            self.cache = BlockCache(capacity_bytes)
        return self.cache

    def detach_cache(self) -> None:
        """Drop the cache; subsequent matrix reads go straight to the DFS."""
        self.cache = None

    # -- writes --------------------------------------------------------------

    def create(self, path: str, *, overwrite: bool = True) -> DFSWriter:
        """Open ``path`` for writing, creating parent directories."""
        entry = self.namenode.create_file(normalize(path), overwrite=overwrite)
        self.stats.record_create()
        return DFSWriter(self, entry)

    def write_bytes(self, path: str, data: bytes, *, overwrite: bool = True) -> None:
        tracer = current_tracer()
        if not tracer.enabled:
            with self.create(path, overwrite=overwrite) as w:
                w.write(data)
            return
        with tracer.span(path, SpanKind.DFS_WRITE) as span:
            with self.create(path, overwrite=overwrite) as w:
                w.write(data)
            span.set(bytes=len(data))

    def write_text(self, path: str, text: str, *, overwrite: bool = True) -> None:
        self.write_bytes(path, text.encode("utf-8"), overwrite=overwrite)

    # -- reads ---------------------------------------------------------------

    def read_bytes(self, path: str, *, local: bool = False) -> bytes:
        tracer = current_tracer()
        if not tracer.enabled:
            return self._read_bytes(path, local=local)
        with tracer.span(path, SpanKind.DFS_READ) as span:
            data = self._read_bytes(path, local=local)
            span.set(bytes=len(data))
            return data

    def _read_bytes(self, path: str, *, local: bool = False) -> bytes:
        entry = self.namenode.get_file(normalize(path))
        self.stats.record_open()
        if len(entry.blocks) == 1:
            # Single-block file: the stored payload *is* the file content —
            # return it directly instead of copying it through b"".join.
            data = self.blocks.read_block(entry.blocks[0])
        else:
            data = b"".join(self.blocks.read_block(info) for info in entry.blocks)
        self.stats.record_read(len(data), local=local)
        return data

    def read_text(self, path: str, *, local: bool = False) -> str:
        return self.read_bytes(path, local=local).decode("utf-8")

    def read_range(self, path: str, offset: int, length: int, *, local: bool = False) -> bytes:
        """Read ``length`` bytes starting at ``offset``, touching only the
        blocks that overlap the range (HDFS range-read semantics)."""
        tracer = current_tracer()
        if not tracer.enabled:
            return self._read_range(path, offset, length, local=local)
        with tracer.span(path, SpanKind.DFS_READ) as span:
            data = self._read_range(path, offset, length, local=local)
            span.set(bytes=len(data), offset=offset)
            return data

    def _read_range(
        self, path: str, offset: int, length: int, *, local: bool = False
    ) -> bytes:
        entry = self.namenode.get_file(normalize(path))
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        self.stats.record_open()
        end = offset + length
        # Collect whole payloads or memoryview slices — no intermediate
        # bytearray, so the bytes are copied at most once (b"".join) and not
        # at all when the range hits exactly one whole block.
        parts: list[bytes | memoryview] = []
        pos = 0
        for info in entry.blocks:
            block_start, block_end = pos, pos + info.length
            pos = block_end
            if block_end <= offset:
                continue
            if block_start >= end:
                break
            payload = self.blocks.read_block(info)
            lo = max(offset - block_start, 0)
            hi = min(end - block_start, info.length)
            if lo == 0 and hi == info.length:
                parts.append(payload)
            else:
                parts.append(memoryview(payload)[lo:hi])
        nbytes = sum(len(p) for p in parts)
        self.stats.record_read(nbytes, local=local)
        if len(parts) == 1 and isinstance(parts[0], bytes):
            return parts[0]
        return b"".join(parts)

    # -- namespace -----------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self.namenode.exists(normalize(path))

    def is_dir(self, path: str) -> bool:
        return self.namenode.is_dir(normalize(path))

    def mkdirs(self, path: str) -> None:
        self.namenode.mkdirs(normalize(path))

    def list_dir(self, path: str) -> list[str]:
        return self.namenode.list_dir(normalize(path))

    def glob(self, pattern: str) -> list[str]:
        """Match files anywhere in the tree against a ``fnmatch`` pattern."""
        pattern = normalize(pattern)
        return [p for p in self.namenode.walk_files("/") if fnmatch.fnmatch(p, pattern)]

    def list_files(self, path: str = "/") -> list[str]:
        return self.namenode.walk_files(normalize(path))

    def file_size(self, path: str) -> int:
        return self.namenode.get_file(normalize(path)).length

    def delete(self, path: str, *, recursive: bool = False) -> None:
        removed = self.namenode.delete(normalize(path), recursive=recursive)
        for entry in removed:
            for info in entry.blocks:
                self.blocks.delete_block(info)
        self.stats.record_delete(len(removed))
        if self.cache is not None:
            # Hygiene only: the deleted entries' (path, generation) keys can
            # never be requested again, but dropping them eagerly frees
            # capacity instead of waiting for LRU eviction.
            self.cache.drop_path(path)

    def rename(self, src: str, dst: str) -> None:
        self.namenode.rename(normalize(src), normalize(dst))
        if self.cache is not None:
            # The moved entries keep their (globally unique) generations, so
            # the cached values under the old path are unreachable — drop them.
            self.cache.drop_path(src)

    # -- replication maintenance ------------------------------------------------

    def under_replicated_blocks(self) -> int:
        """Blocks whose healthy replica count is below the target (what the
        real namenode's replication monitor tracks)."""
        target = self.blocks.replication
        count = 0
        for path in self.namenode.walk_files("/"):
            for info in self.namenode.get_file(path).blocks:
                if self.blocks.live_replica_count(info) < min(
                    target, sum(dn.alive for dn in self.blocks.datanodes)
                ):
                    count += 1
        return count

    def health_monitor(self) -> "HealthMonitor":
        """A :class:`~repro.dfs.health.HealthMonitor` bound to this DFS —
        the scan/scrub/repair driver that supersedes bare
        :meth:`rereplicate_all` (it also invalidates corrupt replicas and
        reports unrecoverable blocks instead of raising mid-pass)."""
        from .health import HealthMonitor

        return HealthMonitor(self)

    def rereplicate_all(self) -> int:
        """Restore every under-replicated block; returns copies created.

        This is the maintenance pass HDFS runs after a datanode death, and
        what lets the Section 7.4 fault scenarios keep reading data with
        nodes down.
        """
        made = 0
        copied_bytes = 0
        for path in self.namenode.walk_files("/"):
            for info in self.namenode.get_file(path).blocks:
                copies = self.blocks.rereplicate(info)
                made += copies
                copied_bytes += copies * info.length
        if copied_bytes:
            self.stats.record_replication(copied_bytes)
        return made

    # -- convenience ---------------------------------------------------------

    def total_stored_bytes(self) -> int:
        return self.blocks.total_stored_bytes

    def tree(self, path: str = "/") -> str:
        """ASCII rendering of the namespace (debugging aid for Figure 4)."""
        lines: list[str] = []
        for file_path in self.namenode.walk_files(normalize(path)):
            size = self.file_size(file_path)
            lines.append(f"{file_path}  ({size} B)")
        return "\n".join(lines)


def file_not_found(path: str) -> FileNotFound:
    """Helper for callers that raise namespace errors without a namenode."""
    return FileNotFound(path)


__all__ = ["DFS", "DFSWriter", "FileNotFound", "IsADirectory", "file_not_found"]
