"""The DFS facade: HDFS-like file operations over the namenode + block store.

This is the interface the MapReduce engine and the inversion pipeline program
against.  Semantics mirror the HDFS client:

* files are written once (create + append while the writer is open), split
  into blocks, and replicated;
* reads fetch whole files or byte ranges, reassembled from blocks;
* every byte moved is reported to :class:`~repro.dfs.iostats.IOStats`.

The implementation is in-memory, which keeps experiments deterministic and
fast while preserving all the quantities the paper measures (file counts,
bytes read/written/transferred, synchronization-free file naming).
"""

from __future__ import annotations

import fnmatch

from typing import TYPE_CHECKING

from ..telemetry.spans import SpanKind, current_tracer
from .blocks import BlockStore
from .iostats import IOStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cache import BlockCache
    from .health import HealthMonitor
from .namenode import (
    FileEntry,
    FileNotFound,
    IsADirectory,
    NameNode,
    normalize,
)


class DFSWriter:
    """Write handle buffering appends into block-sized chunks."""

    def __init__(self, dfs: "DFS", entry: FileEntry) -> None:
        self._dfs = dfs
        self._entry = entry
        self._buffer = bytearray()
        # Sub-block remainder kept as the caller's immutable bytes object
        # (zero copies until flush).  Invariant: when _tail is set, _buffer
        # is empty — a subsequent write folds the tail back into the buffer.
        self._tail: bytes | None = None
        self._closed = False

    def write(self, data: bytes) -> int:
        if self._closed:
            raise ValueError("write to closed DFS file")
        block_size = self._dfs.blocks.block_size
        if self._tail is not None:
            self._buffer.extend(self._tail)
            self._tail = None
        mv = memoryview(data)
        if self._buffer:
            take = min(block_size - len(self._buffer), len(mv))
            self._buffer.extend(mv[:take])
            mv = mv[take:]
            if len(self._buffer) == block_size:
                self._flush_block(bytes(self._buffer))
                self._buffer.clear()
        # Full blocks flush straight from the caller's data: one slice into
        # the immutable payload instead of buffer-extend plus re-slice.
        while len(mv) >= block_size:
            self._flush_block(bytes(mv[:block_size]))
            mv = mv[block_size:]
        if len(mv):
            if not self._buffer and len(mv) == len(data) and isinstance(data, bytes):
                # Whole write fits under a block and nothing is buffered: keep
                # the caller's bytes as-is (the common one-write-per-file case
                # costs zero copies end to end).
                self._tail = data
            else:
                self._buffer.extend(mv)
        return len(data)

    def _flush_block(self, chunk: bytes) -> None:
        info = self._dfs.blocks.write_block(chunk)
        self._entry.blocks.append(info)
        self._dfs.stats.record_write(len(chunk), replication=len(info.replicas))

    def close(self) -> None:
        if self._closed:
            return
        if self._tail is not None:
            self._flush_block(self._tail)
            self._tail = None
        elif self._buffer:
            self._flush_block(bytes(self._buffer))
            self._buffer.clear()
        self._closed = True

    def __enter__(self) -> "DFSWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class DFS:
    """One distributed filesystem instance shared by a simulated cluster."""

    def __init__(
        self,
        num_datanodes: int = 4,
        replication: int = 3,
        block_size: int = 1 << 20,
        seed: int | None = 0,
    ) -> None:
        self.namenode = NameNode()
        self.blocks = BlockStore(
            num_datanodes=num_datanodes,
            replication=replication,
            block_size=block_size,
            seed=seed,
        )
        self.stats = IOStats()
        #: Optional decoded-block cache (:class:`~repro.dfs.cache.BlockCache`)
        #: consulted by matrix readers (``TaskContext.read_matrix`` and the
        #: master's reader).  ``None`` keeps the paper-faithful read path.
        self.cache: "BlockCache | None" = None
        #: Fault-injection hooks fired as ``hook(op, path)`` before every
        #: file creation (``op="create"``) and atomic publish
        #: (``op="publish"``).  Used by the chaos harness to crash the
        #: driver at exact write/publish points; empty in production.
        self.fault_hooks: list = []
        #: Publish listeners fired as ``listener(paths)`` *after* every
        #: successful atomic publish, with the list of now-sealed final
        #: paths.  The dataflow scheduler
        #: (:mod:`repro.mapreduce.scheduler`) keys step readiness on these
        #: events; empty otherwise.  Listeners run in the publishing
        #: thread and must not raise.
        self.publish_listeners: list = []

    # -- decoded-block cache ---------------------------------------------------

    def attach_cache(self, capacity_bytes: int) -> "BlockCache":
        """Attach (or re-attach at a new capacity) a decoded-block cache."""
        from .cache import BlockCache

        if self.cache is None or self.cache.capacity_bytes != capacity_bytes:
            self.cache = BlockCache(capacity_bytes)
        return self.cache

    def detach_cache(self) -> None:
        """Drop the cache; subsequent matrix reads go straight to the DFS."""
        self.cache = None

    # -- writes --------------------------------------------------------------

    def create(
        self, path: str, *, overwrite: bool = True, pending: bool = False
    ) -> DFSWriter:
        """Open ``path`` for writing, creating parent directories.

        ``pending=True`` creates the file unsealed: invisible to readers
        until :meth:`publish` (or ``namenode.seal``) makes it visible —
        the first phase of the two-phase output commit.
        """
        path = normalize(path)
        if self.fault_hooks:
            for hook in list(self.fault_hooks):
                hook("create", path)
        entry = self.namenode.create_file(path, overwrite=overwrite, pending=pending)
        self.stats.record_create()
        return DFSWriter(self, entry)

    def write_bytes(
        self,
        path: str,
        data: bytes,
        *,
        overwrite: bool = True,
        pending: bool = False,
    ) -> None:
        tracer = current_tracer()
        if not tracer.enabled:
            with self.create(path, overwrite=overwrite, pending=pending) as w:
                w.write(data)
            return
        with tracer.span(path, SpanKind.DFS_WRITE) as span:
            with self.create(path, overwrite=overwrite, pending=pending) as w:
                w.write(data)
            span.set(bytes=len(data))

    def stage_bytes(self, path: str, data: bytes) -> None:
        """Write ``path`` as a pending (invisible) staging file."""
        self.write_bytes(path, data, pending=True)
        self.stats.record_stage(len(data))

    def write_text(self, path: str, text: str, *, overwrite: bool = True) -> None:
        self.write_bytes(path, text.encode("utf-8"), overwrite=overwrite)

    # -- reads ---------------------------------------------------------------

    def read_bytes(self, path: str, *, local: bool = False) -> bytes:
        tracer = current_tracer()
        if not tracer.enabled:
            return self._read_bytes(path, local=local)
        with tracer.span(path, SpanKind.DFS_READ) as span:
            data = self._read_bytes(path, local=local)
            span.set(bytes=len(data))
            return data

    def _read_bytes(self, path: str, *, local: bool = False) -> bytes:
        entry = self.namenode.get_file(normalize(path))
        self.stats.record_open()
        if len(entry.blocks) == 1:
            # Single-block file: the stored payload *is* the file content —
            # return it directly instead of copying it through b"".join.
            data = self.blocks.read_block(entry.blocks[0])
        else:
            data = b"".join(self.blocks.read_block(info) for info in entry.blocks)
        self.stats.record_read(len(data), local=local)
        return data

    def read_text(self, path: str, *, local: bool = False) -> str:
        return self.read_bytes(path, local=local).decode("utf-8")

    def read_range(self, path: str, offset: int, length: int, *, local: bool = False) -> bytes:
        """Read ``length`` bytes starting at ``offset``, touching only the
        blocks that overlap the range (HDFS range-read semantics)."""
        tracer = current_tracer()
        if not tracer.enabled:
            return self._read_range(path, offset, length, local=local)
        with tracer.span(path, SpanKind.DFS_READ) as span:
            data = self._read_range(path, offset, length, local=local)
            span.set(bytes=len(data), offset=offset)
            return data

    def _read_range(
        self, path: str, offset: int, length: int, *, local: bool = False
    ) -> bytes:
        entry = self.namenode.get_file(normalize(path))
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        self.stats.record_open()
        end = offset + length
        # Collect whole payloads or memoryview slices — no intermediate
        # bytearray, so the bytes are copied at most once (b"".join) and not
        # at all when the range hits exactly one whole block.
        parts: list[bytes | memoryview] = []
        pos = 0
        for info in entry.blocks:
            block_start, block_end = pos, pos + info.length
            pos = block_end
            if block_end <= offset:
                continue
            if block_start >= end:
                break
            payload = self.blocks.read_block(info)
            lo = max(offset - block_start, 0)
            hi = min(end - block_start, info.length)
            if lo == 0 and hi == info.length:
                parts.append(payload)
            else:
                parts.append(memoryview(payload)[lo:hi])
        nbytes = sum(len(p) for p in parts)
        self.stats.record_read(nbytes, local=local)
        if len(parts) == 1 and isinstance(parts[0], bytes):
            return parts[0]
        return b"".join(parts)

    # -- namespace -----------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self.namenode.exists(normalize(path))

    def is_dir(self, path: str) -> bool:
        return self.namenode.is_dir(normalize(path))

    def mkdirs(self, path: str) -> None:
        self.namenode.mkdirs(normalize(path))

    def list_dir(self, path: str) -> list[str]:
        return self.namenode.list_dir(normalize(path))

    def glob(self, pattern: str) -> list[str]:
        """Match files anywhere in the tree against a ``fnmatch`` pattern."""
        pattern = normalize(pattern)
        return [p for p in self.namenode.walk_files("/") if fnmatch.fnmatch(p, pattern)]

    def list_files(self, path: str = "/") -> list[str]:
        return self.namenode.walk_files(normalize(path))

    def file_size(self, path: str) -> int:
        return self.namenode.get_file(normalize(path)).length

    def delete(self, path: str, *, recursive: bool = False) -> None:
        removed = self.namenode.delete(normalize(path), recursive=recursive)
        self._gc_entries(removed)
        if self.cache is not None:
            # Hygiene only: the deleted entries' (path, generation) keys can
            # never be requested again, but dropping them eagerly frees
            # capacity instead of waiting for LRU eviction.
            self.cache.drop_path(path)

    def rename(self, src: str, dst: str, *, overwrite: bool = False) -> None:
        displaced = self.namenode.rename(
            normalize(src), normalize(dst), overwrite=overwrite
        )
        self._gc_entries(displaced)
        if self.cache is not None:
            # The moved entries keep their (globally unique) generations, so
            # the cached values under the old path are unreachable — drop
            # them; a replaced destination's cached values are stale too.
            self.cache.drop_path(src)
            self.cache.drop_path(dst)

    # -- two-phase commit -----------------------------------------------------

    def publish(self, pairs: list[tuple[str, str]]) -> None:
        """Atomically move-and-seal staged files onto their final paths.

        One namenode operation covers every ``(staged, final)`` pair:
        readers observe none or all of the published files, never a torn
        prefix.  Existing destinations (debris from a crashed earlier
        publish) are replaced and their blocks collected.
        """
        if not pairs:
            return
        if self.fault_hooks:
            for hook in list(self.fault_hooks):
                hook("publish", normalize(pairs[0][1]))
        normalized = [(normalize(s), normalize(d)) for s, d in pairs]
        nbytes = sum(
            self.namenode.get_file(src, include_pending=True).length
            for src, _ in normalized
        )
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span(normalized[0][1], SpanKind.COMMIT) as span:
                displaced = self.namenode.publish(normalized)
                span.set(files=len(normalized), bytes=nbytes)
        else:
            displaced = self.namenode.publish(normalized)
        self._gc_entries(displaced)
        self.stats.record_publish(nbytes, files=len(normalized))
        if self.cache is not None:
            for src, dst in normalized:
                self.cache.drop_path(src)
                self.cache.drop_path(dst)
        if self.publish_listeners:
            # After the namenode publish: the destinations are sealed and
            # visible, so a listener-triggered reader can never observe a
            # pending file.
            sealed = [dst for _, dst in normalized]
            for listener in list(self.publish_listeners):
                listener(sealed)

    def discard_staging(self, path: str) -> None:
        """Delete an uncommitted staging subtree (aborted or losing attempt);
        a missing path is fine — discard is idempotent."""
        path = normalize(path)
        if not self.namenode.exists(path, include_pending=True):
            return
        removed = self.namenode.delete(path, recursive=True)
        self._gc_entries(removed)
        if self.cache is not None:
            self.cache.drop_path(path)

    def _gc_entries(self, entries: list[FileEntry]) -> None:
        """Collect the blocks of removed or displaced file entries.

        Pending entries are debited from the staging ledger: bytes that
        were staged but never published count as discarded, keeping the
        ``staged == published + discarded`` conservation term exact.
        """
        pending_bytes = 0
        pending_files = 0
        for entry in entries:
            for info in entry.blocks:
                self.blocks.delete_block(info)
            if not entry.sealed:
                pending_bytes += entry.length
                pending_files += 1
        if entries:
            self.stats.record_delete(len(entries))
        if pending_files:
            self.stats.record_discard(pending_bytes, files=pending_files)

    # -- replication maintenance ------------------------------------------------

    def under_replicated_blocks(self) -> int:
        """Blocks whose healthy replica count is below the target (what the
        real namenode's replication monitor tracks)."""
        target = self.blocks.replication
        count = 0
        for path in self.namenode.walk_files("/"):
            for info in self.namenode.get_file(path).blocks:
                if self.blocks.live_replica_count(info) < min(
                    target, sum(dn.alive for dn in self.blocks.datanodes)
                ):
                    count += 1
        return count

    def health_monitor(self) -> "HealthMonitor":
        """A :class:`~repro.dfs.health.HealthMonitor` bound to this DFS —
        the scan/scrub/repair driver that supersedes bare
        :meth:`rereplicate_all` (it also invalidates corrupt replicas and
        reports unrecoverable blocks instead of raising mid-pass)."""
        from .health import HealthMonitor

        return HealthMonitor(self)

    def rereplicate_all(self) -> int:
        """Restore every under-replicated block; returns copies created.

        This is the maintenance pass HDFS runs after a datanode death, and
        what lets the Section 7.4 fault scenarios keep reading data with
        nodes down.
        """
        made = 0
        copied_bytes = 0
        for path in self.namenode.walk_files("/"):
            for info in self.namenode.get_file(path).blocks:
                copies = self.blocks.rereplicate(info)
                made += copies
                copied_bytes += copies * info.length
        if copied_bytes:
            self.stats.record_replication(copied_bytes)
        return made

    # -- convenience ---------------------------------------------------------

    def total_stored_bytes(self) -> int:
        return self.blocks.total_stored_bytes

    def tree(self, path: str = "/") -> str:
        """ASCII rendering of the namespace (debugging aid for Figure 4)."""
        lines: list[str] = []
        for file_path in self.namenode.walk_files(normalize(path)):
            size = self.file_size(file_path)
            lines.append(f"{file_path}  ({size} B)")
        return "\n".join(lines)


def file_not_found(path: str) -> FileNotFound:
    """Helper for callers that raise namespace errors without a namenode."""
    return FileNotFound(path)


__all__ = ["DFS", "DFSWriter", "FileNotFound", "IsADirectory", "file_not_found"]
