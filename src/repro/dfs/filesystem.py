"""The DFS facade: HDFS-like file operations over the namenode + block store.

This is the interface the MapReduce engine and the inversion pipeline program
against.  Semantics mirror the HDFS client:

* files are written once (create + append while the writer is open), split
  into blocks, and replicated;
* reads fetch whole files or byte ranges, reassembled from blocks;
* every byte moved is reported to :class:`~repro.dfs.iostats.IOStats`.

The implementation is in-memory, which keeps experiments deterministic and
fast while preserving all the quantities the paper measures (file counts,
bytes read/written/transferred, synchronization-free file naming).
"""

from __future__ import annotations

import fnmatch

from typing import TYPE_CHECKING

from ..telemetry.spans import SpanKind, current_tracer
from .blocks import BlockStore
from .iostats import IOStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .health import HealthMonitor
from .namenode import (
    FileEntry,
    FileNotFound,
    IsADirectory,
    NameNode,
    normalize,
)


class DFSWriter:
    """Write handle buffering appends into block-sized chunks."""

    def __init__(self, dfs: "DFS", entry: FileEntry) -> None:
        self._dfs = dfs
        self._entry = entry
        self._buffer = bytearray()
        self._closed = False

    def write(self, data: bytes) -> int:
        if self._closed:
            raise ValueError("write to closed DFS file")
        self._buffer.extend(data)
        block_size = self._dfs.blocks.block_size
        while len(self._buffer) >= block_size:
            chunk = bytes(self._buffer[:block_size])
            del self._buffer[:block_size]
            self._flush_block(chunk)
        return len(data)

    def _flush_block(self, chunk: bytes) -> None:
        info = self._dfs.blocks.write_block(chunk)
        self._entry.blocks.append(info)
        self._dfs.stats.record_write(len(chunk), replication=len(info.replicas))

    def close(self) -> None:
        if self._closed:
            return
        if self._buffer:
            self._flush_block(bytes(self._buffer))
            self._buffer.clear()
        self._closed = True

    def __enter__(self) -> "DFSWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class DFS:
    """One distributed filesystem instance shared by a simulated cluster."""

    def __init__(
        self,
        num_datanodes: int = 4,
        replication: int = 3,
        block_size: int = 1 << 20,
        seed: int | None = 0,
    ) -> None:
        self.namenode = NameNode()
        self.blocks = BlockStore(
            num_datanodes=num_datanodes,
            replication=replication,
            block_size=block_size,
            seed=seed,
        )
        self.stats = IOStats()

    # -- writes --------------------------------------------------------------

    def create(self, path: str, *, overwrite: bool = True) -> DFSWriter:
        """Open ``path`` for writing, creating parent directories."""
        entry = self.namenode.create_file(normalize(path), overwrite=overwrite)
        self.stats.record_create()
        return DFSWriter(self, entry)

    def write_bytes(self, path: str, data: bytes, *, overwrite: bool = True) -> None:
        tracer = current_tracer()
        if not tracer.enabled:
            with self.create(path, overwrite=overwrite) as w:
                w.write(data)
            return
        with tracer.span(path, SpanKind.DFS_WRITE) as span:
            with self.create(path, overwrite=overwrite) as w:
                w.write(data)
            span.set(bytes=len(data))

    def write_text(self, path: str, text: str, *, overwrite: bool = True) -> None:
        self.write_bytes(path, text.encode("utf-8"), overwrite=overwrite)

    # -- reads ---------------------------------------------------------------

    def read_bytes(self, path: str, *, local: bool = False) -> bytes:
        tracer = current_tracer()
        if not tracer.enabled:
            return self._read_bytes(path, local=local)
        with tracer.span(path, SpanKind.DFS_READ) as span:
            data = self._read_bytes(path, local=local)
            span.set(bytes=len(data))
            return data

    def _read_bytes(self, path: str, *, local: bool = False) -> bytes:
        entry = self.namenode.get_file(normalize(path))
        self.stats.record_open()
        chunks = [self.blocks.read_block(info) for info in entry.blocks]
        data = b"".join(chunks)
        self.stats.record_read(len(data), local=local)
        return data

    def read_text(self, path: str, *, local: bool = False) -> str:
        return self.read_bytes(path, local=local).decode("utf-8")

    def read_range(self, path: str, offset: int, length: int, *, local: bool = False) -> bytes:
        """Read ``length`` bytes starting at ``offset``, touching only the
        blocks that overlap the range (HDFS range-read semantics)."""
        tracer = current_tracer()
        if not tracer.enabled:
            return self._read_range(path, offset, length, local=local)
        with tracer.span(path, SpanKind.DFS_READ) as span:
            data = self._read_range(path, offset, length, local=local)
            span.set(bytes=len(data), offset=offset)
            return data

    def _read_range(
        self, path: str, offset: int, length: int, *, local: bool = False
    ) -> bytes:
        entry = self.namenode.get_file(normalize(path))
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        self.stats.record_open()
        end = offset + length
        out = bytearray()
        pos = 0
        for info in entry.blocks:
            block_start, block_end = pos, pos + info.length
            pos = block_end
            if block_end <= offset:
                continue
            if block_start >= end:
                break
            payload = self.blocks.read_block(info)
            lo = max(offset - block_start, 0)
            hi = min(end - block_start, info.length)
            out.extend(payload[lo:hi])
        self.stats.record_read(len(out), local=local)
        return bytes(out)

    # -- namespace -----------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self.namenode.exists(normalize(path))

    def is_dir(self, path: str) -> bool:
        return self.namenode.is_dir(normalize(path))

    def mkdirs(self, path: str) -> None:
        self.namenode.mkdirs(normalize(path))

    def list_dir(self, path: str) -> list[str]:
        return self.namenode.list_dir(normalize(path))

    def glob(self, pattern: str) -> list[str]:
        """Match files anywhere in the tree against a ``fnmatch`` pattern."""
        pattern = normalize(pattern)
        return [p for p in self.namenode.walk_files("/") if fnmatch.fnmatch(p, pattern)]

    def list_files(self, path: str = "/") -> list[str]:
        return self.namenode.walk_files(normalize(path))

    def file_size(self, path: str) -> int:
        return self.namenode.get_file(normalize(path)).length

    def delete(self, path: str, *, recursive: bool = False) -> None:
        removed = self.namenode.delete(normalize(path), recursive=recursive)
        for entry in removed:
            for info in entry.blocks:
                self.blocks.delete_block(info)
        self.stats.record_delete(len(removed))

    def rename(self, src: str, dst: str) -> None:
        self.namenode.rename(normalize(src), normalize(dst))

    # -- replication maintenance ------------------------------------------------

    def under_replicated_blocks(self) -> int:
        """Blocks whose healthy replica count is below the target (what the
        real namenode's replication monitor tracks)."""
        target = self.blocks.replication
        count = 0
        for path in self.namenode.walk_files("/"):
            for info in self.namenode.get_file(path).blocks:
                if self.blocks.live_replica_count(info) < min(
                    target, sum(dn.alive for dn in self.blocks.datanodes)
                ):
                    count += 1
        return count

    def health_monitor(self) -> "HealthMonitor":
        """A :class:`~repro.dfs.health.HealthMonitor` bound to this DFS —
        the scan/scrub/repair driver that supersedes bare
        :meth:`rereplicate_all` (it also invalidates corrupt replicas and
        reports unrecoverable blocks instead of raising mid-pass)."""
        from .health import HealthMonitor

        return HealthMonitor(self)

    def rereplicate_all(self) -> int:
        """Restore every under-replicated block; returns copies created.

        This is the maintenance pass HDFS runs after a datanode death, and
        what lets the Section 7.4 fault scenarios keep reading data with
        nodes down.
        """
        made = 0
        copied_bytes = 0
        for path in self.namenode.walk_files("/"):
            for info in self.namenode.get_file(path).blocks:
                copies = self.blocks.rereplicate(info)
                made += copies
                copied_bytes += copies * info.length
        if copied_bytes:
            self.stats.record_replication(copied_bytes)
        return made

    # -- convenience ---------------------------------------------------------

    def total_stored_bytes(self) -> int:
        return self.blocks.total_stored_bytes

    def tree(self, path: str = "/") -> str:
        """ASCII rendering of the namespace (debugging aid for Figure 4)."""
        lines: list[str] = []
        for file_path in self.namenode.walk_files(normalize(path)):
            size = self.file_size(file_path)
            lines.append(f"{file_path}  ({size} B)")
        return "\n".join(lines)


def file_not_found(path: str) -> FileNotFound:
    """Helper for callers that raise namespace errors without a namenode."""
    return FileNotFound(path)


__all__ = ["DFS", "DFSWriter", "FileNotFound", "IsADirectory", "file_not_found"]
