"""Block-level storage for the DFS substrate.

Files in the DFS are split into fixed-size blocks, each replicated onto
``replication`` distinct datanodes, mirroring HDFS.  Blocks carry a CRC32
checksum that is verified on every read, so corruption injected by tests is
detected exactly as Hadoop's client would detect it.
"""

from __future__ import annotations

import itertools
import random
import threading
import zlib
from dataclasses import dataclass, field


class BlockCorruptionError(IOError):
    """Raised when a block's stored checksum does not match its payload."""


class BlockMissingError(IOError):
    """Raised when no healthy replica of a block can be located."""


@dataclass(frozen=True)
class BlockId:
    """Opaque identifier of one stored block."""

    value: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"blk_{self.value:012d}"


@dataclass
class BlockInfo:
    """Metadata the namenode keeps per block."""

    block_id: BlockId
    length: int
    checksum: int
    replicas: tuple[int, ...]  # datanode indices holding this block


class DataNode:
    """One storage node: a dict of block payloads plus liveness state."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._lock = threading.Lock()
        self._alive = True  # guarded-by: _lock
        self._blocks: dict[BlockId, bytes] = {}  # guarded-by: _lock

    @property
    def alive(self) -> bool:
        """Liveness flag; locked because fault hooks flip it from chaos /
        maintenance threads while readers scan replicas (CN001 — these
        reads were previously lock-free)."""
        with self._lock:
            return self._alive

    @alive.setter
    def alive(self, value: bool) -> None:
        with self._lock:
            self._alive = value

    def put(self, block_id: BlockId, payload: bytes) -> None:
        with self._lock:
            self._blocks[block_id] = payload

    def get(self, block_id: BlockId) -> bytes | None:
        with self._lock:
            return self._blocks.get(block_id)

    def drop(self, block_id: BlockId) -> None:
        with self._lock:
            self._blocks.pop(block_id, None)

    def corrupt(self, block_id: BlockId) -> bool:
        """Flip a byte of the stored replica (test hook). Returns True if present."""
        with self._lock:
            payload = self._blocks.get(block_id)
            if payload is None:
                return False
            mutated = bytearray(payload)
            if mutated:
                mutated[0] ^= 0xFF
            self._blocks[block_id] = bytes(mutated)
            return True

    @property
    def block_count(self) -> int:
        with self._lock:
            return len(self._blocks)

    @property
    def stored_bytes(self) -> int:
        with self._lock:
            return sum(len(b) for b in self._blocks.values())


class BlockStore:
    """Cluster-wide block placement and retrieval.

    Placement policy: replicas go to ``replication`` distinct datanodes chosen
    round-robin with a random rotation per file, which spreads load the way
    HDFS's default placement does without requiring rack topology.
    """

    def __init__(
        self,
        num_datanodes: int = 4,
        replication: int = 3,
        block_size: int = 1 << 20,
        seed: int | None = 0,
    ) -> None:
        if num_datanodes < 1:
            raise ValueError("need at least one datanode")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.datanodes = [DataNode(i) for i in range(num_datanodes)]
        self.replication = min(replication, num_datanodes)
        self.block_size = block_size
        self._lock = threading.Lock()
        self._next_id = itertools.count(1)  # guarded-by: _lock
        self._rng = random.Random(seed)  # guarded-by: _lock
        self._blocks: dict[BlockId, BlockInfo] = {}  # guarded-by: _lock
        self._failure_epoch = 0  # guarded-by: _lock

    @property
    def failure_epoch(self) -> int:
        """Monotonic count of topology changes (datanode kills/revives).  The
        runtime's auto-repair pass uses it to trigger a
        :class:`~repro.dfs.health.HealthMonitor` scan only when something
        actually changed, keeping the healthy path free of scan overhead."""
        with self._lock:
            return self._failure_epoch

    # -- placement ---------------------------------------------------------

    def _choose_replicas(self) -> tuple[int, ...]:  # requires-lock: _lock
        live = [dn.node_id for dn in self.datanodes if dn.alive]
        if not live:
            raise BlockMissingError("no live datanodes available for write")
        k = min(self.replication, len(live))
        start = self._rng.randrange(len(live))
        return tuple(live[(start + i) % len(live)] for i in range(k))

    def write_block(self, payload: bytes) -> BlockInfo:
        with self._lock:
            block_id = BlockId(next(self._next_id))
            replicas = self._choose_replicas()
        checksum = zlib.crc32(payload)
        for node_idx in replicas:
            self.datanodes[node_idx].put(block_id, payload)
        info = BlockInfo(block_id=block_id, length=len(payload), checksum=checksum, replicas=replicas)
        with self._lock:
            self._blocks[block_id] = info
        return info

    def read_block(self, info: BlockInfo) -> bytes:
        """Read one healthy replica, skipping dead nodes and corrupt copies.

        When no replica is usable the error spells out each replica's fate
        (dead node / payload missing / corrupt) so an operator — or a chaos
        campaign report — can tell a datanode outage from data loss.  A
        corrupt copy anywhere upgrades the failure to
        :class:`BlockCorruptionError` (detected corruption is the more
        alarming diagnosis).
        """
        with self._lock:
            replicas = tuple(info.replicas)
        statuses: list[tuple[int, str]] = []
        corrupt_seen = False
        for node_idx in replicas:
            node = self.datanodes[node_idx]
            if not node.alive:
                statuses.append((node_idx, "dead"))
                continue
            payload = node.get(info.block_id)
            if payload is None:
                statuses.append((node_idx, "missing"))
                continue
            if zlib.crc32(payload) != info.checksum:
                statuses.append((node_idx, "corrupt"))
                corrupt_seen = True
                continue
            return payload
        detail = ", ".join(f"datanode {n}: {s}" for n, s in statuses) or "no replicas"
        if corrupt_seen:
            raise BlockCorruptionError(
                f"{info.block_id} corrupt, no healthy replica ({detail})"
            )
        raise BlockMissingError(f"no live replica of {info.block_id} ({detail})")

    def delete_block(self, info: BlockInfo) -> None:
        # Snapshot the replica list under the lock: a concurrent maintenance
        # pass (drop_corrupt_replicas / rereplicate) rewrites
        # ``info.replicas`` while holding it (CN001 — this read was
        # previously lock-free, so a delete could miss a replica placed by a
        # racing re-replication and leak the payload).
        with self._lock:
            replicas = tuple(info.replicas)
            self._blocks.pop(info.block_id, None)
        for node_idx in replicas:
            self.datanodes[node_idx].drop(info.block_id)

    # -- re-replication ------------------------------------------------------
    #
    # Everything below reads or mutates ``info.replicas`` and the datanode
    # maps, so it all runs under ``self._lock`` — concurrent ``write_block``
    # / ``delete_block`` calls (task attempts on the thread pool) would
    # otherwise race with a maintenance pass.  DataNode locks are leaves:
    # they are never held while acquiring ``self._lock``, so the nesting
    # here cannot deadlock.

    def _replica_status_locked(self, info: BlockInfo) -> list[tuple[int, str]]:
        statuses: list[tuple[int, str]] = []
        for node_idx in info.replicas:
            node = self.datanodes[node_idx]
            if not node.alive:
                statuses.append((node_idx, "dead"))
                continue
            payload = node.get(info.block_id)
            if payload is None:
                statuses.append((node_idx, "missing"))
            elif zlib.crc32(payload) != info.checksum:
                statuses.append((node_idx, "corrupt"))
            else:
                statuses.append((node_idx, "healthy"))
        return statuses

    def replica_status(self, info: BlockInfo) -> list[tuple[int, str]]:
        """Per-replica ``(node_id, status)`` where status is ``"healthy"``,
        ``"dead"``, ``"missing"`` or ``"corrupt"``."""
        with self._lock:
            return self._replica_status_locked(info)

    def live_replica_count(self, info: BlockInfo) -> int:
        """Healthy replicas currently reachable (live node + intact payload)."""
        with self._lock:
            return sum(
                1 for _, status in self._replica_status_locked(info) if status == "healthy"
            )

    def drop_corrupt_replicas(self, info: BlockInfo) -> int:
        """Discard replicas whose payload fails the checksum so re-replication
        can place fresh copies there (HDFS's corrupt-replica invalidation).
        Returns the number of replicas dropped."""
        with self._lock:
            dropped = 0
            kept: list[int] = []
            for node_idx, status in self._replica_status_locked(info):
                if status == "corrupt":
                    self.datanodes[node_idx].drop(info.block_id)
                    dropped += 1
                else:
                    kept.append(node_idx)
            if dropped:
                info.replicas = tuple(kept)
            return dropped

    def rereplicate(self, info: BlockInfo) -> int:
        """Restore a block to its target replication by copying a healthy
        replica onto live nodes that lack one (the namenode's response to a
        datanode death in HDFS).  Returns the number of new copies made;
        raises if no healthy source replica exists."""
        with self._lock:
            target = min(self.replication, sum(dn.alive for dn in self.datanodes))
            healthy = [
                node_idx
                for node_idx, status in self._replica_status_locked(info)
                if status == "healthy"
            ]
            if len(healthy) >= target:
                return 0
            if not healthy:
                raise BlockMissingError(
                    f"{info.block_id}: no healthy replica to re-replicate from"
                )
            payload = self.datanodes[healthy[0]].get(info.block_id)
            candidates = [
                dn.node_id
                for dn in self.datanodes
                if dn.alive and dn.node_id not in healthy
            ]
            made = 0
            new_replicas = list(healthy)
            for node_idx in candidates:
                if len(new_replicas) >= target:
                    break
                self.datanodes[node_idx].put(info.block_id, payload)
                new_replicas.append(node_idx)
                made += 1
            info.replicas = tuple(new_replicas)
            return made

    # -- fault hooks --------------------------------------------------------

    def kill_datanode(self, node_id: int) -> None:
        with self._lock:
            self.datanodes[node_id].alive = False
            self._failure_epoch += 1

    def revive_datanode(self, node_id: int) -> None:
        with self._lock:
            self.datanodes[node_id].alive = True
            self._failure_epoch += 1

    def corrupt_replica(self, info: BlockInfo, node_id: int) -> bool:
        return self.datanodes[node_id].corrupt(info.block_id)

    # -- introspection -------------------------------------------------------

    @property
    def total_stored_bytes(self) -> int:
        return sum(dn.stored_bytes for dn in self.datanodes)

    @property
    def block_count(self) -> int:
        with self._lock:
            return len(self._blocks)
