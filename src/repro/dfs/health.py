"""DFS health monitoring: detect and repair replication damage.

HDFS's namenode continuously tracks block reports and, when a datanode dies,
schedules re-replication of every block the node held; corrupt replicas found
by reads or the background scrubber are invalidated and replaced the same
way.  The seed engine had the *mechanism* (``BlockStore.rereplicate``) but no
*monitor* — nothing invoked it automatically, so a datanode death silently
eroded replication until reads started failing.

:class:`HealthMonitor` closes that gap:

* :meth:`HealthMonitor.scan` walks the namespace and classifies every block's
  replicas (healthy / dead node / missing payload / corrupt);
* :meth:`HealthMonitor.repair` scrubs corrupt replicas and drives
  :meth:`~repro.dfs.blocks.BlockStore.rereplicate` to convergence, looping
  until no block is under-replicated or no further progress is possible.
  Blocks with no surviving healthy source are reported as unrecoverable, not
  raised — a half-repaired cluster is still better than an aborted repair
  (the read path raises for the specific block when it is actually needed).

Repair traffic is surfaced through the existing
:class:`~repro.dfs.iostats.IOStats` plumbing (``repair_copies``,
``corrupt_replicas_dropped``, plus the copied bytes in
``bytes_written``/``bytes_transferred``).

:class:`~repro.mapreduce.runtime.MapReduceRuntime` runs a repair pass
automatically before each job whenever the cluster topology changed since the
last check (``RuntimeConfig.auto_repair``), which is what lets the chaos
campaigns kill datanodes mid-pipeline and still finish with full replication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .blocks import BlockInfo, BlockMissingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .filesystem import DFS


@dataclass(frozen=True)
class HealthReport:
    """Outcome of one namespace scan."""

    blocks_total: int
    under_replicated: int
    corrupt_replicas: int
    dead_replicas: int
    missing_replicas: int
    unreadable_blocks: tuple[str, ...] = ()

    @property
    def healthy(self) -> bool:
        return self.under_replicated == 0 and not self.unreadable_blocks


@dataclass
class RepairReport:
    """Outcome of one repair pass (possibly several convergence rounds)."""

    rounds: int = 0
    copies_made: int = 0
    bytes_copied: int = 0
    corrupt_replicas_dropped: int = 0
    #: blocks with no healthy source replica left; repair cannot recover
    #: them and reads will raise :class:`~repro.dfs.blocks.BlockMissingError`.
    unrecoverable: list[str] = field(default_factory=list)

    @property
    def fully_repaired(self) -> bool:
        return not self.unrecoverable

    def merge(self, other: "RepairReport") -> None:
        self.rounds += other.rounds
        self.copies_made += other.copies_made
        self.bytes_copied += other.bytes_copied
        self.corrupt_replicas_dropped += other.corrupt_replicas_dropped
        self.unrecoverable.extend(
            b for b in other.unrecoverable if b not in self.unrecoverable
        )


class HealthMonitor:
    """Scans a DFS for replication damage and repairs it to convergence."""

    def __init__(self, dfs: "DFS") -> None:
        self.dfs = dfs

    def _all_blocks(self) -> list[BlockInfo]:
        namenode = self.dfs.namenode
        return [
            info
            for path in namenode.walk_files("/")
            for info in namenode.get_file(path).blocks
        ]

    def scan(self) -> HealthReport:
        """Classify every block's replicas without mutating anything."""
        blocks = self.dfs.blocks
        target_cap = sum(dn.alive for dn in blocks.datanodes)
        total = under = corrupt = dead = missing = 0
        unreadable: list[str] = []
        for info in self._all_blocks():
            total += 1
            statuses = blocks.replica_status(info)
            healthy = sum(1 for _, s in statuses if s == "healthy")
            corrupt += sum(1 for _, s in statuses if s == "corrupt")
            dead += sum(1 for _, s in statuses if s == "dead")
            missing += sum(1 for _, s in statuses if s == "missing")
            if healthy < min(blocks.replication, target_cap):
                under += 1
            if healthy == 0:
                unreadable.append(str(info.block_id))
        return HealthReport(
            blocks_total=total,
            under_replicated=under,
            corrupt_replicas=corrupt,
            dead_replicas=dead,
            missing_replicas=missing,
            unreadable_blocks=tuple(unreadable),
        )

    def repair(self, max_rounds: int = 8) -> RepairReport:
        """Scrub corrupt replicas and re-replicate until convergence.

        Each round drops corrupt replicas and re-replicates every block that
        is below target; rounds repeat while progress is being made (a revive
        mid-repair, or repair freeing a slot, can unlock further copies) up
        to ``max_rounds``.  Never raises for individual blocks: unrecoverable
        ones are listed on the report.
        """
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        from ..telemetry.spans import SpanKind, current_tracer

        tracer = current_tracer()
        if not tracer.enabled:
            return self._repair(max_rounds)
        with tracer.span("dfs-repair", SpanKind.DFS_REPAIR) as span:
            report = self._repair(max_rounds)
            span.set(
                rounds=report.rounds,
                copies_made=report.copies_made,
                bytes_copied=report.bytes_copied,
                corrupt_replicas_dropped=report.corrupt_replicas_dropped,
                unrecoverable=len(report.unrecoverable),
            )
            return report

    def _repair(self, max_rounds: int) -> RepairReport:
        blocks = self.dfs.blocks
        report = RepairReport()
        for _ in range(max_rounds):
            report.rounds += 1
            round_copies = 0
            round_dropped = 0
            round_bytes = 0
            unrecoverable: list[str] = []
            for info in self._all_blocks():
                round_dropped += blocks.drop_corrupt_replicas(info)
                try:
                    made = blocks.rereplicate(info)
                except BlockMissingError:
                    unrecoverable.append(str(info.block_id))
                    continue
                round_copies += made
                round_bytes += made * info.length
            report.copies_made += round_copies
            report.corrupt_replicas_dropped += round_dropped
            report.bytes_copied += round_bytes
            report.unrecoverable = unrecoverable
            if round_copies:
                self.dfs.stats.record_repair(copies=round_copies, nbytes=round_bytes)
            if round_dropped:
                self.dfs.stats.record_repair(corrupt_dropped=round_dropped)
            if round_copies == 0 and round_dropped == 0:
                break
        return report


__all__ = ["HealthMonitor", "HealthReport", "RepairReport"]
