"""Matrix Market (.mtx) support — the interchange format real matrix
collections (SuiteSparse, NIST) ship in, so downstream users can feed their
own matrices to the pipeline.

Supports the ``matrix array real general`` (dense, column-major) and
``matrix coordinate real general`` (sparse triplet) variants of the format,
reading either into a dense float64 array and writing the array flavor.
"""

from __future__ import annotations

import numpy as np

from .filesystem import DFS

_BANNER = "%%MatrixMarket"


class MatrixMarketError(ValueError):
    """Malformed Matrix Market content."""


def encode_matrix_market(matrix: np.ndarray, comment: str | None = None) -> str:
    """Serialize a dense matrix in ``array real general`` form."""
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2:
        raise ValueError(f"need a 2-D matrix, got shape {m.shape}")
    lines = [f"{_BANNER} matrix array real general"]
    if comment:
        for c_line in comment.splitlines():
            lines.append(f"% {c_line}")
    rows, cols = m.shape
    lines.append(f"{rows} {cols}")
    # Array format is column-major.
    for j in range(cols):
        for i in range(rows):
            lines.append(repr(float(m[i, j])))
    return "\n".join(lines) + "\n"


def decode_matrix_market(text: str) -> np.ndarray:
    """Parse either the array or the coordinate variant into a dense array."""
    lines = text.splitlines()
    if not lines or not lines[0].startswith(_BANNER):
        raise MatrixMarketError("missing MatrixMarket banner")
    header = lines[0].split()
    if len(header) < 5 or header[1].lower() != "matrix":
        raise MatrixMarketError(f"unsupported banner: {lines[0]!r}")
    layout, field, symmetry = (
        header[2].lower(),
        header[3].lower(),
        header[4].lower(),
    )
    if field not in ("real", "integer"):
        raise MatrixMarketError(f"unsupported field type {field!r}")
    if symmetry not in ("general", "symmetric"):
        raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")

    body = [ln for ln in lines[1:] if ln.strip() and not ln.lstrip().startswith("%")]
    if not body:
        raise MatrixMarketError("missing size line")

    if layout == "array":
        size = body[0].split()
        if len(size) != 2:
            raise MatrixMarketError(f"bad array size line: {body[0]!r}")
        rows, cols = int(size[0]), int(size[1])
        values = np.fromiter(
            (float(tok) for ln in body[1:] for tok in ln.split()),
            dtype=np.float64,
        )
        expected = rows * cols if symmetry == "general" else rows * (rows + 1) // 2
        if values.size != expected:
            raise MatrixMarketError(
                f"array body has {values.size} values, expected {expected}"
            )
        if symmetry == "general":
            # Fill a preallocated row-major array through a transposed view
            # of the column-major stream — no intermediate transpose copy.
            out = np.empty((rows, cols))
            out[:] = values.reshape(cols, rows).T
            return out
        # Symmetric array stores the lower triangle column-major.
        out = np.zeros((rows, cols))
        pos = 0
        for j in range(cols):
            count = rows - j
            col = values[pos : pos + count]
            pos += count
            out[j:, j] = col
            out[j, j:] = col
        return out

    if layout == "coordinate":
        size = body[0].split()
        if len(size) != 3:
            raise MatrixMarketError(f"bad coordinate size line: {body[0]!r}")
        rows, cols, nnz = (int(x) for x in size)
        if len(body) - 1 != nnz:
            raise MatrixMarketError(
                f"coordinate body has {len(body) - 1} entries, header says {nnz}"
            )
        out = np.zeros((rows, cols))
        for ln in body[1:]:
            parts = ln.split()
            if len(parts) != 3:
                raise MatrixMarketError(f"bad coordinate entry: {ln!r}")
            i, j, v = int(parts[0]) - 1, int(parts[1]) - 1, float(parts[2])
            if not (0 <= i < rows and 0 <= j < cols):
                raise MatrixMarketError(f"entry ({i + 1}, {j + 1}) out of range")
            out[i, j] = v
            if symmetry == "symmetric" and i != j:
                out[j, i] = v
        return out

    raise MatrixMarketError(f"unsupported layout {layout!r}")


def write_matrix_market(dfs: DFS, path: str, matrix: np.ndarray, comment: str | None = None) -> None:
    dfs.write_text(path, encode_matrix_market(matrix, comment))


def read_matrix_market(dfs: DFS, path: str) -> np.ndarray:
    return decode_matrix_market(dfs.read_text(path))
