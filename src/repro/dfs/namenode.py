"""Namespace management for the DFS substrate.

The namenode keeps the directory tree and, per file, the ordered list of
blocks that make up the file's contents — the same split of responsibilities
as HDFS.  Paths are '/'-separated and rooted at ``/``; the paper's directory
layout (``Root/A1/A3/...``, Figure 4) maps directly onto this tree.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .blocks import BlockInfo


class DFSError(IOError):
    """Base class for namespace errors."""


class FileNotFound(DFSError):
    pass


class FileAlreadyExists(DFSError):
    pass


class NotADirectory(DFSError):
    pass


class IsADirectory(DFSError):
    pass


class DirectoryNotEmpty(DFSError):
    pass


def normalize(path: str) -> str:
    """Collapse a DFS path to canonical ``/a/b/c`` form."""
    parts = [p for p in path.split("/") if p not in ("", ".")]
    return "/" + "/".join(parts)


def split_path(path: str) -> list[str]:
    return [p for p in path.split("/") if p not in ("", ".")]


@dataclass
class FileEntry:
    """Metadata for one regular file.

    ``generation`` is a namenode-global monotonic stamp assigned when the
    entry is created.  Overwriting a path creates a *new* entry with a new
    generation, so ``(path, generation)`` uniquely identifies one immutable
    file content — the key the decoded-block cache uses to stay correct
    across overwrite/rename/delete without explicit invalidation callbacks.
    """

    name: str
    blocks: list[BlockInfo] = field(default_factory=list)
    generation: int = 0
    #: Two-phase commit lifecycle: files created with ``pending=True`` stay
    #: invisible to ``exists``/``get_file``/``walk_files`` until sealed by
    #: :meth:`NameNode.seal` or an atomic :meth:`NameNode.publish` rename.
    sealed: bool = True

    @property
    def length(self) -> int:
        return sum(b.length for b in self.blocks)


@dataclass
class DirEntry:
    """Metadata for one directory."""

    name: str
    children: dict[str, "FileEntry | DirEntry"] = field(default_factory=dict)


class NameNode:
    """The namespace tree, protected by a single coarse lock.

    A coarse lock is faithful to the real namenode (a single-writer namespace)
    and keeps semantics obvious; metadata operations are tiny compared to the
    block I/O they coordinate.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.root = DirEntry(name="")  # guarded-by: _lock
        self._next_generation = 1  # guarded-by: _lock

    # -- traversal -----------------------------------------------------------

    def _walk(self, path: str) -> "FileEntry | DirEntry | None":  # requires-lock: _lock
        node: FileEntry | DirEntry = self.root
        for part in split_path(path):
            if not isinstance(node, DirEntry):
                return None
            child = node.children.get(part)
            if child is None:
                return None
            node = child
        return node

    def _parent_dir(  # requires-lock: _lock
        self, path: str, *, create: bool
    ) -> tuple[DirEntry, str]:
        parts = split_path(path)
        if not parts:
            raise DFSError("path refers to the root directory")
        node: DirEntry = self.root
        for part in parts[:-1]:
            child = node.children.get(part)
            if child is None:
                if not create:
                    raise FileNotFound(f"no such directory: {part!r} in {path!r}")
                child = DirEntry(name=part)
                node.children[part] = child
            if not isinstance(child, DirEntry):
                raise NotADirectory(f"{part!r} in {path!r} is a file")
            node = child
        return node, parts[-1]

    # -- operations ----------------------------------------------------------

    def create_file(
        self, path: str, *, overwrite: bool = False, pending: bool = False
    ) -> FileEntry:
        with self._lock:
            parent, name = self._parent_dir(path, create=True)
            existing = parent.children.get(name)
            if existing is not None:
                if isinstance(existing, DirEntry):
                    raise IsADirectory(path)
                # An unsealed file never blocks creation: it is invisible
                # debris from an uncommitted writer, and the new entry's
                # fresh generation supersedes it.
                if not overwrite and existing.sealed:
                    raise FileAlreadyExists(path)
            entry = FileEntry(
                name=name, generation=self._next_generation, sealed=not pending
            )
            self._next_generation += 1
            parent.children[name] = entry
            return entry

    def seal(self, path: str) -> FileEntry:
        """Make a pending file visible (the second phase of a direct write)."""
        with self._lock:
            node = self._walk(path)
            if node is None:
                raise FileNotFound(path)
            if isinstance(node, DirEntry):
                raise IsADirectory(path)
            node.sealed = True
            return node

    def mkdirs(self, path: str) -> DirEntry:
        with self._lock:
            node: DirEntry = self.root
            for part in split_path(path):
                child = node.children.get(part)
                if child is None:
                    child = DirEntry(name=part)
                    node.children[part] = child
                if not isinstance(child, DirEntry):
                    raise NotADirectory(f"{part!r} in {path!r} is a file")
                node = child
            return node

    def get_file(self, path: str, *, include_pending: bool = False) -> FileEntry:
        with self._lock:
            node = self._walk(path)
            if node is None:
                raise FileNotFound(path)
            if isinstance(node, DirEntry):
                raise IsADirectory(path)
            if not node.sealed and not include_pending:
                raise FileNotFound(path)
            return node

    def exists(self, path: str, *, include_pending: bool = False) -> bool:
        with self._lock:
            node = self._walk(path)
            if isinstance(node, FileEntry) and not node.sealed:
                return include_pending
            return node is not None

    def is_dir(self, path: str) -> bool:
        with self._lock:
            return isinstance(self._walk(path), DirEntry)

    def is_file(self, path: str, *, include_pending: bool = False) -> bool:
        with self._lock:
            node = self._walk(path)
            if not isinstance(node, FileEntry):
                return False
            return node.sealed or include_pending

    def list_dir(self, path: str) -> list[str]:
        with self._lock:
            node = self._walk(path)
            if node is None:
                raise FileNotFound(path)
            if isinstance(node, FileEntry):
                raise NotADirectory(path)
            return sorted(node.children)

    def delete(self, path: str, *, recursive: bool = False) -> list[FileEntry]:
        """Remove a path; returns all file entries removed (for block GC)."""
        with self._lock:
            parent, name = self._parent_dir(path, create=False)
            node = parent.children.get(name)
            if node is None:
                raise FileNotFound(path)
            if isinstance(node, DirEntry) and node.children and not recursive:
                raise DirectoryNotEmpty(path)
            del parent.children[name]
            removed: list[FileEntry] = []

            def collect(entry: FileEntry | DirEntry) -> None:
                if isinstance(entry, FileEntry):
                    removed.append(entry)
                else:
                    for child in entry.children.values():
                        collect(child)

            collect(node)
            return removed

    def rename(
        self, src: str, dst: str, *, overwrite: bool = False
    ) -> list[FileEntry]:
        """Move ``src`` to ``dst``; returns displaced file entries (for GC).

        ``dst`` names the final path, never a containing directory: renaming
        onto an existing directory raises :class:`IsADirectory` (move *into*
        a directory by spelling out ``dir/name``).  An existing file at
        ``dst`` raises :class:`FileAlreadyExists` unless ``overwrite=True``,
        in which case it is atomically replaced and returned for block GC.
        """
        with self._lock:
            return self._rename_locked(src, dst, overwrite=overwrite)

    def _rename_locked(  # requires-lock: _lock
        self, src: str, dst: str, *, overwrite: bool, seal: bool = False
    ) -> list[FileEntry]:
        src_parent, src_name = self._parent_dir(src, create=False)
        node = src_parent.children.get(src_name)
        if node is None:
            raise FileNotFound(src)
        dst_parent, dst_name = self._parent_dir(dst, create=True)
        displaced: list[FileEntry] = []
        existing = dst_parent.children.get(dst_name)
        if existing is not None and existing is not node:
            if isinstance(existing, DirEntry):
                raise IsADirectory(dst)
            # Invisible pending files never block a rename, same as create.
            if not overwrite and existing.sealed:
                raise FileAlreadyExists(dst)
            displaced.append(existing)
        del src_parent.children[src_name]
        node.name = dst_name
        if seal and isinstance(node, FileEntry):
            node.sealed = True
        dst_parent.children[dst_name] = node
        return displaced

    def publish(self, pairs: list[tuple[str, str]]) -> list[FileEntry]:
        """Atomically move-and-seal staged files to their final paths.

        All sources are validated before anything moves, then every rename
        happens under the one namespace lock — concurrent readers observe
        either none or all of the published files.  Destinations are
        overwritten (a re-publish after a crash must win over debris).
        Returns displaced file entries for block GC.
        """
        with self._lock:
            for src, dst in pairs:
                node = self._walk(src)
                if node is None:
                    raise FileNotFound(src)
                if isinstance(node, DirEntry):
                    raise IsADirectory(src)
                existing = self._walk(dst)
                if isinstance(existing, DirEntry):
                    raise IsADirectory(dst)
            displaced: list[FileEntry] = []
            for src, dst in pairs:
                displaced.extend(
                    self._rename_locked(src, dst, overwrite=True, seal=True)
                )
            return displaced

    def walk_files(
        self, path: str = "/", *, include_pending: bool = False
    ) -> list[str]:
        """All file paths under ``path``, depth-first, sorted within each dir."""
        with self._lock:
            node = self._walk(path)
            if node is None:
                raise FileNotFound(path)
            base = normalize(path)
            result: list[str] = []

            def recurse(prefix: str, entry: FileEntry | DirEntry) -> None:
                if isinstance(entry, FileEntry):
                    if entry.sealed or include_pending:
                        result.append(prefix)
                    return
                for name in sorted(entry.children):
                    child_prefix = prefix.rstrip("/") + "/" + name
                    recurse(child_prefix, entry.children[name])

            recurse(base, node)
            return result

    def pending_files(self, path: str = "/") -> list[str]:
        """All unsealed file paths under ``path`` (fsck's raw material)."""
        with self._lock:
            sealed = set(self.walk_files(path))
            return [
                p
                for p in self.walk_files(path, include_pending=True)
                if p not in sealed
            ]
