"""Namespace management for the DFS substrate.

The namenode keeps the directory tree and, per file, the ordered list of
blocks that make up the file's contents — the same split of responsibilities
as HDFS.  Paths are '/'-separated and rooted at ``/``; the paper's directory
layout (``Root/A1/A3/...``, Figure 4) maps directly onto this tree.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .blocks import BlockInfo


class DFSError(IOError):
    """Base class for namespace errors."""


class FileNotFound(DFSError):
    pass


class FileAlreadyExists(DFSError):
    pass


class NotADirectory(DFSError):
    pass


class IsADirectory(DFSError):
    pass


class DirectoryNotEmpty(DFSError):
    pass


def normalize(path: str) -> str:
    """Collapse a DFS path to canonical ``/a/b/c`` form."""
    parts = [p for p in path.split("/") if p not in ("", ".")]
    return "/" + "/".join(parts)


def split_path(path: str) -> list[str]:
    return [p for p in path.split("/") if p not in ("", ".")]


@dataclass
class FileEntry:
    """Metadata for one regular file.

    ``generation`` is a namenode-global monotonic stamp assigned when the
    entry is created.  Overwriting a path creates a *new* entry with a new
    generation, so ``(path, generation)`` uniquely identifies one immutable
    file content — the key the decoded-block cache uses to stay correct
    across overwrite/rename/delete without explicit invalidation callbacks.
    """

    name: str
    blocks: list[BlockInfo] = field(default_factory=list)
    generation: int = 0

    @property
    def length(self) -> int:
        return sum(b.length for b in self.blocks)


@dataclass
class DirEntry:
    """Metadata for one directory."""

    name: str
    children: dict[str, "FileEntry | DirEntry"] = field(default_factory=dict)


class NameNode:
    """The namespace tree, protected by a single coarse lock.

    A coarse lock is faithful to the real namenode (a single-writer namespace)
    and keeps semantics obvious; metadata operations are tiny compared to the
    block I/O they coordinate.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.root = DirEntry(name="")  # guarded-by: _lock
        self._next_generation = 1  # guarded-by: _lock

    # -- traversal -----------------------------------------------------------

    def _walk(self, path: str) -> "FileEntry | DirEntry | None":  # requires-lock: _lock
        node: FileEntry | DirEntry = self.root
        for part in split_path(path):
            if not isinstance(node, DirEntry):
                return None
            child = node.children.get(part)
            if child is None:
                return None
            node = child
        return node

    def _parent_dir(  # requires-lock: _lock
        self, path: str, *, create: bool
    ) -> tuple[DirEntry, str]:
        parts = split_path(path)
        if not parts:
            raise DFSError("path refers to the root directory")
        node: DirEntry = self.root
        for part in parts[:-1]:
            child = node.children.get(part)
            if child is None:
                if not create:
                    raise FileNotFound(f"no such directory: {part!r} in {path!r}")
                child = DirEntry(name=part)
                node.children[part] = child
            if not isinstance(child, DirEntry):
                raise NotADirectory(f"{part!r} in {path!r} is a file")
            node = child
        return node, parts[-1]

    # -- operations ----------------------------------------------------------

    def create_file(self, path: str, *, overwrite: bool = False) -> FileEntry:
        with self._lock:
            parent, name = self._parent_dir(path, create=True)
            existing = parent.children.get(name)
            if existing is not None:
                if isinstance(existing, DirEntry):
                    raise IsADirectory(path)
                if not overwrite:
                    raise FileAlreadyExists(path)
            entry = FileEntry(name=name, generation=self._next_generation)
            self._next_generation += 1
            parent.children[name] = entry
            return entry

    def mkdirs(self, path: str) -> DirEntry:
        with self._lock:
            node: DirEntry = self.root
            for part in split_path(path):
                child = node.children.get(part)
                if child is None:
                    child = DirEntry(name=part)
                    node.children[part] = child
                if not isinstance(child, DirEntry):
                    raise NotADirectory(f"{part!r} in {path!r} is a file")
                node = child
            return node

    def get_file(self, path: str) -> FileEntry:
        with self._lock:
            node = self._walk(path)
            if node is None:
                raise FileNotFound(path)
            if isinstance(node, DirEntry):
                raise IsADirectory(path)
            return node

    def exists(self, path: str) -> bool:
        with self._lock:
            return self._walk(path) is not None

    def is_dir(self, path: str) -> bool:
        with self._lock:
            return isinstance(self._walk(path), DirEntry)

    def is_file(self, path: str) -> bool:
        with self._lock:
            return isinstance(self._walk(path), FileEntry)

    def list_dir(self, path: str) -> list[str]:
        with self._lock:
            node = self._walk(path)
            if node is None:
                raise FileNotFound(path)
            if isinstance(node, FileEntry):
                raise NotADirectory(path)
            return sorted(node.children)

    def delete(self, path: str, *, recursive: bool = False) -> list[FileEntry]:
        """Remove a path; returns all file entries removed (for block GC)."""
        with self._lock:
            parent, name = self._parent_dir(path, create=False)
            node = parent.children.get(name)
            if node is None:
                raise FileNotFound(path)
            if isinstance(node, DirEntry) and node.children and not recursive:
                raise DirectoryNotEmpty(path)
            del parent.children[name]
            removed: list[FileEntry] = []

            def collect(entry: FileEntry | DirEntry) -> None:
                if isinstance(entry, FileEntry):
                    removed.append(entry)
                else:
                    for child in entry.children.values():
                        collect(child)

            collect(node)
            return removed

    def rename(self, src: str, dst: str) -> None:
        with self._lock:
            src_parent, src_name = self._parent_dir(src, create=False)
            node = src_parent.children.get(src_name)
            if node is None:
                raise FileNotFound(src)
            dst_parent, dst_name = self._parent_dir(dst, create=True)
            if dst_name in dst_parent.children:
                raise FileAlreadyExists(dst)
            del src_parent.children[src_name]
            node.name = dst_name
            dst_parent.children[dst_name] = node

    def walk_files(self, path: str = "/") -> list[str]:
        """All file paths under ``path``, depth-first, sorted within each dir."""
        with self._lock:
            node = self._walk(path)
            if node is None:
                raise FileNotFound(path)
            base = normalize(path)
            result: list[str] = []

            def recurse(prefix: str, entry: FileEntry | DirEntry) -> None:
                if isinstance(entry, FileEntry):
                    result.append(prefix)
                    return
                for name in sorted(entry.children):
                    child_prefix = prefix.rstrip("/") + "/" + name
                    recurse(child_prefix, entry.children[name])

            recurse(base, node)
            return result
