"""``python -m repro dfs`` — filesystem maintenance tools from the shell.

Currently one subcommand::

    python -m repro dfs fsck               # crash a run mid-write, then fsck
    python -m repro dfs fsck --no-repair   # report debris without rollback
    python -m repro dfs fsck --json        # machine-readable report
    python -m repro dfs fsck --self-check  # seeded-debris detection gate

The simulated DFS lives in process memory, so the default mode builds its
own demonstration cluster: it runs a small inversion, kills the driver at a
write point chosen by ``--crash-at``, and then runs
:func:`repro.dfs.fsck.fsck` over the wreckage — showing exactly what a
resume-time consistency check sees after a real crash.  ``--self-check``
instead seeds one specimen of every debris category fsck claims to detect
(orphaned staging, unsealed files, invalid manifests) and asserts each is
found, rolled back, and stays gone — the CI gate ``make chaos`` runs.
"""

from __future__ import annotations

import argparse
import json as _json
import sys

import numpy as np

from .commit import manifest_path, staging_path
from .filesystem import DFS
from .fsck import fsck


class _InjectedCrash(RuntimeError):
    """Driver death injected at an exact write point (``fatal`` so the
    engine re-raises it instead of retrying the attempt)."""

    fatal = True


def _crashed_cluster(seed: int, crash_at: int) -> tuple[DFS, str, int]:
    """A scratch cluster holding the wreckage of a mid-write driver crash."""
    from ..inversion.config import InversionConfig
    from ..inversion.driver import MatrixInverter
    from ..mapreduce.runtime import MapReduceRuntime, RuntimeConfig

    rng = np.random.RandomState(seed)
    n = 8
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    config = InversionConfig(nb=2, m0=2)
    dfs = DFS(num_datanodes=3, replication=2, seed=seed)
    runtime = MapReduceRuntime(
        dfs=dfs, config=RuntimeConfig(num_workers=2, executor="serial")
    )
    remaining = [crash_at]

    def crash_hook(op: str, path: str) -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            return
        dfs.fault_hooks.remove(crash_hook)
        raise _InjectedCrash(f"injected driver crash at {op} {path}")

    dfs.fault_hooks.append(crash_hook)
    try:
        MatrixInverter(config=config, runtime=runtime).invert(a)
    except _InjectedCrash:
        pass
    finally:
        runtime.shutdown()
    return dfs, config.root, n


def _run_fsck(args: argparse.Namespace) -> int:
    dfs, root, _ = _crashed_cluster(args.seed, args.crash_at)
    report = fsck(dfs, root=root, repair=not args.no_repair)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(
            f"scratch cluster: inversion crashed at write point "
            f"#{args.crash_at} (seed {args.seed})"
        )
        print(report.format())
        if not args.no_repair:
            verify = fsck(dfs, root=root, repair=False)
            print(
                "post-repair audit: "
                + ("clean" if verify.clean else f"{len(verify.issues)} issue(s) left")
            )
    if args.no_repair:
        return 0  # report-only mode: debris is expected, not a failure
    return 0 if fsck(dfs, root=root, repair=False).clean else 1


def _self_check(as_json: bool) -> int:
    """Seed one specimen of each debris category; assert detect + repair."""
    root = "/Root"
    dfs = DFS(num_datanodes=3, replication=2, seed=0)
    checks: list[tuple[str, bool, str]] = []

    def check(label: str, ok: bool, detail: str = "") -> None:
        checks.append((label, ok, detail))

    # A healthy published file the debris must not disturb.
    scope_src = staging_path("attempt-good", f"{root}/data/keep.bin")
    dfs.stage_bytes(scope_src, b"k" * 64)
    dfs.publish([(scope_src, f"{root}/data/keep.bin")])
    dfs.discard_staging("/_tmp/attempt-good")
    clean = fsck(dfs, root=root, repair=False)
    check("pristine cluster -> clean report", clean.clean, clean.format())

    # Category 1: orphaned staging (a crashed attempt's private directory).
    dfs.stage_bytes(staging_path("attempt-dead", f"{root}/data/a.bin"), b"a" * 32)
    # Category 2: an unsealed file outside staging (torn direct write).
    dfs.stage_bytes(f"{root}/data/torn.bin", b"t" * 16)
    # Category 3a: an unparseable manifest.
    dfs.write_bytes(manifest_path(root, "job:broken"), b"not json")
    # Category 3b: a well-formed manifest listing a never-published file.
    dfs.write_bytes(
        manifest_path(root, "job:lying"),
        _json.dumps(
            {"step": "job:lying", "published": [f"{root}/data/ghost.bin"]}
        ).encode(),
    )

    found = fsck(dfs, root=root, repair=False)
    kinds = {i.kind for i in found.issues}
    check(
        "seeded debris -> all three categories detected",
        kinds == {"orphaned-staging", "unsealed-file", "invalid-manifest"},
        str(sorted(kinds)),
    )
    check(
        "both bad manifests flagged",
        sum(i.kind == "invalid-manifest" for i in found.issues) == 2,
        found.format(),
    )
    check("report-only mode leaves debris", not fsck(
        dfs, root=root, repair=False
    ).clean)

    repaired = fsck(dfs, root=root, repair=True)
    check(
        "repair pass rolls everything back",
        all(i.repaired for i in repaired.issues),
        repaired.format(),
    )
    after = fsck(dfs, root=root, repair=False)
    check("post-repair audit clean", after.clean, after.format())
    check(
        "published data survives repair",
        dfs.exists(f"{root}/data/keep.bin"),
    )
    check(
        "commit dir keeps no invalidated manifests",
        not dfs.exists(manifest_path(root, "job:broken"))
        and not dfs.exists(manifest_path(root, "job:lying")),
    )

    failures = [(label, detail) for label, ok, detail in checks if not ok]
    if as_json:
        print(
            _json.dumps(
                {
                    "ok": not failures,
                    "checks": [
                        {"label": label, "ok": ok, "detail": detail}
                        for label, ok, detail in checks
                    ],
                },
                indent=2,
            )
        )
    else:
        for label, ok, detail in checks:
            print(f"  {'ok' if ok else 'FAIL'}  {label}")
            if not ok and detail:
                print(f"        {detail}")
        print(
            "fsck self-check "
            + ("OK" if not failures else f"FAILED ({len(failures)} failure(s))")
        )
    return 0 if not failures else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro dfs",
        description="DFS maintenance tools for the two-phase output commit: "
        "detect and roll back crash debris (orphaned staging, unsealed "
        "files, invalid commit manifests)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p = sub.add_parser(
        "fsck",
        help="check a crashed run's namespace for commit-protocol debris "
        "and roll it back",
    )
    p.add_argument(
        "--seed", type=int, default=0, help="scratch-cluster RNG seed"
    )
    p.add_argument(
        "--crash-at",
        type=int,
        default=12,
        metavar="K",
        help="kill the demonstration driver at its K-th DFS write/publish "
        "(default 12: mid LU-job output)",
    )
    p.add_argument(
        "--no-repair",
        action="store_true",
        help="report debris without rolling it back",
    )
    p.add_argument("--json", action="store_true", help="emit JSON report")
    p.add_argument(
        "--self-check",
        action="store_true",
        help="seed every debris category into a scratch cluster and assert "
        "fsck detects and repairs each",
    )
    args = parser.parse_args(argv)
    if args.self_check:
        return _self_check(args.json)
    return _run_fsck(args)


def register_commands(registry) -> None:
    """Hook for the ``python -m repro`` subcommand registry."""
    registry.add_passthrough(
        "dfs",
        main,
        help="DFS maintenance: fsck for crash debris (staging, unsealed "
        "files, manifests); see python -m repro dfs --help",
    )


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
