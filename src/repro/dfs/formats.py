"""Matrix serialization for DFS files.

Two codecs, matching the paper's Table 3 which reports matrix sizes in both
*text* and *binary* form:

* **text** — one row per line, elements space-separated with full double
  precision (`repr`-roundtrippable).  This is the ``Root/a.txt`` input format.
* **binary** — a 16-byte header (magic, rows, cols) followed by row-major
  little-endian float64 data.  Intermediate pipeline files use this codec;
  it is the "binary (GB)" column of Table 3.

Row-range readers let a mapper fetch only its share of rows — Section 5.2's
"each map function reads an equal number of consecutive rows ... to increase
I/O sequentiality".
"""

from __future__ import annotations

import struct

import numpy as np

from .filesystem import DFS

_MAGIC = b"RMX1"
_HEADER = struct.Struct("<4sIQ")  # magic, cols, rows


# -- binary codec -------------------------------------------------------------


def encode_matrix(matrix: np.ndarray) -> bytes:
    """Serialize a 2-D float64 array to the binary matrix format."""
    m = np.ascontiguousarray(matrix, dtype=np.float64)
    if m.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {matrix.shape}")
    header = _HEADER.pack(_MAGIC, m.shape[1], m.shape[0])
    return header + m.tobytes()


def decode_matrix(data: bytes, *, writable: bool = False) -> np.ndarray:
    """Inverse of :func:`encode_matrix`.

    By default the result is a *read-only view* over ``data``'s buffer — no
    copy is made, which is what lets the decoded-block cache share one array
    between every task in a wave.  Callers that mutate the matrix in place
    must pass ``writable=True`` to get a private copy.
    """
    if len(data) < _HEADER.size:
        raise ValueError("truncated matrix file: missing header")
    magic, cols, rows = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise ValueError(f"bad matrix magic {magic!r}")
    body = np.frombuffer(data, dtype=np.float64, offset=_HEADER.size)
    if body.size != rows * cols:
        raise ValueError(
            f"matrix payload has {body.size} elements, header says {rows}x{cols}"
        )
    view = body.reshape(rows, cols)
    return view.copy() if writable else view


def write_matrix(dfs: DFS, path: str, matrix: np.ndarray) -> None:
    """Write a matrix to ``path`` in binary format."""
    dfs.write_bytes(path, encode_matrix(matrix))


def read_matrix(dfs: DFS, path: str, *, local: bool = False) -> np.ndarray:
    """Read a whole binary matrix file."""
    return decode_matrix(dfs.read_bytes(path, local=local))


def matrix_shape(dfs: DFS, path: str) -> tuple[int, int]:
    """Read only the header of a binary matrix file (rows, cols)."""
    head = dfs.read_range(path, 0, _HEADER.size)
    magic, cols, rows = _HEADER.unpack_from(head)
    if magic != _MAGIC:
        raise ValueError(f"bad matrix magic {magic!r}")
    return rows, cols


def read_rows(
    dfs: DFS, path: str, r1: int, r2: int, *, local: bool = False,
    writable: bool = False,
) -> np.ndarray:
    """Read rows ``[r1, r2)`` of a binary matrix file without fetching the rest.

    This is the range-read a mapper issues for its contiguous row share.
    Like :func:`decode_matrix`, the result is a read-only view over the
    fetched bytes unless ``writable=True``.
    """
    rows, cols = matrix_shape(dfs, path)
    if not (0 <= r1 <= r2 <= rows):
        raise ValueError(f"row range [{r1}, {r2}) out of bounds for {rows} rows")
    row_bytes = cols * 8
    offset = _HEADER.size + r1 * row_bytes
    data = dfs.read_range(path, offset, (r2 - r1) * row_bytes, local=local)
    view = np.frombuffer(data, dtype=np.float64).reshape(r2 - r1, cols)
    return view.copy() if writable else view


# -- text codec ---------------------------------------------------------------


def encode_matrix_text(matrix: np.ndarray) -> str:
    """Serialize a matrix as the ``a.txt`` whitespace text format."""
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {matrix.shape}")
    return "\n".join(" ".join(repr(float(v)) for v in row) for row in m) + "\n"


def decode_matrix_text(text: str) -> np.ndarray:
    """Inverse of :func:`encode_matrix_text`."""
    rows = [
        [float(tok) for tok in line.split()]
        for line in text.splitlines()
        if line.strip()
    ]
    if not rows:
        return np.zeros((0, 0))
    width = len(rows[0])
    if any(len(r) != width for r in rows):
        raise ValueError("ragged rows in text matrix")
    return np.array(rows, dtype=np.float64)


def write_matrix_text(dfs: DFS, path: str, matrix: np.ndarray) -> None:
    dfs.write_text(path, encode_matrix_text(matrix))


def read_matrix_text(dfs: DFS, path: str, *, local: bool = False) -> np.ndarray:
    return decode_matrix_text(dfs.read_text(path, local=local))


def text_size_bytes(matrix: np.ndarray) -> int:
    """Size the matrix would occupy in text form (Table 3's "Text (GB)")."""
    return len(encode_matrix_text(matrix).encode("utf-8"))


def binary_size_bytes(n_rows: int, n_cols: int) -> int:
    """Size of a binary matrix file for the given order (Table 3's "Binary")."""
    return _HEADER.size + n_rows * n_cols * 8
