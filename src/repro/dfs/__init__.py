"""HDFS-like distributed filesystem substrate.

Provides the storage layer the paper's pipeline runs against: a namenode
namespace, replicated block storage with checksums, byte-level I/O accounting
(Tables 1/2 reason about bytes read/written/transferred), and the matrix
text/binary codecs of Table 3.
"""

from .blocks import BlockCorruptionError, BlockMissingError, BlockStore, DataNode
from .cache import DEFAULT_BLOCK_CACHE_BYTES, BlockCache
from .commit import (
    STAGING_ROOT,
    CommitLog,
    CommitScope,
    manifest_path,
    staging_dir,
    staging_path,
)
from .filesystem import DFS, DFSWriter
from .fsck import FsckIssue, FsckReport, fsck
from .health import HealthMonitor, HealthReport, RepairReport
from .iostats import IOSnapshot, IOStats
from .namenode import (
    DFSError,
    DirectoryNotEmpty,
    FileAlreadyExists,
    FileNotFound,
    IsADirectory,
    NameNode,
    NotADirectory,
)
from . import formats, matrixmarket

__all__ = [
    "matrixmarket",
    "DEFAULT_BLOCK_CACHE_BYTES",
    "DFS",
    "DFSWriter",
    "DFSError",
    "DataNode",
    "BlockCache",
    "BlockStore",
    "BlockCorruptionError",
    "BlockMissingError",
    "CommitLog",
    "CommitScope",
    "DirectoryNotEmpty",
    "FileAlreadyExists",
    "FileNotFound",
    "FsckIssue",
    "FsckReport",
    "HealthMonitor",
    "HealthReport",
    "RepairReport",
    "IOSnapshot",
    "IOStats",
    "IsADirectory",
    "NameNode",
    "NotADirectory",
    "STAGING_ROOT",
    "formats",
    "fsck",
    "manifest_path",
    "staging_dir",
    "staging_path",
]
