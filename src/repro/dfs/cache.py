"""Worker-shared decoded-block cache for the DFS read path.

The pipeline's hot files are immutable once written (the plan linter enforces
write-once intermediates) and are re-read by every task in a wave: ``L1^-1``,
``U1^-1``, the ``inv_l``/``inv_u`` column files, and the Schur inputs.  SPIN
(arXiv:1801.04723) attributes much of Spark's advantage over the paper's
Hadoop pipeline to exactly this reuse being served from memory.  The
:class:`BlockCache` gives the simulated cluster the same lever: a byte-capped
LRU of *decoded, read-only* matrices keyed by ``(path, generation)``.

Correctness rests on two properties:

* **generation keys** — the namenode stamps every :class:`~repro.dfs.namenode.FileEntry`
  with a globally monotonic generation at creation; overwriting a path makes
  a new entry with a new generation, so a stale cached matrix can never be
  served for rewritten content.  Renames keep the entry (and its generation),
  which is safe because generations are globally unique.  ``DFS.delete`` /
  ``DFS.rename`` additionally drop affected keys eagerly so dead entries do
  not linger until LRU eviction.
* **read-only values** — cached arrays are the non-writable views produced by
  :func:`repro.dfs.formats.decode_matrix`, so sharing one object between
  concurrent tasks cannot race: any attempted in-place mutation raises.

The cache sits *above* the block integrity layer: a miss goes through
``DFS.read_bytes``, which checksums every replica it touches, so corruption
is detected exactly as without the cache; only content that already passed
verification is ever served from memory.

Accounting: cache hits are *logical* reads (task traces and Hadoop-style
counters still see them) but not *physical* ones (no ``iostats.bytes_read``,
no ``dfs.read`` span) — the same split real HDFS has between bytes an
application consumed and bytes a datanode served.  The reconcile auditor
checks ``bytes requested == bytes served from cache + bytes read through``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

from . import formats
from .namenode import normalize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .filesystem import DFS

#: Default capacity wired into :class:`~repro.inversion.config.InversionConfig`.
DEFAULT_BLOCK_CACHE_BYTES = 64 << 20

#: Cache key: (normalized path, file generation).
CacheKey = tuple[str, int]


class BlockCache:
    """Byte-capped LRU cache of decoded read-only matrices.

    Thread-safe: one small lock guards the LRU map and the counters, and is
    never held across DFS block I/O — concurrent misses on the same key both
    read through and race to :meth:`put`, which is idempotent (the values are
    identical read-only decodes of the same immutable file content).
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 1:
            raise ValueError("capacity_bytes must be >= 1")
        self.capacity_bytes = capacity_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, np.ndarray] = OrderedDict()  # guarded-by: _lock
        self._used_bytes = 0  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock

    # -- core map operations ---------------------------------------------------

    def get(self, key: CacheKey) -> np.ndarray | None:
        """The cached matrix for ``key``, bumping its recency; ``None`` on
        miss.  The returned array is read-only, so handing it out unshielded
        is safe."""
        with self._lock:
            found = self._entries.get(key)
            if found is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return found

    def put(self, key: CacheKey, matrix: np.ndarray) -> bool:
        """Insert a decoded matrix, evicting LRU entries to fit.  Returns
        False (and caches nothing) when the matrix alone exceeds capacity
        or the value is writable (a writable array could be mutated by its
        holder after insertion, breaking every future reader)."""
        if matrix.flags.writeable:
            return False
        nbytes = int(matrix.nbytes)
        if nbytes > self.capacity_bytes:
            return False
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return True
            self._entries[key] = matrix
            self._used_bytes += nbytes
            while self._used_bytes > self.capacity_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._used_bytes -= int(evicted.nbytes)
                self._evictions += 1
            return True

    def drop_path(self, path: str) -> int:
        """Eagerly drop every generation cached under ``path`` (or under the
        directory ``path/``).  Returns the number of entries dropped.  Purely
        hygiene — generation keys already make stale hits impossible."""
        prefix = normalize(path)
        dir_prefix = prefix.rstrip("/") + "/"
        with self._lock:
            doomed = [
                key
                for key in self._entries
                if key[0] == prefix or key[0].startswith(dir_prefix)
            ]
            for key in doomed:
                self._used_bytes -= int(self._entries.pop(key).nbytes)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._used_bytes = 0

    # -- read-through ----------------------------------------------------------

    def read_through(self, dfs: "DFS", path: str) -> tuple[np.ndarray, int]:
        """Serve ``path`` decoded, from memory when possible.

        Returns ``(matrix, nbytes)`` where ``nbytes`` is the file's encoded
        size — what the caller should account as its logical read.  On a hit
        no DFS I/O happens at all; on a miss the file goes through the normal
        checksummed ``DFS.read_bytes`` path and the decoded view is inserted.
        """
        entry = dfs.namenode.get_file(normalize(path))
        key = (normalize(path), entry.generation)
        found = self.get(key)
        if found is not None:
            dfs.stats.record_cache_hit(entry.length)
            return found, entry.length
        data = dfs.read_bytes(path)
        matrix = formats.decode_matrix(data)
        dfs.stats.record_cache_miss(len(data))
        self.put(key, matrix)
        return matrix, len(data)

    # -- introspection ---------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._used_bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Point-in-time counters (hits/misses are map-level, counted once
        per :meth:`get`)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "used_bytes": self._used_bytes,
                "capacity_bytes": self.capacity_bytes,
            }


__all__ = ["BlockCache", "CacheKey", "DEFAULT_BLOCK_CACHE_BYTES"]
