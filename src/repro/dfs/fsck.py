"""Crash-recovery consistency check for the two-phase commit protocol.

After a driver crash the namespace can hold three kinds of debris, all of
them invisible to (or ignorable by) a correct resume but worth deleting so
the commit ledger and the final tree stay clean:

``orphaned-staging``
    Any file under ``/_tmp`` — by definition uncommitted output whose
    writer died before publish (or a zombie attempt's re-created files).
``unsealed-file``
    A pending file *outside* the staging namespace: a torn direct write.
    Invisible to readers, superseded by the step's re-run.
``invalid-manifest``
    A commit manifest that is unparseable or lists a published path that
    does not exist as a sealed file.  The manifest is deleted so resume
    re-runs the step instead of trusting a broken commit record.

:func:`fsck` detects all three; with ``repair=True`` (the default) it also
rolls them back.  ``invert(resume=True)`` runs a repairing fsck before
trusting any on-DFS state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .commit import COMMIT_DIR, STAGING_ROOT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .filesystem import DFS


@dataclass
class FsckIssue:
    """One inconsistency: what it is, where, and whether it was rolled back."""

    kind: str
    path: str
    detail: str
    repaired: bool = False

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "path": self.path,
            "detail": self.detail,
            "repaired": self.repaired,
        }


@dataclass
class FsckReport:
    """Everything one fsck pass found (and possibly repaired)."""

    root: str
    repair: bool
    issues: list[FsckIssue] = field(default_factory=list)
    files_checked: int = 0
    manifests_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.issues

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "repair": self.repair,
            "clean": self.clean,
            "files_checked": self.files_checked,
            "manifests_checked": self.manifests_checked,
            "issues": [i.to_dict() for i in self.issues],
        }

    def format(self) -> str:
        lines = [
            f"fsck {self.root}: {self.files_checked} file(s), "
            f"{self.manifests_checked} manifest(s) checked"
        ]
        if self.clean:
            lines.append("  clean — no orphaned staging, unsealed files, "
                         "or invalid manifests")
        for issue in self.issues:
            action = "repaired" if issue.repaired else "found"
            lines.append(
                f"  [{action}] {issue.kind}: {issue.path} — {issue.detail}"
            )
        return "\n".join(lines)


def fsck(dfs: "DFS", *, root: str = "/Root", repair: bool = True) -> FsckReport:
    """Check (and with ``repair=True`` roll back) commit-protocol debris."""
    report = FsckReport(root=root, repair=repair)
    nn = dfs.namenode

    # 1. Orphaned staging: everything under /_tmp is uncommitted by
    #    definition — one recursive discard rolls all of it back.
    if nn.exists(STAGING_ROOT, include_pending=True):
        for path in nn.walk_files(STAGING_ROOT, include_pending=True):
            report.issues.append(
                FsckIssue(
                    kind="orphaned-staging",
                    path=path,
                    detail="uncommitted staging output (writer never published)",
                    repaired=repair,
                )
            )
        if repair:
            dfs.discard_staging(STAGING_ROOT)

    # 2. Unsealed files outside staging: torn direct writes.
    for path in nn.pending_files("/"):
        if path.startswith(STAGING_ROOT + "/"):
            continue  # already reported above
        report.issues.append(
            FsckIssue(
                kind="unsealed-file",
                path=path,
                detail="pending file outside staging (torn direct write)",
                repaired=repair,
            )
        )
        if repair:
            dfs.discard_staging(path)

    # 3. Manifests whose published files are missing or unsealed.
    report.files_checked = len(nn.walk_files("/"))
    commit_dir = f"{root}/{COMMIT_DIR}"
    if dfs.exists(commit_dir):
        for manifest in dfs.list_files(commit_dir):
            report.manifests_checked += 1
            problem = _manifest_problem(dfs, manifest)
            if problem is None:
                continue
            report.issues.append(
                FsckIssue(
                    kind="invalid-manifest",
                    path=manifest,
                    detail=problem,
                    repaired=repair,
                )
            )
            if repair:
                dfs.delete(manifest)
    return report


def _manifest_problem(dfs: "DFS", manifest: str) -> str | None:
    """Why ``manifest`` cannot be trusted, or ``None`` if it is sound."""
    try:
        payload = json.loads(dfs.read_bytes(manifest))
        published = payload["published"]
        if not isinstance(published, list):
            raise TypeError("'published' is not a list")
    except Exception as exc:  # noqa: BLE001 - any parse failure invalidates
        return f"unparseable manifest ({type(exc).__name__}: {exc})"
    for path in published:
        if not dfs.exists(path):
            return f"lists missing or unsealed file {path}"
    return None


__all__ = ["FsckIssue", "FsckReport", "fsck"]
