"""Spark-style in-memory dataflow engine and the inversion port — the
paper's Section 8 future work, implemented: RDDs with lineage-based fault
tolerance, caching, shuffles, broadcasts, and Algorithm 2 running on them
with intermediates kept in memory instead of HDFS."""

from .context import Broadcast, SparkContext, SparkMetrics
from .inversion import (
    SparkInversionConfig,
    SparkInversionResult,
    SparkMatrixInverter,
    spark_invert,
)
from .rdd import (
    MapPartitionsRDD,
    ParallelCollectionRDD,
    RDD,
    ShuffledRDD,
    UnionRDD,
)

__all__ = [
    "Broadcast",
    "MapPartitionsRDD",
    "ParallelCollectionRDD",
    "RDD",
    "ShuffledRDD",
    "SparkContext",
    "SparkInversionConfig",
    "SparkInversionResult",
    "SparkMatrixInverter",
    "SparkMetrics",
    "UnionRDD",
    "spark_invert",
]
