"""Block-LU matrix inversion on the RDD engine — the paper's Section 8 plan,
realized.

"In our implementation using Hadoop, all intermediate data, such as L1 and
U1, is written to HDFS files by one MapReduce job and read from these HDFS
files by the next job in the pipeline ... Spark provides parallel data
structures that allow users to explicitly keep data in memory with fault
tolerance.  Therefore, we expect that implementing our algorithm in Spark
would improve performance by reducing read I/O.  What is promising is that
our technique would need minimal changes."

And indeed the structure below is the same Algorithm 2 recursion with the
same chunking; the only change is where intermediates live:

* ``L2'``/``U2``/Schur chunks are **cached RDD partitions** instead of HDFS
  files (lineage replaces replication for fault tolerance);
* the small factors every worker needs (L1/U1/P1 — which each Hadoop mapper
  re-reads from HDFS) are **broadcast variables**;
* external I/O shrinks to reading the input once and writing the inverse
  once, which the Spark-vs-Hadoop benchmark quantifies.

The driver runs the recursion (as Spark drivers do); all heavy per-chunk
work — triangular solves, Schur cells, triangular-inverse columns, product
blocks — happens inside RDD transformations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..linalg import permutation
from ..linalg.blockwrap import contiguous_ranges, strided_indices
from ..linalg.lu import lu_decompose
from ..linalg.triangular import (
    blocked_forward_substitute,
    invert_lower_columns,
    invert_upper_rows,
)
from ..inversion.plan import split_order
from .context import SparkContext, SparkMetrics
from .rdd import RDD

# Chunk records are (chunk_id, (row_start, ndarray)); ndarray spans the full
# width of the node's matrix, rows [row_start, row_start + nrows).


def _chunk_matrix(sc: SparkContext, a: np.ndarray, chunks: int) -> RDD:
    ranges = contiguous_ranges(a.shape[0], chunks)
    data = [(i, (r1, a[r1:r2].copy())) for i, (r1, r2) in enumerate(ranges) if r2 > r1]
    return sc.parallelize(data, num_partitions=max(len(data), 1))


def _assemble_rows(pieces: list[tuple[int, np.ndarray]], rows: int, cols: int) -> np.ndarray:
    out = np.zeros((rows, cols))
    for r1, block in pieces:
        out[r1 : r1 + block.shape[0]] = block
    return out


def _collect_matrix(rdd: RDD, rows: int, cols: int) -> np.ndarray:
    return _assemble_rows([rs for _, rs in rdd.collect()], rows, cols)


def _slice_rows(rdd: RDD, r1: int, r2: int, c1: int, c2: int, chunks: int) -> RDD:
    """Narrow re-chunk: the sub-matrix [r1:r2, c1:c2] as ``chunks`` row
    chunks (chunk boundaries realigned via a shuffle-free flat_map +
    group_by_key keyed by destination chunk)."""
    ranges = contiguous_ranges(r2 - r1, chunks)

    def emit(record):
        _, (row_start, block) = record
        for dest, (d1, d2) in enumerate(ranges):
            g1, g2 = r1 + d1, r1 + d2  # destination range in node coords
            o1, o2 = max(row_start, g1), min(row_start + block.shape[0], g2)
            if o1 < o2:
                piece = block[o1 - row_start : o2 - row_start, c1:c2]
                yield (dest, (o1 - r1, piece))

    grouped = rdd.flat_map(emit).group_by_key(chunks)

    def assemble(pairs):
        for dest, pieces in pairs:
            d1, d2 = ranges[dest]
            if d2 <= d1:
                continue
            block = np.zeros((d2 - d1, c2 - c1))
            for off, piece in pieces:
                block[off - d1 : off - d1 + piece.shape[0]] = piece
            yield (dest, (d1, block))

    return grouped.map_partitions(assemble)


@dataclass
class SparkInversionConfig:
    """Tunables of the in-memory port (mirrors InversionConfig where the
    concept carries over)."""

    nb: int = 64
    chunks: int = 4  # parallel chunks per stage (the Hadoop version's mhalf)
    pivot: bool = True

    def __post_init__(self) -> None:
        if self.nb < 1 or self.chunks < 1:
            raise ValueError("nb and chunks must be >= 1")


@dataclass
class SparkInversionResult:
    inverse: np.ndarray
    metrics: SparkMetrics
    external_bytes_read: int  # input, read once
    external_bytes_written: int  # inverse, written once
    cached_partitions: int

    def residual(self, a: np.ndarray) -> float:
        n = a.shape[0]
        return float(np.max(np.abs(np.eye(n) - a @ self.inverse)))


class SparkMatrixInverter:
    """Invert matrices on a :class:`SparkContext` (Algorithm 2, in memory)."""

    def __init__(
        self, config: SparkInversionConfig | None = None, sc: SparkContext | None = None
    ) -> None:
        self.config = config or SparkInversionConfig()
        self.sc = sc or SparkContext(default_parallelism=self.config.chunks)
        #: cached intermediate RDDs of the last run, keyed by a debug name —
        #: exposed so fault-injection tests can evict specific partitions.
        self.intermediates: dict[str, RDD] = {}

    # -- Algorithm 2 -------------------------------------------------------------

    def _decompose(
        self, rdd: RDD, n: int, tag: str
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns assembled (lower, upper, perm) with P A = L U."""
        cfg = self.config
        if n <= cfg.nb:
            block = _collect_matrix(rdd, n, n)
            res = lu_decompose(block, pivot=cfg.pivot)
            return res.lower(), res.upper(), res.perm

        n1, n2 = split_order(n)
        a1 = _slice_rows(rdd, 0, n1, 0, n1, cfg.chunks)
        l1, u1, p1 = self._decompose(a1, n1, tag + "/A1")

        l1_b = self.sc.broadcast(l1)
        u1_b = self.sc.broadcast(u1)
        p1_b = self.sc.broadcast(p1)

        # L2' rows:  X U1 = A3  (row chunks stay narrow).
        a3 = _slice_rows(rdd, n1, n, 0, n1, cfg.chunks)
        l2_rdd = a3.map(
            lambda rec: (rec[0], (rec[1][0], blocked_forward_substitute(u1_b.value.T, rec[1][1].T).T))
        ).cache()
        self.intermediates[tag + "/L2"] = l2_rdd

        # U2 columns:  L1 U2 = P1 A2  (column chunking needs a shuffle).
        a2 = _slice_rows(rdd, 0, n1, n1, n, cfg.chunks)
        col_ranges = contiguous_ranges(n2, cfg.chunks)

        def emit_cols(rec):
            _, (row_start, block) = rec
            for jc, (c1, c2) in enumerate(col_ranges):
                if c2 > c1:
                    yield (jc, (row_start, block[:, c1:c2]))

        def solve_u2(pairs):
            for jc, pieces in pairs:
                c1, c2 = col_ranges[jc]
                a2_cols = _assemble_rows(pieces, n1, c2 - c1)
                u2 = blocked_forward_substitute(
                    l1_b.value,
                    permutation.apply_rows(p1_b.value, a2_cols),
                    unit_diagonal=True,
                )
                yield (jc, (c1, u2))

        u2_rdd = a2.flat_map(emit_cols).group_by_key(cfg.chunks).map_partitions(solve_u2).cache()
        self.intermediates[tag + "/U2"] = u2_rdd

        # Schur cells:  B[i, jc] = A4[i, jc] - L2'[i] U2[jc].
        row_ranges = contiguous_ranges(n2, cfg.chunks)
        a4 = _slice_rows(rdd, n1, n, n1, n, cfg.chunks)

        def emit_l(rec):
            i, (r1, block) = rec
            for jc in range(len(col_ranges)):
                yield ((i, jc), ("L", block))

        def emit_u(rec):
            jc, (c1, block) = rec
            for i in range(len(row_ranges)):
                yield ((i, jc), ("U", block))

        def emit_a4(rec):
            i, (r1, block) = rec
            for jc, (c1, c2) in enumerate(col_ranges):
                if c2 > c1:
                    yield ((i, jc), ("A", block[:, c1:c2]))

        def schur_cell(pairs):
            for (i, jc), values in pairs:
                parts = dict()
                for kind, m in values:
                    parts[kind] = m
                if "A" not in parts:
                    continue
                yield ((i, jc), parts["A"] - parts["L"] @ parts["U"])

        cells = (
            l2_rdd.flat_map(emit_l)
            .union(u2_rdd.flat_map(emit_u))
            .union(a4.flat_map(emit_a4))
            .group_by_key(cfg.chunks)
            .map_partitions(schur_cell)
        )

        def regroup_rows(rec):
            (i, jc), cell = rec
            return (i, (jc, cell))

        def assemble_b(pairs):
            for i, jcs in pairs:
                r1, r2 = row_ranges[i]
                block = np.zeros((r2 - r1, n2))
                for jc, cell in jcs:
                    c1, c2 = col_ranges[jc]
                    block[:, c1:c2] = cell
                yield (i, (r1, block))

        b_rdd = cells.map(regroup_rows).group_by_key(cfg.chunks).map_partitions(assemble_b).cache()
        self.intermediates[tag + "/B"] = b_rdd

        l3, u3, p2 = self._decompose(b_rdd, n2, tag + "/OUT")

        # Assemble the node's factors (driver side, as read_lower does).
        lower = np.zeros((n, n))
        lower[:n1, :n1] = l1
        l2 = _collect_matrix(l2_rdd, n2, n1)
        lower[n1:, :n1] = permutation.apply_rows(p2, l2)
        lower[n1:, n1:] = l3
        upper = np.zeros((n, n))
        upper[:n1, :n1] = u1
        upper[:n1, n1:] = self._collect_cols(u2_rdd, n1, n2)
        upper[n1:, n1:] = u3
        perm = permutation.augment(p1, p2)
        return lower, upper, perm

    @staticmethod
    def _collect_cols(rdd: RDD, rows: int, cols: int) -> np.ndarray:
        out = np.zeros((rows, cols))
        for _, (c1, block) in rdd.collect():
            out[:, c1 : c1 + block.shape[1]] = block
        return out

    # -- public API ---------------------------------------------------------------

    def invert(self, a: np.ndarray) -> SparkInversionResult:
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"matrix must be square, got shape {a.shape}")
        n = a.shape[0]
        cfg = self.config
        self.intermediates.clear()

        # External input: read once.
        input_rdd = _chunk_matrix(self.sc, a, cfg.chunks).cache()
        external_read = a.nbytes

        lower, upper, perm = self._decompose(input_rdd, n, "/Root")

        # Final stage: triangular inverses + product, all on RDDs.
        lower_b = self.sc.broadcast(lower)
        upper_b = self.sc.broadcast(upper)
        chunks = cfg.chunks

        linv_rdd = self.sc.range(chunks, chunks).map(
            lambda j: (j, invert_lower_columns(lower_b.value, strided_indices(n, chunks, j)))
        ).cache()
        uinv_rdd = self.sc.range(chunks, chunks).map(
            lambda i: (i, invert_upper_rows(upper_b.value, strided_indices(n, chunks, i)))
        ).cache()
        self.intermediates["/INV/L"] = linv_rdd
        self.intermediates["/INV/U"] = uinv_rdd

        def emit_l(rec):
            j, cols_mat = rec
            for i in range(chunks):
                yield ((i, j), ("L", cols_mat))

        def emit_u(rec):
            i, rows_mat = rec
            for j in range(chunks):
                yield ((i, j), ("U", rows_mat))

        def product_cell(pairs):
            for (i, j), values in pairs:
                parts = dict(values)
                yield ((i, j), parts["U"] @ parts["L"])

        cells = (
            uinv_rdd.flat_map(emit_u)
            .union(linv_rdd.flat_map(emit_l))
            .group_by_key(chunks)
            .map_partitions(product_cell)
        )

        inverse = np.zeros((n, n))
        for (i, j), cell in cells.collect():
            rows = strided_indices(n, chunks, i)
            cols = strided_indices(n, chunks, j)
            inverse[np.ix_(rows, perm[cols])] = cell

        return SparkInversionResult(
            inverse=inverse,
            metrics=self.sc.metrics,
            external_bytes_read=external_read,
            external_bytes_written=inverse.nbytes,
            cached_partitions=self.sc.cached_partition_count,
        )


def spark_invert(
    a: np.ndarray, config: SparkInversionConfig | None = None
) -> SparkInversionResult:
    """One-call convenience wrapper."""
    return SparkMatrixInverter(config=config).invert(a)
