"""The driver context: partition materialization, caching, lineage recovery,
broadcasts, and execution metrics.

Fault tolerance works exactly as in the RDD paper: losing a cached partition
(``evict`` / ``kill_executor``) never loses data — the next access recomputes
the partition from its lineage.  The metrics object records how much work the
cache saved and how much was recomputed after faults, which the Spark-vs-
Hadoop benchmark reports alongside the I/O comparison.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from .rdd import RDD, ParallelCollectionRDD


@dataclass
class SparkMetrics:
    """Execution counters for one context."""

    partitions_computed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    recomputations: int = 0  # partitions recomputed after eviction
    shuffle_bytes: int = 0
    broadcast_bytes: int = 0


@dataclass
class Broadcast:
    """A read-only value shipped once to every executor (per the paper's
    "each mapper reads L1/U1" pattern, but in memory)."""

    value: Any
    nbytes: int


class SparkContext:
    """Driver-side entry point (a deliberately small pyspark.SparkContext).

    ``executor="threads"`` computes a job's target partitions on a thread
    pool (NumPy kernels release the GIL, so chunk work genuinely overlaps);
    parents reached through lineage are computed within each worker thread.
    Two threads may race to compute the same uncached ancestor partition —
    RDD computation is pure, so this is correctness-neutral and only shows
    up as extra ``partitions_computed``.
    """

    def __init__(
        self, default_parallelism: int = 4, executor: str = "serial"
    ) -> None:
        if default_parallelism < 1:
            raise ValueError("default_parallelism must be >= 1")
        if executor not in ("serial", "threads"):
            raise ValueError(f"executor must be 'serial' or 'threads', got {executor!r}")
        self.default_parallelism = default_parallelism
        self.executor = executor
        self.metrics = SparkMetrics()
        self._rdds: list[RDD] = []
        self._cache: dict[tuple[int, int], list[Any]] = {}
        self._evicted: set[tuple[int, int]] = set()
        self._lock = threading.RLock()

    # -- RDD creation -----------------------------------------------------------

    def _register(self, rdd: RDD) -> int:
        with self._lock:
            self._rdds.append(rdd)
            return len(self._rdds) - 1

    def parallelize(self, data: Iterable[Any], num_partitions: int | None = None) -> RDD:
        items = list(data)
        parts = num_partitions or min(self.default_parallelism, max(len(items), 1))
        return ParallelCollectionRDD(self, items, parts)

    def range(self, n: int, num_partitions: int | None = None) -> RDD:
        return self.parallelize(range(n), num_partitions)

    def broadcast(self, value: Any) -> Broadcast:
        import numpy as np

        if isinstance(value, np.ndarray):
            nbytes = value.nbytes
        else:
            import pickle

            try:
                nbytes = len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
            except Exception:
                nbytes = 64
        self.metrics.broadcast_bytes += nbytes
        return Broadcast(value=value, nbytes=nbytes)

    # -- execution ----------------------------------------------------------------

    def _materialize(self, rdd: RDD, index: int) -> list[Any]:
        key = (rdd.rdd_id, index)
        with self._lock:
            if rdd.is_cached and key in self._cache:
                self.metrics.cache_hits += 1
                return self._cache[key]
        if rdd.is_cached:
            self.metrics.cache_misses += 1
        data = rdd.compute_partition(index)
        with self._lock:
            self.metrics.partitions_computed += 1
            if key in self._evicted:
                self.metrics.recomputations += 1
                self._evicted.discard(key)
            if rdd.is_cached:
                self._cache[key] = data
        return data

    def _run_job(self, rdd: RDD, partitions: Sequence[int]) -> list[list[Any]]:
        if self.executor == "threads" and len(partitions) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=self.default_parallelism) as pool:
                return list(pool.map(rdd.partition, partitions))
        return [rdd.partition(i) for i in partitions]

    # -- fault injection -------------------------------------------------------------

    def evict(self, rdd: RDD, index: int) -> bool:
        """Drop one cached partition (simulates executor memory loss).

        Returns True if something was actually evicted; the partition will be
        recomputed through lineage on next access.
        """
        key = (rdd.rdd_id, index)
        with self._lock:
            if key in self._cache:
                del self._cache[key]
                self._evicted.add(key)
                return True
        return False

    def kill_executor(self, executor_index: int, num_executors: int) -> int:
        """Drop every cached partition that would live on one executor
        (partitions are assigned round-robin).  Returns the eviction count."""
        count = 0
        with self._lock:
            for rdd_id, index in list(self._cache):
                if index % num_executors == executor_index:
                    del self._cache[(rdd_id, index)]
                    self._evicted.add((rdd_id, index))
                    count += 1
        return count

    @property
    def cached_partition_count(self) -> int:
        with self._lock:
            return len(self._cache)
