"""Resilient distributed datasets — the Section 8 future-work substrate.

The paper's conclusion: "Spark provides parallel data structures that allow
users to explicitly keep data in memory with fault tolerance ... implementing
our algorithm in Spark would improve performance by reducing read I/O."
This module implements the RDD model from the Zaharia et al. NSDI'12 paper
the authors cite [34], scoped to what the inversion port needs:

* immutable, partitioned datasets with **lineage**: every RDD knows how to
  compute any of its partitions from its parents, so a lost cached partition
  is *recomputed*, not replicated;
* **narrow** transformations (map, filter, mapPartitions) that stay within a
  partition, and **wide** ones (groupByKey, reduceByKey) that shuffle;
* **actions** (collect, count, reduce) that materialize results on the
  driver;
* explicit **caching** — the in-memory reuse that replaces the Hadoop
  pipeline's HDFS round-trips.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .context import SparkContext


class RDD:
    """Base class: a lineage node with ``num_partitions`` partitions."""

    def __init__(self, ctx: "SparkContext", num_partitions: int, parents: tuple["RDD", ...]) -> None:
        if num_partitions < 1:
            raise ValueError("an RDD needs at least one partition")
        self.ctx = ctx
        self.num_partitions = num_partitions
        self.parents = parents
        self.rdd_id = ctx._register(self)
        self._cached = False

    # -- lineage ----------------------------------------------------------------

    def compute_partition(self, index: int) -> list[Any]:
        """Produce partition ``index`` from the parents (subclasses define)."""
        raise NotImplementedError

    def partition(self, index: int) -> list[Any]:
        """Fetch partition ``index``, through the cache when enabled."""
        if not 0 <= index < self.num_partitions:
            raise IndexError(f"partition {index} outside [0, {self.num_partitions})")
        return self.ctx._materialize(self, index)

    # -- persistence --------------------------------------------------------------

    def cache(self) -> "RDD":
        """Keep computed partitions in executor memory (lineage still covers
        loss — see SparkContext.evict)."""
        self._cached = True
        return self

    @property
    def is_cached(self) -> bool:
        return self._cached

    # -- narrow transformations ------------------------------------------------------

    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        return MapPartitionsRDD(self, lambda part: [fn(x) for x in part])

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        return MapPartitionsRDD(
            self, lambda part: [y for x in part for y in fn(x)]
        )

    def filter(self, pred: Callable[[Any], bool]) -> "RDD":
        return MapPartitionsRDD(self, lambda part: [x for x in part if pred(x)])

    def map_partitions(self, fn: Callable[[list[Any]], Iterable[Any]]) -> "RDD":
        return MapPartitionsRDD(self, lambda part: list(fn(part)))

    def key_by(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.map(lambda x: (fn(x), x))

    def map_values(self, fn: Callable[[Any], Any]) -> "RDD":
        """Transform only the value of (k, v) pairs (partitioning-preserving)."""
        return self.map(lambda kv: (kv[0], fn(kv[1])))

    def union(self, other: "RDD") -> "RDD":
        return UnionRDD(self, other)

    def distinct(self, num_partitions: int | None = None) -> "RDD":
        """Deduplicate via a shuffle (Spark's distinct)."""
        return (
            self.map(lambda x: (x, None))
            .group_by_key(num_partitions)
            .map(lambda kv: kv[0])
        )

    # -- wide transformations ----------------------------------------------------------

    def group_by_key(self, num_partitions: int | None = None) -> "RDD":
        """Shuffle ``(k, v)`` pairs into ``(k, [v...])`` groups."""
        return ShuffledRDD(
            self,
            num_partitions or self.num_partitions,
            combiner=None,
        )

    def reduce_by_key(
        self, fn: Callable[[Any, Any], Any], num_partitions: int | None = None
    ) -> "RDD":
        """Shuffle with map-side combining (Spark's reduceByKey)."""
        return ShuffledRDD(
            self,
            num_partitions or self.num_partitions,
            combiner=fn,
        )

    def join(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Inner join of two (k, v) RDDs -> (k, (v_self, v_other))."""
        tagged = self.map(lambda kv: (kv[0], (0, kv[1]))).union(
            other.map(lambda kv: (kv[0], (1, kv[1])))
        )
        grouped = tagged.group_by_key(num_partitions)

        def emit(pairs: list[Any]) -> Iterable[Any]:
            for key, values in pairs:
                left = [v for tag, v in values if tag == 0]
                right = [v for tag, v in values if tag == 1]
                for a in left:
                    for b in right:
                        yield (key, (a, b))

        return grouped.map_partitions(emit)

    # -- actions --------------------------------------------------------------------

    def collect(self) -> list[Any]:
        parts = self.ctx._run_job(self, range(self.num_partitions))
        return list(itertools.chain.from_iterable(parts))

    def count(self) -> int:
        return len(self.collect())

    def take(self, n: int) -> list[Any]:
        out: list[Any] = []
        for i in range(self.num_partitions):
            out.extend(self.partition(i))
            if len(out) >= n:
                break
        return out[:n]

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        items = self.collect()
        if not items:
            raise ValueError("reduce of an empty RDD")
        acc = items[0]
        for x in items[1:]:
            acc = fn(acc, x)
        return acc

    def collect_as_map(self) -> dict[Any, Any]:
        return dict(self.collect())

    def glom(self) -> "RDD":
        """Each partition becomes a single list element (Spark's glom)."""
        return MapPartitionsRDD(self, lambda part: [list(part)])

    def zip_with_index(self) -> "RDD":
        """Pair each element with its global position.  Requires one pass to
        size the earlier partitions (as in Spark)."""
        sizes = [len(self.partition(i)) for i in range(self.num_partitions)]
        offsets = [0]
        for s in sizes[:-1]:
            offsets.append(offsets[-1] + s)

        parent = self

        class _Zipped(RDD):
            def __init__(inner) -> None:
                super().__init__(parent.ctx, parent.num_partitions, (parent,))

            def compute_partition(inner, index: int) -> list[Any]:
                base = offsets[index]
                return [
                    (x, base + i) for i, x in enumerate(parent.partition(index))
                ]

        return _Zipped()

    def aggregate(
        self,
        zero: Any,
        seq_op: Callable[[Any, Any], Any],
        comb_op: Callable[[Any, Any], Any],
    ) -> Any:
        """Fold each partition with ``seq_op`` from ``zero``, then combine
        the per-partition results with ``comb_op`` (Spark's aggregate)."""
        import copy

        partials = []
        for i in range(self.num_partitions):
            acc = copy.deepcopy(zero)
            for x in self.partition(i):
                acc = seq_op(acc, x)
            partials.append(acc)
        result = copy.deepcopy(zero)
        for p in partials:
            result = comb_op(result, p)
        return result

    def count_by_key(self) -> dict[Any, int]:
        """Counts per key of a (k, v) RDD (action)."""
        out: dict[Any, int] = {}
        for k, _ in self.collect():
            out[k] = out.get(k, 0) + 1
        return out

    def lookup(self, key: Any) -> list[Any]:
        """All values for ``key`` in a (k, v) RDD (action)."""
        return [v for k, v in self.collect() if k == key]

    def sort_by(self, key_fn: Callable[[Any], Any], reverse: bool = False) -> list[Any]:
        """Totally ordered collect (driver-side sort, as a small action)."""
        return sorted(self.collect(), key=key_fn, reverse=reverse)


class ParallelCollectionRDD(RDD):
    """An in-memory collection split into partitions (sc.parallelize)."""

    def __init__(self, ctx: "SparkContext", data: list[Any], num_partitions: int) -> None:
        super().__init__(ctx, num_partitions, parents=())
        self._slices: list[list[Any]] = [
            list(data[
                round(i * len(data) / num_partitions) : round((i + 1) * len(data) / num_partitions)
            ])
            for i in range(num_partitions)
        ]

    def compute_partition(self, index: int) -> list[Any]:
        return list(self._slices[index])


class MapPartitionsRDD(RDD):
    """Narrow dependency: partition i depends only on parent partition i."""

    def __init__(self, parent: RDD, fn: Callable[[list[Any]], list[Any]]) -> None:
        super().__init__(parent.ctx, parent.num_partitions, parents=(parent,))
        self._fn = fn

    def compute_partition(self, index: int) -> list[Any]:
        return self._fn(self.parents[0].partition(index))


class UnionRDD(RDD):
    """Concatenation: partitions of both parents, in order."""

    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(
            left.ctx, left.num_partitions + right.num_partitions, parents=(left, right)
        )

    def compute_partition(self, index: int) -> list[Any]:
        left = self.parents[0]
        if index < left.num_partitions:
            return left.partition(index)
        return self.parents[1].partition(index - left.num_partitions)


class ShuffledRDD(RDD):
    """Wide dependency: every output partition reads every parent partition.

    Keys are hash-partitioned with the same stable partitioner as the
    MapReduce engine; an optional ``combiner`` merges values map-side (the
    reduceByKey optimization), shrinking the measured shuffle volume.
    """

    def __init__(
        self,
        parent: RDD,
        num_partitions: int,
        combiner: Callable[[Any, Any], Any] | None,
    ) -> None:
        super().__init__(parent.ctx, num_partitions, parents=(parent,))
        self._combiner = combiner

    def compute_partition(self, index: int) -> list[Any]:
        from ..mapreduce.job import default_partitioner
        from ..mapreduce.shuffle import shuffle_size_bytes

        grouped: dict[Any, Any] = {}
        order: list[Any] = []
        for p in range(self.parents[0].num_partitions):
            incoming = [
                (k, v)
                for k, v in self.parents[0].partition(p)
                if default_partitioner(k, self.num_partitions) == index
            ]
            self.ctx.metrics.shuffle_bytes += shuffle_size_bytes(incoming)
            for k, v in incoming:
                if k not in grouped:
                    order.append(k)
                    grouped[k] = v if self._combiner else [v]
                elif self._combiner:
                    grouped[k] = self._combiner(grouped[k], v)
                else:
                    grouped[k].append(v)
        return [(k, grouped[k]) for k in order]
