"""Command-line entry point.

    python -m repro invert [--n N] [--nb NB] [--m0 M0] [--verify]
    python -m repro lint [paths...] [--n N] [--nb NB] [--m0 M0] [--self-check]
    python -m repro chaos [--seed S] [--schedule NAME] [--json] [--list]
    python -m repro experiments [--fast]
    python -m repro table <1|2|3> / figure <6|7|8> / section <7.2|7.4|7.5>
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def cmd_invert(args: argparse.Namespace) -> int:
    from . import InversionConfig
    from .inversion import MatrixInverter
    from .workloads import random_dense

    a = random_dense(args.n, seed=args.seed)
    config = InversionConfig(nb=args.nb, m0=args.m0)
    inverter = MatrixInverter(config=config)
    result = inverter.invert(a)
    print(f"order {args.n}, nb={args.nb}, m0={args.m0}")
    print(f"jobs: {result.num_jobs}  (depth {result.plan.depth})")
    print(f"driver residual:      {result.residual(a):.3e}")
    if args.verify:
        print(f"distributed residual: {inverter.distributed_residual(result):.3e}")
    print(f"DFS read {result.io.bytes_read / 1e6:.1f} MB, "
          f"written {result.io.bytes_written / 1e6:.1f} MB")
    inverter.close()
    return 0


def cmd_describe(args: argparse.Namespace) -> int:
    from .inversion import InversionPlan

    plan = InversionPlan(n=args.n, nb=args.nb, m0=args.m0)
    plan.validate()
    print(plan.describe())
    print("\njob schedule:")
    for name in plan.job_schedule():
        print(f"  {name}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.run_all import main as run_all

    run_all(fast=args.fast)
    return 0


_ARTIFACTS = {
    ("table", "1"): "table1",
    ("table", "2"): "table2",
    ("table", "3"): "table3",
    ("figure", "6"): "fig6",
    ("figure", "7"): "fig7",
    ("figure", "8"): "fig8",
    ("section", "7.2"): "sec72",
    ("section", "7.4"): "sec74",
    ("section", "7.5"): "sec75",
    ("section", "8"): "sec8_spark",
    ("study", "launch-overhead"): "launch_overhead",
}


def cmd_artifact(kind: str, args: argparse.Namespace) -> int:
    import importlib

    key = (kind, args.which)
    if key not in _ARTIFACTS:
        valid = sorted(w for k, w in _ARTIFACTS if k == kind)
        print(f"unknown {kind} {args.which!r}; choose from {valid}", file=sys.stderr)
        return 2
    module = importlib.import_module(f".experiments.{_ARTIFACTS[key]}", __package__)
    print(module.format_result(module.run()))
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["lint"]:
        # Dispatched before the main parser so every lint flag (and any
        # future one) passes straight through to the analysis CLI.
        from .analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv[:1] == ["chaos"]:
        from .chaos.cli import main as chaos_main

        return chaos_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Scalable Matrix Inversion Using MapReduce (HPDC 2014) "
        "— reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_inv = sub.add_parser("invert", help="invert a random matrix end-to-end")
    p_inv.add_argument("--n", type=int, default=256)
    p_inv.add_argument("--nb", type=int, default=64)
    p_inv.add_argument("--m0", type=int, default=4)
    p_inv.add_argument("--seed", type=int, default=0)
    p_inv.add_argument("--verify", action="store_true",
                       help="also run the distributed verification job")
    p_inv.set_defaults(fn=cmd_invert)

    # Real dispatch happens above (pass-through); registered here so the
    # subcommand shows up in --help.
    sub.add_parser(
        "lint",
        help="statically validate pipelines without running them "
        "(plan dataflow + mapper/reducer purity); see "
        "python -m repro lint --help",
    )

    sub.add_parser(
        "chaos",
        help="run inversions under seeded fault schedules and check "
        "end-to-end invariants; see python -m repro chaos --help",
    )

    p_exp = sub.add_parser("experiments", help="regenerate every table/figure")
    p_exp.add_argument("--fast", action="store_true")
    p_exp.set_defaults(fn=cmd_experiments)

    p_desc = sub.add_parser(
        "describe", help="show the pipeline plan for an (n, nb) configuration"
    )
    p_desc.add_argument("--n", type=int, required=True)
    p_desc.add_argument("--nb", type=int, default=3200)
    p_desc.add_argument("--m0", type=int, default=4)
    p_desc.set_defaults(fn=cmd_describe)

    for kind in ("table", "figure", "section", "study"):
        p = sub.add_parser(kind, help=f"regenerate one {kind}")
        p.add_argument("which")
        p.set_defaults(fn=lambda a, k=kind: cmd_artifact(k, a))

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
