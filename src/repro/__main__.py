"""Command-line entry point.

    python -m repro invert [--n N] [--nb NB] [--m0 M0] [--verify]
    python -m repro describe --n N [--nb NB] [--m0 M0]
    python -m repro lint [paths...] [--n N] [--nb NB] [--m0 M0] [--self-check]
    python -m repro chaos [--seed S] [--schedule NAME] [--json] [--list]
    python -m repro experiments [--fast]
    python -m repro table <1|2|3> / figure <6|7|8> / section <7.2|7.4|7.5>
    python -m repro trace [--n N] [--nb NB] [--jsonl PATH] [--json]

Every subcommand is contributed by its subsystem through the registry in
:mod:`repro.cli` (each exposes a ``register_commands`` hook); this module
only dispatches.
"""

from __future__ import annotations

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
