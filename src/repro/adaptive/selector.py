"""Adaptive backend selection — the paper's second future-work direction.

Section 8: with resource managers like YARN/Mesos running MPI alongside
MapReduce, "it would be interesting to investigate the conditions under which
to use ScaLAPACK or MapReduce for matrix inversion, and to implement a system
to adaptively choose the best matrix inversion technique for an input
matrix."

The selector evaluates the calibrated running-time models of both systems for
the given matrix order and cluster, applies the feasibility constraints the
models encode (ScaLAPACK must fit in aggregate memory; tiny matrices are
cheapest on a single node), and dispatches to the chosen engine.  The
decision, the predicted times, and the reasoning are all returned so the
choice is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..cluster.costmodel import (
    BYTES_PER_ELEMENT,
    SCALAPACK_MEMORY_FACTOR,
    ours_time,
    scalapack_time,
)
from ..cluster.nodespec import ClusterSpec

Backend = Literal["single-node", "mapreduce", "scalapack"]


@dataclass(frozen=True)
class Decision:
    """The selector's verdict for one (matrix order, cluster) pair."""

    backend: Backend
    predicted_seconds: dict[str, float]
    scalapack_fits_memory: bool
    reason: str


def scalapack_fits(n: int, cluster: ClusterSpec) -> bool:
    """Does ScaLAPACK's in-memory working set fit in aggregate RAM?"""
    working_set = SCALAPACK_MEMORY_FACTOR * BYTES_PER_ELEMENT * float(n) ** 2
    return working_set <= cluster.num_nodes * cluster.node.memory_bytes


def choose_backend(
    n: int,
    cluster: ClusterSpec,
    nb: int = 3200,
    *,
    single_node_cutoff: int | None = None,
) -> Decision:
    """Pick the fastest feasible inversion backend for an order-n matrix.

    ``single_node_cutoff`` defaults to ``nb``: anything the master can LU in
    one job-launch-equivalent is fastest inverted locally.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    cutoff = single_node_cutoff if single_node_cutoff is not None else nb
    ours = ours_time(n, cluster, nb).total
    scala = scalapack_time(n, cluster).total
    predicted = {"mapreduce": ours, "scalapack": scala}

    if n <= cutoff:
        return Decision(
            backend="single-node",
            predicted_seconds=predicted,
            scalapack_fits_memory=scalapack_fits(n, cluster),
            reason=f"order {n} <= cutoff {cutoff}: a single node beats any "
            "distributed launch overhead",
        )
    fits = scalapack_fits(n, cluster)
    if not fits:
        return Decision(
            backend="mapreduce",
            predicted_seconds=predicted,
            scalapack_fits_memory=False,
            reason="ScaLAPACK working set exceeds aggregate cluster memory; "
            "the MapReduce pipeline streams from the DFS",
        )
    if scala < ours:
        return Decision(
            backend="scalapack",
            predicted_seconds=predicted,
            scalapack_fits_memory=True,
            reason=f"modeled ScaLAPACK time {scala:.0f}s beats MapReduce "
            f"{ours:.0f}s at this scale",
        )
    return Decision(
        backend="mapreduce",
        predicted_seconds=predicted,
        scalapack_fits_memory=True,
        reason=f"modeled MapReduce time {ours:.0f}s beats ScaLAPACK "
        f"{scala:.0f}s at this scale",
    )


@dataclass
class AdaptiveResult:
    inverse: np.ndarray
    decision: Decision


def adaptive_invert(
    a: np.ndarray,
    cluster: ClusterSpec,
    *,
    nb: int | None = None,
    m0: int | None = None,
) -> AdaptiveResult:
    """Choose a backend for ``a`` on ``cluster`` and execute it at working
    scale.

    The decision uses the paper-scale cost models; execution uses the real
    engines in this repository (the MapReduce pipeline, the MPI baseline, or
    plain single-node LU).  ``nb``/``m0`` default to values proportionate to
    the input.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"matrix must be square, got shape {a.shape}")
    n = a.shape[0]
    eff_nb = nb if nb is not None else max(n // 8, 32)
    eff_m0 = m0 if m0 is not None else min(max(cluster.num_nodes, 2), 8)
    if eff_m0 % 2:
        eff_m0 += 1
    decision = choose_backend(n, cluster, nb=eff_nb, single_node_cutoff=eff_nb)

    if decision.backend == "single-node":
        from ..baselines.numpy_ref import numpy_invert

        inverse = numpy_invert(a)
    elif decision.backend == "scalapack":
        from ..scalapack.driver import scalapack_invert

        inverse = scalapack_invert(
            a, nprocs=min(cluster.num_nodes, 8), block=max(eff_nb // 2, 2)
        ).inverse
    else:
        from ..inversion import InversionConfig, invert

        inverse = invert(a, InversionConfig(nb=eff_nb, m0=eff_m0)).inverse
    return AdaptiveResult(inverse=inverse, decision=decision)
