"""Adaptive backend selection (Section 8's 'choose ScaLAPACK or MapReduce
per input matrix' future work)."""

from .selector import (
    AdaptiveResult,
    Backend,
    Decision,
    adaptive_invert,
    choose_backend,
    scalapack_fits,
)

__all__ = [
    "AdaptiveResult",
    "Backend",
    "Decision",
    "adaptive_invert",
    "choose_backend",
    "scalapack_fits",
]
