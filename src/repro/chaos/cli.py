"""``python -m repro chaos`` — run the fault-injection campaign.

Examples::

    python -m repro chaos                      # full battery, seed 0
    python -m repro chaos --seed 7 --json      # machine-readable report
    python -m repro chaos --schedule combined  # one scenario
    python -m repro chaos --list               # what's in the battery
    python -m repro chaos --sweep              # exhaustive crash-point sweep

Exit status is 0 iff every schedule completed with every invariant green,
so the command doubles as a CI gate (``make chaos``).  ``--sweep`` replaces
the battery with the crash-point sweep: every DFS write/publish of a small
clean run is enumerated, the driver is killed at each one in turn, and each
resumed run must converge with clean accounting and a clean fsck audit.
"""

from __future__ import annotations

import argparse
import json
import sys

from .campaign import CampaignReport, run_campaign, run_crash_point_sweep
from .schedule import builtin_schedules, schedule_by_name

_GREEN = "ok"
_RED = "FAIL"


def _format_text(report: CampaignReport) -> str:
    lines = [
        f"chaos campaign: n={report.n} nb={report.nb} m0={report.m0} "
        f"seed={report.seed}",
        "",
    ]
    for outcome in report.outcomes:
        status = _GREEN if outcome.ok else _RED
        lines.append(f"[{status:>4}] {outcome.schedule}: {outcome.description}")
        if outcome.crashed_and_resumed:
            lines.append("       driver crashed and resumed from DFS state")
        for event in outcome.events_log:
            lines.append(f"       nemesis: {event}")
        if outcome.error:
            lines.append(f"       run error: {outcome.error}")
        for inv in outcome.invariants:
            mark = _GREEN if inv.ok else _RED
            lines.append(f"       [{mark:>4}] {inv.name}: {inv.detail}")
        lines.append(
            f"       {outcome.jobs_run} job launches, "
            f"{outcome.attempts_failed} failed attempts "
            f"({outcome.attempts_timed_out} timed out), "
            f"{outcome.repair_copies} repair copies, "
            f"{outcome.corrupt_dropped} corrupt replicas dropped "
            f"[{outcome.wall_seconds:.2f}s]"
        )
        lines.append("")
    passed = sum(o.ok for o in report.outcomes)
    lines.append(
        f"{passed}/{len(report.outcomes)} schedules green — "
        + ("campaign PASSED" if report.ok else "campaign FAILED")
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="run matrix inversions under seeded fault schedules and "
        "check correctness, job accounting, replication recovery, and "
        "intermediate-file hygiene",
    )
    parser.add_argument("--seed", type=int, default=0, help="fault RNG seed")
    parser.add_argument("--n", type=int, default=48, help="matrix order")
    parser.add_argument("--nb", type=int, default=16, help="bound value")
    parser.add_argument("--m0", type=int, default=4, help="workers per job")
    parser.add_argument(
        "--executor",
        choices=("serial", "threads", "processes"),
        default="serial",
        help="task execution backend for the battery (default: serial); "
        "the --sweep crash-point enumeration is always serial",
    )
    parser.add_argument(
        "--schedule",
        action="append",
        metavar="NAME",
        help="run only this schedule (repeatable); default: full battery",
    )
    parser.add_argument(
        "--scheduler",
        choices=("barrier", "dataflow"),
        default="barrier",
        help="inter-job scheduling mode for every run, battery and sweep "
        "alike (default: barrier); the invariants must hold under both",
    )
    parser.add_argument(
        "--list", action="store_true", help="list schedules and exit"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--sweep",
        action="store_true",
        help="run the exhaustive crash-point sweep (crash at every DFS "
        "write/publish of a small run, resume, audit) instead of the "
        "schedule battery; uses its own small geometry, ignores --n/--nb/--m0",
    )
    args = parser.parse_args(argv)

    if args.list:
        for schedule in builtin_schedules(args.seed):
            print(f"{schedule.name:20s} {schedule.description}")
        return 0

    if args.sweep:
        sweep = run_crash_point_sweep(seed=args.seed, scheduler=args.scheduler)
        if args.json:
            print(json.dumps(sweep.to_dict(), indent=2))
        else:
            print(sweep.format())
        return 0 if sweep.ok else 1

    schedules = None
    if args.schedule:
        try:
            schedules = tuple(
                schedule_by_name(name, args.seed) for name in args.schedule
            )
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2

    report = run_campaign(
        seed=args.seed,
        n=args.n,
        nb=args.nb,
        m0=args.m0,
        schedules=schedules,
        executor=args.executor,
        scheduler=args.scheduler,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(_format_text(report))
    return 0 if report.ok else 1


def register_commands(registry) -> None:
    """Hook for the ``python -m repro`` subcommand registry."""
    registry.add_passthrough(
        "chaos",
        main,
        help="run inversions under seeded fault schedules and check "
        "end-to-end invariants; see python -m repro chaos --help",
    )


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
