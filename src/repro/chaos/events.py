"""Composable fault events and the nemesis that fires them.

A chaos schedule is a list of :class:`FaultEvent` values, each pinned to a
position in the pipeline's job launch sequence (``at_job``).  The
:class:`Nemesis` is registered as a ``before_job`` hook on the
:class:`~repro.mapreduce.runtime.MapReduceRuntime` and fires every event
whose turn has come — so faults land *between* pipeline stages, at
deterministic points, under a seeded RNG.  Task-granular faults (failed or
hung attempts) are injected separately through the engine's
:class:`~repro.mapreduce.faults.FaultPolicy` machinery; the two compose.

Following the Jepsen nemesis pattern, events mutate the live system only
through its public fault hooks (``kill_datanode``, ``corrupt_replica``,
driver crash), never through private state — what the campaign proves is the
behaviour of the same code paths production would take.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..dfs.blocks import BlockInfo
from ..dfs.commit import staging_path
from ..dfs.filesystem import DFS
from ..mapreduce.job import JobConf


class DriverCrashError(RuntimeError):
    """Injected driver death: the pipeline is abandoned mid-run.

    The campaign runner catches this and re-invokes the inversion with
    ``resume=True``, exercising the Section 5 persistence argument — every
    intermediate lives in the DFS, so a new driver can pick up where the
    dead one stopped.
    """

    #: A crash is not a task failure: the engine must never retry it.  The
    #: master re-raises fatal outcomes immediately, skipping loser-attempt
    #: cleanup — exactly what a real process death would leave behind.
    fatal = True


@dataclass
class ChaosContext:
    """State shared by a schedule's events: the victim DFS, a seeded RNG,
    and a human-readable log of what was done."""

    dfs: DFS
    rng: random.Random
    log: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class FaultEvent:
    """One fault, fired just before the ``at_job``-th job launch (0-based)."""

    at_job: int

    def apply(self, ctx: ChaosContext) -> str:
        """Inject the fault; returns a description for the campaign log."""
        raise NotImplementedError


@dataclass(frozen=True)
class KillDatanode(FaultEvent):
    """Stop a datanode: its replicas become unreachable until revival."""

    node: int = 0

    def apply(self, ctx: ChaosContext) -> str:
        ctx.dfs.blocks.kill_datanode(self.node)
        return f"killed datanode {self.node}"


@dataclass(frozen=True)
class ReviveDatanode(FaultEvent):
    """Bring a dead datanode back (its stale replicas reappear)."""

    node: int = 0

    def apply(self, ctx: ChaosContext) -> str:
        ctx.dfs.blocks.revive_datanode(self.node)
        return f"revived datanode {self.node}"


@dataclass(frozen=True)
class CorruptReplicas(FaultEvent):
    """Flip bytes in ``count`` randomly chosen replicas (seeded).

    Victim blocks are picked only among those with at least two healthy
    replicas, so the event models silent bit-rot that checksums must catch
    and repair must scrub — not unrecoverable data loss (use
    :class:`KillDatanode` stacking for that).
    """

    count: int = 1

    def apply(self, ctx: ChaosContext) -> str:
        blocks = ctx.dfs.blocks
        namenode = ctx.dfs.namenode
        infos: list[BlockInfo] = [
            info
            for path in namenode.walk_files("/")
            for info in namenode.get_file(path).blocks
        ]
        ctx.rng.shuffle(infos)
        corrupted = 0
        for info in infos:
            if corrupted >= self.count:
                break
            healthy = [n for n, s in blocks.replica_status(info) if s == "healthy"]
            if len(healthy) < 2:
                continue
            node = healthy[ctx.rng.randrange(len(healthy))]
            if blocks.corrupt_replica(info, node):
                corrupted += 1
        return f"corrupted {corrupted} replica(s)"


@dataclass(frozen=True)
class CrashDriver(FaultEvent):
    """Kill the driver process between jobs (crash-and-resume scenario)."""

    def apply(self, ctx: ChaosContext) -> str:
        raise DriverCrashError(f"injected driver crash before job {self.at_job}")


@dataclass(frozen=True)
class CrashAtWrite(FaultEvent):
    """Kill the driver at an exact DFS write or publish point.

    Firing arms a one-shot hook on the DFS's ``fault_hooks``: the hook
    counts subsequent matching operations and raises
    :class:`DriverCrashError` at the ``nth`` one (0-based), disarming
    itself first so the resumed driver's identical write goes through.
    Unlike :class:`CrashDriver` — which dies *between* jobs, when nothing
    is half-written — this lands the crash in the middle of a step's
    output, which is precisely what the two-phase commit must survive.
    """

    #: Crash on the nth matching DFS operation after arming (0-based).
    nth: int = 0
    #: Substring the operation's path must contain (empty = any path).
    match: str = ""
    #: Restrict to ``"create"`` or ``"publish"`` (empty = either).
    op: str = ""

    def apply(self, ctx: ChaosContext) -> str:
        remaining = [self.nth]
        event = self

        def hook(op: str, path: str) -> None:
            if event.op and op != event.op:
                return
            if event.match and event.match not in path:
                return
            if remaining[0] > 0:
                remaining[0] -= 1
                return
            ctx.dfs.fault_hooks.remove(hook)
            raise DriverCrashError(f"injected driver crash at {op} {path}")

        ctx.dfs.fault_hooks.append(hook)
        kind = self.op or "create/publish"
        target = f" touching {self.match!r}" if self.match else ""
        return f"armed one-shot crash at {kind} #{self.nth}{target}"


@dataclass(frozen=True)
class TornWrite(FaultEvent):
    """Plant the debris a writer killed mid-write would leave behind.

    Two pending (unsealed) files appear: a partial copy in the ``/_tmp``
    staging namespace and a half-length torso at the final ``path`` itself.
    Neither is visible to readers; both must be detected and rolled back by
    ``fsck`` on resume.  The bytes go through the staging ledger
    (``stage_bytes``) so the staged/published/discarded conservation term
    still balances after the rollback.
    """

    path: str = "/Root/torn.bin"
    nbytes: int = 256

    def apply(self, ctx: ChaosContext) -> str:
        data = bytes(ctx.rng.randrange(256) for _ in range(self.nbytes))
        ctx.dfs.stage_bytes(staging_path("torn-writer", self.path), data)
        ctx.dfs.stage_bytes(self.path, data[: self.nbytes // 2])
        return f"planted torn-write debris at {self.path}"


class Nemesis:
    """``before_job`` hook that fires schedule events at their job index.

    Each event fires exactly once: a crash event consumed before raising does
    not re-fire when the driver resumes, and events scheduled for job indices
    the resumed (shorter) pipeline skips past still fire at the next launch.
    """

    def __init__(self, events: tuple[FaultEvent, ...], dfs: DFS, seed: int) -> None:
        self.pending = sorted(events, key=lambda e: e.at_job)
        self.ctx = ChaosContext(dfs=dfs, rng=random.Random(seed))
        self.jobs_seen = 0

    def __call__(self, conf: JobConf) -> None:
        index = self.jobs_seen
        self.jobs_seen += 1
        while self.pending and self.pending[0].at_job <= index:
            event = self.pending.pop(0)
            try:
                description = event.apply(self.ctx)
            except DriverCrashError:
                self.ctx.log.append(
                    f"before job {index} ({conf.name}): injected driver crash"
                )
                raise
            self.ctx.log.append(f"before job {index} ({conf.name}): {description}")


__all__ = [
    "ChaosContext",
    "CorruptReplicas",
    "CrashAtWrite",
    "CrashDriver",
    "DriverCrashError",
    "FaultEvent",
    "KillDatanode",
    "Nemesis",
    "ReviveDatanode",
    "TornWrite",
]
