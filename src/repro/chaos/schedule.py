"""Built-in chaos schedules: named, seeded, reproducible fault scenarios.

A :class:`FaultSchedule` bundles everything a chaos run injects — cluster
events fired between jobs (:mod:`repro.chaos.events`), task-granular fault
policies (:mod:`repro.mapreduce.faults`), and the retry/deadline knobs the
engine should defend itself with.  ``builtin_schedules`` is the campaign's
standard battery; every scenario is deterministic under its seed so a
failing run can be replayed bit-for-bit with ``--seed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..mapreduce.faults import (
    ComposedFaults,
    DelayAttempt,
    FailOnNode,
    FailRandomly,
    FaultPolicy,
)
from ..mapreduce.retry import RetryPolicy
from .events import (
    CorruptReplicas,
    CrashAtWrite,
    CrashDriver,
    FaultEvent,
    KillDatanode,
    ReviveDatanode,
    TornWrite,
)

#: Injected hangs sleep this long; the attempt deadline is well below it so a
#: hung attempt is reliably timed out, and well above scheduler noise so a
#: healthy attempt never is.  Both are small enough that the full battery
#: stays in CI-friendly wall time.
HANG_SECONDS = 0.25
ATTEMPT_DEADLINE = 0.05

#: Backoff used by retry-heavy schedules: real sleeps, kept tiny — the point
#: is to exercise the backoff code path and its counters, not to wait.
FAST_BACKOFF = RetryPolicy(base_delay=0.002, backoff=2.0, max_delay=0.02, jitter=0.5)

#: Backoff plus a per-attempt deadline: the full hardening configuration.
DEADLINE_RETRY = RetryPolicy(
    base_delay=0.002,
    backoff=2.0,
    max_delay=0.02,
    jitter=0.5,
    attempt_deadline=ATTEMPT_DEADLINE,
)


@dataclass(frozen=True)
class FaultSchedule:
    """One named chaos scenario.

    ``task_faults`` is a factory (seed -> policy) rather than a policy
    instance because several policies carry mutable state (fired-sets,
    RNGs) — each run must get a fresh one.
    """

    name: str
    description: str
    events: tuple[FaultEvent, ...] = ()
    retry: RetryPolicy | None = None
    max_attempts: int = 4
    task_faults: Callable[[int], FaultPolicy] | None = None

    @property
    def crashes_driver(self) -> bool:
        """Whether the scenario includes an injected driver crash (the
        campaign then resumes the run and checks the combined outcome)."""
        return any(isinstance(e, (CrashDriver, CrashAtWrite)) for e in self.events)

    def make_task_faults(self, seed: int) -> FaultPolicy | None:
        return self.task_faults(seed) if self.task_faults is not None else None


def builtin_schedules(seed: int = 0) -> tuple[FaultSchedule, ...]:
    """The standard battery, ordered mild to vicious.

    Job indices assume the campaign's default geometry (n=48, nb=16, m0=4:
    a depth-2 plan, so jobs 0..4 = partition, three LU jobs, final invert).
    Events pinned past the last job simply never fire, so the battery also
    runs — less interestingly — at other sizes.
    """
    return (
        FaultSchedule(
            name="baseline",
            description="no faults — the control run every invariant must pass",
        ),
        FaultSchedule(
            name="datanode-kill",
            description=(
                "a datanode dies after partitioning; auto-repair re-replicates "
                "from surviving copies and the pipeline never notices"
            ),
            events=(KillDatanode(at_job=1, node=1),),
        ),
        FaultSchedule(
            name="kill-revive-corrupt",
            description=(
                "a datanode bounces and replicas rot mid-run; checksums route "
                "reads around the damage and the scrub drops bad copies"
            ),
            events=(
                KillDatanode(at_job=1, node=2),
                ReviveDatanode(at_job=2, node=2),
                CorruptReplicas(at_job=2, count=2),
                CorruptReplicas(at_job=3, count=1),
            ),
        ),
        FaultSchedule(
            name="flaky-tasks",
            description=(
                "every task attempt fails with 15% probability; backoff plus a "
                "deep attempt budget grinds through"
            ),
            retry=FAST_BACKOFF,
            max_attempts=8,
            task_faults=lambda seed: FailRandomly(rate=0.15, seed=seed),
        ),
        FaultSchedule(
            name="sick-node",
            description=(
                "one worker fails every attempt scheduled onto it; the health "
                "tracker blacklists it and retries land elsewhere"
            ),
            retry=FAST_BACKOFF,
            max_attempts=6,
            task_faults=lambda seed: FailOnNode(node_id=1),
        ),
        FaultSchedule(
            name="hung-task",
            description=(
                "first attempts of the LU jobs hang instead of failing; the "
                "attempt deadline times them out and failover completes the job"
            ),
            retry=DEADLINE_RETRY,
            max_attempts=6,
            task_faults=lambda seed: DelayAttempt(
                seconds=HANG_SECONDS, job_substring="lu:", attempts_below=1
            ),
        ),
        FaultSchedule(
            name="combined",
            description=(
                "datanode death, hung tasks, and a driver crash in one run; "
                "repair + timeouts + DFS-persisted resume still converge"
            ),
            events=(
                KillDatanode(at_job=1, node=1),
                CrashDriver(at_job=3),
            ),
            retry=DEADLINE_RETRY,
            max_attempts=6,
            task_faults=lambda seed: ComposedFaults(
                DelayAttempt(
                    seconds=HANG_SECONDS, job_substring="lu:", attempts_below=1
                ),
            ),
        ),
        FaultSchedule(
            name="torn-write",
            description=(
                "a writer dies mid-write leaving torn pending files, then the "
                "driver itself crashes inside a job's output; resume-time fsck "
                "rolls the debris back and the commit protocol re-runs only "
                "the uncommitted steps"
            ),
            events=(
                TornWrite(at_job=1, path="/Root/OUT/A1/OUT/l.bin"),
                CrashAtWrite(at_job=2, nth=2, op="create"),
            ),
        ),
    )


def schedule_by_name(name: str, seed: int = 0) -> FaultSchedule:
    for schedule in builtin_schedules(seed):
        if schedule.name == name:
            return schedule
    known = ", ".join(s.name for s in builtin_schedules(seed))
    raise KeyError(f"unknown chaos schedule {name!r} (known: {known})")


__all__ = [
    "ATTEMPT_DEADLINE",
    "DEADLINE_RETRY",
    "FAST_BACKOFF",
    "FaultSchedule",
    "HANG_SECONDS",
    "builtin_schedules",
    "schedule_by_name",
]
