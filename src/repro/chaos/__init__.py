"""Chaos campaign harness: seeded fault schedules + end-to-end invariants.

The paper's Section 4 premise is that MapReduce buys fault tolerance "for
free" — this package actually bills for it.  A :class:`FaultSchedule`
composes cluster faults (datanode death/revival, replica corruption, driver
crash) with task faults (failures, hangs) under one seed; the campaign
runner executes a complete matrix inversion under each schedule and checks
that the answer is right, the job count matches ``2^d + 1``, replication
converges back to target, and no orphan intermediates survive.

Entry points: ``python -m repro chaos`` (CLI), :func:`run_campaign` /
:func:`run_schedule` (library), :func:`builtin_schedules` (the battery).
"""

from .campaign import (
    RESIDUAL_TOL,
    CampaignReport,
    CrashPoint,
    CrashPointOutcome,
    InvariantResult,
    ScheduleOutcome,
    SweepReport,
    campaign_matrix,
    run_campaign,
    run_crash_point_sweep,
    run_schedule,
)
from .events import (
    ChaosContext,
    CorruptReplicas,
    CrashAtWrite,
    CrashDriver,
    DriverCrashError,
    FaultEvent,
    KillDatanode,
    Nemesis,
    ReviveDatanode,
    TornWrite,
)
from .schedule import FaultSchedule, builtin_schedules, schedule_by_name

__all__ = [
    "RESIDUAL_TOL",
    "CampaignReport",
    "ChaosContext",
    "CorruptReplicas",
    "CrashAtWrite",
    "CrashDriver",
    "CrashPoint",
    "CrashPointOutcome",
    "DriverCrashError",
    "FaultEvent",
    "FaultSchedule",
    "InvariantResult",
    "KillDatanode",
    "Nemesis",
    "ReviveDatanode",
    "ScheduleOutcome",
    "SweepReport",
    "TornWrite",
    "builtin_schedules",
    "campaign_matrix",
    "run_campaign",
    "run_crash_point_sweep",
    "run_schedule",
    "schedule_by_name",
]
