"""The chaos campaign: full inversions under fault schedules, with invariants.

For each :class:`~repro.chaos.schedule.FaultSchedule` the runner builds a
fresh simulated cluster, arms the schedule's nemesis and task faults, runs a
complete matrix inversion (resuming once if the schedule crashes the driver),
and then checks four end-to-end invariants:

``correctness``
    ``max |I - A·A⁻¹|`` is within tolerance and the result matches
    ``numpy.linalg.inv`` — faults may slow the pipeline down, never change
    its answer.
``job-accounting``
    The executed job sequence matches the static plan: exactly ``2^d + 1``
    jobs in the planned order (Table 3).  After a driver crash the re-run
    skips completed jobs, so the check relaxes to "the planned set, each at
    most twice, nothing unplanned".
``replication``
    Every surviving block converges back to full health — no
    under-replicated blocks, no corrupt replicas — once the
    :class:`~repro.dfs.health.HealthMonitor` has run.
``no-orphans``
    Every file under the work root was predicted by the static pipeline
    model (:func:`repro.analysis.build_model`); crashes and retries leave no
    stray intermediates behind.

The invariants are deliberately external: they consult the static model and
numpy, never the engine's own bookkeeping, so an engine bug cannot vouch for
itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..analysis import build_model
from ..dfs.filesystem import DFS
from ..dfs.fsck import fsck
from ..inversion.config import InversionConfig
from ..inversion.driver import InversionResult, MatrixInverter
from ..mapreduce.master import JobFailedError
from ..mapreduce.runtime import MapReduceRuntime, RuntimeConfig
from ..telemetry.api import TraceConfig
from .events import DriverCrashError, Nemesis
from .schedule import FaultSchedule, builtin_schedules

#: ``max |I - A·A⁻¹|`` bound for the campaign's well-conditioned inputs.
RESIDUAL_TOL = 1e-8


@dataclass(frozen=True)
class InvariantResult:
    """One checked invariant: name, verdict, and evidence either way."""

    name: str
    ok: bool
    detail: str

    def to_dict(self) -> dict:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


@dataclass
class ScheduleOutcome:
    """Everything one schedule's run produced."""

    schedule: str
    description: str
    invariants: list[InvariantResult] = field(default_factory=list)
    error: str | None = None
    #: Telemetry trace of the run (every campaign run is traced), and — when
    #: the error was a permanent job failure — the span of the failed job.
    trace_id: str | None = None
    error_span_id: str | None = None
    crashed_and_resumed: bool = False
    events_log: list[str] = field(default_factory=list)
    jobs_run: int = 0
    attempts_failed: int = 0
    attempts_timed_out: int = 0
    backoff_seconds: float = 0.0
    repair_copies: int = 0
    corrupt_dropped: int = 0
    blacklisted_nodes: int = 0
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None and all(inv.ok for inv in self.invariants)

    def to_dict(self) -> dict:
        return {
            "schedule": self.schedule,
            "description": self.description,
            "ok": self.ok,
            "error": self.error,
            "trace_id": self.trace_id,
            "error_span_id": self.error_span_id,
            "crashed_and_resumed": self.crashed_and_resumed,
            "invariants": [inv.to_dict() for inv in self.invariants],
            "events": list(self.events_log),
            "jobs_run": self.jobs_run,
            "attempts_failed": self.attempts_failed,
            "attempts_timed_out": self.attempts_timed_out,
            "backoff_seconds": round(self.backoff_seconds, 6),
            "repair_copies": self.repair_copies,
            "corrupt_replicas_dropped": self.corrupt_dropped,
            "blacklisted_nodes": self.blacklisted_nodes,
            "wall_seconds": round(self.wall_seconds, 3),
        }


@dataclass
class CampaignReport:
    """Outcome of a full battery under one seed."""

    seed: int
    n: int
    nb: int
    m0: int
    outcomes: list[ScheduleOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "n": self.n,
            "nb": self.nb,
            "m0": self.m0,
            "ok": self.ok,
            "schedules": [o.to_dict() for o in self.outcomes],
        }


def campaign_matrix(n: int, seed: int) -> np.ndarray:
    """A seeded, well-conditioned test input: random entries plus a dominant
    diagonal, so ``RESIDUAL_TOL`` is meaningful at every campaign size."""
    rng = np.random.RandomState(seed)
    return rng.standard_normal((n, n)) + n * np.eye(n)


def _check_correctness(
    a: np.ndarray, result: InversionResult
) -> InvariantResult:
    residual = result.residual(a)
    matches = np.allclose(result.inverse, np.linalg.inv(a), atol=1e-8)
    ok = bool(residual <= RESIDUAL_TOL and matches)
    return InvariantResult(
        name="correctness",
        ok=ok,
        detail=(
            f"max|I - A·A⁻¹| = {residual:.3e} (tol {RESIDUAL_TOL:.0e}), "
            f"allclose(numpy.linalg.inv) = {matches}"
        ),
    )


def _check_job_accounting(
    runtime: MapReduceRuntime,
    result: InversionResult,
    crashed: bool,
) -> InvariantResult:
    planned = result.plan.job_schedule()
    if not crashed:
        executed = [job.name for job in result.record.job_results]
        ok = executed == planned
        return InvariantResult(
            name="job-accounting",
            ok=ok,
            detail=(
                f"{len(executed)} jobs = 2^d + 1 = {len(planned)}, "
                f"sequence {'matches' if ok else 'DIVERGES from'} the plan"
            ),
        )
    # Across crash + resume: runtime.history spans both runs.  Completed
    # jobs are skipped on resume, so each planned job runs once or twice
    # (twice only if the crash landed after launch but before completion
    # was recorded) and nothing off-plan ever runs.
    executed = [job.name for job in runtime.history]
    unplanned = sorted(set(executed) - set(planned))
    missing = sorted(set(planned) - set(executed))
    overrun = sorted(name for name in set(executed) if executed.count(name) > 2)
    ok = not (unplanned or missing or overrun)
    return InvariantResult(
        name="job-accounting",
        ok=ok,
        detail=(
            f"crash+resume ran {len(executed)} launches covering "
            f"{len(set(executed))}/{len(planned)} planned jobs"
            + (f"; unplanned={unplanned}" if unplanned else "")
            + (f"; missing={missing}" if missing else "")
            + (f"; >2 runs: {overrun}" if overrun else "")
        ),
    )


def _check_replication(dfs: DFS) -> InvariantResult:
    repair = dfs.health_monitor().repair()
    report = dfs.health_monitor().scan()
    ok = bool(
        report.under_replicated == 0
        and report.corrupt_replicas == 0
        and not repair.unrecoverable
    )
    return InvariantResult(
        name="replication",
        ok=ok,
        detail=(
            f"{report.blocks_total} blocks: {report.under_replicated} "
            f"under-replicated, {report.corrupt_replicas} corrupt replicas, "
            f"{len(repair.unrecoverable)} unrecoverable"
        ),
    )


def _check_no_orphans(dfs: DFS, config: InversionConfig, n: int) -> InvariantResult:
    predicted = build_model(n, config).all_writes()
    actual = set(dfs.list_files(config.root))
    orphans = sorted(actual - predicted)
    return InvariantResult(
        name="no-orphans",
        ok=not orphans,
        detail=(
            f"{len(actual)} files under {config.root}, all predicted by the "
            "static model"
            if not orphans
            else f"{len(orphans)} orphan file(s): {orphans[:5]}"
        ),
    )


def run_schedule(
    schedule: FaultSchedule,
    *,
    seed: int = 0,
    n: int = 48,
    nb: int = 16,
    m0: int = 4,
    num_datanodes: int = 5,
    replication: int = 3,
    executor: str = "serial",
    scheduler: str = "barrier",
) -> ScheduleOutcome:
    """Run one full inversion under ``schedule`` and check every invariant.

    ``scheduler`` selects the inter-job scheduling mode ("barrier" or
    "dataflow") — the invariants must hold identically under both.
    """
    outcome = ScheduleOutcome(schedule=schedule.name, description=schedule.description)
    start = time.perf_counter()

    a = campaign_matrix(n, seed)
    dfs = DFS(num_datanodes=num_datanodes, replication=replication, seed=seed)
    runtime = MapReduceRuntime(
        dfs=dfs,
        config=RuntimeConfig(num_workers=m0, executor=executor),
        fault_policy=schedule.make_task_faults(seed),
    )
    nemesis = Nemesis(schedule.events, dfs, seed)
    # The nemesis legitimately holds the DFS handle: before_job hooks run
    # driver-side (the master process), never inside a worker, so the handle
    # does not cross a process boundary.
    runtime.before_job.append(nemesis)  # lint: ignore[PS002]
    # Deterministic trace ID: same schedule + seed must reproduce the same
    # outcome dict bit-for-bit (the campaign's determinism invariant).
    telemetry = TraceConfig(trace_id=f"chaos-{schedule.name}-seed{seed}")
    config = InversionConfig(
        nb=nb,
        m0=m0,
        retry=schedule.retry,
        max_attempts=schedule.max_attempts,
        telemetry=telemetry,
        schedule=scheduler,
    )
    outcome.trace_id = telemetry.tracer().trace_id
    inverter = MatrixInverter(config=config, runtime=runtime)

    try:
        try:
            result = inverter.invert(a)
        except DriverCrashError:
            # The old driver is dead; a new one resumes from DFS state
            # (same TraceConfig, so both runs share one trace tree).
            outcome.crashed_and_resumed = True
            result = inverter.invert(a, resume=True)
    except Exception as exc:  # noqa: BLE001 - campaign reports, never raises
        outcome.error = f"{type(exc).__name__}: {exc}"
        if isinstance(exc, JobFailedError):
            outcome.error_span_id = exc.job_span_id
    else:
        outcome.invariants = [
            _check_correctness(a, result),
            _check_job_accounting(runtime, result, outcome.crashed_and_resumed),
            _check_replication(dfs),
            _check_no_orphans(dfs, config, n),
        ]
        outcome.jobs_run = len(runtime.history)
        outcome.attempts_failed = sum(j.attempts_failed for j in runtime.history)
        outcome.attempts_timed_out = sum(
            j.attempts_timed_out for j in runtime.history
        )
        outcome.backoff_seconds = sum(j.backoff_seconds for j in runtime.history)
        outcome.repair_copies = sum(r.copies_made for r in runtime.repair_log)
        outcome.corrupt_dropped = sum(
            r.corrupt_replicas_dropped for r in runtime.repair_log
        )
        outcome.blacklisted_nodes = len(runtime.node_health.blacklisted_nodes())
    finally:
        outcome.events_log = list(nemesis.ctx.log)
        outcome.wall_seconds = time.perf_counter() - start
        runtime.shutdown()
    return outcome


def run_campaign(
    *,
    seed: int = 0,
    n: int = 48,
    nb: int = 16,
    m0: int = 4,
    schedules: tuple[FaultSchedule, ...] | None = None,
    executor: str = "serial",
    scheduler: str = "barrier",
) -> CampaignReport:
    """Run the full battery (or a custom one) and collect every outcome."""
    report = CampaignReport(seed=seed, n=n, nb=nb, m0=m0)
    for schedule in schedules if schedules is not None else builtin_schedules(seed):
        report.outcomes.append(
            run_schedule(
                schedule,
                seed=seed,
                n=n,
                nb=nb,
                m0=m0,
                executor=executor,
                scheduler=scheduler,
            )
        )
    return report


# -- exhaustive crash-point sweep --------------------------------------------
#
# The schedule battery crashes the driver at a handful of hand-picked spots.
# The sweep is the systematic version: enumerate *every* DFS create and
# publish a small clean run performs, then re-run the whole inversion once
# per point with a one-shot crash armed at exactly that operation, resume,
# and require the same end state every time.  If the two-phase commit has a
# window — a file visible before its seal, a step marked done before its
# outputs — some point in this sweep lands inside it.


@dataclass(frozen=True)
class CrashPoint:
    """One write/publish operation observed in the clean baseline run."""

    index: int
    op: str
    path: str

    def to_dict(self) -> dict:
        return {"index": self.index, "op": self.op, "path": self.path}


@dataclass
class CrashPointOutcome:
    """Verdict for one crash point: crash, resume, and every check after."""

    point: CrashPoint
    ok: bool
    crashed: bool
    detail: str

    def to_dict(self) -> dict:
        return {
            **self.point.to_dict(),
            "ok": self.ok,
            "crashed": self.crashed,
            "detail": self.detail,
        }


@dataclass
class SweepReport:
    """Outcome of the full crash-point sweep under one seed."""

    seed: int
    n: int
    nb: int
    m0: int
    outcomes: list[CrashPointOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.outcomes) and all(o.ok for o in self.outcomes)

    @property
    def num_points(self) -> int:
        return len(self.outcomes)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "n": self.n,
            "nb": self.nb,
            "m0": self.m0,
            "ok": self.ok,
            "num_points": self.num_points,
            "points": [o.to_dict() for o in self.outcomes],
        }

    def format(self) -> str:
        lines = [
            f"crash-point sweep: n={self.n} nb={self.nb} m0={self.m0} "
            f"seed={self.seed} — {self.num_points} points"
        ]
        for o in self.outcomes:
            mark = "ok" if o.ok else "FAIL"
            lines.append(
                f"  [{mark}] #{o.point.index:3d} {o.point.op:7s} "
                f"{o.point.path}: {o.detail}"
            )
        lines.append(f"sweep {'PASSED' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def _sweep_cluster(
    seed: int, m0: int, num_datanodes: int, replication: int
) -> tuple[DFS, MapReduceRuntime]:
    dfs = DFS(num_datanodes=num_datanodes, replication=replication, seed=seed)
    runtime = MapReduceRuntime(
        dfs=dfs, config=RuntimeConfig(num_workers=m0, executor="serial")
    )
    return dfs, runtime


def _run_crash_point(
    point: CrashPoint,
    a: np.ndarray,
    config: InversionConfig,
    *,
    seed: int,
    n: int,
    m0: int,
    num_datanodes: int,
    replication: int,
) -> CrashPointOutcome:
    """Fresh cluster, crash armed at ``point``, invert + resume, full audit."""
    dfs, runtime = _sweep_cluster(seed, m0, num_datanodes, replication)
    remaining = [point.index]

    def crash_hook(op: str, path: str) -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            return
        # One-shot: the resumed driver repeats this exact write and must
        # not die again.
        dfs.fault_hooks.remove(crash_hook)
        raise DriverCrashError(
            f"injected crash at op #{point.index} ({op} {path})"
        )

    dfs.fault_hooks.append(crash_hook)
    inverter = MatrixInverter(config=config, runtime=runtime)
    crashed = False
    try:
        try:
            result = inverter.invert(a)
        except DriverCrashError:
            crashed = True
            result = inverter.invert(a, resume=True)
    except Exception as exc:  # noqa: BLE001 - the sweep reports, never raises
        return CrashPointOutcome(
            point=point,
            ok=False,
            crashed=crashed,
            detail=f"{type(exc).__name__}: {exc}",
        )
    finally:
        runtime.shutdown()

    checks = [
        _check_correctness(a, result),
        _check_job_accounting(runtime, result, crashed),
        _check_no_orphans(dfs, config, n),
    ]
    audit = fsck(dfs, root=config.root, repair=False)
    checks.append(
        InvariantResult(
            name="fsck-clean",
            ok=audit.clean,
            detail=(
                f"{len(audit.issues)} issue(s)"
                if not audit.clean
                else f"{audit.files_checked} files clean"
            ),
        )
    )
    failed = [c for c in checks if not c.ok]
    if not crashed:
        # Every enumerated point comes from the deterministic baseline run,
        # so an armed crash that never fires means the replay diverged.
        return CrashPointOutcome(
            point=point, ok=False, crashed=False, detail="armed crash never fired"
        )
    if failed:
        detail = "; ".join(f"{c.name}: {c.detail}" for c in failed)
        return CrashPointOutcome(point=point, ok=False, crashed=True, detail=detail)
    return CrashPointOutcome(
        point=point,
        ok=True,
        crashed=True,
        detail="crashed, resumed, all invariants hold",
    )


def run_crash_point_sweep(
    *,
    seed: int = 0,
    n: int = 8,
    nb: int = 2,
    m0: int = 2,
    num_datanodes: int = 3,
    replication: int = 2,
    scheduler: str = "barrier",
) -> SweepReport:
    """Crash the driver at every write/publish point of a small run.

    Phase 1 runs a clean inversion with a recording hook to enumerate every
    DFS ``create`` and ``publish`` the workflow performs.  Phase 2 replays
    the inversion once per enumerated operation on a fresh cluster, with a
    one-shot :class:`DriverCrashError` armed at exactly that operation,
    resumes, and checks correctness, ``2^d + 1`` job accounting across
    crash + resume, the static-model no-orphans invariant, and a clean
    read-only :func:`~repro.dfs.fsck.fsck` audit.
    """
    a = campaign_matrix(n, seed)
    config = InversionConfig(nb=nb, m0=m0, schedule=scheduler)

    points: list[CrashPoint] = []
    dfs, runtime = _sweep_cluster(seed, m0, num_datanodes, replication)

    def record_hook(op: str, path: str) -> None:
        points.append(CrashPoint(index=len(points), op=op, path=path))

    dfs.fault_hooks.append(record_hook)
    try:
        baseline = MatrixInverter(config=config, runtime=runtime).invert(a)
    finally:
        runtime.shutdown()
    if baseline.residual(a) > RESIDUAL_TOL:
        raise RuntimeError(
            "crash-point sweep baseline run is not numerically clean; "
            "fix the geometry before sweeping"
        )

    report = SweepReport(seed=seed, n=n, nb=nb, m0=m0)
    for point in points:
        report.outcomes.append(
            _run_crash_point(
                point,
                a,
                config,
                seed=seed,
                n=n,
                m0=m0,
                num_datanodes=num_datanodes,
                replication=replication,
            )
        )
    return report


__all__ = [
    "RESIDUAL_TOL",
    "CampaignReport",
    "CrashPoint",
    "CrashPointOutcome",
    "InvariantResult",
    "ScheduleOutcome",
    "SweepReport",
    "campaign_matrix",
    "run_campaign",
    "run_crash_point_sweep",
    "run_schedule",
]
