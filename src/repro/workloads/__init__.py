"""Workload generators and the Table 3 matrix suite."""

from .generators import (
    diagonally_dominant,
    ill_conditioned,
    needs_cross_block_pivot,
    orthogonal,
    random_dense,
    random_gaussian,
    singular_matrix,
    symmetric_positive_definite,
    tridiagonal,
)
from .structured import (
    banded,
    circulant,
    hilbert,
    laplacian_1d,
    toeplitz,
    vandermonde,
)
from .suite import BY_NAME, PAPER_NB, TABLE3, SuiteMatrix, get

__all__ = [
    "BY_NAME",
    "PAPER_NB",
    "TABLE3",
    "SuiteMatrix",
    "banded",
    "circulant",
    "diagonally_dominant",
    "hilbert",
    "laplacian_1d",
    "toeplitz",
    "vandermonde",
    "get",
    "ill_conditioned",
    "needs_cross_block_pivot",
    "orthogonal",
    "random_dense",
    "random_gaussian",
    "singular_matrix",
    "symmetric_positive_definite",
    "tridiagonal",
]
