"""Structured matrix families — classic, reproducible test operators.

These complement the random suite with deterministic matrices whose
properties are known in closed form: Hilbert (catastrophically
ill-conditioned), Toeplitz/circulant (stationary kernels), Vandermonde
(interpolation), and banded operators — the kinds of inputs downstream
users bring from physics and statistics applications.
"""

from __future__ import annotations

import numpy as np


def hilbert(n: int) -> np.ndarray:
    """The Hilbert matrix ``H_ij = 1 / (i + j + 1)`` — SPD and famously
    ill-conditioned (cond ~ e^{3.5 n})."""
    if n < 1:
        raise ValueError("n must be >= 1")
    idx = np.arange(n)
    return 1.0 / (idx[:, None] + idx[None, :] + 1.0)


def toeplitz(first_column: np.ndarray, first_row: np.ndarray | None = None) -> np.ndarray:
    """Constant-diagonal matrix from its first column (and optional row)."""
    c = np.asarray(first_column, dtype=np.float64)
    r = c if first_row is None else np.asarray(first_row, dtype=np.float64)
    if r[0] != c[0]:
        raise ValueError("first elements of column and row must agree")
    n, m = c.size, r.size
    out = np.empty((n, m))
    for i in range(n):
        for j in range(m):
            out[i, j] = c[i - j] if i >= j else r[j - i]
    return out


def circulant(first_row: np.ndarray) -> np.ndarray:
    """Each row is the previous row rotated right by one."""
    r = np.asarray(first_row, dtype=np.float64)
    n = r.size
    return np.array([np.roll(r, i) for i in range(n)])


def vandermonde(points: np.ndarray) -> np.ndarray:
    """``V_ij = x_i^j`` — invertible iff the points are distinct."""
    x = np.asarray(points, dtype=np.float64)
    return np.vander(x, increasing=True)


def banded(n: int, bandwidth: int, seed: int | None = 0) -> np.ndarray:
    """Random banded, diagonally dominant matrix (a discretized local
    operator with the given half-bandwidth)."""
    if bandwidth < 0 or n < 1:
        raise ValueError("need n >= 1 and bandwidth >= 0")
    rng = np.random.default_rng(seed)
    a = np.zeros((n, n))
    for k in range(-bandwidth, bandwidth + 1):
        diag_len = n - abs(k)
        if diag_len > 0:
            vals = rng.uniform(-1.0, 1.0, diag_len)
            a[np.arange(diag_len) + max(-k, 0), np.arange(diag_len) + max(k, 0)] = vals
    np.fill_diagonal(a, np.abs(a).sum(axis=1) + 1.0)
    return a


def laplacian_1d(n: int) -> np.ndarray:
    """The standard 1-D discrete Laplacian (tridiagonal [-1, 2, -1]) with
    Dirichlet boundaries — SPD, condition ~ n^2."""
    if n < 1:
        raise ValueError("n must be >= 1")
    a = 2.0 * np.eye(n)
    off = np.arange(n - 1)
    a[off, off + 1] = -1.0
    a[off + 1, off] = -1.0
    return a
