"""Matrix generators for experiments and tests.

Section 7.1: "all of our test matrices were randomly generated using the
Random class in Java ... performance depends on the order of the input matrix
and not on the data values".  :func:`random_dense` reproduces that workload;
the other generators provide structured and adversarial inputs used by the
correctness suite and the numerical-stability tests (the pipeline pivots only
within diagonal blocks, so documenting where that breaks matters).
"""

from __future__ import annotations

import numpy as np


def random_dense(n: int, seed: int | None = 0) -> np.ndarray:
    """The paper's workload: uniform random entries in [0, 1) (Java's
    ``Random.nextDouble`` style).  Such matrices are well-conditioned with
    overwhelming probability."""
    rng = np.random.default_rng(seed)
    return rng.random((n, n))


def random_gaussian(n: int, seed: int | None = 0) -> np.ndarray:
    """Standard normal entries."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n))


def symmetric_positive_definite(n: int, seed: int | None = 0) -> np.ndarray:
    """SPD matrix (the input class of the Cholesky-based related work
    [Bientinesi et al.] the paper contrasts itself with)."""
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((n, n))
    return g @ g.T + n * np.eye(n)


def diagonally_dominant(n: int, seed: int | None = 0) -> np.ndarray:
    """Strictly row-diagonally-dominant matrix — invertible without any
    pivoting, the friendliest case for block-local pivots."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, (n, n))
    np.fill_diagonal(a, np.sum(np.abs(a), axis=1) + 1.0)
    return a


def ill_conditioned(n: int, condition: float = 1e10, seed: int | None = 0) -> np.ndarray:
    """Matrix with prescribed 2-norm condition number (via SVD synthesis)."""
    rng = np.random.default_rng(seed)
    u, _ = np.linalg.qr(rng.standard_normal((n, n)))
    v, _ = np.linalg.qr(rng.standard_normal((n, n)))
    singular_values = np.geomspace(1.0, 1.0 / condition, n)
    return (u * singular_values) @ v.T


def singular_matrix(n: int, rank_deficiency: int = 1, seed: int | None = 0) -> np.ndarray:
    """Exactly rank-deficient matrix (for failure-path tests)."""
    if not 0 < rank_deficiency <= n:
        raise ValueError("rank_deficiency must be in (0, n]")
    rng = np.random.default_rng(seed)
    rank = n - rank_deficiency
    left = rng.standard_normal((n, rank))
    right = rng.standard_normal((rank, n))
    return left @ right


def orthogonal(n: int, seed: int | None = 0) -> np.ndarray:
    """Random orthogonal matrix (perfectly conditioned; inverse == transpose)."""
    rng = np.random.default_rng(seed)
    q, r = np.linalg.qr(rng.standard_normal((n, n)))
    return q * np.sign(np.diag(r))


def tridiagonal(n: int, seed: int | None = 0) -> np.ndarray:
    """Tridiagonal system (a CT / PDE-style banded operator, Section 1's
    image-reconstruction motivation)."""
    rng = np.random.default_rng(seed)
    a = np.zeros((n, n))
    main = rng.uniform(2.0, 3.0, n)
    off = rng.uniform(-1.0, 1.0, n - 1)
    np.fill_diagonal(a, main)
    a[np.arange(n - 1), np.arange(1, n)] = off
    a[np.arange(1, n), np.arange(n - 1)] = off
    return a


def needs_cross_block_pivot(n: int) -> np.ndarray:
    """Adversarial input for *block-local* pivoting: the leading diagonal
    block is singular, so correct factorization would need to pivot rows in
    from the bottom half — which Algorithm 2's P = diag(P1, P2) cannot do.
    Used to document the scheme's limitation."""
    a = np.zeros((n, n))
    half = n // 2
    # Top-left block: zero. Off-diagonal blocks: identity-ish (full rank).
    a[:half, half : 2 * half] = np.eye(half)
    a[half : 2 * half, :half] = np.eye(half)
    if 2 * half < n:
        a[2 * half :, 2 * half :] = np.eye(n - 2 * half)
    return a
