"""The Table 3 matrix suite (M1-M5) at configurable scale.

The paper's five matrices range from order 16384 to 102400 with nb = 3200.
Executing at those orders needs a datacenter; the suite therefore supports a
linear *scale factor*: orders and nb shrink together, so ``n/nb`` — which
alone determines the recursion depth and the pipeline's job structure — is
preserved exactly.  ``jobs`` still reproduces Table 3's job-count column at
any scale, and the text/binary size columns are computed for both the paper
scale and the working scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dfs.formats import binary_size_bytes
from ..inversion.plan import total_job_count
from .generators import random_dense

#: The paper's bound value (Section 5).
PAPER_NB = 3200

#: Bytes per element in the paper's text format (~19.5 characters/value at
#: full double precision, observed ~20 including the separator; Table 3's
#: text sizes imply ~19 B/element: 8 GB for 0.42e9 elements).
TEXT_BYTES_PER_ELEMENT = 19.0


@dataclass(frozen=True)
class SuiteMatrix:
    """One row of Table 3."""

    name: str
    paper_order: int
    seed: int

    def order(self, scale: int = 64) -> int:
        """Working order at a 1/scale linear reduction."""
        if self.paper_order % scale:
            raise ValueError(
                f"{self.name}: paper order {self.paper_order} not divisible by {scale}"
            )
        return self.paper_order // scale

    def nb(self, scale: int = 64) -> int:
        if PAPER_NB % scale:
            raise ValueError(f"nb {PAPER_NB} not divisible by scale {scale}")
        return PAPER_NB // scale

    @property
    def elements_billion(self) -> float:
        """Table 3's "Elements (Billion)" column."""
        return self.paper_order**2 / 1e9

    @property
    def text_gb(self) -> float:
        """Table 3's "Text (GB)" column (approximate, see module docstring)."""
        return self.paper_order**2 * TEXT_BYTES_PER_ELEMENT / 2**30

    @property
    def binary_gb(self) -> float:
        """Table 3's "Binary (GB)" column."""
        return binary_size_bytes(self.paper_order, self.paper_order) / 2**30

    @property
    def jobs(self) -> int:
        """Table 3's "Number of Jobs" column (scale-invariant)."""
        return total_job_count(self.paper_order, PAPER_NB)

    def generate(self, scale: int = 64) -> np.ndarray:
        """Materialize the matrix at working scale (paper-style random)."""
        return random_dense(self.order(scale), seed=self.seed)


#: Table 3's matrices.  M4 used EC2 large instances; the rest medium.
TABLE3 = (
    SuiteMatrix("M1", 20480, seed=101),
    SuiteMatrix("M2", 32768, seed=102),
    SuiteMatrix("M3", 40960, seed=103),
    SuiteMatrix("M4", 102400, seed=104),
    SuiteMatrix("M5", 16384, seed=105),
)

BY_NAME = {m.name: m for m in TABLE3}


def get(name: str) -> SuiteMatrix:
    try:
        return BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown suite matrix {name!r}; have {sorted(BY_NAME)}") from None
