"""Single-node reference implementations (LAPACK via NumPy/SciPy).

The ground truth every distributed result is checked against, plus the other
single-node inversion methods Section 2 surveys (SVD- and QR-based) so tests
can confirm they agree with each other and with the pipeline.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg


def numpy_invert(a: np.ndarray) -> np.ndarray:
    """LAPACK GETRF/GETRI through NumPy."""
    return np.linalg.inv(np.asarray(a, dtype=np.float64))


def svd_invert(a: np.ndarray, rcond: float = 1e-12) -> np.ndarray:
    """Section 2's SVD method: ``A^-1 = V W^-1 U^T``."""
    u, w, vt = np.linalg.svd(np.asarray(a, dtype=np.float64))
    if np.any(w <= rcond * w[0]):
        raise np.linalg.LinAlgError("matrix singular to working precision (SVD)")
    return (vt.T / w) @ u.T


def qr_invert(a: np.ndarray) -> np.ndarray:
    """Section 2's QR method: ``A^-1 = R^-1 Q^T``."""
    q, r = np.linalg.qr(np.asarray(a, dtype=np.float64))
    if np.any(np.abs(np.diag(r)) == 0.0):
        raise np.linalg.LinAlgError("matrix singular to working precision (QR)")
    return scipy.linalg.solve_triangular(r, q.T)


def lapack_lu(a: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """SciPy's pivoted LU, returned as (P-as-matrix-free perm array, L, U)
    with the same ``P A = L U`` convention as the rest of the package."""
    p, lower, upper = scipy.linalg.lu(np.asarray(a, dtype=np.float64))
    # scipy returns A = P L U with P a permutation matrix: PA-convention perm
    # array s satisfies a[s] = lower @ upper.
    s = np.argmax(p.T, axis=1).astype(np.int64)
    return s, lower, upper
