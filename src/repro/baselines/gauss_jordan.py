"""Gauss-Jordan elimination — the Section 2 baseline the paper rejects.

Two purposes:

1. a correct single-node inversion by row elimination on ``[A | I]`` (with
   partial pivoting), used as an independent numerical cross-check;
2. the *MapReduce job-count model* that motivates choosing LU: Gauss-Jordan
   (like QR and the inverse-iteration style methods) proceeds one pivot row
   at a time with each step depending on the last, so a MapReduce port needs
   ~``n`` sequentially-executed jobs versus block LU's ``n/nb`` (Section 4.2:
   "inverting a matrix with n = 10^5 requires 32 iterations using block LU
   ... as opposed to 10^5 iterations").
"""

from __future__ import annotations

import numpy as np

from ..linalg.lu import SingularMatrixError


def gauss_jordan_invert(a: np.ndarray, *, pivot: bool = True) -> np.ndarray:
    """Invert by row elimination on the augmented matrix ``[A | I]``."""
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"matrix must be square, got shape {a.shape}")
    n = a.shape[0]
    aug = np.hstack([a.copy(), np.eye(n)])

    for i in range(n):
        if pivot:
            rel = int(np.argmax(np.abs(aug[i:, i])))
            j = i + rel
            if j != i:
                aug[[i, j], :] = aug[[j, i], :]
        pivot_val = aug[i, i]
        if pivot_val == 0.0:
            raise SingularMatrixError(f"zero pivot at elimination step {i}")
        aug[i] /= pivot_val
        # Eliminate column i from every other row (the Jordan part).
        col = aug[:, i].copy()
        col[i] = 0.0
        aug -= np.outer(col, aug[i])
    return aug[:, n:]


def gauss_jordan_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` through the explicit inverse (the paper's framing of
    linear solving as an inversion application)."""
    return gauss_jordan_invert(a) @ np.asarray(b, dtype=np.float64)


def gauss_jordan_mapreduce_jobs(n: int) -> int:
    """Jobs a MapReduce port of Gauss-Jordan would need: one per elimination
    step, since step k's pivot row depends on step k-1's update."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return n


def qr_mapreduce_jobs(n: int) -> int:
    """Jobs a Gram-Schmidt QR port would need (Section 2): one per vector."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return n


def method_job_counts(n: int, nb: int) -> dict[str, int]:
    """Section 4.2's comparison table: MapReduce jobs per inversion method."""
    from ..inversion.plan import total_job_count

    return {
        "block-lu": total_job_count(n, nb),
        "gauss-jordan": gauss_jordan_mapreduce_jobs(n),
        "qr": qr_mapreduce_jobs(n),
    }
