"""Baseline inversion methods: Gauss-Jordan (Section 2's rejected candidate,
with its MapReduce job-count model) and single-node LAPACK/SVD/QR references."""

from .gauss_jordan import (
    gauss_jordan_invert,
    gauss_jordan_mapreduce_jobs,
    gauss_jordan_solve,
    method_job_counts,
    qr_mapreduce_jobs,
)
from .numpy_ref import lapack_lu, numpy_invert, qr_invert, svd_invert

__all__ = [
    "gauss_jordan_invert",
    "gauss_jordan_mapreduce_jobs",
    "gauss_jordan_solve",
    "lapack_lu",
    "method_job_counts",
    "numpy_invert",
    "qr_invert",
    "qr_mapreduce_jobs",
    "svd_invert",
]
