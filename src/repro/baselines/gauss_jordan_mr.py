"""Gauss-Jordan elimination ON MapReduce — the design the paper rejects,
actually built, so the rejection is measurable.

Section 2: "due to the large number of steps that depend on each other in a
sequential fashion, this method is difficult to parallelize in MapReduce
since it would require a large number of MapReduce jobs that are executed
sequentially."  Section 4.2: the authors "were unable to reduce the number
of iterations required by other methods such as Gauss-Jordan elimination
... below n".

Implementation: the augmented matrix ``[A | I]`` lives on the DFS as row
slabs.  Elimination step *k* is one MapReduce job:

* **map phase** — the slab that owns row *k* pivots within its local rows
  (partial pivoting restricted to the slab, enough for the random matrices
  the comparison uses), normalizes the pivot row, and publishes it to the
  DFS; all mappers emit the control pair ``(j, j)``;
* **reduce phase** — reducer *j* reads the published pivot row and
  eliminates column *k* from its slab (the map->reduce barrier is what
  sequences pivot publication before elimination).

Row swaps and all other row operations drive ``[A | I]`` to ``[I | A^-1]``
directly, so the right half *is* the inverse.  Work per job is tiny —
O(n^2 / m0) — but there are exactly ``n`` jobs, so job-launch overhead
dominates at scale: the paper's argument for block LU, in numbers
(see ``bench_ablations.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dfs import formats
from ..linalg.blockwrap import contiguous_ranges
from ..linalg.lu import SingularMatrixError
from ..mapreduce import (
    InputSplit,
    JobConf,
    MapReduceRuntime,
    Mapper,
    Reducer,
    TaskContext,
    splits_for_workers,
)
from ..mapreduce.pipeline import PipelineRecord


def _owner_of(k: int, ranges: list[tuple[int, int]]) -> int:
    return next(i for i, (a1, a2) in enumerate(ranges) if a1 <= k < a2)


class _PivotMapper(Mapper):
    """Map phase of step k: the owner slab selects, normalizes, and publishes
    the pivot row."""

    def __init__(self, root: str, step: int, n: int, m0: int) -> None:
        self.root = root
        self.step = step
        self.n = n
        self.m0 = m0

    def map(self, ctx: TaskContext, split: InputSplit) -> None:
        j = split.payload
        ctx.emit(j, j)
        ranges = contiguous_ranges(self.n, self.m0)
        if j != _owner_of(self.step, ranges):
            return
        k = self.step
        r1, _ = ranges[j]
        # writable: the slab is pivot-swapped and row-scaled in place below.
        slab = formats.decode_matrix(
            ctx.read_bytes(f"{self.root}/aug/slab.{j}"), writable=True
        )
        local = k - r1
        # Partial pivoting within the slab's rows >= k.
        rel = int(np.argmax(np.abs(slab[local:, k])))
        if rel:
            slab[[local, local + rel]] = slab[[local + rel, local]]
        pivot = slab[local, k]
        if pivot == 0.0:
            raise SingularMatrixError(f"zero pivot at elimination step {k}")
        slab[local] = slab[local] / pivot
        ctx.write_bytes(f"{self.root}/aug/slab.{j}", formats.encode_matrix(slab))
        ctx.write_bytes(
            f"{self.root}/pivot.{k}",
            formats.encode_matrix(slab[local : local + 1]),
        )
        ctx.report_flops(float(slab.shape[1]))


class _EliminateReducer(Reducer):
    """Reduce phase of step k: reducer j eliminates column k from slab j."""

    def __init__(self, root: str, step: int, n: int, m0: int) -> None:
        self.root = root
        self.step = step
        self.n = n
        self.m0 = m0

    def reduce(self, ctx: TaskContext, key, values) -> None:
        for _ in values:
            pass
        j = int(key)
        ranges = contiguous_ranges(self.n, self.m0)
        r1, r2 = ranges[j]
        if r2 <= r1:
            return
        k = self.step
        # writable: the elimination update subtracts from the slab in place.
        slab = formats.decode_matrix(
            ctx.read_bytes(f"{self.root}/aug/slab.{j}"), writable=True
        )
        pivot_row = formats.decode_matrix(ctx.read_bytes(f"{self.root}/pivot.{k}"))[0]
        multipliers = slab[:, k].copy()
        if j == _owner_of(k, ranges):
            multipliers[k - r1] = 0.0  # the pivot row eliminates everyone else
        slab -= np.outer(multipliers, pivot_row)
        ctx.report_flops(float(slab.shape[0]) * slab.shape[1])
        ctx.write_bytes(f"{self.root}/aug/slab.{j}", formats.encode_matrix(slab))


@dataclass
class GaussJordanMRResult:
    inverse: np.ndarray
    num_jobs: int
    record: PipelineRecord

    def residual(self, a: np.ndarray) -> float:
        n = a.shape[0]
        return float(np.max(np.abs(np.eye(n) - a @ self.inverse)))


def gauss_jordan_mapreduce_invert(
    a: np.ndarray,
    runtime: MapReduceRuntime | None = None,
    *,
    m0: int = 4,
    root: str = "/GJ",
) -> GaussJordanMRResult:
    """Invert ``a`` by row elimination: exactly ``n`` sequential MapReduce
    jobs (the Section 4.2 number, measured)."""
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"matrix must be square, got {a.shape}")
    n = a.shape[0]
    own_runtime = runtime is None
    runtime = runtime or MapReduceRuntime()
    dfs = runtime.dfs
    if dfs.exists(root):
        dfs.delete(root, recursive=True)

    aug = np.hstack([a, np.eye(n)])
    ranges = contiguous_ranges(n, m0)
    for j, (r1, r2) in enumerate(ranges):
        formats.write_matrix(dfs, f"{root}/aug/slab.{j}", aug[r1:r2])

    record = PipelineRecord()
    try:
        for k in range(n):
            conf = JobConf(
                name=f"gj-step-{k}",
                mapper_factory=lambda k=k: _PivotMapper(root, k, n, m0),
                reducer_factory=lambda k=k: _EliminateReducer(root, k, n, m0),
                splits=splits_for_workers(m0),
                num_reduce_tasks=m0,
            )
            record.steps.append(runtime.run_job(conf))

        inverse = np.zeros((n, n))
        for j, (r1, r2) in enumerate(ranges):
            if r2 > r1:
                slab = formats.read_matrix(dfs, f"{root}/aug/slab.{j}")
                inverse[r1:r2] = slab[:, n:]
    finally:
        if own_runtime:
            runtime.shutdown()
    return GaussJordanMRResult(inverse=inverse, num_jobs=n, record=record)
