"""Distributed sort (TeraSort-style) — the classic MapReduce engine exercise.

Demonstrates the engine features the inversion pipeline does not use: a
*custom range partitioner* built from a sample of the input (TeraSort's
trick: reducer *i* receives only keys in the i-th range, so concatenating the
sorted reducer outputs yields a totally sorted dataset).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from .job import JobConf, Mapper, Reducer, TaskContext
from .runtime import MapReduceRuntime
from .types import InputSplit


def sample_split_points(sample: Sequence[Any], num_partitions: int) -> list[Any]:
    """TeraSort's sampling step: from a sorted sample, pick ``p - 1`` cut
    points that split the key space into near-equal ranges."""
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    ordered = sorted(sample)
    if num_partitions == 1 or not ordered:
        return []
    return [
        ordered[min(len(ordered) - 1, round(i * len(ordered) / num_partitions))]
        for i in range(1, num_partitions)
    ]


class RangePartitioner:
    """Routes a key to the partition whose range contains it."""

    def __init__(self, split_points: Sequence[Any]) -> None:
        self.split_points = list(split_points)

    def __call__(self, key: Any, num_partitions: int) -> int:
        if len(self.split_points) >= num_partitions:
            raise ValueError(
                f"{len(self.split_points)} split points cannot route into "
                f"{num_partitions} partitions"
            )
        for i, cut in enumerate(self.split_points):
            if key < cut:
                return i
        return len(self.split_points)


class _EmitKeyMapper(Mapper):
    def map(self, ctx: TaskContext, split: InputSplit) -> None:
        for item in split.payload:
            ctx.emit(item, None)


class _SortedKeysReducer(Reducer):
    def reduce(self, ctx: TaskContext, key: Any, values) -> None:
        for _ in values:
            ctx.emit(key, None)


def distributed_sort(
    runtime: MapReduceRuntime,
    items: Sequence[Any],
    *,
    num_partitions: int = 4,
    num_mappers: int = 4,
    sample_size: int = 64,
) -> list[Any]:
    """Totally sort ``items`` with a sampled range partitioner.

    Reducer *i* sees only keys in range *i* and the engine sorts within each
    partition, so concatenating partitions 0..p-1 is the global order.
    """
    items = list(items)
    if not items:
        return []
    stride = max(len(items) // sample_size, 1)
    splits_pts = sample_split_points(items[::stride], num_partitions)
    partitioner = RangePartitioner(splits_pts)
    chunks = [
        items[round(i * len(items) / num_mappers) : round((i + 1) * len(items) / num_mappers)]
        for i in range(num_mappers)
    ]
    conf = JobConf(
        name="distributed-sort",
        mapper_factory=_EmitKeyMapper,
        reducer_factory=_SortedKeysReducer,
        splits=[InputSplit(index=i, payload=c) for i, c in enumerate(chunks)],
        num_reduce_tasks=num_partitions,
        partitioner=partitioner,
    )
    result = runtime.run_job(conf)
    out: list[Any] = []
    for p in range(num_partitions):
        out.extend(k for k, _ in result.reduce_outputs.get(p, []))
    return out
