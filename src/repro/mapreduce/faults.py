"""Fault injection for the MapReduce engine.

Section 7.4 of the paper reports a run where "one mapper computing the inverse
of a triangular matrix failed and ... did not restart until one of the other
mappers finished", demonstrating MapReduce's fault tolerance.  These policies
let tests and the Section 7.4 experiment inject exactly that kind of failure
deterministically.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from .types import TaskAttemptId, TaskKind


class InjectedTaskFailure(RuntimeError):
    """Raised inside a task attempt when a fault policy triggers."""


class FaultPolicy:
    """Base policy: never fails anything."""

    def should_fail(self, attempt: TaskAttemptId) -> bool:
        return False

    def maybe_fail(self, attempt: TaskAttemptId) -> None:
        if self.should_fail(attempt):
            raise InjectedTaskFailure(f"injected failure of {attempt}")


@dataclass
class FailNever(FaultPolicy):
    """Explicit no-op policy."""


@dataclass
class FailOnce(FaultPolicy):
    """Fail specific task attempts exactly once (attempt 0 by default).

    ``targets`` maps ``(job_name_substring, kind, task_index)`` to the attempt
    number that should fail; retries succeed, reproducing the paper's
    "mapper failed, was rescheduled, job completed" scenario.
    """

    job_substring: str
    kind: TaskKind
    task_index: int
    failing_attempt: int = 0
    _fired: set[str] = field(default_factory=set)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # Job names are matched by substring so callers can target "the first LU
    # job" or "the final inversion job" without knowing exact generated names.
    job_name: str | None = None  # set by the master before dispatch

    def should_fail(self, attempt: TaskAttemptId) -> bool:
        if attempt.task.kind is not self.kind:
            return False
        if attempt.task.index != self.task_index:
            return False
        if attempt.attempt != self.failing_attempt:
            return False
        name = self.job_name or ""
        if self.job_substring not in name:
            return False
        with self._lock:
            tag = str(attempt)
            if tag in self._fired:
                return False
            self._fired.add(tag)
        return True


@dataclass
class FailAlways(FaultPolicy):
    """Fail every attempt of one task — drives the job to permanent failure,
    exercising the max-attempts path."""

    kind: TaskKind
    task_index: int
    job_name: str | None = None

    def should_fail(self, attempt: TaskAttemptId) -> bool:
        return attempt.task.kind is self.kind and attempt.task.index == self.task_index


@dataclass
class FailRandomly(FaultPolicy):
    """Fail each attempt independently with probability ``rate`` (seeded)."""

    rate: float
    seed: int = 0
    job_name: str | None = None
    _rng: random.Random = field(init=False, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self._rng = random.Random(self.seed)

    def should_fail(self, attempt: TaskAttemptId) -> bool:
        with self._lock:
            return self._rng.random() < self.rate
