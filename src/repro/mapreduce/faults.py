"""Fault injection for the MapReduce engine.

Section 7.4 of the paper reports a run where "one mapper computing the inverse
of a triangular matrix failed and ... did not restart until one of the other
mappers finished", demonstrating MapReduce's fault tolerance.  These policies
let tests and the Section 7.4 experiment inject exactly that kind of failure
deterministically.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from .types import TaskAttemptId, TaskKind


class InjectedTaskFailure(RuntimeError):
    """Raised inside a task attempt when a fault policy triggers."""


class FaultPolicy:
    """Base policy: never fails anything."""

    def note_job(self, job_id, name: str) -> None:
        """Register ``name`` as the job running under ``job_id``.

        The master calls this at phase start so name-scoped policies
        (``job_substring`` matching) resolve each attempt against *its own*
        job's name via :meth:`job_name_for`.  Under the dataflow scheduler
        several jobs run concurrently, so a single mutable ``job_name``
        slot would race; the per-job map does not.  No lock: the write and
        every read for one ``job_id`` happen in (or are fenced by) the
        thread driving that job's phases.
        """
        # __dict__ directly: works for plain and frozen policy classes.
        names = self.__dict__.setdefault("_job_names", {})
        names[job_id] = name
        # Legacy slot: hand-written policies (tests, notebooks) read
        # ``self.job_name`` in should_fail.  Last-writer-wins is the old
        # single-slot behaviour; name-scoped code uses job_name_for instead.
        self.__dict__["job_name"] = name

    def job_name_for(self, attempt: TaskAttemptId) -> str:
        """The name of the job ``attempt`` belongs to (``""`` if unknown).

        Prefers :meth:`note_job` registrations; falls back to the legacy
        mutable ``job_name`` attribute so policies configured by hand in
        tests keep working.
        """
        names = self.__dict__.get("_job_names")
        if names is not None:
            name = names.get(attempt.task.job)
            if name is not None:
                return name
        return getattr(self, "job_name", None) or ""

    def should_fail(self, attempt: TaskAttemptId) -> bool:
        return False

    def should_fail_at(self, attempt: TaskAttemptId, node: int | None) -> bool:
        """Node-aware hook; the default ignores placement.  Override to model
        faults tied to a machine rather than a task (crashed tracker, bad
        disk) — the scenarios node blacklisting exists for."""
        return self.should_fail(attempt)

    def maybe_fail(self, attempt: TaskAttemptId, node: int | None = None) -> None:
        if self.should_fail_at(attempt, node):
            raise InjectedTaskFailure(f"injected failure of {attempt} on node {node}")

    def plan(
        self, attempt: TaskAttemptId, node: int | None = None
    ) -> "ScriptedFault":
        """Pre-compute this attempt's fault directive for out-of-process
        dispatch.

        Stateful policies (RNG draws, fire-once sets) consume their state
        *here, driver-side* — exactly once per attempt, matching what
        :meth:`maybe_fail` would have consumed in-process — and the worker
        receives only the frozen, picklable :class:`ScriptedFault` verdict.
        Shipping the policy object itself would fork its state per worker
        (a retried :class:`FailRandomly` would repeat the same draw every
        wave, turning a flaky task into a permanently failing one).
        """
        if self.should_fail_at(attempt, node):
            return ScriptedFault(
                fail=True,
                message=f"injected failure of {attempt} on node {node}",
            )
        return ScriptedFault()


@dataclass(frozen=True)
class ScriptedFault(FaultPolicy):
    """A frozen, picklable fault directive computed by the driver.

    This is the only fault object that crosses the process boundary: the
    master calls :meth:`FaultPolicy.plan` at dispatch and ships the verdict
    — an optional hang followed by an optional failure — so workers never
    hold locks, RNGs, or fire-once state.
    """

    delay_seconds: float = 0.0
    fail: bool = False
    message: str = ""

    def maybe_fail(self, attempt: TaskAttemptId, node: int | None = None) -> None:
        if self.delay_seconds > 0:
            time.sleep(self.delay_seconds)
        if self.fail:
            raise InjectedTaskFailure(
                self.message
                or f"injected failure of {attempt} on node {node}"
            )

    def plan(
        self, attempt: TaskAttemptId, node: int | None = None
    ) -> "ScriptedFault":
        return self


@dataclass
class FailNever(FaultPolicy):
    """Explicit no-op policy."""


@dataclass
class FailOnce(FaultPolicy):
    """Fail specific task attempts exactly once (attempt 0 by default).

    ``targets`` maps ``(job_name_substring, kind, task_index)`` to the attempt
    number that should fail; retries succeed, reproducing the paper's
    "mapper failed, was rescheduled, job completed" scenario.
    """

    job_substring: str
    kind: TaskKind
    task_index: int
    failing_attempt: int = 0
    _fired: set[str] = field(default_factory=set)  # guarded-by: _lock
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # Job names are matched by substring so callers can target "the first LU
    # job" or "the final inversion job" without knowing exact generated names.
    job_name: str | None = None  # set by the master before dispatch

    def should_fail(self, attempt: TaskAttemptId) -> bool:
        if attempt.task.kind is not self.kind:
            return False
        if attempt.task.index != self.task_index:
            return False
        if attempt.attempt != self.failing_attempt:
            return False
        if self.job_substring not in self.job_name_for(attempt):
            return False
        with self._lock:
            tag = str(attempt)
            if tag in self._fired:
                return False
            self._fired.add(tag)
        return True


@dataclass
class FailAlways(FaultPolicy):
    """Fail every attempt of one task — drives the job to permanent failure,
    exercising the max-attempts path."""

    kind: TaskKind
    task_index: int
    job_name: str | None = None

    def should_fail(self, attempt: TaskAttemptId) -> bool:
        return attempt.task.kind is self.kind and attempt.task.index == self.task_index


@dataclass
class FailRandomly(FaultPolicy):
    """Fail each attempt independently with probability ``rate`` (seeded)."""

    rate: float
    seed: int = 0
    job_name: str | None = None
    _rng: random.Random = field(init=False, repr=False)  # guarded-by: _lock
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self._rng = random.Random(self.seed)

    def should_fail(self, attempt: TaskAttemptId) -> bool:
        with self._lock:
            return self._rng.random() < self.rate


@dataclass
class FailOnNode(FaultPolicy):
    """Fail every attempt scheduled onto one node — a sick machine.

    Any single task retried onto the same node would fail again; the
    JobTracker's health tracker notices the consecutive failures, blacklists
    the node, and routes retries elsewhere (Hadoop's
    ``mapred.max.tracker.failures`` behaviour).  ``kind``/``job_substring``
    optionally narrow the blast radius.
    """

    node_id: int
    kind: TaskKind | None = None
    job_substring: str = ""
    job_name: str | None = None

    def should_fail_at(self, attempt: TaskAttemptId, node: int | None) -> bool:
        if node != self.node_id:
            return False
        if self.kind is not None and attempt.task.kind is not self.kind:
            return False
        return self.job_substring in self.job_name_for(attempt)


@dataclass
class DelayAttempt(FaultPolicy):
    """Hang matching attempts for ``seconds`` instead of failing them.

    This is the fault class retry-on-exception cannot handle: the attempt
    never raises, it just stops making progress.  Paired with a
    :class:`~repro.mapreduce.retry.RetryPolicy` attempt deadline it exercises
    the timeout → failover path; without a deadline it reproduces the
    pre-hardening stalled-wave behaviour (in miniature — the delay is finite
    so tests terminate).
    """

    seconds: float
    kind: TaskKind | None = None
    task_index: int | None = None
    #: only attempts numbered strictly below this hang; retries run clean.
    attempts_below: int = 1
    job_substring: str = ""
    job_name: str | None = None

    def should_delay(self, attempt: TaskAttemptId) -> bool:
        if self.kind is not None and attempt.task.kind is not self.kind:
            return False
        if self.task_index is not None and attempt.task.index != self.task_index:
            return False
        if attempt.attempt >= self.attempts_below:
            return False
        return self.job_substring in self.job_name_for(attempt)

    def maybe_fail(self, attempt: TaskAttemptId, node: int | None = None) -> None:
        if self.should_delay(attempt):
            time.sleep(self.seconds)

    def plan(
        self, attempt: TaskAttemptId, node: int | None = None
    ) -> ScriptedFault:
        if self.should_delay(attempt):
            return ScriptedFault(delay_seconds=self.seconds)
        return ScriptedFault()


class ComposedFaults(FaultPolicy):
    """Apply several fault policies in order (chaos schedules compose faults).

    ``job_name`` assignment fans out to every child policy that carries one,
    preserving the master's name-scoping protocol.
    """

    def __init__(self, *policies: FaultPolicy) -> None:
        self.policies = list(policies)

    @property
    def job_name(self) -> str | None:
        for policy in self.policies:
            name = getattr(policy, "job_name", None)
            if name is not None:
                return name
        return None

    @job_name.setter
    def job_name(self, name: str | None) -> None:
        for policy in self.policies:
            if hasattr(policy, "job_name"):
                policy.job_name = name

    def note_job(self, job_id, name: str) -> None:
        super().note_job(job_id, name)
        for policy in self.policies:
            policy.note_job(job_id, name)

    def maybe_fail(self, attempt: TaskAttemptId, node: int | None = None) -> None:
        for policy in self.policies:
            policy.maybe_fail(attempt, node)

    def plan(
        self, attempt: TaskAttemptId, node: int | None = None
    ) -> ScriptedFault:
        # Mirror maybe_fail's order: delays accumulate until the first
        # policy that would raise; later policies never get consulted
        # in-process either, so their state is not consumed here.
        delay = 0.0
        for policy in self.policies:
            directive = policy.plan(attempt, node)
            delay += directive.delay_seconds
            if directive.fail:
                return ScriptedFault(
                    delay_seconds=delay, fail=True, message=directive.message
                )
        return ScriptedFault(delay_seconds=delay)
