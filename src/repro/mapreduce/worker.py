"""Worker-pool backends that execute task attempts.

Two backends:

* :class:`SerialExecutor` — runs attempts inline, deterministic ordering;
  the default for tests and reproducible experiment runs.
* :class:`ThreadPoolBackend` — a real concurrent pool.  NumPy's BLAS kernels
  release the GIL, so the dense-block work that dominates every task runs in
  true parallel.  Process pools are deliberately not offered: the DFS is an
  in-process object shared by reference, and shipping it across process
  boundaries would silently change the I/O accounting the experiments rely on.

Both backends accept an optional per-attempt ``deadline``: an attempt that
exceeds it is abandoned and reported as a :class:`TaskTimeoutError`, which the
JobTracker counts as an ordinary failure (Hadoop's ``mapred.task.timeout``).
Python threads cannot be killed, so an abandoned attempt keeps running in the
background until it returns on its own — its result is discarded, which is
safe because task side effects are idempotent (each attempt writes to
deterministic per-task files, Section 5.2).
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Any, Callable, Sequence


class TaskTimeoutError(RuntimeError):
    """A task attempt exceeded its per-attempt deadline and was abandoned."""

    def __init__(self, deadline: float, detail: str = "") -> None:
        suffix = f" ({detail})" if detail else ""
        super().__init__(f"task attempt exceeded {deadline:.3g}s deadline{suffix}")
        self.deadline = deadline


def _run_with_deadline(thunk: Callable[[], Any], deadline: float) -> Any:
    """Run ``thunk`` on a watchdog thread; give up after ``deadline`` seconds.

    Returns the thunk's result, the exception it raised, or a
    :class:`TaskTimeoutError` if it is still running at the deadline.  The
    watchdog thread is a daemon so a permanently hung attempt cannot block
    interpreter shutdown.
    """
    box: list[Any] = []

    def target() -> None:
        # The join below establishes happens-before for the single append,
        # and a post-timeout straggler write is never read.
        try:
            box.append(thunk())  # lint: ignore[CN008]
        except Exception as exc:  # collected, not raised: master decides
            box.append(exc)  # lint: ignore[CN008]

    runner = threading.Thread(target=target, daemon=True)
    runner.start()
    runner.join(deadline)
    if runner.is_alive():
        return TaskTimeoutError(deadline)
    return box[0]


class SerialExecutor:
    """Run callables inline, in submission order."""

    max_workers = 1

    def run_all(
        self, thunks: Sequence[Callable[[], Any]], deadline: float | None = None
    ) -> list[Any]:
        """Run every thunk; returns results or raised exceptions, positionally.

        With a ``deadline``, each thunk runs on a watchdog thread so a hung
        attempt times out instead of stalling the wave forever.
        """
        results: list[Any] = []
        for thunk in thunks:
            if deadline is not None:
                results.append(_run_with_deadline(thunk, deadline))
                continue
            try:
                results.append(thunk())
            except Exception as exc:  # collected, not raised: master decides
                results.append(exc)
        return results

    def shutdown(self) -> None:  # noqa: B027 - interface symmetry
        pass


class ThreadPoolBackend:
    """Run callables on a shared thread pool."""

    def __init__(self, max_workers: int = 8) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool = concurrent.futures.ThreadPoolExecutor(max_workers=max_workers)

    def run_all(
        self, thunks: Sequence[Callable[[], Any]], deadline: float | None = None
    ) -> list[Any]:
        futures = [self._pool.submit(t) for t in thunks]
        results: list[Any] = []
        for fut in futures:
            try:
                results.append(fut.result(timeout=deadline))
            except concurrent.futures.TimeoutError:
                # The attempt (or the queue wait for its slot — starvation by
                # earlier hung attempts also counts) blew the deadline.
                fut.cancel()
                results.append(TaskTimeoutError(deadline or 0.0))
            except Exception as exc:
                results.append(exc)
        return results

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


def make_executor(kind: str, max_workers: int = 8) -> SerialExecutor | ThreadPoolBackend:
    """Factory keyed by name: ``"serial"`` or ``"threads"``."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "threads":
        return ThreadPoolBackend(max_workers=max_workers)
    raise ValueError(f"unknown executor kind {kind!r} (use 'serial' or 'threads')")
