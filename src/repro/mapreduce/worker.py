"""Deprecated alias of :mod:`repro.mapreduce.backends`.

The executor classes moved behind the :class:`~repro.mapreduce.backends.
ExecutionBackend` protocol and its ``register_backend`` registry; this
module re-exports the old names so existing imports keep working.  New
code should import from :mod:`repro.mapreduce.backends` (or the package
root) directly.
"""

from __future__ import annotations

from .backends import (  # noqa: F401 - re-exports for compatibility
    ExecutionBackend,
    ProcessPoolBackend,
    SerialExecutor,
    TaskSerializationError,
    TaskTimeoutError,
    ThreadPoolBackend,
    WorkerCrashError,
    _run_with_deadline,
    available_backends,
    make_executor,
    register_backend,
)

__all__ = [
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialExecutor",
    "TaskSerializationError",
    "TaskTimeoutError",
    "ThreadPoolBackend",
    "WorkerCrashError",
    "available_backends",
    "make_executor",
    "register_backend",
]
