"""Worker-pool backends that execute task attempts.

Two backends:

* :class:`SerialExecutor` — runs attempts inline, deterministic ordering;
  the default for tests and reproducible experiment runs.
* :class:`ThreadPoolBackend` — a real concurrent pool.  NumPy's BLAS kernels
  release the GIL, so the dense-block work that dominates every task runs in
  true parallel.  Process pools are deliberately not offered: the DFS is an
  in-process object shared by reference, and shipping it across process
  boundaries would silently change the I/O accounting the experiments rely on.
"""

from __future__ import annotations

import concurrent.futures
from typing import Any, Callable, Iterable, Sequence


class SerialExecutor:
    """Run callables inline, in submission order."""

    max_workers = 1

    def run_all(self, thunks: Sequence[Callable[[], Any]]) -> list[Any]:
        """Run every thunk; returns results or raised exceptions, positionally."""
        results: list[Any] = []
        for thunk in thunks:
            try:
                results.append(thunk())
            except Exception as exc:  # collected, not raised: master decides
                results.append(exc)
        return results

    def shutdown(self) -> None:  # noqa: B027 - interface symmetry
        pass


class ThreadPoolBackend:
    """Run callables on a shared thread pool."""

    def __init__(self, max_workers: int = 8) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool = concurrent.futures.ThreadPoolExecutor(max_workers=max_workers)

    def run_all(self, thunks: Sequence[Callable[[], Any]]) -> list[Any]:
        futures = [self._pool.submit(t) for t in thunks]
        results: list[Any] = []
        for fut in futures:
            try:
                results.append(fut.result())
            except Exception as exc:
                results.append(exc)
        return results

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


def make_executor(kind: str, max_workers: int = 8) -> SerialExecutor | ThreadPoolBackend:
    """Factory keyed by name: ``"serial"`` or ``"threads"``."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "threads":
        return ThreadPoolBackend(max_workers=max_workers)
    raise ValueError(f"unknown executor kind {kind!r} (use 'serial' or 'threads')")
