"""Core value types for the MapReduce engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class TaskKind(enum.Enum):
    MAP = "map"
    REDUCE = "reduce"


class TaskState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    KILLED = "killed"


@dataclass(frozen=True)
class JobId:
    """Identifier of one job within a runtime, Hadoop-style ``job_0007``."""

    value: int

    def __str__(self) -> str:
        return f"job_{self.value:04d}"


@dataclass(frozen=True)
class TaskId:
    """Identifier of one logical task (map or reduce) within a job."""

    job: JobId
    kind: TaskKind
    index: int

    def __str__(self) -> str:
        tag = "m" if self.kind is TaskKind.MAP else "r"
        return f"{self.job}_{tag}_{self.index:06d}"


@dataclass(frozen=True)
class TaskAttemptId:
    """One execution attempt of a task; retries increment ``attempt``."""

    task: TaskId
    attempt: int

    def __str__(self) -> str:
        return f"{self.task}_{self.attempt}"


@dataclass(frozen=True)
class InputSplit:
    """The unit of work assigned to one mapper.

    The paper's jobs use tiny control files whose content is a single worker
    index (Section 5.1); ``payload`` carries that index (or any other
    pickleable description of the split, e.g. a row range).
    """

    index: int
    payload: Any = None
    path: str | None = None
    length: int = 0


@dataclass
class TaskTrace:
    """Resource usage recorded by one task attempt.

    These records feed the cluster simulator (``repro.cluster``): simulated
    task duration is computed from ``flops`` and the byte counters, which is
    how executed small-scale runs are replayed at paper scale.
    """

    attempt: str
    kind: TaskKind
    flops: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0
    bytes_shuffled: int = 0
    wall_seconds: float = 0.0
    node: int | None = None

    def merge_io(self, *, read: int = 0, written: int = 0, shuffled: int = 0) -> None:
        self.bytes_read += read
        self.bytes_written += written
        self.bytes_shuffled += shuffled


@dataclass
class JobResult:
    """Outcome of one job: counters, per-attempt traces, and reduce outputs."""

    job_id: JobId
    name: str
    succeeded: bool
    map_traces: list[TaskTrace] = field(default_factory=list)
    reduce_traces: list[TaskTrace] = field(default_factory=list)
    counters: Any = None  # repro.mapreduce.counters.Counters
    reduce_outputs: dict[int, list[tuple[Any, Any]]] = field(default_factory=dict)
    attempts_launched: int = 0
    attempts_failed: int = 0
    #: attempts abandoned because they exceeded the RetryPolicy deadline
    #: (a subset of ``attempts_failed``).
    attempts_timed_out: int = 0
    #: total wall-clock time the tracker slept between retry waves.
    backoff_seconds: float = 0.0
    wall_seconds: float = 0.0
    #: task index -> number of extra attempts that ran before success
    #: (Section 7.4's failed-and-rescheduled mappers; the cluster simulator
    #: schedules these as occupied slots).
    map_retries: dict[int, int] = field(default_factory=dict)
    reduce_retries: dict[int, int] = field(default_factory=dict)
    #: Final DFS paths the winning attempts published under the two-phase
    #: output commit (empty when the job ran with ``output_commit=False``).
    published_paths: list[str] = field(default_factory=list)

    @property
    def traces(self) -> list[TaskTrace]:
        return self.map_traces + self.reduce_traces
