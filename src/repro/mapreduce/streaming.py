"""Hadoop Streaming: map/reduce as external processes over a line protocol.

Hadoop Streaming is how non-Java code (including the Python ports this paper
inspired) runs on real Hadoop: the framework pipes input records to a mapper
*command* on stdin, reads tab-separated ``key\\tvalue`` lines from its
stdout, shuffles, and pipes each reducer its sorted group stream.  This
module provides that interface on top of the engine, so the repository can
host streaming jobs exactly as a Hadoop cluster would:

* records go to the mapper command one per line;
* mapper stdout lines split on the first tab into (key, value) — a line
  with no tab is a key with an empty value;
* reducer commands receive ``key\\tvalue`` lines sorted by key (all values
  of a key contiguous, Hadoop's contract) and emit output lines.

Commands run as real subprocesses (``/bin/cat`` is the classic identity
mapper), so the failure modes — non-zero exit, garbage output — are real
too, and surface as task failures that the JobTracker retries.
"""

from __future__ import annotations

import subprocess
from typing import Any, Iterable

from .job import JobConf, Mapper, Reducer, TaskContext
from .types import InputSplit


class StreamingProcessError(RuntimeError):
    """The external command exited non-zero."""


def run_streaming_process(
    command: list[str], input_lines: Iterable[str], timeout: float = 60.0
) -> list[str]:
    """Feed lines to a subprocess and return its stdout lines."""
    payload = "".join(line + "\n" for line in input_lines)
    proc = subprocess.run(
        command,
        input=payload,
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    if proc.returncode != 0:
        raise StreamingProcessError(
            f"{command!r} exited {proc.returncode}: {proc.stderr.strip()[:500]}"
        )
    return proc.stdout.splitlines()


def parse_kv_line(line: str) -> tuple[str, str]:
    """Hadoop Streaming's split: first tab separates key from value."""
    key, sep, value = line.partition("\t")
    return key, value


class StreamingMapper(Mapper):
    """Runs the mapper command over the split's input lines."""

    def __init__(self, command: list[str], timeout: float = 60.0) -> None:
        self.command = command
        self.timeout = timeout

    def map(self, ctx: TaskContext, split: InputSplit) -> None:
        if split.path is not None:
            lines = ctx.read_text(split.path).splitlines()
        elif isinstance(split.payload, (list, tuple)):
            lines = [str(x) for x in split.payload]
        else:
            lines = [str(split.payload)]
        for out_line in run_streaming_process(self.command, lines, self.timeout):
            key, value = parse_kv_line(out_line)
            ctx.emit(key, value)


class StreamingReducer(Reducer):
    """Buffers the sorted group stream and pipes it to the reducer command
    once per task (cleanup), emitting its output lines as final records."""

    def __init__(self, command: list[str], timeout: float = 60.0) -> None:
        self.command = command
        self.timeout = timeout
        self._lines: list[str] = []

    def setup(self, ctx: TaskContext) -> None:
        self._lines = []

    def reduce(self, ctx: TaskContext, key: Any, values: Iterable[Any]) -> None:
        for value in values:
            self._lines.append(f"{key}\t{value}")

    def cleanup(self, ctx: TaskContext) -> None:
        for out_line in run_streaming_process(self.command, self._lines, self.timeout):
            key, value = parse_kv_line(out_line)
            ctx.emit(key, value)


def streaming_job(
    name: str,
    input_paths: list[str],
    mapper_command: list[str],
    reducer_command: list[str] | None = None,
    *,
    num_reduce_tasks: int = 1,
    timeout: float = 60.0,
    max_attempts: int = 4,
) -> JobConf:
    """Build a JobConf equivalent to ``hadoop jar hadoop-streaming.jar
    -input ... -mapper ... -reducer ...``."""
    if not input_paths:
        raise ValueError("streaming job needs at least one input path")
    splits = [InputSplit(index=i, path=p) for i, p in enumerate(input_paths)]
    return JobConf(
        name=name,
        mapper_factory=lambda: StreamingMapper(mapper_command, timeout),
        reducer_factory=(
            (lambda: StreamingReducer(reducer_command, timeout))
            if reducer_command
            else None
        ),
        splits=splits,
        num_reduce_tasks=num_reduce_tasks if reducer_command else 0,
        max_attempts=max_attempts,
    )
